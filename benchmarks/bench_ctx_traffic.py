"""Request-context attribution on the traffic scenarios (repro.ctx).

The paper's tools answer "where have all the cycles gone?" by image and
procedure; the context dimension adds "... and for *whom*?".  This
benchmark runs the three server-traffic scenarios with the dimension
enabled and measures both halves of the claim:

* attribution quality -- each scenario's request classes separate the
  way the workload was built to behave (bursty short requests vs long
  steady ones, slow clients with a worse CPI than fast ones, three
  tenants with distinct instruction mixes);
* enable cost -- simulator throughput (instructions per CPU-second)
  with the dimension on vs off on identical instruction streams, the
  overhead number EXPERIMENTS.md reports against its <3% target.

Deterministic counts (per-class samples, table accounting) land in the
schema-5 "ctx" result block; the timing-derived overhead is recorded
but informational.
"""

import time

from conftest import (clamp_budget, mean_ci95, profile_workload,
                      record_ctx, run_once, write_result)
from repro.tools.dcpitrace import build_report
from repro.workloads.registry import get_workload

SCENARIOS = ("bursty", "slow-client", "mixed-tenant")
BUDGET = 60_000
OVERHEAD_REPEATS = 3


def _profile(name, context=True, seed=1):
    return profile_workload(get_workload(name), seed=seed,
                            max_instructions=BUDGET, context=context)


def run_traffic_matrix():
    out = []
    for name in SCENARIOS:
        result = _profile(name)
        ledger = result.ctx_ledger
        report = build_report(ledger.to_meta(), db=name)
        out.append((name, ledger, report))
    return out


def render(rows):
    lines = ["Per-request attribution on the traffic scenarios "
             "(budget %d)" % clamp_budget(BUDGET),
             "%-14s %-16s %6s %5s %6s %9s %9s"
             % ("scenario", "class", "share", "reqs", "cpi",
                "p50cyc", "p99cyc")]
    for name, _, report in rows:
        for cls_name, cls in report["classes"].items():
            lines.append("%-14s %-16s %5.1f%% %5d %6.2f %9d %9d"
                         % (name, cls_name, cls["share"] * 100.0,
                            cls["requests"], cls["cpi"],
                            cls["tail"]["p50"], cls["tail"]["p99"]))
    return "\n".join(lines)


def test_ctx_traffic_attribution(benchmark):
    rows = run_once(benchmark, run_traffic_matrix)
    write_result("ctx_traffic_attribution", render(rows))
    by_name = {name: report for name, _, report in rows}

    # Bursty: the burst is many short requests, the steady load few
    # long ones -- the tail separation dcpitrace exists to show.
    bursty = by_name["bursty"]["classes"]
    assert bursty["req.burst"]["requests"] > bursty["req.steady"]["requests"]
    assert (bursty["req.steady"]["tail"]["p50"]
            > bursty["req.burst"]["tail"]["p50"])

    # Slow-client: memory-bound request handling shows up as CPI.
    slow = by_name["slow-client"]["classes"]
    assert slow["client.slow"]["cpi"] > slow["client.fast"]["cpi"]

    # Mixed-tenant: all three tenants attributed, distinct culprits.
    tenants = by_name["mixed-tenant"]["classes"]
    assert {"tenant.a", "tenant.b", "tenant.c"} <= set(tenants)

    facts = {"scenarios": len(rows)}
    for name, ledger, report in rows:
        stem = name.replace("-", "_")
        facts[stem + "_classes"] = len(ledger.classes)
        facts[stem + "_requests"] = sum(
            len(reqs) for reqs in ledger.requests.values())
        facts[stem + "_cycles_samples"] = sum(
            cls["cycles_samples"] for cls in report["classes"].values())
        facts[stem + "_table_interns"] = ledger.table_interns
        facts[stem + "_table_evictions"] = ledger.table_evictions
        facts[stem + "_other_samples"] = ledger.other_samples
    record_ctx(facts)


def test_ctx_enable_overhead(benchmark):
    """Throughput cost of the dimension on identical streams."""

    def measure():
        rates = {False: [], True: []}
        streams = {}
        for repeat in range(OVERHEAD_REPEATS):
            for context in (False, True):
                started = time.process_time()
                result = _profile("bursty", context=context,
                                  seed=repeat + 1)
                cpu_s = time.process_time() - started
                rates[context].append(
                    result.instructions / cpu_s if cpu_s else 0.0)
                # Collection-side feature: the machine's instruction
                # stream must not move when it is switched on.
                key = (repeat, context)
                streams[key] = (result.instructions, result.cycles)
        for repeat in range(OVERHEAD_REPEATS):
            assert streams[(repeat, False)] == streams[(repeat, True)]
        return rates

    rates = run_once(benchmark, measure)
    off_mean, off_ci = mean_ci95(rates[False])
    on_mean, on_ci = mean_ci95(rates[True])
    overhead_pct = (off_mean - on_mean) / off_mean * 100.0
    write_result(
        "ctx_enable_overhead",
        "Context-dimension enable overhead (bursty, %d repeats)\n"
        "ctx off: %10.0f +- %.0f instructions/cpu-s\n"
        "ctx on:  %10.0f +- %.0f instructions/cpu-s\n"
        "overhead: %.2f%% (EXPERIMENTS.md target: < 3%%)"
        % (OVERHEAD_REPEATS, off_mean, off_ci, on_mean, on_ci,
           overhead_pct))
    # Host timing is noisy on shared CI runners; the hard target
    # lives in EXPERIMENTS.md, the gate only catches a blowout.
    assert overhead_pct < 15.0
    record_ctx({"overhead_pct": round(overhead_pct, 3),
                "overhead_repeats": OVERHEAD_REPEATS})
