"""Ablation: sampling-period sweep (the scaled-period substitution).

DESIGN.md scales the paper's 60-64K-cycle sampling period down so a
pure-Python simulation still gathers dense profiles, charging handler
costs at the period-equivalent rate.  This benchmark validates the two
relationships that make the substitution sound:

* measured slowdown is (approximately) independent of the simulated
  period once costs are charged at the period-equivalent rate, i.e.
  overhead ~ handler_cost / period on both axes;
* frequency-estimate accuracy improves monotonically as the period
  shrinks (more samples), which is why analysis benchmarks use dense
  periods while overhead benchmarks may use any.
"""

from conftest import (baseline_workload, profile_workload, run_once,
                      write_result)
from repro.core.validate import frequency_errors, weight_within
from repro.workloads import mccalpin
from repro.workloads.generator import GeneratedProgram

PERIODS = (64, 128, 256, 512)


def run_sweep():
    rows = []
    base = baseline_workload(mccalpin.build("assign", n=4096,
                                            iterations=3),
                             max_instructions=None)
    for period in PERIODS:
        prof = profile_workload(
            mccalpin.build("assign", n=4096, iterations=3),
            mode="cycles", max_instructions=None,
            period=(int(period * 0.94), period))
        overhead = (prof.cycles - base.cycles) / base.cycles * 100

        accuracy_workload = GeneratedProgram(seed=321, rounds=200)
        result = profile_workload(accuracy_workload, mode="cycles",
                                  max_instructions=400_000,
                                  period=(int(period * 0.94), period),
                                  charge_overhead=False)
        profile = result.profile_for(accuracy_workload.name)
        within10 = 0.0
        samples = 0
        if profile is not None:
            image = result.daemon.images[accuracy_workload.name]
            points = frequency_errors(result.machine, image, profile)
            within10 = weight_within(points, 10)
            samples = sum(w for _, w, _ in points)
        rows.append({"period": period, "overhead": overhead,
                     "within10": within10, "samples": samples})
    return rows


def render(rows):
    lines = ["Ablation: sampling-period sweep",
             "%8s %12s %12s %10s"
             % ("period", "overhead%", "within10%", "samples")]
    for row in rows:
        lines.append("%8d %11.3f%% %11.1f%% %10d"
                     % (row["period"], row["overhead"],
                        row["within10"] * 100, row["samples"]))
    return "\n".join(lines)


def test_period_sweep(benchmark):
    rows = run_once(benchmark, run_sweep)
    write_result("ext_period_sweep", render(rows))
    overheads = [row["overhead"] for row in rows]
    # Period-equivalent charging keeps the slowdown in one narrow band
    # across an 8x period range.
    assert max(overheads) - min(overheads) < 1.0
    # Denser sampling -> better (or equal) estimates, strongly better
    # across the full sweep.
    assert rows[0]["within10"] > rows[-1]["within10"] - 0.02
    assert rows[0]["samples"] > 3 * rows[-1]["samples"]
