"""Figure 1: dcpiprof output for an x11perf run.

Regenerates the per-procedure listing: cycles samples, cumulative
percentages, imiss samples, procedure, image -- across application,
shared-library and kernel images.  Paper shape: one drawing routine
(ffb8ZeroPolyArc) dominates with roughly a third of the cycles, and
kernel (/vmunix) procedures appear in the listing.
"""

from conftest import profile_workload, run_once, write_result
from repro.tools.dcpiprof import dcpiprof, procedure_table
from repro.workloads import x11perf


def run_fig1():
    result = profile_workload(x11perf.build(scale=8, rounds=30),
                              mode="default", max_instructions=400_000)
    profiles = list(result.profiles.values())
    rows, total, _ = procedure_table(profiles)
    return profiles, rows, total


def test_fig1_dcpiprof(benchmark):
    profiles, rows, total = run_once(benchmark, run_fig1)
    text = dcpiprof(profiles, limit=12)
    write_result("fig1_dcpiprof", text)

    assert rows[0]["procedure"] == "ffb8ZeroPolyArc"
    share = rows[0]["primary"] / total
    # Paper: 33.87%; require the same "dominant but not majority" shape.
    assert 0.15 <= share <= 0.60
    images = {row["image"] for row in rows}
    assert "/vmunix" in images              # kernel code profiled
    assert any("shlib" in name for name in images)  # shared libraries
    listed = [row["procedure"] for row in rows[:10]]
    assert "ReadRequestFromClient" in listed
