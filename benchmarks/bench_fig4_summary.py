"""Figure 4: the procedure stall summary for wave5's smooth_.

Regenerates the dcpicalc summary for the run with the fewest smooth_
samples (the paper's "fastest run"): per-cause dynamic stall ranges,
static stall fractions, execution fraction and net sampling error.
Paper shape: smooth_ is dominated by memory-system stalls (D-cache +
DTB + write buffer), and the tallied fractions account for the whole
procedure with a small residual error.
"""

from bench_fig3_dcpistats import wave5_machine_config, wave5_workload

from conftest import profile_workload, run_once, write_result
from repro.core import analyze_procedure
from repro.cpu.events import EventType
from repro.workloads import wave5

RUNS = 4
BUDGET = 400_000
PERIOD = (60, 64)


def run_fig4():
    results = []
    for seed in range(1, RUNS + 1):
        results.append(profile_workload(
            wave5_workload(), mode="default", seed=seed,
            max_instructions=BUDGET, period=PERIOD,
            machine_config=wave5_machine_config()))

    def smooth_samples(result):
        profile = result.profile_for("wave5")
        return profile.procedure_totals(EventType.CYCLES)["smooth_"]

    fastest = min(results, key=smooth_samples)
    image = fastest.daemon.images["wave5"]
    profile = fastest.profile_for("wave5")
    return analyze_procedure(image, "smooth_", profile)


def test_fig4_summary(benchmark):
    analysis = run_once(benchmark, run_fig4)
    summary = analysis.summary()
    write_result("fig4_summary", summary.render())

    # Memory-system causes must be available to explain the dynamic
    # stalls (the paper's D-cache 27.9%, DTB 9.2-18.3%, WB 0-6.3%).
    assert summary.dynamic["dcache"][1] > 0.1
    assert summary.dynamic["dtb"][1] > 0.05
    assert summary.subtotal_dynamic > 0.2
    # Stalls dominate execution in this memory-bound procedure.
    assert analysis.actual_cpi > 1.5 * analysis.best_case_cpi
    # Everything tallies, with a bounded sampling error.
    total = (summary.subtotal_dynamic + summary.subtotal_static
             + summary.execution + summary.net_error)
    assert abs(total - 1.0) < 1e-6
    assert abs(summary.net_error) < 0.35
    assert 0.05 < summary.execution < 1.0
