"""Table 4: components of the time overhead.

Per workload: the hash-table miss rate, the average interrupt-handler
cost in cycles (split hit/miss), and the daemon's per-sample processing
cost.  Paper shape: workloads with low eviction rates (McCalpin,
AltaVista, DSS) are cheap per interrupt and per daemon sample; gcc's
high eviction rate drives both costs up by an order of magnitude on
the daemon side.
"""

from conftest import profile_workload, run_once, write_result
from repro.workloads.registry import get_workload

WORKLOADS = ("x11perf", "gcc", "wave5", "mccalpin-assign", "altavista",
             "dss")
BUDGET = 60_000


def run_table4():
    rows = []
    for name in WORKLOADS:
        result = profile_workload(get_workload(name), mode="default",
                                  max_instructions=BUDGET)
        driver_stats = result.driver.stats()
        daemon_stats = result.daemon.stats()
        rows.append({
            "workload": name,
            "miss_rate": driver_stats["miss_rate"] * 100.0,
            "avg": driver_stats["avg_cost"],
            "hit": driver_stats["avg_hit_cost"],
            "miss": driver_stats["avg_miss_cost"],
            "daemon": daemon_stats["cost_per_sample"],
            "aggregation": daemon_stats["aggregation"],
        })
    return rows


def render(rows):
    lines = ["Table 4: time overhead components (default configuration)",
             "%-18s %8s %8s %14s %10s %6s"
             % ("Workload", "miss%", "avg cyc", "(hit/miss)",
                "daemon", "agg")]
    for row in rows:
        lines.append("%-18s %7.1f%% %8.0f %14s %10.0f %6.1f"
                     % (row["workload"], row["miss_rate"], row["avg"],
                        "(%.0f/%.0f)" % (row["hit"], row["miss"]),
                        row["daemon"], row["aggregation"]))
    return "\n".join(lines)


def test_table4_components(benchmark):
    rows = run_once(benchmark, run_table4)
    write_result("table4_components", render(rows))
    by_name = {row["workload"]: row for row in rows}
    gcc = by_name["gcc"]
    mccalpin = by_name["mccalpin-assign"]
    # gcc's per-PID sample spread defeats aggregation...
    assert gcc["miss_rate"] > 10 * mccalpin["miss_rate"]
    # ...which raises its daemon per-sample cost by an order of
    # magnitude (paper: 927 vs 70 cycles).
    assert gcc["daemon"] > 5 * mccalpin["daemon"]
    # Handler cost structure: misses always dearer than hits, and the
    # averages sit in the paper's few-hundred-cycle regime.
    for row in rows:
        assert row["miss"] > row["hit"]
        assert 250 <= row["avg"] <= 900
