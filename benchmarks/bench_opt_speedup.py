"""Realized speedup from the profile-guided optimizer (repro.opt).

The paper's closing argument is that continuous profiles are good
enough to *drive* optimization, not just explain cycles.  This
benchmark runs the full loop -- profile, plan, rewrite, verify,
re-run -- on the three optimization-target workloads, each built to
leave one kind of cycles on the table:

* ``opt-branchy``: hot-path unconditional branches (layout's cycles);
* ``opt-icache``:  conflicting hot procedures an I-cache apart
  (splitting's cycles);
* ``opt-stall``:   load-use serialization (scheduling's cycles).

Every reported speedup is *realized*: two plain runs to completion,
architectural identity proven by the oracle, zero new Layer-1
findings.  The per-pass contribution split (each pass measured in
isolation) lands with the combined numbers in the schema-6 "opt"
result block; the simulator is deterministic, so ``dcpibench
compare`` holds the speedups steady between runs.
"""

from conftest import clamp_budget, record_opt, run_once, write_result
from repro.opt import optimize_workload, pass_contributions
from repro.workloads import OPT_TARGETS

BUDGET = 60_000

#: Acceptance floor per target at full budget (ISSUE: >= 5% on at
#: least two registry workloads; all three clear it with margin).
MIN_SPEEDUP = 0.05


def run_matrix():
    rows = []
    budget = clamp_budget(BUDGET)
    for name in OPT_TARGETS:
        report = optimize_workload(name, max_instructions=budget)
        split = pass_contributions(name, max_instructions=budget)
        rows.append((name, report.report(), split))
    return rows


def render(rows):
    lines = ["Profile-guided optimization: realized speedup "
             "(budget %d, verify to completion)" % clamp_budget(BUDGET),
             "%-14s %10s %10s %8s %8s %8s %8s  %s"
             % ("workload", "base_cyc", "opt_cyc", "speedup",
                "layout", "sched", "split", "accepted")]
    for name, report, split in rows:
        lines.append(
            "%-14s %10d %10d %7.2f%% %7.2f%% %7.2f%% %7.2f%%  %s"
            % (name, report["baseline"]["cycles"],
               report["optimized"]["cycles"],
               report["speedup"] * 100.0,
               split["layout"] * 100.0, split["schedule"] * 100.0,
               split["split"] * 100.0, report["accepted"]))
    return "\n".join(lines)


def test_opt_realized_speedup(benchmark):
    rows = run_once(benchmark, run_matrix)
    write_result("opt_speedup", render(rows))

    speedups = {}
    block = {}
    for name, report, split in rows:
        # The contract before any performance claim: same program
        # (oracle) and no new findings (Layer 1).
        assert report["accepted"], (name, report["mismatches"],
                                    report["check_findings"])
        assert report["identical"], (name, report["mismatches"])
        assert not report["check_findings"], (name,
                                              report["check_findings"])
        speedups[name] = report["speedup"]
        key = name.replace("-", "_")
        block["%s_speedup" % key] = round(report["speedup"], 6)
        block["%s_base_cycles" % key] = report["baseline"]["cycles"]
        block["%s_opt_cycles" % key] = report["optimized"]["cycles"]
        for pass_name, value in split.items():
            block["%s_%s" % (key, pass_name)] = round(value, 6)

    # Each target's headline pass reclaims its cycles: the combined
    # speedup clears the ISSUE's 5% floor on all three.
    for name, value in speedups.items():
        assert value >= MIN_SPEEDUP, (name, value)

    # opt-icache's win is conflict misses: splitting dominates.
    by_name = {name: split for name, _, split in rows}
    assert by_name["opt-icache"]["split"] >= \
        by_name["opt-icache"]["schedule"]
    # opt-stall's win is load-use stalls: scheduling dominates.
    assert by_name["opt-stall"]["schedule"] >= \
        by_name["opt-stall"]["layout"]

    block["accepted"] = sum(1 for _, r, _ in rows if r["accepted"])
    block["speedup_min"] = round(min(speedups.values()), 6)
    block["speedup_mean"] = round(
        sum(speedups.values()) / len(speedups), 6)
    record_opt(block)
