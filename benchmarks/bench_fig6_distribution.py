"""Figure 6: distribution of running times across configurations.

For three representative workloads (the paper uses AltaVista, gcc and
wave5), runs base / cycles / default / mux several times each and
renders the distribution of running times (mean, spread, 95% CI) --
the scatter-plot data of the paper's figure.

Paper shape: profiled distributions sit a few percent above base at
most, and the run-to-run variance of the workload itself is comparable
to (or exceeds) the profiling overhead.
"""

from conftest import (baseline_workload, mean_ci95, profile_workload, run_once,
                      write_result)
from repro.workloads.registry import get_workload

WORKLOADS = ("altavista", "gcc", "wave5")
CONFIGS = ("base", "cycles", "default", "mux")
SEEDS = tuple(range(1, 7))
BUDGET = 50_000


def run_fig6():
    series = {}
    for name in WORKLOADS:
        for config in CONFIGS:
            times = []
            for seed in SEEDS:
                if config == "base":
                    result = baseline_workload(
                        get_workload(name), seed=seed,
                        max_instructions=BUDGET)
                else:
                    result = profile_workload(
                        get_workload(name), mode=config, seed=seed,
                        max_instructions=BUDGET)
                times.append(result.cycles)
            series[(name, config)] = times
    return series


def render(series):
    lines = ["Figure 6: distribution of running times (simulated cycles)",
             "%-12s %-8s %12s %10s %10s %10s"
             % ("workload", "config", "mean", "+/-95%", "min", "max")]
    for (name, config), times in series.items():
        mean, ci = mean_ci95(times)
        lines.append("%-12s %-8s %12.0f %10.0f %10d %10d"
                     % (name, config, mean, ci, min(times), max(times)))
    return "\n".join(lines)


def test_fig6_distribution(benchmark):
    series = run_once(benchmark, run_fig6)
    write_result("fig6_distribution", render(series))

    for name in WORKLOADS:
        base_mean, _ = mean_ci95(series[(name, "base")])
        for config in ("cycles", "default", "mux"):
            mean, _ = mean_ci95(series[(name, config)])
            slowdown = (mean - base_mean) / base_mean
            # All profiled distributions within a few percent of base
            # (the paper's y-axis runs 90%..135%, with most points
            # hugging 100%).
            assert -0.02 < slowdown < 0.12, (name, config, slowdown)

    # Workload self-variance: wave5's base spread is nonzero (the
    # paper's motivation for dcpistats).
    wave_base = series[("wave5", "base")]
    assert max(wave_base) > min(wave_base)
