"""Extension: the global flow-constraint solver (paper section 6.1.4).

The paper reports "experimenting with a global constraint solver to
adjust the frequency estimates where they violate the flow
constraints"; :mod:`repro.core.solver` implements it.  This benchmark
measures the effect on the Figure 8 experiment: flow residuals drop to
(near) zero and the sample-weighted frequency-error distribution must
not regress -- quantifying whether the experiment was worth shipping.
"""

from conftest import profile_workload, run_once, write_result
from repro.core.analyze import AnalysisConfig
from repro.core.analyze import analyze_procedure
from repro.core.solver import flow_residual
from repro.core.validate import frequency_errors, weight_within
from repro.cpu.events import EventType
from repro.workloads.generator import generate_suite

SUITE = 8
BUDGET = 400_000
PERIOD = (60, 64)


def run_solver_experiment():
    points_plain = []
    points_solved = []
    residual_plain = 0.0
    residual_solved = 0.0
    for workload in generate_suite(count=SUITE, base_seed=300,
                                   rounds=200):
        result = profile_workload(workload, mode="cycles", seed=1,
                                  max_instructions=BUDGET,
                                  period=PERIOD, charge_overhead=False)
        profile = result.profile_for(workload.name)
        if profile is None:
            continue
        image = result.daemon.images[workload.name]
        machine = result.machine
        points_plain.extend(frequency_errors(machine, image, profile))
        points_solved.extend(frequency_errors(
            machine, image, profile,
            config=AnalysisConfig(global_solver=True)))
        for proc in image.procedures:
            if not profile.samples_for(proc, EventType.CYCLES):
                continue
            plain = analyze_procedure(image, proc, profile)
            solved = analyze_procedure(
                image, proc, profile,
                AnalysisConfig(global_solver=True))
            residual_plain += flow_residual(plain.cfg,
                                            plain.freq.classes,
                                            plain.freq)
            residual_solved += flow_residual(solved.cfg,
                                             solved.freq.classes,
                                             solved.freq)
    return points_plain, points_solved, residual_plain, residual_solved


def render(plain, solved, res_plain, res_solved):
    return "\n".join([
        "Extension: global flow-constraint solver (section 6.1.4)",
        "flow residual: local propagation=%.0f  global solver=%.0f"
        % (res_plain, res_solved),
        "weight within 10%%: local=%.1f%%  global=%.1f%%"
        % (weight_within(plain, 10) * 100,
           weight_within(solved, 10) * 100),
        "weight within 15%%: local=%.1f%%  global=%.1f%%"
        % (weight_within(plain, 15) * 100,
           weight_within(solved, 15) * 100),
    ])


def test_global_solver(benchmark):
    plain, solved, res_plain, res_solved = run_once(
        benchmark, run_solver_experiment)
    write_result("ext_global_solver", render(plain, solved, res_plain,
                                             res_solved))
    # The solver's whole point: flow constraints get (much) tighter.
    assert res_solved < res_plain * 0.5
    # And accuracy must not pay for it.
    assert (weight_within(solved, 15)
            >= weight_within(plain, 15) - 0.05)
