"""Figure 9: distribution of errors in edge frequencies.

Same methodology as Figure 8, but for CFG edge executions: edges never
receive samples directly, so their estimates come purely from the flow
constraints, and the paper expects them to be less accurate than the
block estimates (58% of edge executions within 10% in the paper).
Weights are true edge executions, as in the paper.
"""

from conftest import profile_workload, run_once, write_result
from repro.core.validate import BUCKETS, bucketize, edge_errors, weight_within
from repro.workloads.generator import generate_suite

SUITE = 10
BUDGET = 400_000
PERIOD = (60, 64)


def run_fig9():
    points = []
    for workload in generate_suite(count=SUITE, base_seed=300,
                                   rounds=200):
        result = profile_workload(workload, mode="cycles", seed=1,
                                  max_instructions=BUDGET,
                                  period=PERIOD)
        profile = result.profile_for(workload.name)
        if profile is None:
            continue
        image = result.daemon.images[workload.name]
        points.extend(edge_errors(result.machine, image, profile))
    return points


def render(points):
    histogram, total = bucketize(points)
    lines = ["Figure 9: distribution of errors in edge frequencies "
             "(weighted by edge executions)",
             "total weight %d edge executions" % total,
             "%8s %8s   %s" % ("bucket", "weight%", "by confidence")]
    for bucket in list(BUCKETS) + [BUCKETS[-1] + 10]:
        row = histogram.get(bucket, {})
        share = sum(row.values()) * 100.0
        detail = " ".join("%s=%.1f%%" % (conf, val * 100.0)
                          for conf, val in sorted(row.items()))
        label_text = ("<=%d%%" % bucket if bucket <= BUCKETS[0]
                      else ">+%d%%" % BUCKETS[-1] if bucket > BUCKETS[-1]
                      else "%+d%%" % bucket)
        lines.append("%8s %7.1f%%   %s" % (label_text, share, detail))
    for pct in (10, 15, 25):
        lines.append("within %2d%%: %.1f%%"
                     % (pct, weight_within(points, pct) * 100.0))
    return "\n".join(lines)


def test_fig9_edge_errors(benchmark):
    points = run_once(benchmark, run_fig9)
    write_result("fig9_edge_errors", render(points))

    assert len(points) > 80
    # Paper: 58% of edge executions within 10%.  Keep the same shape at
    # a relaxed level, and verify edges are (as the paper observes)
    # less accurate than the block estimates of Figure 8.
    assert weight_within(points, 10) > 0.35
    assert weight_within(points, 25) > 0.5
