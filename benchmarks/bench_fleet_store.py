"""Fleet store: size under retention policies, and merge throughput.

The paper's deployment stored per-machine profile databases and noted
(section 5.4/Table 5) that compact profiles stay orders of magnitude
smaller than the executables they describe.  ``repro.fleet`` promotes
that to fleet scale: many machines ship epoch deltas into one central
store with keep-recent-full / merge-downsample-old retention.  This
benchmark measures what that costs:

* store size for the same fleet traffic under no retention, lossless
  window compaction, and lossy (count-divided) compaction -- the
  size/fidelity trade EXPERIMENTS.md reports;
* delta-merge throughput of the central store (samples merged per
  CPU-second through ``FleetStore.ingest``), the number that bounds
  how many machines one store can absorb.

The machine simulation dominates wall time, so the fleet runs here are
small; sizes and sample counts are deterministic and land in the
schema-4 "fleet" result block for cross-run comparison.
"""

import os
import shutil
import tempfile
import time

from conftest import clamp_budget, record_fleet, run_once, write_result
from repro.fleet import (FleetConfig, FleetSession, FleetStore,
                         RetentionPolicy)

MACHINES = 3
EPOCHS = 8
EPOCH_BUDGET = 12_000

#: Retention policies measured against identical fleet traffic.
POLICIES = (
    ("none", None),
    ("lossless 4:2:1", RetentionPolicy(keep_full=4, window=2,
                                       count_divisor=1)),
    ("lossy 2:2:4", RetentionPolicy(keep_full=2, window=2,
                                    count_divisor=4)),
)


def _run_fleet(retention):
    """One deterministic fleet run into a fresh store; return facts."""
    tmp = tempfile.mkdtemp(prefix="dcpi-fleet-bench-")
    try:
        config = FleetConfig(
            machines=MACHINES, epochs=EPOCHS, seed=1,
            epoch_instructions=clamp_budget(EPOCH_BUDGET),
            retention=retention)
        store = FleetStore(os.path.join(tmp, "store"))
        started = time.process_time()
        result = FleetSession(config).run(store)
        cpu_s = time.process_time() - started
        stats = store.stats()
        assert not result.findings, [str(f) for f in result.findings]
        return {
            "stats": stats,
            "epochs_on_disk": len(store.epochs()),
            "cpu_s": cpu_s,
        }
    finally:
        shutil.rmtree(tmp)


def run_fleet_matrix():
    return [(label, _run_fleet(retention))
            for label, retention in POLICIES]


def render(rows):
    lines = ["Fleet store size vs retention policy "
             "(%d machines x %d epochs, identical traffic)"
             % (MACHINES, EPOCHS),
             "%-16s %8s %10s %10s %9s %8s"
             % ("policy", "epochs", "ingested", "stored", "residue",
                "bytes")]
    for label, row in rows:
        stats = row["stats"]
        lines.append("%-16s %8d %10d %10d %9d %8d"
                     % (label, row["epochs_on_disk"],
                        stats["samples_ingested"],
                        stats["stored_samples"],
                        stats["downsample_residue"],
                        stats["disk_bytes"]))
    return "\n".join(lines)


def test_fleet_store_size(benchmark):
    rows = run_once(benchmark, run_fleet_matrix)
    write_result("fleet_store_size", render(rows))
    by_label = dict(rows)
    none = by_label["none"]["stats"]
    lossless = by_label["lossless 4:2:1"]["stats"]
    lossy = by_label["lossy 2:2:4"]["stats"]
    # Identical traffic reached every store.
    assert (none["samples_ingested"] == lossless["samples_ingested"]
            == lossy["samples_ingested"])
    # Lossless compaction keeps every sample; lossy records its residue.
    assert lossless["stored_samples"] == none["stored_samples"]
    assert lossless["downsample_residue"] == 0
    assert (lossy["stored_samples"] + lossy["downsample_residue"]
            == none["stored_samples"])
    # Compaction strictly reduces both epoch count and disk footprint.
    assert (by_label["lossless 4:2:1"]["epochs_on_disk"]
            < by_label["none"]["epochs_on_disk"])
    assert lossy["disk_bytes"] < none["disk_bytes"]
    record_fleet({
        "machines": MACHINES,
        "epochs": EPOCHS,
        "samples_ingested": none["samples_ingested"],
        "deltas_applied": none["deltas_applied"],
        "duplicates_dropped": none["duplicates_dropped"],
        "downsample_residue": lossy["downsample_residue"],
        "disk_bytes_full": none["disk_bytes"],
        "disk_bytes_lossless": lossless["disk_bytes"],
        "disk_bytes_lossy": lossy["disk_bytes"],
    })


def test_fleet_merge_throughput(benchmark):
    """Replay one fleet's deltas into a fresh store, timed."""
    from repro.fleet.transport import DeltaTransport
    from repro.fleet.machine import FleetMachine, FleetConfig as FC

    config = FC(machines=MACHINES, epochs=EPOCHS, seed=1)
    machines = [
        FleetMachine("m%02d" % i, config.machine_workload(i),
                     config.machine_seed(i))
        for i in range(MACHINES)
    ]
    deltas = []
    budget = clamp_budget(EPOCH_BUDGET)
    for _ in range(EPOCHS):
        for machine in machines:
            deltas.append(machine.run_epoch(budget))

    def ingest_all():
        tmp = tempfile.mkdtemp(prefix="dcpi-fleet-merge-")
        try:
            store = FleetStore(os.path.join(tmp, "store"))
            transport = DeltaTransport()
            started = time.process_time()
            for delta in deltas:
                for delivery in transport.ship(delta):
                    store.ingest(delivery)
            cpu_s = time.process_time() - started
            return store.stats(), cpu_s
        finally:
            shutil.rmtree(tmp)

    stats, cpu_s = run_once(benchmark, ingest_all)
    total = stats["samples_ingested"]
    sps = total / cpu_s if cpu_s else 0.0
    dps = stats["deltas_applied"] / cpu_s if cpu_s else 0.0
    write_result(
        "fleet_merge_throughput",
        "Fleet store merge throughput\n"
        "%d deltas, %d samples in %.3f CPU-s\n"
        "%.0f samples/s, %.1f deltas/s"
        % (stats["deltas_applied"], total, cpu_s, sps, dps))
    assert stats["deltas_applied"] == len(deltas)
    assert total == sum(d.total_samples() for d in deltas)
    record_fleet({
        "merge_deltas": stats["deltas_applied"],
        "merge_samples": total,
        "merge_samples_per_sec": round(sps, 1),
    })
