"""Figure 7: estimating the frequency of the copy loop.

Regenerates the paper's S_i / M_i worksheet for the unrolled copy loop:
per instruction, the sample count S_i, the static minimum head time
M_i, the ratio for each issue point, and which ratios the clustering
heuristic averaged into the frequency estimate.  The estimate is then
compared against the true execution count from the simulator (the
paper compared 1527 estimated vs 1575.1 true -- about 3% low).
"""

from conftest import profile_workload, run_once, write_result
from repro.core.cfg import build_cfg
from repro.core.frequency import estimate_frequencies
from repro.core.schedule import schedule_cfg
from repro.cpu.events import EventType
from repro.workloads import mccalpin


def run_fig7():
    workload = mccalpin.build("assign", n=16384, iterations=2)
    result = profile_workload(workload, mode="cycles",
                              max_instructions=None, period=(60, 64))
    image = result.daemon.images["mccalpin"]
    profile = result.profile_for("mccalpin")
    proc = image.procedure("assign")
    samples = profile.samples_for(proc, EventType.CYCLES)
    period = profile.periods[EventType.CYCLES]

    cfg = build_cfg(proc)
    schedules = schedule_cfg(cfg)
    freq = estimate_frequencies(cfg, schedules, samples, period)

    loop_block = max(cfg.blocks,
                     key=lambda b: sum(samples.get(i.addr, 0)
                                       for i in b.instructions))
    rows = []
    for row in schedules[loop_block.index].rows:
        s = samples.get(row.inst.addr, 0)
        rows.append((row.inst, s, row.m,
                     s / row.m if row.m else None))
    estimate = freq.block_count(loop_block.index)
    true_count = None  # filled by caller from machine ground truth
    machine = result.machine
    true_count = max(machine.gt_count.get(i.addr, 0)
                     for i in loop_block.instructions)
    return rows, estimate, true_count, period


def render(rows, estimate, true_count, period):
    lines = ["Figure 7: estimating the frequency of the copy loop",
             "%-10s %-26s %8s %4s %10s"
             % ("Addr", "Instruction", "S_i", "M_i", "S_i/M_i")]
    for inst, s, m, ratio in rows:
        lines.append("%08x   %-26s %8d %4d %10s"
                     % (inst.addr, inst.disassemble(), s, m,
                        "%.1f" % ratio if ratio is not None else ""))
    lines.append("")
    lines.append("estimated executions (F*P) = %.0f" % estimate)
    lines.append("true executions            = %d" % true_count)
    lines.append("relative error             = %+.1f%%"
                 % ((estimate - true_count) / true_count * 100.0))
    return "\n".join(lines)


def test_fig7_frequency_estimate(benchmark):
    rows, estimate, true_count, period = run_once(benchmark, run_fig7)
    write_result("fig7_freq_estimate", render(rows, estimate, true_count,
                                              period))
    # The paper's worked example lands within ~3%; grant 15% for the
    # shorter scaled run.
    assert abs(estimate - true_count) / true_count < 0.15
    # The loop has multiple issue points, most of them stall-free.
    issue_points = [r for r in rows if r[2] > 0]
    assert len(issue_points) >= 5
