"""Figure 3: dcpistats across eight runs of the wave5 workload.

Regenerates the cross-run statistics table.  Paper shape: procedures
sorted by normalized range ((max-min)/sum); ``smooth_`` shows the
largest range of any significant procedure (its physically-indexed
board-cache conflicts depend on the per-run page mapping), while the
dominant ``parmvr_`` is stable.

The machine uses a 512 KB direct-mapped board cache so that smooth_'s
working set (~400 KB over four grids) mostly fits: page-mapping
collisions are then the exception that differentiates runs, exactly the
regime the paper describes.
"""

from conftest import profile_workload, run_once, write_result
from repro.cpu.config import CacheConfig, MachineConfig
from repro.tools.dcpistats import dcpistats, stats_rows
from repro.workloads import wave5

RUNS = 8
BUDGET = 400_000
PERIOD = (60, 64)


def wave5_machine_config():
    config = MachineConfig()
    config.board = CacheConfig(512 * 1024, 64, 1, 20)
    return config


def wave5_workload():
    return wave5.build(scale=20, rounds=10, smooth_pages=12)


def run_fig3():
    profile_sets = []
    for seed in range(1, RUNS + 1):
        result = profile_workload(
            wave5_workload(), mode="cycles", seed=seed,
            max_instructions=BUDGET, period=PERIOD,
            machine_config=wave5_machine_config())
        profile_sets.append(list(result.profiles.values()))
    return profile_sets


def test_fig3_dcpistats(benchmark):
    profile_sets = run_once(benchmark, run_fig3)
    text = dcpistats(profile_sets, limit=8)
    write_result("fig3_dcpistats", text)

    rows = stats_rows(profile_sets)
    by_name = {row["procedure"]: row for row in rows}
    # Only procedures holding at least 1% of samples matter (tiny ones
    # are pure sampling noise, as in the paper's listing).
    significant = [row for row in rows if row["sum_pct"] >= 1.0]

    smooth = by_name["smooth_"]
    others = [row for row in significant
              if row["procedure"] != "smooth_"]
    assert all(smooth["range_pct"] >= o["range_pct"] for o in others), \
        [(o["procedure"], round(o["range_pct"], 2)) for o in others]

    # parmvr_ dominates total samples and is stable (paper: 59%, 0.94%).
    parmvr = by_name["parmvr_"]
    assert parmvr["sum_pct"] == max(r["sum_pct"] for r in rows)
    assert parmvr["range_pct"] < smooth["range_pct"] / 3
