"""Table 2: workload inventory and base running times.

Reports, per workload, the platform (CPU count), a description, and the
mean base runtime in simulated cycles with a 95% confidence interval
over several runs -- the analog of the paper's seconds-per-run column.
"""

from conftest import baseline_workload, mean_ci95, run_once, write_result
from repro.workloads.registry import WORKLOADS, get_workload

SEEDS = (1, 2, 3)
BUDGET = 50_000


def run_table2():
    rows = []
    for name in WORKLOADS:
        runtimes = []
        workload = None
        for seed in SEEDS:
            workload = get_workload(name)
            result = baseline_workload(workload, seed=seed,
                                       max_instructions=BUDGET)
            runtimes.append(result.cycles)
        mean, ci = mean_ci95(runtimes)
        rows.append({
            "workload": name,
            "cpus": workload.num_cpus,
            "mean_cycles": mean,
            "ci": ci,
            "description": workload.description,
        })
    return rows


def render(rows):
    lines = ["Table 2: workloads (mean base runtime over %d seeded runs,"
             % len(SEEDS),
             "simulated cycles, 95%-confidence half-width)",
             "%-18s %4s %14s %10s  %s"
             % ("Workload", "CPUs", "Mean cycles", "+/-", "Description")]
    for row in rows:
        lines.append("%-18s %4d %14.0f %10.0f  %s"
                     % (row["workload"], row["cpus"], row["mean_cycles"],
                        row["ci"], row["description"][:60]))
    return "\n".join(lines)


def test_table2_workload_inventory(benchmark):
    rows = run_once(benchmark, run_table2)
    write_result("table2_workloads", render(rows))
    names = {row["workload"] for row in rows}
    # Uniprocessor and multiprocessor workloads both present (Table 2's
    # two panels).
    cpus = {row["cpus"] for row in rows}
    assert 1 in cpus and max(cpus) >= 4
    assert {"x11perf", "gcc", "wave5", "altavista", "dss",
            "timesharing"} <= names
    assert all(row["mean_cycles"] > 0 for row in rows)
