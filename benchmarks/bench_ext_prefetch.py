"""Extension: instruction prefetch and the Figure 10 outlier.

The paper explains its Figure 10 below-the-line outlier (fpppp) by
noting that the procedure's long basic blocks make instruction
prefetching especially effective: many IMISS events, small actual
penalty.  With the stream buffer enabled, our big-code workload (long
straight-line procedures) reproduces that exact phenomenology: IMISS
counts barely move while attributed I-cache stall cycles per miss
collapse -- the points slide below the correlation line.
"""

from conftest import profile_workload, run_once, write_result
from repro.core.validate import icache_correlation_points
from repro.cpu.config import MachineConfig
from repro.workloads import bigcode

BUDGET = 600_000
PERIOD = (60, 64)


def _run(istream_entries):
    config = MachineConfig()
    config.istream_entries = istream_entries
    workload = bigcode.BigCode(procedures=10, min_insts=300,
                               max_insts=1200, rounds=60)
    result = profile_workload(workload, mode="default",
                              max_instructions=BUDGET, period=PERIOD,
                              event_period=16, machine_config=config)
    image = result.daemon.images[workload.name]
    profile = result.profile_for(workload.name)
    points = [p for p in icache_correlation_points(
        result.machine, image, profile)
        if p["procedure"].startswith("leaf")]
    total_imiss = sum(p["imiss"] for p in points)
    total_stall = sum(p["hi"] for p in points)
    return result.cycles, total_imiss, total_stall


def run_prefetch():
    off = _run(0)
    on = _run(4)
    return {"off": off, "on": on}


def render(data):
    rows = []
    for label in ("off", "on"):
        cycles, imiss, stall = data[label]
        per_miss = stall / imiss if imiss else 0.0
        rows.append("prefetch %-3s: cycles=%9d  IMISS=%7d  "
                    "attributed stall=%9.0f  (%.2f cyc/miss)"
                    % (label, cycles, imiss, stall, per_miss))
    return "\n".join(
        ["Extension: instruction stream buffer (Figure 10's fpppp "
         "outlier mechanism)"] + rows)


def test_prefetch_reproduces_fpppp_outlier(benchmark):
    data = run_once(benchmark, run_prefetch)
    write_result("ext_prefetch", render(data))
    cycles_off, imiss_off, stall_off = data["off"]
    cycles_on, imiss_on, stall_on = data["on"]
    # IMISS events barely change; the penalty per miss collapses; the
    # workload gets faster.
    assert imiss_on > imiss_off * 0.8
    per_miss_off = stall_off / imiss_off
    per_miss_on = stall_on / max(1, imiss_on)
    assert per_miss_on < per_miss_off * 0.6
    assert cycles_on < cycles_off
