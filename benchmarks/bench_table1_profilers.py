"""Table 1: comparison of profiling systems.

Measures overhead / scope / grain / stall quality for the four baseline
profilers and for DCPI itself, on the same workload with identical
seeds.  The paper's qualitative ranking must hold: instrumentation
(pixie, gprof's instrumented part) is the most expensive, the samplers
are cheap, and only DCPI combines low overhead with system scope and
accurate stall attribution.
"""

from conftest import (baseline_workload, profile_workload, run_once,
                      write_result)
from repro.baselines import (ClockProfiler, GprofProfiler, IprobeProfiler,
                             PixieProfiler)
from repro.cpu.config import MachineConfig
from repro.workloads import mccalpin


def _dcpi_row():
    workload = mccalpin.build("assign", n=2048, iterations=3)
    base = baseline_workload(workload, max_instructions=None)
    prof = profile_workload(workload, max_instructions=None)
    overhead = (prof.cycles - base.cycles) / base.cycles
    return {
        "system": "DCPI (this work)",
        "overhead_pct": overhead * 100.0,
        "scope": "Sys",
        "grain": "inst time",
        "stalls": "accurate",
    }


def run_table1():
    config = MachineConfig()
    workload = mccalpin.build("assign", n=2048, iterations=3)
    rows = []
    for profiler in (PixieProfiler(config), GprofProfiler(config),
                     ClockProfiler(config), IprobeProfiler(config)):
        rows.append(profiler.profile(workload).row())
    rows.append(_dcpi_row())
    return rows


def render(rows):
    lines = ["Table 1: profiling systems (measured on mccalpin-assign)",
             "%-18s %10s %6s %-12s %s"
             % ("System", "Overhead%", "Scope", "Grain", "Stalls")]
    for row in rows:
        lines.append("%-18s %9.2f%% %6s %-12s %s"
                     % (row["system"], row["overhead_pct"], row["scope"],
                        row["grain"], row["stalls"]))
    return "\n".join(lines)


def test_table1_profiler_comparison(benchmark):
    rows = run_once(benchmark, run_table1)
    write_result("table1_profilers", render(rows))
    by_name = {row["system"]: row for row in rows}
    dcpi = by_name["DCPI (this work)"]
    # The paper's headline: DCPI is low-overhead (1-3% at the full-rate
    # period) while instrumentation-based pixie is high-overhead.
    assert dcpi["overhead_pct"] < 5.0
    assert by_name["pixie"]["overhead_pct"] > 3 * dcpi["overhead_pct"]
    # Only DCPI offers system scope AND accurate stalls.
    accurate_sys = [r for r in rows
                    if r["scope"] == "Sys" and r["stalls"] == "accurate"]
    assert [r["system"] for r in accurate_sys] == ["DCPI (this work)"]
