"""Figure 8: distribution of errors in instruction frequencies.

Runs the generated-program suite under dense sampling, estimates
per-instruction execution counts from the profiles, and compares them
against the simulator's exact counts (the role dcpix played in the
paper), weighting each instruction by its CYCLES samples.

Paper shape: the bulk of the weight lands in the central buckets (73%
within 5%, 87% within 10%, 92% within 15% in the paper), and samples
that miss badly are predominantly low-confidence.  Also reruns the
paper's section 6.2 single-run vs many-run comparison: aggregating
profiles over more runs tightens the distribution.
"""

from conftest import profile_workload, run_once, write_result
from repro.core.validate import (BUCKETS, bucketize, frequency_errors,
                                 weight_within)
from repro.cpu.events import EventType
from repro.workloads.generator import generate_suite

SUITE = 10
BUDGET = 400_000
PERIOD = (60, 64)
MULTI_RUNS = 3


def collect_points(runs=1):
    """Run the suite; aggregate profiles over *runs* seeds; compare."""
    points = []
    for workload in generate_suite(count=SUITE, base_seed=300, rounds=200):
        merged = None
        machine = None
        image = None
        for run in range(runs):
            result = profile_workload(workload, mode="cycles",
                                      seed=1 + run,
                                      max_instructions=BUDGET,
                                      period=PERIOD)
            profile = result.profile_for(workload.name)
            if profile is None:
                continue
            if merged is None:
                merged = profile
                machine = result.machine
                image = result.daemon.images[workload.name]
            else:
                # Generated programs are deterministic, so every run
                # executes identically; link addresses also repeat.
                # Merging the sample counts and dividing by the number
                # of runs therefore yields a denser profile of the
                # *same* execution, comparable against run 1's ground
                # truth.
                for offset, count in profile.counts[
                        EventType.CYCLES].items():
                    merged.add(EventType.CYCLES, offset, count)
        if merged is None:
            continue
        if runs > 1:
            scaled = {}
            for offset, count in merged.counts[EventType.CYCLES].items():
                scaled[offset] = count / runs
            merged.counts[EventType.CYCLES] = scaled
        points.extend(frequency_errors(machine, image, merged))
    return points


def run_fig8():
    single = collect_points(runs=1)
    multi = collect_points(runs=MULTI_RUNS)
    return single, multi


def render(single, multi):
    lines = ["Figure 8: distribution of errors in instruction "
             "frequencies (weighted by CYCLES samples)"]
    for label, points in (("1 run", single),
                          ("%d runs" % MULTI_RUNS, multi)):
        histogram, total = bucketize(points)
        lines.append("")
        lines.append("[%s]  total weight %d samples" % (label, total))
        lines.append("%8s %8s   %s" % ("bucket", "weight%",
                                       "by confidence"))
        for bucket in list(BUCKETS) + [BUCKETS[-1] + 10]:
            row = histogram.get(bucket, {})
            share = sum(row.values()) * 100.0
            detail = " ".join("%s=%.1f%%" % (conf, val * 100.0)
                              for conf, val in sorted(row.items()))
            label_text = ("<=%d%%" % bucket if bucket <= BUCKETS[0]
                          else ">+%d%%" % BUCKETS[-1]
                          if bucket > BUCKETS[-1]
                          else "%+d%%" % bucket)
            lines.append("%8s %7.1f%%   %s" % (label_text, share, detail))
        for pct in (5, 10, 15):
            lines.append("within %2d%%: %.1f%%"
                         % (pct, weight_within(points, pct) * 100.0))
    return "\n".join(lines)


def test_fig8_frequency_errors(benchmark):
    single, multi = run_once(benchmark, run_fig8)
    write_result("fig8_freq_errors", render(single, multi))

    assert len(single) > 100  # enough instructions to be meaningful
    # Paper: 73% within 5%, 87% within 10%, 92% within 15%.  Our scaled
    # runs gather far fewer samples per instruction, so require the
    # same shape at relaxed levels.
    assert weight_within(single, 10) > 0.5
    assert weight_within(single, 15) > 0.6
    assert weight_within(single, 45) > 0.85
    # Section 6.2: aggregating runs tightens the estimates.
    assert (weight_within(multi, 10)
            >= weight_within(single, 10) - 0.02)
