"""Simulator throughput: the block-level issue cache, on vs off.

Not a figure from the paper -- this benchmark gates the simulator's own
speed, the way Table 3 gates the profiler's overhead.  For each
workload it runs the same profiled execution twice, with the fast path
(predecode + block-level issue cache, :mod:`repro.cpu.fastpath`)
forced on and forced off, and reports instructions per wall-clock
second and the resulting speedup multiplier.

Two properties are asserted:

* the fast path is *sound*: both runs produce byte-identical profile
  databases, event-sample totals, and ground-truth attributions
  (the same fingerprint ``dcpiab`` checks nightly);
* the fast path is *worth having*: the multiplier clears a
  conservative floor on every workload where straight-line replay
  applies (streaming workloads that blacklist themselves are reported
  but not gated).

The recorded ``instructions_per_sec`` metric feeds the CI baseline
compare (``dcpibench compare --ips-threshold``).
"""

import time

from conftest import QUICK, clamp_budget, profile_workload, write_result

from repro.cpu.config import MachineConfig
from repro.tools.abcheck import fingerprint
from repro.workloads.registry import get_workload

WORKLOADS = ("gcc", "wave5", "timesharing")
BUDGET = 200_000
SEED = 1

#: Conservative speedup floor asserted per workload (measured
#: multipliers are well above this; CI machines vary).  Quick-mode
#: budgets amortize much less of the variant-compile warmup, so the
#: quick floor only guards against the cache making things *worse*.
MIN_SPEEDUP = 1.05
QUICK_MIN_SPEEDUP = 0.75


def _timed_run(name, fastpath):
    workload = get_workload(name)
    config = MachineConfig(num_cpus=workload.num_cpus)
    config.fastpath = fastpath
    # CPU time, not wall: bench workers run in parallel and contend
    # for cores; the speedup ratio must not depend on neighbors.
    started = time.process_time()
    result = profile_workload(workload, seed=SEED,
                              max_instructions=BUDGET,
                              machine_config=config)
    elapsed = time.process_time() - started
    return result, elapsed


def run_throughput():
    rows = []
    for name in WORKLOADS:
        fast, fast_cpu = _timed_run(name, True)
        slow, slow_cpu = _timed_run(name, False)
        instructions = fast.machine.instructions_retired
        snap = fast.machine.fastpath.snapshot()
        rows.append({
            "workload": name,
            "instructions": instructions,
            "slow_ips": instructions / slow_cpu,
            "fast_ips": instructions / fast_cpu,
            "speedup": slow_cpu / fast_cpu,
            "replay_fraction": (snap["replayed_instructions"]
                                / max(instructions, 1)),
            "identical": fingerprint(fast) == fingerprint(slow),
        })
    return rows


def render(rows):
    lines = ["Simulator throughput: block issue cache on vs off",
             "(budget %d instructions, seed %d)"
             % (clamp_budget(BUDGET), SEED),
             "%-14s %12s %12s %8s %8s %10s"
             % ("Workload", "slow i/s", "fast i/s", "speedup",
                "replay%", "identical")]
    for row in rows:
        lines.append("%-14s %12.0f %12.0f %7.2fx %7.0f%% %10s"
                     % (row["workload"], row["slow_ips"],
                        row["fast_ips"], row["speedup"],
                        row["replay_fraction"] * 100,
                        "yes" if row["identical"] else "NO"))
    return "\n".join(lines)


def test_sim_throughput(benchmark):
    rows = benchmark.pedantic(run_throughput, rounds=1, iterations=1,
                              warmup_rounds=0)
    write_result("sim_throughput", render(rows))
    for row in rows:
        # Soundness: the fast path must change nothing observable.
        assert row["identical"], row["workload"]
        # The issue cache must actually engage on these workloads...
        assert row["replay_fraction"] > 0.5, row
        # ...and clear the conservative throughput floor.
        floor = QUICK_MIN_SPEEDUP if QUICK else MIN_SPEEDUP
        assert row["speedup"] > floor, row
