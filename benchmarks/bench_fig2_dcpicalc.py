"""Figure 2: dcpicalc analysis of the McCalpin copy loop.

Regenerates the per-instruction listing for the paper's exact unrolled
copy loop: best-case vs actual CPI, dual-issue annotations, and 'dwD'
culprit bubbles (D-cache miss / write-buffer overflow / DTB miss) on
the stalled stores, with the culprit column naming the feeding load.
"""

from conftest import profile_workload, run_once, write_result
from repro.core import analyze_procedure
from repro.tools.dcpicalc import dcpicalc
from repro.workloads import mccalpin


def run_fig2():
    workload = mccalpin.build("assign", n=16384, iterations=2)
    result = profile_workload(workload, mode="default",
                              max_instructions=None,
                              period=(120, 128))
    image = result.daemon.images["mccalpin"]
    profile = result.profile_for("mccalpin")
    analysis = analyze_procedure(image, "assign", profile)
    text = dcpicalc(image, "assign", profile, analysis=analysis)
    return analysis, text


def test_fig2_dcpicalc(benchmark):
    analysis, text = run_once(benchmark, run_fig2)
    write_result("fig2_dcpicalc", text)

    # Paper: best-case 0.62 CPI for this loop shape; actual far higher
    # because the loop drives the memory system at full speed.
    assert abs(analysis.best_case_cpi - 0.62) < 0.08
    assert analysis.actual_cpi > 2.0 * analysis.best_case_cpi

    # The hottest instruction is a store whose culprits include the
    # paper's 'd', 'w' and 'D' bubbles.
    hot = max(analysis.instructions, key=lambda r: r.samples)
    assert hot.inst.is_store
    reasons = {c.reason for c in hot.culprits}
    assert {"dcache", "wb", "dtb"} <= reasons
    dcache = next(c for c in hot.culprits if c.reason == "dcache")
    assert analysis.by_addr[dcache.source_addr].inst.is_load

    # Listing artifacts from the paper's figure.
    assert "(dual issue)" in text
    assert "write-buffer overflow" in text
