"""Table 3: overall slowdown (percent) per workload and configuration.

For each workload, runs a base (unprofiled) execution and one execution
per collection configuration -- ``cycles`` (one counter), ``default``
(cycles + imiss) and ``mux`` (cycles + multiplexed imiss/dmiss/
branchmp) -- on identical seeds, several seeds each.  The slowdown is
measured end-to-end on the simulated machine, with handler cycles
charged at the paper's 62K-cycle-period-equivalent rate, plus the
daemon's amortized share.

Paper shape to reproduce: overhead is a few percent or less everywhere,
``default`` and ``mux`` cost slightly more than ``cycles``, and gcc is
the most expensive workload (hash evictions).
"""

from conftest import (FAST_PERIOD, baseline_workload, mean_ci95,
                      profile_workload, run_once, write_result)
from repro.collect.driver import PAPER_MEAN_PERIOD
from repro.workloads.registry import get_workload

WORKLOADS = ("specint95", "specfp95", "x11perf", "mccalpin-assign",
             "mccalpin-scale", "wave5", "gcc", "altavista", "dss",
             "parallel-specfp")
MODES = ("cycles", "default", "mux")
SEEDS = (1, 2, 3)
BUDGET = 50_000


def _adjusted_cycles(result):
    """Machine cycles plus the daemon's amortized, period-scaled cost."""
    scale = result.driver.cost_scale
    cpus = len(result.machine.cores)
    return result.cycles + result.daemon.cycles * scale / cpus


def run_table3():
    rows = []
    for name in WORKLOADS:
        row = {"workload": name}
        for mode in MODES:
            overheads = []
            for seed in SEEDS:
                base = baseline_workload(get_workload(name), seed=seed,
                                         max_instructions=BUDGET)
                prof = profile_workload(get_workload(name), mode=mode,
                                        seed=seed,
                                        max_instructions=BUDGET)
                overheads.append(
                    (_adjusted_cycles(prof) - base.cycles)
                    / base.cycles * 100.0)
            row[mode] = mean_ci95(overheads)
        rows.append(row)
    return rows


def render(rows):
    lines = ["Table 3: overall slowdown (percent), charged at the",
             "paper-equivalent sampling rate (mean period %d cycles"
             % PAPER_MEAN_PERIOD,
             "after scaling from the simulated %s-cycle period)"
             % (FAST_PERIOD,),
             "%-18s %14s %14s %14s"
             % ("Workload", "cycles", "default", "mux")]
    for row in rows:
        cells = ["%5.2f +/-%4.2f" % row[mode] for mode in MODES]
        lines.append("%-18s %14s %14s %14s"
                     % (row["workload"], *cells))
    return "\n".join(lines)


def test_table3_overhead(benchmark):
    rows = run_once(benchmark, run_table3)
    write_result("table3_overhead", render(rows))
    by_name = {row["workload"]: row for row in rows}
    # Overhead is small everywhere (the paper: 1-3%; allow <6% for the
    # scaled simulation).
    for row in rows:
        for mode in MODES:
            assert -1.0 < row[mode][0] < 6.0, (row["workload"], mode)
    # gcc (high eviction rate) costs more than AltaVista (lowest).
    assert (by_name["gcc"]["default"][0]
            > by_name["altavista"]["default"][0])
    # Monitoring more events costs at least as much as cycles-only,
    # on average across workloads.
    avg = {mode: sum(r[mode][0] for r in rows) / len(rows)
           for mode in MODES}
    assert avg["mux"] >= avg["cycles"] - 0.3
