"""Table 5: daemon space overhead and profile-database disk usage.

Per workload: uptime (simulated cycles), the daemon's average/peak
resident memory (modelled from its real data structures), kernel
buffer memory, and the on-disk profile size in both database formats
(raw vs compact -- the paper's ~3x compression claim).
"""

import os
import shutil
import tempfile

from conftest import profile_workload, run_once, write_result
from repro.collect.database import FORMAT_RAW, ProfileDatabase
from repro.workloads.registry import get_workload

WORKLOADS = ("x11perf", "gcc", "wave5", "mccalpin-assign", "altavista",
             "timesharing")
BUDGET = 60_000


def run_table5():
    rows = []
    for name in WORKLOADS:
        result = profile_workload(get_workload(name), mode="default",
                                  max_instructions=BUDGET)
        daemon_stats = result.daemon.stats()
        tmp = tempfile.mkdtemp(prefix="dcpi-table5-")
        try:
            compact_db = ProfileDatabase(os.path.join(tmp, "compact"))
            result.daemon.merge_to_disk(compact_db)
            raw_db = ProfileDatabase(os.path.join(tmp, "raw"),
                                     fmt=FORMAT_RAW)
            result.daemon.merge_to_disk(raw_db)
            compact_bytes = compact_db.disk_bytes()
            raw_bytes = raw_db.disk_bytes()
        finally:
            shutil.rmtree(tmp)
        rows.append({
            "workload": name,
            "uptime": result.cycles,
            "resident_kb": daemon_stats["resident_bytes"] / 1024.0,
            "peak_kb": daemon_stats["peak_resident_bytes"] / 1024.0,
            "kernel_kb":
                result.driver.kernel_memory_bytes() / 1024.0,
            "disk_compact": compact_bytes,
            "disk_raw": raw_bytes,
        })
    return rows


def render(rows):
    lines = ["Table 5: daemon space overhead (default configuration)",
             "%-18s %10s %10s %10s %9s %9s %9s %6s"
             % ("Workload", "uptime", "res KB", "peak KB", "kern KB",
                "disk(c)", "disk(raw)", "ratio")]
    for row in rows:
        ratio = (row["disk_raw"] / row["disk_compact"]
                 if row["disk_compact"] else 0.0)
        lines.append("%-18s %10d %10.0f %10.0f %9.0f %9d %9d %6.2f"
                     % (row["workload"], row["uptime"],
                        row["resident_kb"], row["peak_kb"],
                        row["kernel_kb"], row["disk_compact"],
                        row["disk_raw"], ratio))
    return "\n".join(lines)


def test_table5_space(benchmark):
    rows = run_once(benchmark, run_table5)
    write_result("table5_space", render(rows))
    for row in rows:
        # Daemon memory is modest (paper: a few MB) and peak >= avg.
        assert 1024 <= row["resident_kb"] <= 20_000
        assert row["peak_kb"] >= row["resident_kb"] * 0.999
        # Kernel memory is the fixed 512KB/CPU of section 5.3.
        assert row["kernel_kb"] % 512 == 0
        # Profiles are small, and the compact format wins.
        assert row["disk_compact"] < row["disk_raw"]
    # The paper's "order of magnitude smaller than executables" claim:
    # gcc's profile is far smaller than its (simulated) text size.
    gcc_row = next(r for r in rows if r["workload"] == "gcc")
    assert gcc_row["disk_compact"] < 200_000
