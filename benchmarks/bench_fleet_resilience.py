"""Fleet resilience: concurrent sharded ingest vs the single lock,
and exact loss accounting under transport faults.

PR 9 made the fleet store shardable (machine-hash partitioned, one
advisory lock per shard) and gave the ship path a bounded retry spool
with seeded backoff.  This benchmark measures both claims:

* **Concurrent ingest scales past the single lock.**  Four real OS
  processes ingest the same delta corpus, once into a single-shard
  store (every writer contends on one ``INGEST.lock``, riding the
  bounded seeded-backoff retry) and once into a 4-shard store (writers
  mostly land on distinct shards).  The sharded layout must be
  byte-identical to the serial merge *and* measurably faster than the
  single-lock baseline.
* **Faults lose nothing silently.**  A fleet session run under seeded
  ship timeouts + drops must balance the conservation identity
  (stored + transit-lost + spool-dropped == shipped) exactly, with the
  retry/backoff counts reproducing run over run.

Deterministic facts (sample conservation, retry counts, fault losses)
land in the schema-7 "resilience" result block for cross-run
comparison; wall-clock throughputs are informational.
"""

import multiprocessing
import os
import shutil
import tempfile
import time

from conftest import (clamp_budget, record_resilience, run_once,
                      write_result)
from repro.faults import FaultPlan, FaultSpec
from repro.fleet import (FleetConfig, FleetMachine, FleetSession,
                         FleetStore, IngestRetry)

MACHINES = 4
EPOCHS = 6
EPOCH_BUDGET = 8_000
WORKERS = 4

#: Generous bounded retry for the contended single-lock baseline: the
#: point is to measure the contention cost, not to time out under it.
RETRY = IngestRetry(attempts=16, base_ms=1.0, cap_ms=30.0, seed=0)


def _build_corpus():
    """Deterministic per-machine delta streams (machine-major)."""
    config = FleetConfig(machines=MACHINES, epochs=EPOCHS, seed=31)
    machines = [
        FleetMachine("m%02d" % i, config.machine_workload(i),
                     config.machine_seed(i))
        for i in range(MACHINES)
    ]
    budget = clamp_budget(EPOCH_BUDGET)
    streams = [[machine.run_epoch(budget) for _ in range(EPOCHS)]
               for machine in machines]
    shipped = sum(machine.shipped_samples for machine in machines)
    return streams, shipped


def _ingest_worker(root, deltas):
    store = FleetStore(root, retry=RETRY)
    for delta in deltas:
        store.ingest(delta)


def _concurrent_ingest(root, streams, shards):
    """Ingest every stream from its own OS process; return wall s."""
    FleetStore(root, shards=shards, retry=RETRY)  # create the layout
    ctx = multiprocessing.get_context("fork")
    workers = [ctx.Process(target=_ingest_worker, args=(root, stream))
               for stream in streams]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=300)
    elapsed = time.perf_counter() - started
    assert all(worker.exitcode == 0 for worker in workers)
    return elapsed


def _store_bytes(store):
    return store.merged().encode_all()


def test_concurrent_sharded_ingest_outperforms_single_lock(benchmark):
    streams, shipped = _build_corpus()
    deltas = sum(len(stream) for stream in streams)
    tmp = tempfile.mkdtemp(prefix="dcpi-resilience-bench-")
    try:
        serial = FleetStore(os.path.join(tmp, "serial"))
        for stream in streams:
            for delta in stream:
                serial.ingest(delta)

        def contended():
            single_s = _concurrent_ingest(
                os.path.join(tmp, "single"), streams, shards=1)
            sharded_s = _concurrent_ingest(
                os.path.join(tmp, "sharded"), streams, shards=4)
            return single_s, sharded_s

        single_s, sharded_s = run_once(benchmark, contended)
        single = FleetStore(os.path.join(tmp, "single"))
        sharded = FleetStore(os.path.join(tmp, "sharded"))
        oracle = _store_bytes(serial)
        # The tentpole identity: concurrency changes nothing durable.
        assert _store_bytes(single) == oracle
        assert _store_bytes(sharded) == oracle
        assert single.total_samples() == shipped
        assert sharded.total_samples() == shipped
        speedup = single_s / sharded_s if sharded_s else 0.0
        # Sharding must beat everyone-behind-one-lock, measurably.
        assert speedup > 1.0, (
            "4-shard concurrent ingest (%.3fs) not faster than the "
            "single-lock baseline (%.3fs)" % (sharded_s, single_s))
        lock_retries = single.stats()["lock_retries"]
        record_resilience({
            "samples_conserved": 1,
            "corpus_deltas": deltas,
            "corpus_samples": shipped,
            "single_lock_wall_s": round(single_s, 4),
            "sharded_wall_s": round(sharded_s, 4),
            "concurrent_speedup": round(speedup, 3),
            "single_lock_retries": lock_retries,
            "single_deltas_per_sec": round(deltas / single_s, 1),
            "sharded_deltas_per_sec": round(deltas / sharded_s, 1),
        })
        write_result("fleet_resilience_ingest", "\n".join([
            "Concurrent ingest, %d worker processes, %d deltas "
            "(%d samples)" % (WORKERS, deltas, shipped),
            "  single-lock store : %.3fs wall (%d lock retries)"
            % (single_s, lock_retries),
            "  4-shard store     : %.3fs wall" % sharded_s,
            "  speedup           : %.2fx (byte-identical merges)"
            % speedup,
        ]))
    finally:
        shutil.rmtree(tmp)


def test_faulted_fleet_conserves_and_accounts():
    plan = FaultPlan(specs=(
        FaultSpec("fleet.ship", "transient", hits=(2, 5)),
        FaultSpec("fleet.ship", "drop", hits=(7,)),
    ), seed=9)
    tmp = tempfile.mkdtemp(prefix="dcpi-resilience-fault-")
    try:
        config = FleetConfig(
            machines=2, epochs=3, seed=9,
            epoch_instructions=clamp_budget(EPOCH_BUDGET),
            faults=plan)
        result = FleetSession(config).run(os.path.join(tmp, "store"))
        assert not result.findings, [str(f) for f in result.findings]
        resilience = result.resilience
        transport = result.transport_stats
        record_resilience({
            "fault_shipped_samples": result.shipped_samples(),
            "fault_stored_samples": result.store.total_samples(),
            "transit_lost_samples": transport["lost_samples"],
            "spool_dropped_samples":
                resilience["spool_dropped_samples"],
            "ship_retries": resilience["ship_retries"],
            "backoff_ms": resilience["backoff_ms"],
        })
        write_result("fleet_resilience_faults", "\n".join([
            "Faulted fleet (2 timeouts + 1 drop, seeded):",
            "  shipped %d = stored %d + transit-lost %d + "
            "spool-dropped %d"
            % (result.shipped_samples(),
               result.store.total_samples(),
               transport["lost_samples"],
               resilience["spool_dropped_samples"]),
            "  ship retries %d, modelled backoff %.1fms"
            % (resilience["ship_retries"], resilience["backoff_ms"]),
        ]))
    finally:
        shutil.rmtree(tmp)
