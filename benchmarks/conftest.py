"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures: it
runs the experiment (timed via pytest-benchmark), renders the same rows
or series the paper reports, writes them to ``benchmarks/results/``,
and asserts the qualitative shape the paper claims (who wins, by
roughly what factor).  Absolute numbers differ -- the substrate is a
simulator, not the authors' AlphaStations -- as documented in
EXPERIMENTS.md.

Besides the historical free-text ``.txt`` renderings, this conftest is
the machine-readable half of the ``dcpibench`` harness
(:mod:`repro.tools.benchrunner`): it records every profiling session a
benchmark runs, captures per-test outcomes and durations, and writes a
``BENCH_<name>.json`` result per benchmark module at session end (see
EXPERIMENTS.md for the schema).  Two environment knobs drive it:

* ``DCPIBENCH_MAX_INSTRUCTIONS`` -- clamp every explicit instruction
  budget (quick/CI mode); run-to-completion runs are left alone.
* ``DCPIBENCH_RESULTS`` -- where to write results (default
  ``benchmarks/results``).
"""

import json
import math
import os
import platform
import time

import pytest

from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.obs import derive, merge_metrics

RESULTS_DIR = os.environ.get(
    "DCPIBENCH_RESULTS",
    os.path.join(os.path.dirname(__file__), "results"))

#: Default scaled sampling configuration (see DESIGN.md substitution
#: table): mean period 248 cycles vs the paper's 62K; overhead numbers
#: are charged at the 62K-equivalent rate via the driver's cost scale.
FAST_PERIOD = (240, 256)
EVENT_PERIOD = 64

#: Schema version stamped into every BENCH_*.json result.
#: 2: added the "obs" block (repro.obs derived self-monitoring metrics).
#: 3: added per-session "cpu_s" and the "instructions_per_sec" metric
#:    (simulator throughput in instructions per CPU-second; the
#:    fast-path CI gate compares it), plus the "fastpath" flag
#:    recording whether the issue cache was on.
#: 4: added the optional "fleet" block (repro.fleet store metrics --
#:    ingest/merge throughput, store size under retention policies --
#:    recorded via record_fleet()).  Purely additive: ``dcpibench
#:    compare`` accepts baselines exactly one schema version older.
#: 5: added the optional "ctx" block (repro.ctx request-attribution
#:    metrics -- per-class sample counts, context-table accounting,
#:    enable overhead -- recorded via record_ctx()).  Additive again.
#: 6: added the optional "opt" block (repro.opt profile-guided
#:    optimizer metrics -- realized speedup per workload with the
#:    layout/schedule/split contribution split, acceptance flags --
#:    recorded via record_opt()).  Additive again.
#: 7: added the optional "resilience" block (fleet resilience metrics
#:    -- concurrent vs serial ingest throughput, shard lock retries,
#:    spool/backoff loss accounting under faults -- recorded via
#:    record_resilience()).  Additive again.
BENCH_SCHEMA = 7

QUICK = os.environ.get("DCPIBENCH_QUICK") == "1"
_CLAMP = int(os.environ.get("DCPIBENCH_MAX_INSTRUCTIONS", "0")) or None

# Per-session state feeding the JSON results: which test is running,
# every profiling session it executed, per-test outcomes, and the .txt
# rendering each module produced.
_CURRENT = {"nodeid": None}
_SESSIONS = []
_REPORTS = {}
_TEXTS = {}
_FLEET = {}
_CTX = {}
_OPT = {}
_RESILIENCE = {}


def clamp_budget(requested):
    """Apply the quick-mode instruction-budget clamp, if any.

    ``None`` budgets mean "run the workload to completion" and are not
    clamped: those workloads are small by construction, and truncating
    them would change what the benchmark measures.
    """
    if _CLAMP is None or requested is None:
        return requested
    return min(requested, _CLAMP)


def _module_stem(nodeid):
    """'.../bench_table3_overhead.py::test' -> 'table3_overhead'."""
    path = (nodeid or "").split("::", 1)[0]
    stem = os.path.basename(path)
    if stem.endswith(".py"):
        stem = stem[:-3]
    if stem.startswith("bench_"):
        stem = stem[len("bench_"):]
    return stem or "unknown"


def write_result(name, text):
    """Persist rendered output under benchmarks/results/<name>.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    print("\n" + text)
    _TEXTS.setdefault(_module_stem(_CURRENT["nodeid"]), []).append(
        os.path.basename(path))
    return path


def record_fleet(metrics):
    """Merge *metrics* into this module's "fleet" result block.

    Fleet benchmarks (bench_fleet_store.py) call this with flat
    numeric facts -- store bytes per retention policy, merge
    throughput -- which land under the payload's schema-4 "fleet" key.
    Deterministic counts there are compared between runs by
    ``dcpibench compare``; timing-derived rates are informational.
    """
    _FLEET.setdefault(_module_stem(_CURRENT["nodeid"]), {}).update(metrics)


def record_ctx(metrics):
    """Merge *metrics* into this module's "ctx" result block.

    Context benchmarks (bench_ctx_traffic.py) call this with flat
    numeric facts -- per-class sample counts, context-table interning
    and eviction totals, the measured enable overhead -- which land
    under the payload's schema-5 "ctx" key.  Deterministic counts are
    compared between runs by ``dcpibench compare``; timing-derived
    overhead percentages are informational.
    """
    _CTX.setdefault(_module_stem(_CURRENT["nodeid"]), {}).update(metrics)


def record_opt(metrics):
    """Merge *metrics* into this module's "opt" result block.

    Optimizer benchmarks (bench_opt_speedup.py) call this with flat
    numeric facts -- per-workload realized speedup, the per-pass
    contribution split, acceptance flags -- which land under the
    payload's schema-6 "opt" key.  The simulator is deterministic, so
    speedups are compared between identically-configured runs by
    ``dcpibench compare`` (with a small float slack).
    """
    _OPT.setdefault(_module_stem(_CURRENT["nodeid"]), {}).update(metrics)


def record_resilience(metrics):
    """Merge *metrics* into this module's "resilience" result block.

    Resilience benchmarks (bench_fleet_resilience.py) call this with
    flat numeric facts -- serial vs concurrent sharded ingest
    throughput and speedup, lock retry counts, fault-run loss
    accounting (spool drops, transit losses, samples conserved) --
    which land under the payload's schema-7 "resilience" key.
    Deterministic counts are compared between runs by ``dcpibench
    compare``; timing-derived throughputs are warn-only.
    """
    _RESILIENCE.setdefault(
        _module_stem(_CURRENT["nodeid"]), {}).update(metrics)


def _record_session(kind, workload, mode, seed, result, cpu_s=None):
    record = {
        "test": _CURRENT["nodeid"],
        "kind": kind,
        "workload": getattr(workload, "name", str(workload)),
        "mode": mode,
        "seed": seed,
        "instructions": result.instructions,
        "cycles": result.cycles,
        # CPU seconds, not wall: parallel bench workers contend for
        # cores, and wall-clock throughput flaps 15%+ between
        # identical runs -- process time is what the regression gate
        # can hold steady.
        "cpu_s": round(cpu_s, 6) if cpu_s is not None else None,
    }
    if kind == "profile":
        record["samples"] = sum(result.driver.event_samples.values())
        # Table 3's adjusted cycles: the daemon's share, period-scaled
        # and amortized across CPUs, charged on top of machine time.
        record["adjusted_cycles"] = (
            result.cycles + result.daemon.cycles * result.driver.cost_scale
            / len(result.machine.cores))
        # Raw self-monitoring counts (repro.obs typed snapshot);
        # summed across sessions at payload time so derived rates are
        # exact, not averages of averages.
        record["obs"] = result.metrics()
    _SESSIONS.append(record)
    return result


def profile_workload(workload, mode="default", seed=1,
                     max_instructions=80_000, period=FAST_PERIOD,
                     machine_config=None, event_period=EVENT_PERIOD,
                     **session_overrides):
    """Run one profiled execution of *workload*; return SessionResult."""
    config = machine_config or MachineConfig(num_cpus=workload.num_cpus)
    session = ProfileSession(
        config,
        SessionConfig(mode=mode, cycles_period=period,
                      event_period=event_period, seed=seed,
                      **session_overrides))
    started = time.process_time()
    result = session.run(workload,
                         max_instructions=clamp_budget(max_instructions))
    cpu_s = time.process_time() - started
    return _record_session("profile", workload, mode, seed, result,
                           cpu_s=cpu_s)


def baseline_workload(workload, seed=1, max_instructions=80_000):
    config = MachineConfig(num_cpus=workload.num_cpus)
    session = ProfileSession(config, SessionConfig(seed=seed))
    started = time.process_time()
    result = session.run_baseline(
        workload, max_instructions=clamp_budget(max_instructions))
    cpu_s = time.process_time() - started
    return _record_session("baseline", workload, None, seed, result,
                           cpu_s=cpu_s)


def mean_ci95(values):
    """Return (mean, 95% confidence half-width) of *values*."""
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, 1.96 * math.sqrt(variance / n)


def run_once(benchmark, func):
    """Run *func* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1,
                              warmup_rounds=0)


@pytest.fixture
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


# -- the machine-readable result harness (dcpibench) -----------------------


def pytest_runtest_setup(item):
    _CURRENT["nodeid"] = item.nodeid


def pytest_runtest_logreport(report):
    record = _REPORTS.setdefault(
        report.nodeid, {"outcome": "passed", "duration_s": 0.0})
    record["duration_s"] += report.duration
    # A failed setup/teardown (error) or call (failure) both count.
    if report.outcome != "passed":
        record["outcome"] = report.outcome


def _overheads(records):
    """Pair profiled and baseline runs; return overhead %s per pair."""
    baselines = {}
    for record in records:
        if record["kind"] == "baseline":
            baselines[(record["workload"], record["seed"])] = record
    overheads = []
    for record in records:
        if record["kind"] != "profile":
            continue
        base = baselines.get((record["workload"], record["seed"]))
        if base is None or not base["cycles"]:
            continue
        overheads.append(
            (record["adjusted_cycles"] - base["cycles"])
            / base["cycles"] * 100.0)
    return overheads


def _obs_block(profiled):
    """Aggregate per-session obs snapshots into the payload's "obs"
    block: merge the raw counts, derive rates from the merged totals,
    and keep the aggregate (non-per-CPU) scalars."""
    snapshots = [r["obs"] for r in profiled if r.get("obs")]
    if not snapshots:
        return None
    flat = derive(merge_metrics(snapshots))
    block = {}
    for name, value in flat.items():
        if name.startswith("driver.cpu"):
            continue
        block[name] = (round(value, 6)
                       if isinstance(value, float) else value)
    return block


def _bench_payload(stem, tests, records):
    profiled = [r for r in records if r["kind"] == "profile"]
    overheads = _overheads(records)
    metrics = {
        "elapsed_s": round(sum(t["duration_s"] for t in tests), 4),
        "tests": len(tests),
        "sessions": len(records),
        "instructions": sum(r["instructions"] for r in records),
        "cycles": sum(r["cycles"] for r in records),
        "samples": sum(r.get("samples", 0) for r in profiled),
    }
    if overheads:
        metrics["overhead_pct_mean"] = round(
            sum(overheads) / len(overheads), 4)
    timed = [r for r in records if r.get("cpu_s")]
    if timed:
        # Simulator throughput (instructions per CPU-second) across
        # every timed session this module ran; the fast-path
        # regression gate (dcpibench compare) watches this number.
        metrics["instructions_per_sec"] = round(
            sum(r["instructions"] for r in timed)
            / sum(r["cpu_s"] for r in timed), 1)
    obs = _obs_block(profiled)
    return {
        "ctx": _CTX.get(stem),
        "fleet": _FLEET.get(stem),
        "opt": _OPT.get(stem),
        "resilience": _RESILIENCE.get(stem),
        "obs": obs,
        "schema": BENCH_SCHEMA,
        "benchmark": stem,
        "file": "bench_%s.py" % stem,
        "quick": QUICK,
        "fastpath": MachineConfig().fastpath,
        "max_instructions_clamp": _CLAMP,
        "python": platform.python_version(),
        "passed": all(t["outcome"] == "passed" for t in tests),
        "tests": tests,
        "metrics": metrics,
        "text_results": sorted(set(_TEXTS.get(stem, []))),
    }


def pytest_sessionfinish(session, exitstatus):
    """Write one BENCH_<name>.json per benchmark module that ran."""
    by_module = {}
    for nodeid, record in _REPORTS.items():
        stem = _module_stem(nodeid)
        by_module.setdefault(stem, []).append(dict(record, id=nodeid))
    if not by_module:
        return
    sessions_by_module = {}
    for record in _SESSIONS:
        sessions_by_module.setdefault(
            _module_stem(record["test"]), []).append(record)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    for stem, tests in sorted(by_module.items()):
        payload = _bench_payload(
            stem, sorted(tests, key=lambda t: t["id"]),
            sessions_by_module.get(stem, []))
        path = os.path.join(RESULTS_DIR, "BENCH_%s.json" % stem)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
