"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures: it
runs the experiment (timed via pytest-benchmark), renders the same rows
or series the paper reports, writes them to ``benchmarks/results/``,
and asserts the qualitative shape the paper claims (who wins, by
roughly what factor).  Absolute numbers differ -- the substrate is a
simulator, not the authors' AlphaStations -- as documented in
EXPERIMENTS.md.
"""

import math
import os

import pytest

from repro.cpu.config import MachineConfig
from repro.collect.session import ProfileSession, SessionConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Default scaled sampling configuration (see DESIGN.md substitution
#: table): mean period 248 cycles vs the paper's 62K; overhead numbers
#: are charged at the 62K-equivalent rate via the driver's cost scale.
FAST_PERIOD = (240, 256)
EVENT_PERIOD = 64


def write_result(name, text):
    """Persist rendered output under benchmarks/results/<name>.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    print("\n" + text)
    return path


def profile_workload(workload, mode="default", seed=1,
                     max_instructions=80_000, period=FAST_PERIOD,
                     machine_config=None, event_period=EVENT_PERIOD,
                     **session_overrides):
    """Run one profiled execution of *workload*; return SessionResult."""
    config = machine_config or MachineConfig(num_cpus=workload.num_cpus)
    session = ProfileSession(
        config,
        SessionConfig(mode=mode, cycles_period=period,
                      event_period=event_period, seed=seed,
                      **session_overrides))
    return session.run(workload, max_instructions=max_instructions)


def baseline_workload(workload, seed=1, max_instructions=80_000):
    config = MachineConfig(num_cpus=workload.num_cpus)
    session = ProfileSession(config, SessionConfig(seed=seed))
    return session.run_baseline(workload, max_instructions=max_instructions)


def mean_ci95(values):
    """Return (mean, 95% confidence half-width) of *values*."""
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, 1.96 * math.sqrt(variance / n)


def run_once(benchmark, func):
    """Run *func* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1,
                              warmup_rounds=0)


@pytest.fixture
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
