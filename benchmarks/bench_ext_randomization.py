"""Ablation: randomized vs fixed sampling periods (paper section 2).

The paper dismisses clock-interrupt profilers (prof, Morph) because a
fixed sampling period "can result in correlations between the sampling
and other system activity", and randomizes its own period to avoid
exactly that.  This benchmark measures the effect: a loop whose
iteration time divides the sampling period is profiled with a fixed
period and with the paper's randomized period; the fixed sampler's
histogram collapses onto a few aliased instructions while the
randomized one tracks the true head-cycle distribution.

Bias metric: total-variation distance between the normalized sample
histogram and the normalized true head-cycle distribution (0 = perfect,
1 = disjoint).
"""

from conftest import run_once, write_result
from repro.alpha.assembler import assemble
from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType

# A loop with a deterministic, cache-resident body: iteration time is
# constant, so any period that is a multiple of it aliases perfectly.
LOOP = """
.image aliased
.proc main
    lda t0, 60000(zero)
top:
    addq t1, 1, t1
    xor  t1, t0, t2
    sll  t2, 2, t3
    addq t3, 1, t4
    srl  t4, 1, t5
    and  t5, 1023, t6
    addq t6, t1, t7
    subq t0, 1, t0
    bgt t0, top
    ret
.end
"""


def _workload(machine):
    machine.spawn(assemble(LOOP), name="aliased")


def _loop_cycle_time():
    """Measure the loop's steady-state cycles per iteration."""
    from repro.cpu.machine import Machine

    machine = Machine(MachineConfig(), seed=1)
    image = machine.load_image(assemble(LOOP))
    machine.spawn(image)
    machine.run()
    # The loop body spans instructions 1..9 inclusive (through the bgt).
    loop_insts = image.instructions[1:10]
    total_head = sum(machine.gt_head.get(i.addr, 0) for i in loop_insts)
    count = machine.gt_count[loop_insts[0].addr]
    return machine, image, total_head / count


def _bias(period_lo, period_hi, seed=1):
    session = ProfileSession(
        MachineConfig(),
        SessionConfig(mode="cycles", cycles_period=(period_lo, period_hi),
                      seed=seed, charge_overhead=False))
    result = session.run(_workload)
    profile = result.profile_for("aliased")
    samples = profile.samples_by_addr(EventType.CYCLES)
    machine = result.machine
    image = result.daemon.images["aliased"]
    true_head = {i.addr: machine.gt_head.get(i.addr, 0)
                 for i in image.instructions}
    total_s = sum(samples.values()) or 1
    total_h = sum(true_head.values()) or 1
    distance = 0.0
    for addr in true_head:
        p = samples.get(addr, 0) / total_s
        q = true_head[addr] / total_h
        distance += abs(p - q)
    return distance / 2.0, total_s


def run_randomization():
    _, _, iter_cycles = _loop_cycle_time()
    # Choose a fixed period that is an exact multiple of the iteration
    # time (the pathological case the paper engineered away).
    multiple = max(2, round(120 / iter_cycles))
    fixed = int(round(multiple * iter_cycles))
    fixed_bias, fixed_n = _bias(fixed, fixed)
    random_bias, random_n = _bias(int(fixed * 0.94), fixed)
    return {
        "iter_cycles": iter_cycles,
        "fixed_period": fixed,
        "fixed_bias": fixed_bias,
        "fixed_samples": fixed_n,
        "random_bias": random_bias,
        "random_samples": random_n,
    }


def render(data):
    return "\n".join([
        "Ablation: randomized vs fixed sampling period (section 2)",
        "loop iteration time: %.2f cycles" % data["iter_cycles"],
        "fixed period %d cycles  -> histogram bias %.3f (%d samples)"
        % (data["fixed_period"], data["fixed_bias"],
           data["fixed_samples"]),
        "randomized %d-%d cycles -> histogram bias %.3f (%d samples)"
        % (int(data["fixed_period"] * 0.94), data["fixed_period"],
           data["random_bias"], data["random_samples"]),
    ])


def test_randomized_period_avoids_aliasing(benchmark):
    data = run_once(benchmark, run_randomization)
    write_result("ext_randomization", render(data))
    # The fixed-period histogram is visibly biased; randomization cuts
    # the bias by a large factor.
    assert data["random_bias"] < 0.15
    assert data["fixed_bias"] > 2.0 * data["random_bias"]
