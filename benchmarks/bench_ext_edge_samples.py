"""Extension: edge samples via double sampling (paper section 7).

The paper prototyped "double sampling" -- a second interrupt right
after the first, capturing two consecutive PCs and hence an edge
sample -- and predicted the samples "should prove valuable for
analysis".  This benchmark measures that prediction:

1. the taken/fallthrough ratios recovered from edge samples match the
   true branch behaviour;
2. feeding edge samples into frequency estimation resolves edges the
   flow constraints leave underdetermined (both arms of a diamond with
   no samples of their own), without ever overriding flow arithmetic;
3. the cost: double sampling's extra interrupt roughly doubles the
   sampling overhead.
"""

from conftest import profile_workload, run_once, write_result
from repro.core.cfg import EXIT, build_cfg
from repro.core.frequency import estimate_frequencies
from repro.core.schedule import schedule_cfg
from repro.core.validate import true_edge_count, weight_within
from repro.cpu.events import EventType
from repro.workloads.generator import generate_suite

SUITE = 8
BUDGET = 400_000
PERIOD = (60, 64)


def run_edge_experiment():
    pts_off = []
    pts_on = []
    resolved = 0
    for workload in generate_suite(count=SUITE, base_seed=300,
                                   rounds=200):
        result = profile_workload(workload, mode="cycles", seed=1,
                                  max_instructions=BUDGET,
                                  period=PERIOD, edge_sampling=True,
                                  charge_overhead=False)
        profile = result.profile_for(workload.name)
        if profile is None:
            continue
        image = result.daemon.images[workload.name]
        edges_abs = profile.edges_by_addr()
        machine = result.machine
        for proc in image.procedures:
            samples = profile.samples_for(proc, EventType.CYCLES)
            if not samples:
                continue
            cfg = build_cfg(proc)
            schedules = schedule_cfg(cfg)
            period = profile.periods[EventType.CYCLES]
            freq_off = estimate_frequencies(cfg, schedules, samples,
                                            period)
            freq_on = estimate_frequencies(cfg, schedules, samples,
                                           period,
                                           edge_samples=edges_abs)
            for edge in cfg.edges:
                if edge.dst == EXIT:
                    continue
                true = true_edge_count(machine, cfg, edge)
                if true < 5:
                    continue
                off = (freq_off.edge_count(edge.index) - true) / true
                on = (freq_on.edge_count(edge.index) - true) / true
                if off <= -0.999 and on > -0.999:
                    resolved += 1
                pts_off.append((off, true, None))
                pts_on.append((on, true, None))
    return pts_off, pts_on, resolved


def overhead_delta():
    from repro.workloads import mccalpin

    def run(edge_on):
        workload = mccalpin.build("assign", n=4096, iterations=2)
        return profile_workload(workload, mode="cycles",
                                max_instructions=None,
                                period=(240, 256),
                                edge_sampling=edge_on).cycles
    plain = run(False)
    doubled = run(True)
    return (doubled - plain) / plain


def render(pts_off, pts_on, resolved, extra_cost):
    return "\n".join([
        "Extension: double-sampling edge samples (section 7)",
        "edges compared: %d" % len(pts_off),
        "edge executions within 25%%: without=%.1f%%  with=%.1f%%"
        % (weight_within(pts_off, 25) * 100,
           weight_within(pts_on, 25) * 100),
        "underdetermined edges resolved by edge samples: %d" % resolved,
        "extra runtime overhead of double sampling: %.3f%%"
        % (extra_cost * 100),
    ])


def test_edge_samples_extension(benchmark):
    pts_off, pts_on, resolved = run_once(benchmark, run_edge_experiment)
    extra = overhead_delta()
    write_result("ext_edge_samples", render(pts_off, pts_on, resolved,
                                            extra))
    # Edge samples never hurt (strictly additive integration)...
    assert (weight_within(pts_on, 25)
            >= weight_within(pts_off, 25) - 1e-9)
    # ...and the second interrupt costs something but stays cheap.
    assert 0.0 < extra < 0.05
