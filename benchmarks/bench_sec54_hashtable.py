"""Section 5.4: hash-table design-space exploration.

The paper built a trace-driven simulator of the driver's hash table and
replayed logged sample traces under varying associativity, replacement
policy, table size and hash function.  Their conclusions: (1) going
from 4-way to 6-way associativity, and (2) replacing the mod-counter
eviction policy with swap-to-front on hits plus insert-at-front, would
cut total collection cost by 10-20%.

This benchmark reruns that study: traces are logged from real profiled
runs of gcc (the eviction-heavy workload) and the timesharing mix, then
replayed through every configuration.
"""

from conftest import profile_workload, run_once, write_result
from repro.collect.driver import HIT_PATH, INTERRUPT_SETUP, MISS_PATH
from repro.collect.hashtable import (LRU, MOD_COUNTER, SWAP_TO_FRONT,
                                     SampleHashTable)
from repro.workloads.registry import get_workload

BUDGET = 250_000


def collect_trace():
    """Log (pid, pc, event) sample traces from eviction-heavy runs."""
    trace = []
    for name in ("gcc", "timesharing", "x11perf"):
        result = profile_workload(get_workload(name), mode="default",
                                  max_instructions=BUDGET,
                                  period=(60, 64), log_trace=True)
        trace.extend((pid, pc, ev)
                     for _, pid, pc, ev in result.driver.trace)
    return trace


def replay(trace, buckets, assoc, policy, hash_name="multiplicative"):
    """Replay *trace*; return (miss rate, est. cycles per sample)."""
    table = SampleHashTable(buckets=buckets, assoc=assoc, policy=policy,
                            hash_name=hash_name)
    for pid, pc, event in trace:
        table.record(pid, pc, event)
    rate = table.miss_rate
    cost = (INTERRUPT_SETUP
            + (1 - rate) * HIT_PATH
            + rate * MISS_PATH
            # Per-sample share of daemon entry processing: every miss
            # ships one entry downstream.
            + rate * 1000)
    return rate, cost


def run_sec54():
    trace = collect_trace()
    rows = []
    # The shipped table holds 16K entries for week-long full-rate
    # traces; the ablation scales capacity with the scaled trace so the
    # table sees comparable pressure.
    base_capacity = 128
    for assoc in (1, 2, 4, 6, 8):
        buckets = base_capacity // assoc
        # Keep power-of-two bucket counts.
        buckets = 1 << (buckets.bit_length() - 1)
        for policy in (MOD_COUNTER, SWAP_TO_FRONT, LRU):
            rate, cost = replay(trace, buckets, assoc, policy)
            rows.append({"assoc": assoc, "policy": policy,
                         "buckets": buckets, "miss_rate": rate,
                         "cost": cost})
    for hash_name in ("multiplicative", "xor-fold"):
        rate, cost = replay(trace, 128, 4, MOD_COUNTER, hash_name)
        rows.append({"assoc": 4, "policy": "mod-counter/" + hash_name,
                     "buckets": 128, "miss_rate": rate, "cost": cost})
    return rows, len(trace)


def render(rows, samples):
    lines = ["Section 5.4: hash-table design exploration "
             "(%d-sample trace: gcc + timesharing + x11perf)" % samples,
             "%6s %-28s %8s %10s %10s"
             % ("assoc", "policy", "buckets", "miss rate", "cyc/sample")]
    for row in rows:
        lines.append("%6d %-28s %8d %9.2f%% %10.0f"
                     % (row["assoc"], row["policy"], row["buckets"],
                        row["miss_rate"] * 100.0, row["cost"]))
    return "\n".join(lines)


def test_sec54_hashtable_ablation(benchmark):
    rows, samples = run_once(benchmark, run_sec54)
    write_result("sec54_hashtable", render(rows, samples))
    assert samples > 2000

    def cost_of(assoc, policy):
        return next(r["cost"] for r in rows
                    if r["assoc"] == assoc and r["policy"] == policy)

    shipped = cost_of(4, MOD_COUNTER)
    improved = cost_of(6, SWAP_TO_FRONT)
    saving = (shipped - improved) / shipped
    # Paper: the 6-way + swap-to-front design saves 10-20% of the
    # overall cost on week-long traces; our scaled trace must show the
    # same direction with a clear saving.
    assert saving > 0.01, saving
    # Swap-to-front never loses to mod-counter at equal associativity.
    for assoc in (2, 4, 6, 8):
        assert (cost_of(assoc, SWAP_TO_FRONT)
                <= cost_of(assoc, MOD_COUNTER) + 1e-9)
    # Higher associativity never hurts the miss rate under the same
    # total capacity, modulo rounding of the bucket count.
    rate_1way = next(r["miss_rate"] for r in rows
                     if r["assoc"] == 1 and r["policy"] == MOD_COUNTER)
    rate_8way = next(r["miss_rate"] for r in rows
                     if r["assoc"] == 8 and r["policy"] == MOD_COUNTER)
    assert rate_8way <= rate_1way + 0.02
