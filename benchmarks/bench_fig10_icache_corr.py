"""Figure 10: correlation between attributed I-cache stall cycles and
IMISS event counts.

For every procedure of an instruction-cache-bound workload, culprit
analysis attributes a [bottom, top] range of stall cycles to I-cache
misses; independently, the simulator counts true IMISS events per
procedure.  The paper validates the culprit analysis by showing the two
correlate strongly (coefficients 0.91 / 0.86 / 0.90 for top / bottom /
midpoint); this benchmark reruns that validation.
"""

from conftest import profile_workload, run_once, write_result
from repro.core.validate import correlation, icache_correlation_points
from repro.workloads import bigcode

BUDGET = 1_000_000
PERIOD = (60, 64)


def run_fig10():
    # Wide size spread (the paper's x-axis spans orders of magnitude)
    # with total code a few I-cache capacities but within the L2, so
    # the fill cost per miss stays roughly uniform.
    workload = bigcode.BigCode(procedures=14, min_insts=100,
                               max_insts=1500, rounds=80)
    result = profile_workload(workload, mode="default",
                              max_instructions=BUDGET, period=PERIOD,
                              event_period=16)
    image = result.daemon.images[workload.name]
    profile = result.profile_for(workload.name)
    return icache_correlation_points(result.machine, image, profile)


def render(points, r_top, r_bottom, r_mid):
    lines = ["Figure 10: I-cache stall cycles vs IMISS events "
             "(one row per procedure)",
             "%-10s %10s %12s %12s" % ("procedure", "IMISS",
                                       "stall bottom", "stall top")]
    for point in sorted(points, key=lambda p: -p["imiss"]):
        lines.append("%-10s %10d %12.0f %12.0f"
                     % (point["procedure"], point["imiss"],
                        point["lo"], point["hi"]))
    lines.append("")
    lines.append("correlation (top)      = %.3f" % r_top)
    lines.append("correlation (bottom)   = %.3f" % r_bottom)
    lines.append("correlation (midpoint) = %.3f" % r_mid)
    return "\n".join(lines)


def test_fig10_icache_correlation(benchmark):
    points = run_once(benchmark, run_fig10)
    leaves = [p for p in points if p["procedure"].startswith("leaf")]
    assert len(leaves) >= 10

    xs = [p["imiss"] for p in leaves]
    r_top = correlation(xs, [p["hi"] for p in leaves])
    r_bottom = correlation(xs, [p["lo"] for p in leaves])
    r_mid = correlation(xs, [(p["lo"] + p["hi"]) / 2 for p in leaves])
    write_result("fig10_icache_corr",
                 render(leaves, r_top, r_bottom, r_mid))

    # Paper: 0.91 / 0.86 / 0.90 -- strong linear correlation.
    assert r_top > 0.7
    assert r_mid > 0.7
    # Procedures with many IMISS events received nonzero attribution.
    hottest = max(leaves, key=lambda p: p["imiss"])
    assert hottest["hi"] > 0
