"""Tests for CFG construction."""

from repro.alpha.assembler import assemble
from repro.core.cfg import EXIT, build_cfg


def cfg_for(body, data=""):
    image = assemble(".image t\n%s.proc main\n%s\n.end" % (data, body),
                     base=0x1000)
    return build_cfg(image.procedure("main")), image


class TestBlocks:
    def test_straight_line_single_block(self):
        cfg, _ = cfg_for("    addq t0, 1, t0\n    nop\n    ret")
        assert len(cfg.blocks) == 1
        assert len(cfg.blocks[0].instructions) == 3

    def test_branch_splits_blocks(self):
        body = """
    lda t0, 3(zero)
top:
    subq t0, 1, t0
    bgt t0, top
    ret
"""
        cfg, _ = cfg_for(body)
        assert len(cfg.blocks) == 3
        starts = [b.start for b in cfg.blocks]
        assert starts == sorted(starts)

    def test_if_else_diamond(self):
        body = """
    beq t0, else_
    addq t1, 1, t1
    br end_
else_:
    addq t2, 1, t2
end_:
    ret
"""
        cfg, _ = cfg_for(body)
        assert len(cfg.blocks) == 4

    def test_jsr_does_not_end_block(self):
        body = "    jsr ra, (pv)\n    addq t0, 1, t0\n    ret"
        cfg, _ = cfg_for(body)
        assert len(cfg.blocks) == 1

    def test_ret_ends_block_with_exit_edge(self):
        cfg, _ = cfg_for("    ret")
        assert cfg.blocks[0].succs[0].dst == EXIT

    def test_block_at(self):
        body = """
    lda t0, 3(zero)
top:
    subq t0, 1, t0
    bgt t0, top
    ret
"""
        cfg, image = cfg_for(body)
        loop_block = cfg.block_at(0x1004)
        assert loop_block.start == 0x1004


class TestEdges:
    def test_conditional_has_taken_and_fall(self):
        body = """
top:
    subq t0, 1, t0
    bgt t0, top
    ret
"""
        cfg, _ = cfg_for(body)
        kinds = sorted(e.kind for e in cfg.blocks[0].succs)
        assert kinds == ["fall", "taken"]

    def test_preds_populated(self):
        body = """
top:
    subq t0, 1, t0
    bgt t0, top
    ret
"""
        cfg, _ = cfg_for(body)
        loop = cfg.blocks[0]
        assert any(e.src == loop.index for e in loop.preds)

    def test_branch_out_of_procedure_is_exit(self):
        image = assemble(
            ".image t\n.proc main\n    br helper\n.end\n"
            ".proc helper\n    ret\n.end", base=0x1000)
        cfg = build_cfg(image.procedure("main"))
        assert cfg.blocks[0].succs[0].dst == EXIT

    def test_indirect_jump_sets_missing_edges(self):
        cfg, _ = cfg_for("    lda t0, =0x1000\n    jmp (t0)")
        assert cfg.missing_edges is True

    def test_ret_does_not_set_missing_edges(self):
        cfg, _ = cfg_for("    ret")
        assert cfg.missing_edges is False

    def test_bsr_falls_through(self):
        image = assemble(
            ".image t\n.proc main\n    bsr ra, helper\n    ret\n.end\n"
            ".proc helper\n    ret\n.end", base=0x1000)
        cfg = build_cfg(image.procedure("main"))
        assert len(cfg.blocks) == 1  # bsr doesn't split; ret ends it

    def test_infinite_loop(self):
        body = """
spin:
    addq t0, 1, t0
    br spin
"""
        cfg, _ = cfg_for(body)
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].succs[0].dst == cfg.blocks[0].index
