"""Tests for the validation helpers used by the accuracy experiments."""

import pytest

from repro.alpha.assembler import assemble
from repro.core.cfg import build_cfg
from repro.core.validate import (BUCKETS, bucketize, correlation,
                                 frequency_errors, true_edge_count,
                                 weight_within)
from repro.cpu.config import MachineConfig
from repro.cpu.machine import Machine

BRANCHY = """
.image v
.proc main
    lda t0, 20(zero)
top:
    and t0, 1, t1
    beq t1, skip
    addq t2, 1, t2
skip:
    subq t0, 1, t0
    bgt t0, top
    ret
.end
"""


@pytest.fixture(scope="module")
def run():
    machine = Machine(MachineConfig(), seed=1)
    image = machine.load_image(assemble(BRANCHY))
    machine.spawn(image)
    machine.run()
    return machine, image


class TestTrueEdgeCount:
    def test_conditional_edges(self, run):
        machine, image = run
        cfg = build_cfg(image.procedure("main"))
        beq_block = cfg.block_at(image.base + 4)
        taken = next(e for e in beq_block.succs if e.kind == "taken")
        fall = next(e for e in beq_block.succs if e.kind == "fall")
        # t0 runs 20..1; t0&1==0 ten times (taken), odd ten times.
        assert true_edge_count(machine, cfg, taken) == 10
        assert true_edge_count(machine, cfg, fall) == 10

    def test_fallthrough_block_edge(self, run):
        machine, image = run
        cfg = build_cfg(image.procedure("main"))
        entry = cfg.blocks[0]
        edge = entry.succs[0]
        assert true_edge_count(machine, cfg, edge) == 1

    def test_back_edge(self, run):
        machine, image = run
        cfg = build_cfg(image.procedure("main"))
        bgt_block = cfg.block_at(image.base + 0x10)
        taken = next(e for e in bgt_block.succs if e.kind == "taken")
        assert true_edge_count(machine, cfg, taken) == 19


class TestStatistics:
    def test_correlation_perfect_line(self):
        assert correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_correlation_anticorrelated(self):
        assert correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_correlation_degenerate(self):
        assert correlation([1, 1, 1], [1, 2, 3]) == 0.0
        assert correlation([1], [2]) == 0.0

    def test_weight_within(self):
        points = [(0.04, 10, "high"), (0.2, 10, "low")]
        assert weight_within(points, 5) == pytest.approx(0.5)
        assert weight_within(points, 25) == pytest.approx(1.0)
        assert weight_within([], 5) == 0.0

    def test_bucketize_fractions_sum_to_one(self):
        points = [(-0.5, 5, "low"), (0.0, 10, "medium"),
                  (0.07, 5, "high"), (2.0, 5, "low")]
        histogram, total = bucketize(points)
        assert total == 25
        share = sum(sum(row.values()) for row in histogram.values())
        assert share == pytest.approx(1.0)

    def test_bucketize_extreme_buckets_open(self):
        histogram, _ = bucketize([(-0.99, 1, "low"), (0.99, 1, "low")])
        assert BUCKETS[0] in histogram          # <= -45%
        assert BUCKETS[-1] + 10 in histogram    # > +45%


class TestFrequencyErrors:
    def test_against_dense_profile(self):
        from repro.collect.session import ProfileSession, SessionConfig

        def workload(machine):
            machine.spawn(assemble(BRANCHY.replace("20(zero)",
                                                   "4000(zero)")),
                          name="v")

        session = ProfileSession(
            MachineConfig(),
            SessionConfig(mode="cycles", cycles_period=(60, 64)))
        result = session.run(workload)
        image = result.daemon.images["v"]
        points = frequency_errors(result.machine, image,
                                  result.profile_for("v"))
        assert points
        # This loop mispredicts nearly every iteration, so blocks whose
        # only issue point eats the mispredict bubble are overestimated
        # -- the paper's documented failure mode.  The accuracy
        # heuristic must flag exactly those as low confidence, and the
        # well-conditioned (medium+) estimates must be decent.
        bad = [p for p in points if abs(p[0]) > 0.5]
        assert all(conf == "low" for _, _, conf in bad)
        good = [p for p in points if p[2] in ("medium", "high")]
        assert good
        assert weight_within(good, 30) > 0.7
