"""Tests for the synthetic workloads: they must run, terminate (or
sustain), and exhibit the profile shapes the paper attributes to them."""

import pytest

from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.cpu.machine import Machine
from repro.workloads import altavista, dss, gcc, mccalpin, wave5, x11perf
from repro.workloads import timesharing
from repro.workloads.generator import GeneratedProgram, generate_suite
from repro.workloads.registry import get_workload, workload_names


def run_profiled(workload, max_instructions=60_000, seed=1, period=(200, 256)):
    config = MachineConfig(num_cpus=workload.num_cpus)
    session = ProfileSession(
        config, SessionConfig(cycles_period=period, event_period=64,
                              seed=seed))
    return session.run(workload, max_instructions=max_instructions)


class TestRegistry:
    def test_all_names_construct(self):
        for name in workload_names():
            workload = get_workload(name)
            assert workload.num_cpus >= 1

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("quake")


class TestMcCalpin:
    @pytest.mark.parametrize("kernel", mccalpin.KERNELS)
    def test_kernels_terminate(self, kernel):
        machine = Machine(MachineConfig(), seed=1)
        mccalpin.build(kernel, n=512, iterations=1).setup(machine)
        machine.run()
        assert machine.processes[0].exited

    def test_assign_copies_data(self):
        machine = Machine(MachineConfig(), seed=1)
        workload = mccalpin.build("assign", n=64, iterations=1)
        workload.setup(machine)
        proc = machine.processes[0]
        image = proc.images[0]
        src = image.symbols.resolve("a")
        proc.poke(src + 8, 77)
        machine.run()
        dst = image.symbols.resolve("c")
        assert proc.peek(dst + 8) == 77

    def test_profile_dominated_by_kernel_procedure(self):
        result = run_profiled(mccalpin.build("assign", n=4096,
                                             iterations=3))
        totals = result.profile_for("mccalpin").procedure_totals(
            EventType.CYCLES)
        assert totals["assign"] == max(totals.values())


class TestX11Perf:
    def test_samples_across_images(self):
        result = run_profiled(x11perf.build(scale=6, rounds=10),
                              max_instructions=150_000)
        assert "/vmunix" in result.profiles
        assert "/usr/shlib/X11/lib_dec_ffb_ev5.so" in result.profiles

    def test_zero_poly_arc_is_hottest(self):
        result = run_profiled(x11perf.build(scale=6, rounds=10),
                              max_instructions=150_000)
        totals = {}
        for profile in result.profiles.values():
            totals.update(profile.procedure_totals(EventType.CYCLES))
        hottest = max(totals, key=totals.get)
        assert hottest == "ffb8ZeroPolyArc"


class TestWave5:
    def test_runs_and_profiles(self):
        result = run_profiled(wave5.build(scale=6, rounds=4),
                              max_instructions=120_000)
        totals = result.profile_for("wave5").procedure_totals(
            EventType.CYCLES)
        assert totals["parmvr_"] > 0
        assert totals["smooth_"] > 0

    def test_parmvr_dominates(self):
        result = run_profiled(wave5.build(scale=6, rounds=4),
                              max_instructions=120_000)
        totals = result.profile_for("wave5").procedure_totals(
            EventType.CYCLES)
        assert totals["parmvr_"] == max(totals.values())

    def test_smooth_varies_across_seeds(self):
        counts = []
        for seed in (1, 2, 3, 4):
            result = run_profiled(wave5.build(scale=6, rounds=4),
                                  max_instructions=100_000, seed=seed)
            totals = result.profile_for("wave5").procedure_totals(
                EventType.CYCLES)
            counts.append(totals["smooth_"])
        spread = (max(counts) - min(counts)) / (sum(counts) / len(counts))
        assert spread > 0.02  # page mapping moves smooth_'s cost


class TestGcc:
    def test_many_pids(self):
        result = run_profiled(gcc.build(files=12, scale=20),
                              max_instructions=80_000)
        pids = {p.pid for p in result.machine.processes}
        assert len(pids) == 12

    def test_high_eviction_rate_vs_mccalpin(self):
        gcc_result = run_profiled(gcc.build(files=12, scale=20),
                                  max_instructions=80_000)
        mc_result = run_profiled(mccalpin.build("assign", n=4096,
                                                iterations=3),
                                 max_instructions=80_000)
        assert (gcc_result.driver.stats()["miss_rate"]
                > 3 * mc_result.driver.stats()["miss_rate"])


class TestMultiprocessor:
    def test_altavista_uses_all_cpus(self):
        result = run_profiled(altavista.build(queries=8, scale=4),
                              max_instructions=80_000)
        busy = [c.instructions_retired for c in result.machine.cores]
        assert len(busy) == 4
        assert all(b > 0 for b in busy)

    def test_dss_eight_cpus(self):
        result = run_profiled(dss.build(workers=8, scale=3),
                              max_instructions=80_000)
        assert len(result.machine.cores) == 8

    def test_timesharing_many_images(self):
        result = run_profiled(timesharing.build(processes=10, scale=6),
                              max_instructions=80_000)
        assert len(result.profiles) >= 3


class TestGenerator:
    def test_programs_assemble_and_terminate(self):
        for workload in generate_suite(count=4, base_seed=7, rounds=2):
            machine = Machine(MachineConfig(), seed=1)
            workload.setup(machine)
            machine.run(max_instructions=300_000)
            assert machine.processes[0].exited, workload.name

    def test_deterministic_across_machines(self):
        workload = GeneratedProgram(seed=42, rounds=2)
        counts = []
        for _ in range(2):
            machine = Machine(MachineConfig(), seed=5)
            workload.setup(machine)
            machine.run()
            counts.append(sorted(machine.gt_count.values()))
        assert counts[0] == counts[1]

    def test_distinct_seeds_distinct_programs(self):
        a = GeneratedProgram(seed=1)._asm()
        b = GeneratedProgram(seed=2)._asm()
        assert a != b

    def test_branches_both_ways(self):
        workload = GeneratedProgram(seed=11, rounds=4)
        machine = Machine(MachineConfig(), seed=1)
        workload.setup(machine)
        machine.run(max_instructions=200_000)
        # Some conditional branch must have a taken and a fallthrough
        # edge (otherwise the suite cannot exercise edge estimation).
        by_src = {}
        for (src, dst), count in machine.gt_edges.items():
            by_src.setdefault(src, set()).add(dst)
        assert any(len(dsts) == 2 for dsts in by_src.values())
