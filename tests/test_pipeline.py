"""Tests for the pipeline core: issue, stalls, events, ground truth."""

import pytest

from conftest import run_asm
from repro.alpha.assembler import assemble
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.cpu.machine import Machine


def wrap(body, name="main", image="t.prog", data=""):
    return ".image %s\n%s.proc %s\n%s\n    ret\n.end" % (
        image, data, name, body)


def gt_for(machine, image, op_index):
    inst = image.instructions[op_index]
    return (machine.gt_count.get(inst.addr, 0),
            machine.gt_head.get(inst.addr, 0),
            machine.gt_stall.get(inst.addr, {}))


class TestBasicExecution:
    def test_straight_line_executes_once(self):
        machine, image = run_asm(
            wrap("    addq t0, 1, t0\n    addq t0, 2, t1"))
        assert machine.gt_count[image.instructions[0].addr] == 1
        assert machine.processes[0].exited

    def test_register_semantics(self):
        machine, image = run_asm(wrap(
            "    lda t0, 5(zero)\n    addq t0, 7, t1\n    subq t1, t0, t2"))
        proc = machine.processes[0]
        assert proc.iregs[1] == 5   # t0
        assert proc.iregs[2] == 12  # t1
        assert proc.iregs[3] == 7   # t2

    def test_memory_roundtrip(self):
        machine, image = run_asm(wrap(
            "    lda t1, =buf\n    lda t0, 42(zero)\n"
            "    stq t0, 8(t1)\n    ldq t2, 8(t1)",
            data=".data buf, 64\n"))
        assert machine.processes[0].iregs[3] == 42

    def test_ldl_sign_extends(self):
        machine, image = run_asm(wrap(
            "    lda t1, =buf\n    lda t0, -1(zero)\n"
            "    stl t0, 0(t1)\n    ldl t2, 0(t1)",
            data=".data buf, 64\n"))
        assert machine.processes[0].iregs[3] == (1 << 64) - 1

    def test_fp_roundtrip(self):
        machine, image = run_asm(wrap(
            "    lda t0, 3(zero)\n    lda t1, =buf\n    stq t0, 0(t1)\n"
            "    ldt f1, 0(t1)\n    addt f1, f1, f2\n    stt f2, 8(t1)",
            data=".data buf, 64\n"))
        proc = machine.processes[0]
        assert proc.memory[image.data_base + 8] == 6.0

    def test_loop_counts(self):
        body = """
    lda t0, 10(zero)
top:
    subq t0, 1, t0
    bgt t0, top
"""
        machine, image = run_asm(wrap(body))
        subq_addr = image.instructions[1].addr
        assert machine.gt_count[subq_addr] == 10

    def test_exit_via_top_level_ret(self):
        machine, image = run_asm(wrap("    nop"))
        assert machine.processes[0].exited
        assert machine.processes[0].pc == machine.processes[0].exit_addr


class TestDualIssue:
    def test_independent_pair_dual_issues(self):
        body = "    addq t0, 1, t1\n    addq t2, 1, t3"
        machine, image = run_asm(wrap(body))
        _, head0, _ = gt_for(machine, image, 0)
        _, head1, _ = gt_for(machine, image, 1)
        assert head1 == 0  # younger of the pair: zero head cycles

    def test_dependent_pair_cannot_pair(self):
        body = "    addq t0, 1, t1\n    addq t1, 1, t2"
        machine, image = run_asm(wrap(body))
        _, head1, _ = gt_for(machine, image, 1)
        assert head1 >= 1

    def test_two_stores_slotting_hazard(self):
        body = ("    lda t1, =buf\n    lda t9, 1(zero)\n"
                "    stq t9, 0(t1)\n    stq t9, 64(t1)")
        machine, image = run_asm(wrap(body, data=".data buf, 256\n"))
        _, head, stalls = gt_for(machine, image, 3)
        assert head >= 1
        assert stalls.get("slotting", 0) == 1

    def test_store_load_can_pair(self):
        body = ("    lda t1, =buf\n    lda t9, 1(zero)\n"
                "    stq t9, 0(t1)\n    ldq t8, 128(t1)")
        machine, image = run_asm(wrap(body, data=".data buf, 256\n"))
        _, head, _ = gt_for(machine, image, 3)
        assert head == 0  # ST(E0) + LD(E1) dual-issue


class TestStalls:
    def test_load_use_stall_attributed_to_consumer(self):
        body = ("    lda t1, =buf\n"
                "    ldq t2, 0(t1)\n"
                "    addq t2, 1, t3")
        machine, image = run_asm(wrap(body, data=".data buf, 64\n"))
        _, _, stalls = gt_for(machine, image, 2)
        # Cold D-cache miss: consumer waits on the dcache fill.
        assert stalls.get("dcache", 0) > 0 or stalls.get("dtb", 0) > 0

    def test_l1_hit_has_short_latency(self):
        body = ("    lda t1, =buf\n"
                "    ldq t2, 0(t1)\n"   # warm the line (cold miss)
                "    ldq t4, 0(t1)\n"   # hit
                "    addq t4, 1, t5")
        machine, image = run_asm(wrap(body, data=".data buf, 64\n"))
        _, head, stalls = gt_for(machine, image, 3)
        assert stalls.get("dcache", 0) == 0
        assert head <= 2  # only the 2-cycle hit latency remains

    def test_imul_latency_stalls_consumer(self):
        body = ("    lda t1, 3(zero)\n    mulq t1, t1, t2\n"
                "    addq t2, 1, t3")
        machine, image = run_asm(wrap(body))
        _, head, stalls = gt_for(machine, image, 2)
        assert head >= 7  # IMUL latency 8
        assert stalls.get("ra_dep", 0) > 0

    def test_branch_mispredict_penalizes_target(self):
        # A data-dependent alternating branch mispredicts regularly;
        # the penalty lands on the instruction after the branch.
        body = """
    lda t0, 40(zero)
top:
    subq t0, 1, t0
    and t0, 1, t2
    beq t2, skip
    addq t3, 1, t3
skip:
    bgt t0, top
"""
        machine, image = run_asm(wrap(body))
        total_branchmp = sum(row.get("branchmp", 0)
                             for row in machine.gt_stall.values())
        assert total_branchmp > 0

    def test_write_buffer_overflow_stall(self):
        # Stores to distinct blocks overflow the 6-entry buffer.
        body = """
    lda t1, =buf
    lda t0, 40(zero)
top:
    stq t0, 0(t1)
    lda t1, 64(t1)
    subq t0, 1, t0
    bgt t0, top
"""
        machine, image = run_asm(wrap(body, data=".data buf, 4096\n"))
        total_wb = sum(row.get("wb", 0)
                       for row in machine.gt_stall.values())
        assert total_wb > 0


class TestEvents:
    def test_imiss_counted_once_per_cold_line(self):
        machine, image = run_asm(wrap("    nop\n" * 20))
        imisses = sum(row.get(EventType.IMISS, 0)
                      for row in machine.gt_events.values())
        # 22 instructions spanning ceil(22*4/32) = 3 lines.
        assert imisses == 3

    def test_dmiss_recorded_for_cold_load(self):
        body = "    lda t1, =buf\n    ldq t2, 0(t1)"
        machine, image = run_asm(wrap(body, data=".data buf, 64\n"))
        load_addr = image.instructions[1].addr
        assert machine.gt_events[load_addr][EventType.DMISS] == 1

    def test_branchmp_event_recorded(self):
        body = """
    lda t0, 64(zero)
top:
    subq t0, 1, t0
    and t0, 1, t2
    bne t2, top
    bgt t0, top
"""
        machine, image = run_asm(wrap(body))
        total = sum(row.get(EventType.BRANCHMP, 0)
                    for row in machine.gt_events.values())
        assert total > 0

    def test_edges_recorded(self):
        body = """
    lda t0, 5(zero)
top:
    subq t0, 1, t0
    bgt t0, top
"""
        machine, image = run_asm(wrap(body))
        bgt = image.instructions[2]
        top = image.instructions[1].addr
        assert machine.gt_edges[(bgt.addr, top)] == 4
        assert machine.gt_edges[(bgt.addr, bgt.addr + 4)] == 1


class TestSampling:
    def test_cycles_samples_proportional_to_head_time(self):
        from conftest import make_copy_workload
        from repro.collect.session import ProfileSession, SessionConfig

        session = ProfileSession(
            MachineConfig(),
            SessionConfig(cycles_period=(60, 64), event_period=32, seed=5))
        result = session.run(make_copy_workload(n=4000))
        machine = result.machine
        profile = result.profile_for("copy.prog")
        samples = profile.samples_by_addr(EventType.CYCLES)
        period = 62.0
        # For the hottest instruction, samples * period should be within
        # 25% of the true head cycles.
        hot_addr = max(samples, key=samples.get)
        true_head = machine.gt_head[hot_addr]
        assert abs(samples[hot_addr] * period - true_head) / true_head < 0.25

    def test_total_samples_close_to_cycles_over_period(self):
        from conftest import make_copy_workload
        from repro.collect.session import ProfileSession, SessionConfig

        session = ProfileSession(
            MachineConfig(),
            SessionConfig(cycles_period=(100, 100), event_period=64))
        result = session.run(make_copy_workload(n=2000))
        expected = result.cycles / 100.0
        actual = result.driver.event_samples[EventType.CYCLES]
        assert abs(actual - expected) / expected < 0.05


class TestBudgets:
    def test_instruction_budget_respected(self):
        body = """
top:
    addq t0, 1, t0
    br top
"""
        machine = Machine(MachineConfig(), seed=1)
        image = machine.load_image(assemble(wrap(body)))
        machine.spawn(image)
        ran = machine.run(max_instructions=1000)
        assert 900 <= ran <= 1100
        assert not machine.processes[0].exited

    def test_run_resumes_after_budget(self):
        body = """
    lda t0, 2000(zero)
top:
    subq t0, 1, t0
    bgt t0, top
"""
        machine = Machine(MachineConfig(), seed=1)
        image = machine.load_image(assemble(wrap(body)))
        machine.spawn(image)
        machine.run(max_instructions=100)
        machine.run()
        assert machine.processes[0].exited

    def test_unmapped_pc_raises(self):
        body = "    lda t0, =0x900000\n    jmp (t0)"
        with pytest.raises(RuntimeError, match="unmapped"):
            run_asm(wrap(body))
