"""Differential property: the static validator vs the dynamic oracle.

Hypothesis composes random programs from the synthetic-workload
assembly generators, builds real optimizer plans for them, and then
either ships the plan as-is or corrupts it (reordering dependent
instructions, permuting or dropping blocks, freezing procs, moving the
data pin).  For every (program, plan) pair both verifiers run:

* **soundness** -- if the static validator accepts (or the rewrite
  legitimately bails), the dynamic A/B oracle must find the runs
  architecturally identical.  A static accept over a decidable dynamic
  divergence is the one outcome translation validation exists to make
  impossible;
* **planner completeness** -- unmutated planner output is always
  statically *accepted*, never rejected (the validator understands
  everything the planner actually emits);
* **actionable rejection** -- every rejection carries at least one
  concrete per-block counterexample.

The reverse direction is deliberately *not* asserted: the validator is
conservative, so it may reject a mutation the single dynamic input
happens not to distinguish (an off-path divergence).  That asymmetry
is the reason the static gate runs first.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.alpha.assembler import assemble
from repro.check.runner import plan_workload
from repro.check.transval import validate_workload_plans
from repro.opt.oracle import verify_identity
from repro.workloads.asmgen import caller_proc, loop_proc
from repro.workloads.base import Workload

FLAVORS = ("int", "mem", "fp", "branchy", "stream")

MUTATIONS = ("none", "swap-order", "swap-blocks", "drop-block",
             "freeze", "move-pin")


@st.composite
def programs(draw):
    """One assembly image: a few leaf loops plus a caller."""
    count = draw(st.integers(min_value=1, max_value=3))
    needs_buf = False
    procs = []
    for index in range(count):
        flavor = draw(st.sampled_from(FLAVORS))
        iters = draw(st.integers(min_value=1, max_value=96))
        kwargs = {}
        if flavor in ("mem", "stream"):
            needs_buf = True
            kwargs["buf"] = "heap"
            kwargs["wrap"] = draw(st.sampled_from((16, 64, 256)))
            kwargs["stride"] = draw(st.sampled_from((8, 16)))
            if flavor == "stream":
                iters = min(iters, 60)
        procs.append(loop_proc("leaf%d" % index, iters, flavor,
                               **kwargs))
    rounds = draw(st.integers(min_value=1, max_value=3))
    procs.append(caller_proc(
        "main", ["leaf%d" % i for i in range(count)], rounds=rounds))
    data = ".data heap, 4096\n" if needs_buf else ""
    return ".image t\n%s%s" % (data, "".join(procs))


class GeneratedWorkload(Workload):
    """Wrap one generated program as a registry-shaped workload."""

    name = "hypothesis-transval"
    num_cpus = 1

    def __init__(self, text):
        self.text = text

    def setup(self, machine):
        image = assemble(self.text)
        machine.spawn(image, entry="t:main", name=self.name)


def mutate(plans, mutation, data):
    """Corrupt *plans* in place; return True if anything changed."""
    if mutation == "none" or not plans:
        return False
    plan = plans[data.draw(st.integers(0, len(plans) - 1),
                           label="plan")]
    if mutation == "move-pin":
        if plan.data_offset is None:
            return False
        plan.data_offset += 8192
        return True
    if not plan.procs:
        return False
    proc = plan.procs[data.draw(st.integers(0, len(plan.procs) - 1),
                                label="proc")]
    if mutation == "freeze":
        if proc.frozen:
            return False
        proc.frozen = True
        return True
    if mutation == "swap-blocks":
        if len(proc.blocks) < 2:
            return False
        i = data.draw(st.integers(0, len(proc.blocks) - 2),
                      label="block")
        proc.blocks[i], proc.blocks[i + 1] = (proc.blocks[i + 1],
                                              proc.blocks[i])
        return True
    if mutation == "drop-block":
        if len(proc.blocks) < 2:
            return False
        del proc.blocks[data.draw(
            st.integers(0, len(proc.blocks) - 1), label="block")]
        return True
    # swap-order: transpose two adjacent instructions in one block.
    sizable = [b for b in proc.blocks if b.end - b.start >= 8]
    if not sizable:
        return False
    block = sizable[data.draw(st.integers(0, len(sizable) - 1),
                              label="block")]
    order = list(block.order
                 or range(block.start, block.end, 4))
    i = data.draw(st.integers(0, len(order) - 2), label="slot")
    order[i], order[i + 1] = order[i + 1], order[i]
    block.order = order
    return True


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs(), st.sampled_from(MUTATIONS), st.data())
def test_static_verdict_is_sound_against_the_oracle(text, mutation,
                                                    data):
    workload = GeneratedWorkload(text)
    workload, plans = plan_workload(workload,
                                    max_instructions=40_000)
    mutated = mutate(plans, mutation, data)

    static = validate_workload_plans(workload, plans)
    oracle = verify_identity(workload, plans)
    decidable = [m for m in oracle.mismatches if "undecidable" not in m]
    static_ok = all(report.ok for report in static.values())

    # Soundness: a static accept (or bail) over a decidable dynamic
    # divergence would mean the validator proved a falsehood.
    if static_ok:
        assert not decidable, (mutation, decidable)

    # Planner completeness: real planner output is always accepted.
    if not mutated:
        for name, report in sorted(static.items()):
            assert report.verdict == "accepted", (
                name, [ce.message for ce in report.counterexamples])

    # Actionable rejection: every rejection names a counterexample.
    for report in static.values():
        if report.verdict == "rejected":
            assert report.counterexamples
