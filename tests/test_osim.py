"""Tests for processes, the loader and the scheduler."""

import pytest

from repro.alpha.assembler import assemble
from repro.cpu.config import MachineConfig
from repro.cpu.machine import Machine
from repro.osim.loader import Loader

COUNTER_LOOP = """
.image loopy
.proc main
    lda t0, {n}(zero)
top:
    subq t0, 1, t0
    bgt t0, top
    ret
.end
"""


class TestLoader:
    def test_images_get_disjoint_ranges(self):
        loader = Loader()
        img1 = loader.link(assemble(COUNTER_LOOP.format(n=1)))
        img2 = loader.link(assemble(
            COUNTER_LOOP.format(n=1), image_name="other"))
        assert img1.end <= img2.base

    def test_link_idempotent(self):
        loader = Loader()
        image = loader.link(assemble(COUNTER_LOOP.format(n=1)))
        base = image.base
        loader.link(image)
        assert image.base == base

    def test_loadmap_events_delivered(self):
        loader = Loader()
        events = []
        loader.add_listener(events.append)
        image = loader.link(assemble(COUNTER_LOOP.format(n=1)))
        loader.notify_exec(42, [image])
        assert len(events) == 1
        assert events[0].pid == 42
        assert events[0].image is image

    def test_notify_unlinked_image_rejected(self):
        loader = Loader()
        with pytest.raises(ValueError):
            loader.notify_exec(1, [assemble(COUNTER_LOOP.format(n=1))])

    def test_image_at(self):
        loader = Loader()
        image = loader.link(assemble(COUNTER_LOOP.format(n=1)))
        assert loader.image_at(image.base + 4) is image
        assert loader.image_at(0xDEAD0000) is None


class TestProcesses:
    def test_distinct_pids(self):
        machine = Machine(MachineConfig(), seed=1)
        image = machine.load_image(assemble(COUNTER_LOOP.format(n=1)))
        p1 = machine.spawn(image)
        p2 = machine.spawn(image)
        assert p1.pid != p2.pid

    def test_memory_isolated_between_processes(self):
        machine = Machine(MachineConfig(), seed=1)
        image = machine.load_image(assemble(COUNTER_LOOP.format(n=1)))
        p1 = machine.spawn(image)
        p2 = machine.spawn(image)
        p1.poke(0x5000, 11)
        assert p2.peek(0x5000) == 0

    def test_page_maps_differ_between_runs(self):
        def pages(seed):
            machine = Machine(MachineConfig(), seed=seed)
            image = machine.load_image(assemble(COUNTER_LOOP.format(n=1)))
            proc = machine.spawn(image)
            return [proc.translate_data(v) for v in range(16)]
        assert pages(1) != pages(2)

    def test_page_map_stable_within_run(self):
        machine = Machine(MachineConfig(), seed=1)
        image = machine.load_image(assemble(COUNTER_LOOP.format(n=1)))
        proc = machine.spawn(image)
        assert proc.translate_data(5) == proc.translate_data(5)

    def test_set_args(self):
        machine = Machine(MachineConfig(), seed=1)
        image = machine.load_image(assemble(COUNTER_LOOP.format(n=1)))
        proc = machine.spawn(image).set_args(a0=7, f1=2.5)
        assert proc.iregs[16] == 7
        assert proc.fregs[1] == 2.5

    def test_entry_by_name(self):
        text = (".image multi\n.proc first\n    ret\n.end\n"
                ".proc second\n    ret\n.end\n")
        machine = Machine(MachineConfig(), seed=1)
        image = machine.load_image(assemble(text))
        proc = machine.spawn(image, entry="multi:second")
        assert proc.pc == image.procedure("second").start

    def test_bad_entry_raises(self):
        machine = Machine(MachineConfig(), seed=1)
        image = machine.load_image(assemble(COUNTER_LOOP.format(n=1)))
        with pytest.raises(ValueError):
            machine.spawn(image, entry="loopy:nosuch")


class TestScheduler:
    def test_all_processes_complete(self):
        machine = Machine(MachineConfig(num_cpus=2), seed=1)
        image = machine.load_image(assemble(COUNTER_LOOP.format(n=500)))
        procs = [machine.spawn(image) for _ in range(5)]
        machine.run()
        assert all(p.exited for p in procs)

    def test_quantum_causes_context_switches(self):
        config = MachineConfig(num_cpus=1, quantum=500)
        machine = Machine(config, seed=1)
        image = machine.load_image(assemble(COUNTER_LOOP.format(n=5000)))
        machine.spawn(image)
        machine.spawn(image)
        machine.run()
        assert machine.scheduler.context_switches > 2

    def test_work_spread_across_cpus(self):
        machine = Machine(MachineConfig(num_cpus=4), seed=1)
        image = machine.load_image(assemble(COUNTER_LOOP.format(n=2000)))
        for _ in range(4):
            machine.spawn(image)
        machine.run()
        busy = [core.instructions_retired for core in machine.cores]
        assert all(b > 0 for b in busy)

    def test_cpu_cycles_accounted(self):
        machine = Machine(MachineConfig(), seed=1)
        image = machine.load_image(assemble(COUNTER_LOOP.format(n=500)))
        proc = machine.spawn(image)
        machine.run()
        assert proc.cpu_cycles > 500
