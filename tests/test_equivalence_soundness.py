"""Soundness of cycle equivalence against execution ground truth.

The entire frequency analysis rests on one guarantee: every member of a
frequency-equivalence class executes *exactly* the same number of times.
These tests execute randomly generated structured programs and verify
the guarantee holds for every class of every procedure -- blocks and
edges alike -- using the simulator's exact counts.
"""

import pytest

from repro.core.cfg import EXIT, build_cfg
from repro.core.equivalence import compute_equivalence
from repro.core.validate import true_edge_count
from repro.cpu.config import MachineConfig
from repro.cpu.machine import Machine
from repro.workloads.generator import GeneratedProgram

SEEDS = (11, 29, 47, 101, 500, 777)


def class_counts(machine, cfg, classes):
    """Map class id -> set of true member execution counts."""
    by_class = {}
    for block in cfg.blocks:
        count = machine.gt_count.get(block.start, 0)
        cid = classes.class_of[block.index]
        by_class.setdefault(cid, set()).add(count)
    for edge in cfg.edges:
        if edge.dst == EXIT:
            # Exit edges include process-exit flows; counts still hold
            # but the virtual return edge makes them class-consistent
            # only with the entry, checked separately below.
            continue
        count = true_edge_count(machine, cfg, edge)
        cid = classes.class_of[("e", edge.index)]
        by_class.setdefault(cid, set()).add(count)
    return by_class


@pytest.mark.parametrize("seed", SEEDS)
def test_every_class_has_one_true_count(seed):
    workload = GeneratedProgram(seed=seed, rounds=3)
    machine = Machine(MachineConfig(), seed=1)
    workload.setup(machine)
    machine.run(max_instructions=400_000)
    assert machine.processes[0].exited

    image = machine.processes[0].images[0]
    for proc in image.procedures:
        if machine.gt_count.get(proc.start, 0) == 0:
            continue
        cfg = build_cfg(proc)
        if cfg.missing_edges:
            continue
        classes = compute_equivalence(cfg)
        for cid, counts in class_counts(machine, cfg, classes).items():
            assert len(counts) == 1, (
                "class %d of %s (seed %d) has unequal member counts %s"
                % (cid, proc.name, seed, counts))


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_zero_classes_never_execute(seed):
    workload = GeneratedProgram(seed=seed, rounds=2)
    machine = Machine(MachineConfig(), seed=1)
    workload.setup(machine)
    machine.run(max_instructions=400_000)
    image = machine.processes[0].images[0]
    for proc in image.procedures:
        cfg = build_cfg(proc)
        if cfg.missing_edges:
            continue
        classes = compute_equivalence(cfg)
        for node in classes.zero:
            if isinstance(node, tuple):
                continue
            block = cfg.blocks[node]
            assert machine.gt_count.get(block.start, 0) == 0
