"""Tests for performance counters and the Carta PRNG."""

from hypothesis import given, strategies as st

from repro.collect.prng import CartaRandom, period_sampler
from repro.cpu.counters import CounterUnit
from repro.cpu.events import EventType


class TestCartaRandom:
    def test_minimal_standard_sequence(self):
        # Known Park-Miller values from seed 1.
        rng = CartaRandom(1)
        assert rng.next() == 16807
        assert rng.next() == 282475249

    def test_full_period_sanity(self):
        # After 10000 draws from the canonical seed the generator must
        # not have cycled (period is 2^31 - 2).
        rng = CartaRandom(1)
        seen_first = rng.next()
        for _ in range(9999):
            value = rng.next()
        assert value != seen_first

    def test_zero_seed_coerced(self):
        assert CartaRandom(0).next() == 16807

    @given(st.integers(min_value=1, max_value=1 << 30))
    def test_uniform_int_in_range(self, seed):
        rng = CartaRandom(seed)
        for _ in range(20):
            value = rng.uniform_int(60, 64)
            assert 60 <= value <= 64

    def test_period_sampler_deterministic_when_lo_equals_hi(self):
        sampler = period_sampler(100, 100)
        assert [sampler() for _ in range(5)] == [100] * 5

    def test_period_sampler_randomized(self):
        sampler = period_sampler(60, 64, seed=7)
        values = {sampler() for _ in range(200)}
        assert values == {60, 61, 62, 63, 64}


class TestCounterUnit:
    def test_overflow_at_period(self):
        unit = CounterUnit()
        unit.configure(EventType.CYCLES, lambda: 100)
        assert unit.add(EventType.CYCLES, 99, 99) == []
        overflows = unit.add(EventType.CYCLES, 1, 100)
        assert overflows == [(EventType.CYCLES, 100)]

    def test_overflow_time_inside_bulk_add(self):
        unit = CounterUnit()
        unit.configure(EventType.CYCLES, lambda: 100)
        # Adding 250 cycles ending at t=250 crosses at t=100 and t=200.
        overflows = unit.add(EventType.CYCLES, 250, 250)
        assert [t for _, t in overflows] == [100, 200]

    def test_unmonitored_event_ignored(self):
        unit = CounterUnit()
        unit.configure(EventType.CYCLES, lambda: 100)
        assert unit.add(EventType.IMISS, 1, 5) == ()

    def test_counts_event(self):
        unit = CounterUnit()
        unit.configure(EventType.IMISS, lambda: 10)
        assert unit.counts_event(EventType.IMISS)
        assert not unit.counts_event(EventType.DMISS)

    def test_multiplex_switch(self):
        unit = CounterUnit()
        slot = unit.configure(EventType.IMISS, lambda: 10)
        unit.add(EventType.IMISS, 5, 5)
        unit.set_event(slot, EventType.DMISS)
        assert not unit.counts_event(EventType.IMISS)
        # Count resets on switch.
        assert unit.add(EventType.DMISS, 9, 9) == []
        assert len(unit.add(EventType.DMISS, 1, 10)) == 1

    def test_randomized_period_reload(self):
        periods = iter([10, 20, 1000])
        unit = CounterUnit()
        unit.configure(EventType.CYCLES, lambda: next(periods))
        first = unit.add(EventType.CYCLES, 10, 10)
        assert [t for _, t in first] == [10]
        second = unit.add(EventType.CYCLES, 20, 30)
        assert [t for _, t in second] == [30]

    @given(st.lists(st.integers(min_value=1, max_value=50), min_size=1,
                    max_size=60))
    def test_total_overflows_conserved(self, deltas):
        """Property: overflows == floor(total / period) for a fixed
        period, no matter how the adds are chunked."""
        unit = CounterUnit()
        unit.configure(EventType.CYCLES, lambda: 37)
        now = 0
        total_overflows = 0
        for delta in deltas:
            now += delta
            total_overflows += len(unit.add(EventType.CYCLES, delta, now))
        assert total_overflows == sum(deltas) // 37
