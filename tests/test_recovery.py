"""Crash recovery of the collection pipeline.

The invariant under test (the dcpichaos acceptance criterion): a run
that crashes and recovers produces profile counts equal to the
fault-free run's counts minus *exactly* the accounted losses -- never
a torn record, never a double count, never silent loss.  The
hypothesis property drives a random crash point through a full
profiling session; the directed tests pin down each recovery
mechanism (journal replay, checkpoint watermarks, inflight re-drain,
quarantine) individually.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import audit
from repro.faults.injector import FaultPlan, FaultSpec
from repro.faults.scenarios import _run_session

BUDGET = 16_000
WORKLOAD = "gcc"


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The fault-free twin, run once and audited once."""
    root = str(tmp_path_factory.mktemp("ref") / "db")
    result = _run_session(WORKLOAD, 1, BUDGET, root, None)
    report = audit.sample_conservation(result)
    assert report["ok"]
    return report


def faulted_report(tmp_path, specs):
    root = str(tmp_path / "db")
    plan = FaultPlan(specs=tuple(specs), seed=1)
    result = _run_session(WORKLOAD, 1, BUDGET, root, plan)
    return result, audit.sample_conservation(result)


# -- the property: a crash anywhere conserves samples ----------------------

CRASH_POINTS = ("daemon.drain.cpu", "daemon.drain.merge",
                "daemon.checkpoint", "db.checkpoint", "session.restart")


@settings(max_examples=12, deadline=None)
@given(point=st.sampled_from(CRASH_POINTS), hit=st.integers(1, 4))
def test_random_crash_conserves_samples(reference, tmp_path_factory,
                                        point, hit):
    """Crash at a random pipeline point; recover; nothing unaccounted."""
    tmp = tmp_path_factory.mktemp("crash")
    result, report = faulted_report(
        tmp, [FaultSpec(point, "crash", hits=(hit,))])
    comparison = audit.compare_runs(report, reference)
    assert comparison["ok"], (point, hit, comparison, report)
    if report["recoveries"]:
        assert result.daemon.recoveries >= 1


# -- directed recovery mechanics -------------------------------------------


def test_journal_replay_loses_nothing(reference, tmp_path):
    """Crash after journaling, before the merge ack: WAL replay saves
    every journaled sample -- loss identical to the fault-free run."""
    _, report = faulted_report(
        tmp_path, [FaultSpec("daemon.drain.merge", "crash", hits=(2,))])
    assert report["ok"]
    assert report["recoveries"] == 1
    assert audit.accounted_loss(report) == audit.accounted_loss(reference)
    assert report["db_samples"] == reference["db_samples"]


def test_crash_mid_checkpoint_never_double_counts(reference, tmp_path):
    """Die between writing profile files and the manifest rename: the
    orphaned files must not be adopted on recovery (that would count
    their samples twice once the journal replays)."""
    _, report = faulted_report(
        tmp_path, [FaultSpec("db.checkpoint", "crash", hits=(1,))])
    assert report["ok"]
    assert report["db_samples"] == reference["db_samples"]
    comparison = audit.compare_runs(report, reference)
    assert comparison["ok"], comparison


def test_restart_losses_are_accounted_in_driver(reference, tmp_path):
    """A machine restart wipes driver buffers; the loss lands in the
    per-CPU dropped counters, not in silence."""
    result, report = faulted_report(
        tmp_path, [FaultSpec("session.restart", "crash", hits=(3,))])
    assert report["ok"]
    assert report["dropped"] > reference["dropped"]
    assert audit.compare_runs(report, reference)["ok"]
    assert result.daemon.recoveries == 1


def test_crash_without_database_accounts_memory_as_lost(tmp_path):
    """No durable state: the dead daemon's samples become lost_samples,
    and the pipeline book still balances."""
    result, report = faulted_report(
        tmp_path, [FaultSpec("daemon.drain.cpu", "crash", hits=(4,))])
    # Build the no-db variant explicitly.
    plan = FaultPlan(specs=(
        FaultSpec("daemon.drain.cpu", "crash", hits=(4,)),), seed=1)
    nodb = _run_session(WORKLOAD, 1, BUDGET, None, plan)
    nodb_report = audit.sample_conservation(nodb)
    assert nodb_report["ok"]
    assert nodb_report["lost"] > 0
    # With a database + journal the same crash loses nothing extra.
    assert report["lost"] == 0


def test_crash_during_recovery_recovers_again(reference, tmp_path):
    """A fault that fires again during the recovery catch-up drain
    triggers another recovery round instead of escaping auto_recover."""
    result, report = faulted_report(
        tmp_path, [FaultSpec("daemon.drain.cpu", "crash", hits=(3, 4))])
    assert report["ok"]
    assert result.daemon.recoveries == 2
    assert audit.compare_runs(report, reference)["ok"]


def test_drain_gives_up_after_budgeted_attempts(reference, tmp_path):
    """MAX_DRAIN_RETRIES failed flush attempts shed the backlog --
    not MAX_DRAIN_RETRIES + 1."""
    result, report = faulted_report(
        tmp_path, [FaultSpec("daemon.drain.flush", "transient",
                             hits=(1, 2, 3))])
    assert report["ok"]
    assert result.daemon.drain_failures == 1
    assert result.daemon.drain_retries == 3
    assert audit.compare_runs(report, reference)["ok"]


def test_transient_drain_retries_then_succeeds(reference, tmp_path):
    result, report = faulted_report(
        tmp_path, [FaultSpec("daemon.drain.flush", "transient",
                             hits=(3, 5))])
    assert report["ok"]
    assert result.daemon.drain_retries == 2
    assert result.daemon.drain_failures == 0
    assert report["db_samples"] == reference["db_samples"]


def test_persistent_drain_failure_sheds_backlog(reference, tmp_path):
    result, report = faulted_report(
        tmp_path, [FaultSpec("daemon.drain.flush", "transient",
                             after=2, limit=4)])
    assert report["ok"]
    assert result.daemon.drain_failures >= 1
    assert report["dropped"] > reference["dropped"]
    assert audit.compare_runs(report, reference)["ok"]


def test_recovered_stats_flow_into_obs_metrics(tmp_path):
    """Loss accounting must survive into the typed metric snapshot."""
    from repro.obs.schema import derive

    result, report = faulted_report(
        tmp_path, [FaultSpec("daemon.drain.cpu", "crash", hits=(2,))])
    assert report["ok"]
    flat = derive(result.metrics())
    assert flat["daemon.recoveries"] == result.daemon.recoveries
    assert flat["collect.recoveries"] == result.daemon.recoveries
    assert (flat["collect.samples_dropped"]
            == report["dropped"] + report["lost"])
    expected_rate = ((report["dropped"] + report["lost"])
                     / report["driver_samples"])
    assert flat["collect.loss_rate"] == pytest.approx(expected_rate)
    legacy = result.stats()
    assert legacy["daemon_recoveries"] == result.daemon.recoveries
    assert legacy["daemon_lost_samples"] == report["lost"]


def test_analysis_flags_low_confidence_on_loss(tmp_path):
    """Graceful degradation: lossy collection yields warnings and a
    low-confidence flag, not an exception."""
    from repro.core.analyze import AnalysisConfig, analyze_image
    from repro.cpu.events import EventType

    result, report = faulted_report(
        tmp_path, [FaultSpec("session.restart", "crash", hits=(3,))])
    loss_rate = (audit.accounted_loss(report)
                 / report["driver_samples"])
    assert loss_rate > 0.02
    profile = max(result.daemon.profiles.values(),
                  key=lambda p: p.total(EventType.CYCLES))
    analyses = analyze_image(profile.image, profile,
                             config=AnalysisConfig(),
                             loss_rate=loss_rate)
    assert analyses
    for analysis in analyses.values():
        assert analysis.low_confidence
        assert any("lost" in w for w in analysis.warnings)
    clean = analyze_image(profile.image, profile,
                          config=AnalysisConfig(), loss_rate=0.0)
    assert not any(a.low_confidence for a in clean.values())
