"""Shared fixtures for the test suite."""

import pytest

from repro.alpha.assembler import assemble
from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.cpu.machine import Machine

#: The paper's Figure 2 copy loop (4x unrolled), used by many tests.
COPY_LOOP_ASM = """
.image copy.prog
.data src, 64000
.data dst, 64000
.proc copy
    lda   t1, =src
    lda   t2, =dst
    lda   t0, 0(zero)
    lda   v0, {n}(zero)
loop:
    ldq   t4, 0(t1)
    addq  t0, 4, t0
    ldq   t5, 8(t1)
    ldq   t6, 16(t1)
    ldq   a0, 24(t1)
    lda   t1, 32(t1)
    stq   t4, 0(t2)
    cmpult t0, v0, t4
    stq   t5, 8(t2)
    stq   t6, 16(t2)
    stq   a0, 24(t2)
    lda   t2, 32(t2)
    bne   t4, loop
    ret
.end
"""


def make_copy_workload(n=4000):
    def workload(machine):
        image = assemble(COPY_LOOP_ASM.format(n=n))
        machine.spawn(image, name="copy")
    return workload


@pytest.fixture
def machine():
    return Machine(MachineConfig(), seed=1)


@pytest.fixture
def copy_session_result():
    """A profiled run of the copy loop with dense sampling."""
    session = ProfileSession(
        MachineConfig(),
        SessionConfig(cycles_period=(120, 128), event_period=64, seed=3))
    return session.run(make_copy_workload())


def run_asm(asm, max_instructions=None, seed=1, config=None, **spawn_args):
    """Assemble *asm*, run it on a fresh machine, return (machine, image)."""
    machine = Machine(config or MachineConfig(), seed=seed)
    image = machine.load_image(assemble(asm))
    machine.spawn(image, **spawn_args)
    machine.run(max_instructions=max_instructions)
    return machine, image
