"""Fleet-wide request-context shipping (repro.fleet x repro.ctx).

Each machine's epoch delta now carries the epoch's context ledger;
the store merges the ledgers per fleet epoch (commutatively, inside
the same atomic manifest commit as the samples) and answers
per-request-class queries via :meth:`FleetStore.ctx_meta` and the
``dcpifleet classes`` subcommand.
"""

import io

from repro.ctx import canonical_ledger_bytes
from repro.fleet.cli import main as fleet_main
from repro.fleet.machine import FleetConfig, FleetMachine, FleetSession
from repro.fleet.store import FleetStore
from repro.fleet.transport import Delta, DeltaTransport


def _machine(seed=1, context=True):
    return FleetMachine("m00", "altavista", seed, context=context,
                        drain_interval=3_000)


def test_delta_carries_epoch_ledger():
    machine = _machine()
    delta = machine.run_epoch(9_000)
    assert delta.ctx is not None
    assert delta.ctx["classes"], "no classes attributed"
    assert sum(len(r) for r in delta.ctx["requests"].values()) > 0
    # The next epoch's ledger starts from scratch: consecutive deltas
    # never overlap, attribution included.
    second = machine.run_epoch(9_000)
    assert second.epoch == delta.epoch + 1
    assert second.ctx is not None


def test_context_off_ships_none():
    delta = _machine(context=False).run_epoch(6_000)
    assert delta.ctx is None


def test_transport_roundtrips_ctx_verbatim():
    machine = _machine()
    delta = machine.run_epoch(9_000)
    deliveries = DeltaTransport().ship(delta)
    assert len(deliveries) == 1
    assert canonical_ledger_bytes(deliveries[0].ctx) \
        == canonical_ledger_bytes(delta.ctx)


def test_store_merges_persists_and_dedupes_ctx(tmp_path):
    root = tmp_path / "store"
    store = FleetStore(root)
    machine_a = _machine(seed=1)
    machine_b = FleetMachine("m01", "timesharing", 102, context=True,
                             drain_interval=3_000)
    delta_a = machine_a.run_epoch(9_000)
    delta_b = machine_b.run_epoch(9_000)
    assert store.ingest(delta_a)
    assert store.ingest(delta_b)
    merged = store.ctx_meta()
    assert merged is not None
    # Both machines' classes are present: the merge is a union.
    names = set(merged["classes"])
    assert any(name.startswith("search.") for name in names), names
    assert any(name.startswith("ts.") for name in names), names
    # Per-epoch filtering sees the same single epoch.
    assert store.ctx_meta(epochs=[delta_a.epoch]) is not None
    assert store.ctx_meta(epochs=[delta_a.epoch + 7]) is None

    # A duplicate delivery is deduped before the ctx merge: counts
    # stay byte-identical.
    before = canonical_ledger_bytes(store.ctx_meta())
    assert not store.ingest(delta_a)
    assert canonical_ledger_bytes(store.ctx_meta()) == before

    # The ledger rides the manifest: a fresh handle reads it back.
    reopened = FleetStore(root)
    assert canonical_ledger_bytes(reopened.ctx_meta()) == before
    assert reopened.stats()["ctx_epochs"] >= 1


def test_session_end_to_end_with_context(tmp_path):
    config = FleetConfig(machines=2, epochs=2,
                         epoch_instructions=9_000, context=True)
    store = FleetStore(tmp_path / "store")
    result = FleetSession(config).run(store)
    assert result.report()["ok"], result.findings
    assert result.report()["config"]["context"] is True
    merged = store.ctx_meta()
    assert merged is not None
    assert len(store.ledger["ctx"]) == 2      # one blob per epoch

    # dcpifleet classes renders the merged attribution and exits 0.
    out = io.StringIO()
    rc = fleet_main(["classes", "--store", str(tmp_path / "store")],
                    out=out)
    assert rc == 0
    assert "class" in out.getvalue()

    # JSON path, epoch-filtered.
    out = io.StringIO()
    rc = fleet_main(["classes", "--store", str(tmp_path / "store"),
                     "--epochs", "0", "--json"], out=out)
    assert rc == 0
    assert '"classes"' in out.getvalue()


def test_classes_without_context_exits_one(tmp_path):
    config = FleetConfig(machines=1, epochs=1,
                         epoch_instructions=6_000)
    FleetSession(config).run(FleetStore(tmp_path / "plain"))
    out = io.StringIO()
    rc = fleet_main(["classes", "--store", str(tmp_path / "plain")],
                    out=out)
    assert rc == 1
    assert "--context" in out.getvalue()


def test_ctx_merge_is_order_independent(tmp_path):
    deltas = []
    for index, seed in enumerate((1, 102)):
        machine = FleetMachine("m%02d" % index, "dss", seed,
                               context=True, drain_interval=3_000)
        deltas.append(machine.run_epoch(9_000))
    store_ab = FleetStore(tmp_path / "ab")
    store_ba = FleetStore(tmp_path / "ba")
    for delta in deltas:
        store_ab.ingest(delta)
    for delta in reversed(deltas):
        store_ba.ingest(delta)
    assert canonical_ledger_bytes(store_ab.ctx_meta()) \
        == canonical_ledger_bytes(store_ba.ctx_meta())
