"""Tests for dcpix, dcpicfg and per-process profiles."""

import pytest

from conftest import make_copy_workload
from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.tools.dcpicfg import dcpicfg
from repro.tools.dcpix import dcpix, pixie_counts


@pytest.fixture(scope="module")
def copy_result():
    session = ProfileSession(
        MachineConfig(),
        SessionConfig(cycles_period=(120, 128), event_period=64, seed=3))
    return session.run(make_copy_workload(n=6000))


class TestDcpix:
    def test_block_counts_close_to_truth(self, copy_result):
        image = copy_result.daemon.images["copy.prog"]
        profile = copy_result.profile_for("copy.prog")
        counts = pixie_counts(image, profile)
        machine = copy_result.machine
        # The loop block dominates; its estimate must be near truth.
        hot_start, (n_insts, estimate) = max(
            counts.items(), key=lambda kv: kv[1][1])
        true = machine.gt_count[hot_start]
        assert abs(estimate - true) / true < 0.35

    def test_render_format(self, copy_result):
        image = copy_result.daemon.images["copy.prog"]
        profile = copy_result.profile_for("copy.prog")
        text = dcpix(image, profile)
        assert "# dcpix" in text
        data_lines = [line for line in text.splitlines()
                      if not line.startswith("#")]
        assert data_lines
        for line in data_lines:
            addr, n, count = line.split()
            assert int(n) > 0 and int(count) >= 0

    def test_comparable_with_pixie_baseline(self):
        """dcpix's estimated counts vs the pixie baseline's exact ones:
        the paper's sampled-vs-instrumented comparison in one test."""
        from repro.baselines import PixieProfiler
        from repro.workloads import mccalpin

        workload = mccalpin.build("assign", n=4096, iterations=2)
        exact = PixieProfiler(MachineConfig()).profile(workload)
        exact_counts = exact.data["block_counts"]

        session = ProfileSession(
            MachineConfig(),
            SessionConfig(cycles_period=(60, 64), event_period=64))
        result = session.run(mccalpin.build("assign", n=4096,
                                            iterations=2))
        image = result.daemon.images["mccalpin"]
        estimated = pixie_counts(image, result.profile_for("mccalpin"))

        # Compare the dominant block (addresses differ: the pixie image
        # is rewritten; match by maximum count).
        exact_hot = max(exact_counts.values())
        est_hot = max(count for _, count in estimated.values())
        assert abs(est_hot - exact_hot) / exact_hot < 0.35


class TestDcpicfg:
    def test_dot_structure(self, copy_result):
        image = copy_result.daemon.images["copy.prog"]
        profile = copy_result.profile_for("copy.prog")
        dot = dcpicfg(image, "copy", profile)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "b0" in dot
        assert "->" in dot
        assert "exit" in dot
        assert "count=" in dot and "cpi=" in dot

    def test_edge_annotations(self, copy_result):
        image = copy_result.daemon.images["copy.prog"]
        profile = copy_result.profile_for("copy.prog")
        dot = dcpicfg(image, "copy", profile)
        # The loop back-edge count appears as a label.
        assert 'label="' in dot


class TestPerProcessProfiles:
    def test_per_pid_profiles_split_the_merged_one(self):
        from repro.workloads import gcc

        workload = gcc.build(files=4, scale=10)
        session = ProfileSession(
            MachineConfig(),
            SessionConfig(cycles_period=(120, 128), event_period=64,
                          per_process_images=("cc1",)))
        result = session.run(workload, max_instructions=60_000)
        merged = result.profile_for("cc1")
        pids = {p.pid for p in result.machine.processes}
        per_pid = [result.process_profile(pid, "cc1") for pid in pids]
        per_pid = [p for p in per_pid if p is not None]
        assert len(per_pid) >= 2
        assert (sum(p.total(EventType.CYCLES) for p in per_pid)
                == merged.total(EventType.CYCLES))

    def test_not_collected_unless_requested(self, copy_result):
        assert copy_result.daemon.process_profiles == {}


class TestDcpilist:
    def test_annotated_listing(self, copy_result):
        from repro.tools.dcpilist import dcpilist, line_samples

        image = copy_result.daemon.images["copy.prog"]
        profile = copy_result.profile_for("copy.prog")
        by_line = line_samples(image, profile)
        assert by_line
        text = dcpilist(image, profile)
        assert "annotated source" in text
        # Every source line appears; hot lines carry counts.
        assert len(text.splitlines()) == len(image.source.splitlines()) + 1
        assert "stq" in text
        hot_line = max(by_line, key=by_line.get)
        hot_text = image.source.splitlines()[hot_line - 1].strip()
        assert hot_text in text

    def test_sourceless_image_rejected(self, copy_result):
        from repro.tools.dcpilist import dcpilist

        image = copy_result.daemon.images["copy.prog"]
        profile = copy_result.profile_for("copy.prog")
        source, image.source = image.source, None
        try:
            with pytest.raises(ValueError):
                dcpilist(image, profile)
        finally:
            image.source = source
