"""Layer-1 (image) checker tests: clean images, directed defects.

Every rule in :mod:`repro.check.image_checks` gets a known-bad image
that must produce its finding, plus a hypothesis property that
assembled-and-linked programs survive the encode/predecode round-trip
checks.  The call-barrier and FP-initialization cases are regression
tests for real defects ``dcpicheck`` surfaced in the seed workloads.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.alpha.assembler import assemble
from repro.alpha.instruction import Instruction
from repro.check import ERROR, INFO, WARNING
from repro.check.image_checks import check_image
from repro.check.runner import run_image_layer
from repro.cpu.config import MachineConfig
from repro.cpu.machine import Machine


def linked(text):
    machine = Machine(MachineConfig(), seed=1)
    image = assemble(text)
    machine.spawn(image, name="t")
    return image


def rules(findings, rule=None, severity=None):
    return [f for f in findings
            if (rule is None or f.rule == rule)
            and (severity is None or f.severity == severity)]


CLEAN = """
.image clean.prog
.data buf, 4096
.proc main
    lda   t1, =buf
    lda   t0, 64(zero)
top:
    ldq   t4, 0(t1)
    addq  t4, 7, t5
    stq   t5, 0(t1)
    subq  t0, 1, t0
    bgt   t0, top
    ret
.end
"""


class TestCleanImages:
    def test_clean_image_has_no_findings(self):
        assert check_image(linked(CLEAN)) == []

    def test_unlinked_image_is_an_error(self):
        findings = check_image(assemble(CLEAN))
        assert [f.rule for f in findings] == ["image/unlinked"]
        assert findings[0].severity == ERROR


_POOL = ("addq", "mulq", "sll", "cmpult", "ldq", "stq")


@st.composite
def _programs(draw):
    """A loop whose body reads only registers defined above it."""
    lines = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        op = draw(st.sampled_from(_POOL))
        imm = draw(st.integers(min_value=0, max_value=255))
        dst = "t%d" % draw(st.integers(min_value=2, max_value=7))
        if op == "ldq":
            lines.append("    ldq   %s, %d(t1)" % (dst, 8 * (imm % 64)))
        elif op == "stq":
            lines.append("    stq   t0, %d(t1)" % (8 * (imm % 64)))
        elif op == "mulq":
            lines.append("    mulq  t0, t0, %s" % dst)
        else:
            lines.append("    %-5s t0, %d, %s" % (op, imm, dst))
    iters = draw(st.integers(min_value=1, max_value=50))
    return """
.image prop.prog
.data buf, 4096
.proc main
    lda   t1, =buf
    lda   t0, %d(zero)
top:
%s
    subq  t0, 1, t0
    bgt   t0, top
    ret
.end
""" % (iters, "\n".join(lines))


class TestRoundtripProperty:
    @settings(max_examples=30, deadline=None)
    @given(_programs())
    def test_assembled_images_pass_layer1(self, text):
        findings = check_image(linked(text))
        # Generated bodies may contain dead writes (INFO); nothing
        # more severe is acceptable, and in particular the encode/
        # decode/predecode round-trip must be exact.
        assert rules(findings, severity=ERROR) == []
        assert rules(findings, severity=WARNING) == []


class TestDataflow:
    def test_fp_use_before_def_is_an_error(self):
        image = linked("""
.image fpbug.prog
.proc main
    addt  f1, f1, f2
    ret
.end
""")
        found = rules(check_image(image), "image/use-before-def")
        assert len(found) == 1
        assert found[0].severity == ERROR
        assert "f1" in found[0].message

    def test_int_use_before_def_is_a_warning(self):
        image = linked("""
.image intbug.prog
.proc main
    addq  t5, 1, t0
    ret
.end
""")
        found = rules(check_image(image), "image/use-before-def")
        assert len(found) == 1
        assert found[0].severity == WARNING

    def test_abi_live_in_registers_are_not_flagged(self):
        # Arguments (a0), callee-saved (s0) and ra are live at entry.
        image = linked("""
.image abi.prog
.proc main
    addq  a0, 1, t0
    addq  s0, t0, t1
    ret
.end
""")
        assert rules(check_image(image), "image/use-before-def") == []

    def test_dead_write_is_reported(self):
        image = linked("""
.image dead.prog
.proc main
    lda   t0, 1(zero)
    lda   t0, 2(zero)
    ret
.end
""")
        found = rules(check_image(image), "image/dead-write")
        assert len(found) == 1
        assert found[0].severity == INFO

    def test_call_is_a_dead_write_barrier(self):
        # Two consecutive calls both write ra; the callee reads it via
        # ret, so the first write is NOT dead (regression: this fired
        # 86 false positives on the seed registry before the barrier).
        image = linked("""
.image calls.prog
.proc main
    bsr   ra, helper
    bsr   ra, helper
    ret
.end
.proc helper
    ret
.end
""")
        findings = check_image(image)
        assert rules(findings, "image/dead-write") == []
        assert rules(findings, severity=ERROR) == []


class TestControlFlow:
    def test_branch_target_out_of_image(self):
        image = linked(CLEAN)
        branch = [i for i in image.instructions if i.op == "bgt"][0]
        branch.target = image.end + 0x1000
        assert rules(check_image(image),
                     "image/branch-target-out-of-image")

    def test_branch_target_misaligned(self):
        image = linked(CLEAN)
        branch = [i for i in image.instructions if i.op == "bgt"][0]
        branch.target = image.base + 2
        assert rules(check_image(image),
                     "image/branch-target-misaligned")

    def test_fallthrough_off_image_end(self):
        image = linked("""
.image fall.prog
.proc main
    lda   t0, 1(zero)
.end
""")
        assert rules(check_image(image), "image/fallthrough-off-image")

    def test_unreachable_block_is_a_warning(self):
        image = linked("""
.image unreach.prog
.proc main
    ret
    lda   t0, 1(zero)
    ret
.end
""")
        found = rules(check_image(image), "image/unreachable-block")
        assert found and found[0].severity == WARNING


class TestStructure:
    def test_address_gap(self):
        image = linked(CLEAN)
        image.instructions[2].addr += 4
        assert rules(check_image(image), "image/address-gap")

    def test_procedure_out_of_image(self):
        image = linked(CLEAN)
        image.procedures[0].end = image.end + 64
        assert rules(check_image(image), "image/procedure-out-of-image")

    def test_uncovered_tail_is_a_warning(self):
        image = linked(CLEAN)
        image.procedures[0].end -= 8
        found = rules(check_image(image), "image/uncovered-code")
        assert found and found[0].severity == WARNING

    def test_empty_procedure(self):
        image = linked(CLEAN)
        image.procedures[0].end = image.procedures[0].start
        assert rules(check_image(image), "image/empty-procedure")


class TestRoundtripDefects:
    def test_unencodable_instruction_is_reported(self):
        image = linked(CLEAN)
        old = image.instructions[0]
        image.instructions[0] = Instruction(
            "lda", ra=1, rb=31, imm=1 << 30, addr=old.addr)
        assert rules(check_image(image), "image/encoding-roundtrip")


class TestSeedWorkloadRegressions:
    """The FP-initialization defects dcpicheck found in the seed."""

    @pytest.mark.parametrize("name", ["specfp95", "wave5"])
    def test_fp_workloads_define_f1_before_use(self, name):
        findings = run_image_layer([name])
        assert rules(findings, "image/use-before-def") == []
        assert findings == []

    def test_asmgen_fp_flavor_seeds_its_accumulator(self):
        from repro.workloads.asmgen import loop_proc

        text = ".image fpgen.prog\n" + loop_proc(
            "fp1", 8, flavor="fp")
        assert rules(check_image(linked(text)),
                     "image/use-before-def") == []
