"""Tests for decoded-instruction operand roles and disassembly."""

import pytest

from repro.alpha import regs
from repro.alpha.instruction import Instruction

T0 = regs.parse_register("t0")
T1 = regs.parse_register("t1")
T2 = regs.parse_register("t2")
ZERO = regs.ZERO_REG
F1 = regs.parse_register("f1")
F2 = regs.parse_register("f2")
F3 = regs.parse_register("f3")


class TestRoles:
    def test_operate_reads_ra_rb_writes_rc(self):
        inst = Instruction("addq", ra=T0, rb=T1, rc=T2)
        assert set(inst.srcs) == {T0, T1}
        assert inst.dst == T2

    def test_operate_with_literal_reads_only_ra(self):
        inst = Instruction("addq", ra=T0, imm=4, rc=T2)
        assert inst.srcs == (T0,)

    def test_cmov_also_reads_old_destination(self):
        inst = Instruction("cmovne", ra=T0, rb=T1, rc=T2)
        assert set(inst.srcs) == {T0, T1, T2}

    def test_load_writes_ra_reads_base(self):
        inst = Instruction("ldq", ra=T0, rb=T1, imm=8)
        assert inst.srcs == (T1,)
        assert inst.dst == T0

    def test_store_reads_data_and_base(self):
        inst = Instruction("stq", ra=T0, rb=T1, imm=8)
        assert set(inst.srcs) == {T0, T1}
        assert inst.dst is None

    def test_zero_register_never_a_source_or_dest(self):
        inst = Instruction("addq", ra=ZERO, rb=ZERO, rc=ZERO)
        assert inst.srcs == ()
        assert inst.dst is None

    def test_fp_zero_register_discarded(self):
        inst = Instruction("addt", ra=F1, rb=F2, rc=regs.FZERO_REG)
        assert inst.dst is None

    def test_conditional_branch_reads_ra(self):
        inst = Instruction("bne", ra=T0, target=0x100)
        assert inst.srcs == (T0,)
        assert inst.is_control

    def test_jump_reads_rb_writes_ra(self):
        inst = Instruction("jsr", ra=regs.parse_register("ra"), rb=T1)
        assert inst.srcs == (T1,)
        assert inst.dst == regs.parse_register("ra")

    def test_cvtqt_reads_only_rb(self):
        inst = Instruction("cvtqt", ra=F1, rb=F2, rc=F3)
        assert inst.srcs == (F2,)

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instruction("nosuchop")


class TestPredicates:
    def test_memory_predicates(self):
        load = Instruction("ldq", ra=T0, rb=T1, imm=0)
        store = Instruction("stq", ra=T0, rb=T1, imm=0)
        alu = Instruction("addq", ra=T0, rb=T1, rc=T2)
        assert load.is_memory and load.is_load and not load.is_store
        assert store.is_memory and store.is_store and not store.is_load
        assert not alu.is_memory

    def test_control_predicate(self):
        assert Instruction("br", ra=ZERO, target=0).is_control
        assert Instruction("ret", ra=ZERO,
                           rb=regs.parse_register("ra")).is_control
        assert not Instruction("nop").is_control


class TestDisassembly:
    @pytest.mark.parametrize("inst,expected", [
        (Instruction("addq", ra=T0, imm=4, rc=T2), "addq t0, 4, t2"),
        (Instruction("ldq", ra=T0, rb=T1, imm=16), "ldq t0, 16(t1)"),
        (Instruction("bne", ra=T0, target=0x1234), "bne t0, 0x001234"),
        (Instruction("nop"), "nop"),
    ])
    def test_disassemble(self, inst, expected):
        assert inst.disassemble() == expected

    def test_repr_contains_address(self):
        inst = Instruction("nop", addr=0x4000)
        assert "004000" in repr(inst)
