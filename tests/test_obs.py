"""Tests for the ``repro.obs`` self-monitoring subsystem."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.alpha.assembler import assemble
from repro.collect.daemon import Daemon
from repro.collect.driver import Driver, DriverConfig
from repro.cpu.events import EventType
from repro.obs import (COUNTER, GAUGE, HISTOGRAM, NULL_OBS,
                       MetricsRegistry, ObsConfig, TraceRecorder,
                       flatten_metrics, legacy_daemon_stats,
                       legacy_driver_stats, merge_metrics, read_events,
                       span_durations, trace_counters)
from repro.osim.loader import Loader


class FakeClock:
    """Deterministic clock: each read advances by *step* seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step
        self.reads = 0

    def __call__(self):
        self.reads += 1
        value = self.now
        self.now += self.step
        return value


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("x") is counter
        assert counter.snapshot() == {"type": COUNTER, "value": 5}

    def test_gauge_tracks_peak(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.set(3)
        snap = gauge.snapshot()
        assert snap["type"] == GAUGE
        assert snap["value"] == 3
        assert snap["peak"] == 10

    def test_histogram_buckets(self):
        hist = MetricsRegistry().histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["type"] == HISTOGRAM
        assert snap["count"] == 3
        assert snap["total"] == pytest.approx(55.5)
        assert sum(snap["buckets"]) == 3

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(TypeError):
            registry.gauge("name")

    def test_timeit_uses_injected_clock(self):
        clock = FakeClock(step=0.25)
        registry = MetricsRegistry(clock=clock)
        with registry.timeit("t"):
            pass
        snap = registry.histogram("t").snapshot()
        assert snap["count"] == 1
        assert snap["total"] == pytest.approx(0.25)

    def test_flatten(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        flat = flatten_metrics(registry.to_dict())
        assert flat["c"] == 2
        assert flat["g"] == 7
        assert flat["g.peak"] == 7


def _registry_from(spec):
    """Build a registry from {name: [int deltas]} (counters only)."""
    registry = MetricsRegistry()
    for name, deltas in spec.items():
        for delta in deltas:
            registry.counter(name).inc(delta)
    return registry.to_dict()


SNAPSHOT_SPECS = st.dictionaries(
    st.sampled_from(["a", "b", "c"]),
    st.lists(st.integers(min_value=0, max_value=100), max_size=4),
    max_size=3)


class TestMerge:
    def test_counters_sum_gauges_max(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("n").inc(3)
        r2.counter("n").inc(4)
        r1.gauge("g").set(10)
        r2.gauge("g").set(2)
        merged = merge_metrics([r1.to_dict(), r2.to_dict()])
        assert merged["n"]["value"] == 7
        assert merged["g"]["value"] == 10
        assert merged["g"]["peak"] == 10

    def test_histograms_add_bucketwise(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.histogram("h", bounds=(1.0,)).observe(0.5)
        r2.histogram("h", bounds=(1.0,)).observe(2.0)
        merged = merge_metrics([r1.to_dict(), r2.to_dict()])
        assert merged["h"]["count"] == 2
        assert merged["h"]["buckets"] == [1, 1]

    @given(st.lists(SNAPSHOT_SPECS, max_size=5), st.randoms())
    def test_merge_is_order_independent(self, specs, rng):
        snapshots = [_registry_from(spec) for spec in specs]
        shuffled = list(snapshots)
        rng.shuffle(shuffled)
        assert merge_metrics(snapshots) == merge_metrics(shuffled)

    @given(st.lists(SNAPSHOT_SPECS, min_size=2, max_size=5),
           st.integers(min_value=1, max_value=4))
    def test_merge_is_grouping_independent(self, specs, split):
        snapshots = [_registry_from(spec) for spec in specs]
        split = min(split, len(snapshots) - 1)
        left = merge_metrics(snapshots[:split])
        right = merge_metrics(snapshots[split:])
        assert (merge_metrics([left, right])
                == merge_metrics(snapshots))


class TestNullObs:
    def test_disabled_config_builds_null(self):
        assert ObsConfig(enabled=False).build() is NULL_OBS

    def test_null_obs_is_inert_and_clock_free(self):
        clock = FakeClock()
        obs = ObsConfig(enabled=False, clock=clock).build()
        obs.counter("c").inc(5)
        obs.gauge("g").set(1)
        obs.histogram("h").observe(2.0)
        with obs.timeit("t"):
            with obs.span("s", detail=1):
                pass
        assert clock.reads == 0
        assert obs.registry.to_dict() == {}
        assert obs.trace.events == ()
        assert obs.snapshot() == {}

    def test_enabled_config_builds_live(self):
        obs = ObsConfig(enabled=True, clock=FakeClock()).build()
        obs.counter("c").inc()
        assert obs.enabled
        assert obs.snapshot()["c"]["value"] == 1


class TestTrace:
    def test_span_nesting_and_timing(self):
        clock = FakeClock(step=1.0)
        trace = TraceRecorder(clock=clock)
        with trace.span("outer"):
            with trace.span("inner", detail="x"):
                pass
        # Events appended at close: inner first.
        inner, outer = trace.events
        assert inner["name"] == "inner"
        assert inner["args"] == {"detail": "x"}
        assert outer["ts"] <= inner["ts"]
        assert outer["dur"] >= inner["dur"]

    def test_write_and_read_jsonl_and_json(self, tmp_path):
        trace = TraceRecorder(clock=FakeClock())
        with trace.span("s"):
            pass
        trace.counter("metric", 42)
        for name in ("t.jsonl", "t.json"):
            path = tmp_path / name
            trace.write(str(path))
            events = read_events(str(path))
            assert [e["name"] for e in events] == ["s", "metric"]
        # the .json form is a single loadable array
        assert isinstance(json.loads((tmp_path / "t.json").read_text()),
                          list)

    def test_span_durations_self_time(self):
        events = [
            {"ph": "X", "name": "child", "ts": 10.0, "dur": 30.0,
             "pid": 0, "tid": 0},
            {"ph": "X", "name": "parent", "ts": 0.0, "dur": 100.0,
             "pid": 0, "tid": 0},
        ]
        phases = span_durations(events)
        assert phases["parent"]["total_us"] == 100.0
        assert phases["parent"]["self_us"] == 70.0
        assert phases["child"]["self_us"] == 30.0

    def test_span_durations_separate_pids_do_not_nest(self):
        events = [
            {"ph": "X", "name": "a", "ts": 0.0, "dur": 100.0,
             "pid": 0, "tid": 0},
            {"ph": "X", "name": "b", "ts": 10.0, "dur": 30.0,
             "pid": 1, "tid": 0},
        ]
        phases = span_durations(events)
        assert phases["a"]["self_us"] == 100.0

    def test_trace_counters_keeps_last_value(self):
        trace = TraceRecorder(clock=FakeClock())
        trace.counter("x", 1)
        trace.counter("x", 9)
        assert trace_counters(trace.events) == {"x": 9}

    def test_observability_finish_writes_trace(self, tmp_path):
        path = tmp_path / "out.jsonl"
        obs = ObsConfig(enabled=True, trace_path=str(path),
                        clock=FakeClock()).build()
        with obs.span("only"):
            pass
        obs.finish()
        assert [e["name"] for e in read_events(str(path))] == ["only"]


def make_driver(**overrides):
    defaults = dict(buckets=16, assoc=4, overflow_capacity=8,
                    cost_scale=1.0)
    defaults.update(overrides)
    return Driver(1, DriverConfig(**defaults))


def make_daemon(pid=7):
    loader = Loader()
    daemon = Daemon(loader, periods={EventType.CYCLES: 100.0})
    image = loader.link(assemble(
        ".image app\n.proc main\n    nop\n    ret\n.end"))
    loader.notify_exec(pid, [image])
    return loader, daemon, image


class TestDaemonPeakResident:
    def test_peak_survives_epoch_clear_without_drain(self):
        """The old code sampled the peak only inside ``drain()``: a
        footprint spike cleared by ``advance_epoch`` before the next
        drain was lost.  Every allocation-relevant point samples now."""
        loader, daemon, image = make_daemon()
        driver = make_driver()
        for i in range(32):
            driver.record(0, 7, image.base + 4 * (i % 2),
                          EventType.CYCLES, i)
        daemon.drain(driver)
        loaded_peak = daemon.peak_resident_bytes()
        assert loaded_peak > daemon.resident_bytes() - 1  # sanity
        daemon.advance_epoch()  # clears profiles, shrinking residency
        assert daemon.resident_bytes() < loaded_peak
        assert daemon.peak_resident_bytes() == loaded_peak

    def test_loadmap_growth_is_sampled(self):
        loader, daemon, image = make_daemon()
        before = daemon.peak_resident_bytes()
        extra = loader.link(assemble(
            ".image lib\n.proc f\n    nop\n    ret\n.end"))
        loader.notify_exec(8, [extra])
        assert daemon.peak_resident_bytes() > before

    def test_resident_gauge_follows_when_enabled(self):
        loader = Loader()
        obs = ObsConfig(enabled=True, clock=FakeClock()).build()
        daemon = Daemon(loader, periods={EventType.CYCLES: 100.0},
                        obs=obs)
        image = loader.link(assemble(
            ".image app\n.proc main\n    nop\n    ret\n.end"))
        loader.notify_exec(7, [image])
        snap = obs.registry.to_dict()["daemon.resident_bytes"]
        assert snap["value"] == daemon.resident_bytes()
        assert snap["peak"] == daemon.peak_resident_bytes()


class TestLegacyShims:
    def test_driver_stats_match_schema(self):
        driver = make_driver()
        for i in range(6):
            driver.record(0, 1, 0x100 + 4 * (i % 3), EventType.CYCLES, i)
        stats = driver.stats()
        flat = legacy_driver_stats(driver)
        assert stats == flat
        assert stats["samples"] == 6
        assert stats["hits"] + stats["misses"] == stats["samples"]
        assert stats["miss_rate"] == pytest.approx(
            stats["misses"] / stats["samples"])

    def test_daemon_stats_match_schema(self):
        loader, daemon, image = make_daemon()
        driver = make_driver()
        driver.record(0, 7, image.base, EventType.CYCLES, 0)
        daemon.drain(driver)
        stats = daemon.stats()
        assert stats == legacy_daemon_stats(daemon)
        assert stats["samples"] == 1
        assert stats["resident_bytes"] == daemon.resident_bytes()
        assert stats["peak_resident_bytes"] == daemon.peak_resident_bytes()

    def test_hashtable_stats_keys(self):
        driver = make_driver()
        driver.record(0, 1, 0x100, EventType.CYCLES, 0)
        table_stats = driver.cpus[0].table.stats()
        assert set(table_stats) == {"hits", "misses", "evictions",
                                    "miss_rate", "aggregation_factor"}
