"""Tests for the global flow-constraint solver (section 6.1.4)."""

import pytest

from repro.alpha.assembler import assemble
from repro.core.cfg import build_cfg
from repro.core.frequency import estimate_frequencies
from repro.core.schedule import schedule_cfg
from repro.core.solver import flow_residual, refine_global

DIAMOND = """
.image d
.proc main
    lda t0, 200(zero)
head:
    and t0, 1, t1
    beq t1, else_
    addq t2, 1, t2
    addq t3, 1, t3
    xor t2, t3, t4
    br join
else_:
    nop
join:
    subq t0, 1, t0
    bgt t0, head
    ret
.end
"""


def setup_freq(samples):
    image = assemble(DIAMOND, base=0x1000)
    cfg = build_cfg(image.procedure("main"))
    schedules = schedule_cfg(cfg)
    freq = estimate_frequencies(cfg, schedules, samples, 100.0)
    return cfg, freq


CONSISTENT = {
    0x1004: 100, 0x1008: 100,
    0x100C: 50, 0x1010: 50, 0x1014: 50, 0x1018: 50,
    0x1020: 100, 0x1024: 100,
}

# The then-arm's samples imply more executions than its parent block:
# the flow constraints are violated.
INCONSISTENT = {
    0x1004: 100, 0x1008: 100,
    0x100C: 90, 0x1010: 90, 0x1014: 90, 0x1018: 90,
    0x101C: 60,  # else-arm also over-sampled
    0x1020: 100, 0x1024: 100,
}


class TestSolver:
    def test_reduces_flow_residual(self):
        cfg, freq = setup_freq(INCONSISTENT)
        before = flow_residual(cfg, freq.classes, freq)
        refine_global(cfg, freq.classes, freq)
        after = flow_residual(cfg, freq.classes, freq)
        assert after < before * 0.5

    def test_consistent_estimates_barely_move(self):
        cfg, freq = setup_freq(CONSISTENT)
        head = cfg.block_at(0x1004)
        before = freq.block_count(head.index)
        shift = refine_global(cfg, freq.classes, freq)
        after = freq.block_count(head.index)
        assert abs(after - before) / before < 0.10
        assert shift < 0.25

    def test_counts_stay_nonnegative(self):
        cfg, freq = setup_freq(INCONSISTENT)
        refine_global(cfg, freq.classes, freq)
        for block in cfg.blocks:
            assert freq.block_count(block.index) >= 0.0
        for edge in cfg.edges:
            assert freq.edge_count(edge.index) >= 0.0

    def test_arm_sum_approximates_head_after_solving(self):
        cfg, freq = setup_freq(INCONSISTENT)
        refine_global(cfg, freq.classes, freq)
        head = freq.block_count(cfg.block_at(0x1004).index)
        then = freq.block_count(cfg.block_at(0x100C).index)
        els = freq.block_count(cfg.block_at(0x101C).index)
        assert then + els == pytest.approx(head, rel=0.15)

    def test_unknown_classes_get_values(self):
        samples = {0x1004: 100, 0x1008: 100,
                   0x100C: 50, 0x1010: 50, 0x1014: 50, 0x1018: 50}
        cfg, freq = setup_freq(samples)
        refine_global(cfg, freq.classes, freq)
        for block in cfg.blocks:
            assert freq.block_count(block.index) is not None

    def test_integration_via_analysis_config(self):
        from repro.collect.database import ImageProfile
        from repro.core.analyze import AnalysisConfig, analyze_procedure
        from repro.cpu.events import EventType

        image = assemble(DIAMOND, base=0x1000)
        profile = ImageProfile(image,
                               periods={EventType.CYCLES: 100.0})
        for addr, count in INCONSISTENT.items():
            profile.add(EventType.CYCLES, addr - image.base, count)
        plain = analyze_procedure(image, "main", profile)
        solved = analyze_procedure(
            image, "main", profile, AnalysisConfig(global_solver=True))
        residual_plain = flow_residual(plain.cfg, plain.freq.classes,
                                       plain.freq)
        residual_solved = flow_residual(solved.cfg, solved.freq.classes,
                                        solved.freq)
        assert residual_solved <= residual_plain
