"""Unit tests for the simulator fast path (block-level issue cache)."""

import os
from unittest import mock

from repro.alpha.assembler import assemble
from repro.cpu.config import CacheConfig, MachineConfig
from repro.cpu.fastpath import FastPath, cache_geometry
from repro.cpu.machine import Machine
from repro.obs.schema import derive, session_metrics
from repro.workloads.asmgen import loop_proc


def run_loop(iters=400, flavor="int", fastpath=True, data="", **kw):
    config = MachineConfig()
    config.fastpath = fastpath
    machine = Machine(config, seed=1)
    text = loop_proc("work", iters, flavor, **kw)
    image = machine.load_image(
        assemble(".image t\n%s%s" % (data, text)))
    machine.spawn(image)
    machine.run(max_instructions=500_000)
    return machine


class TestCacheGeometry:
    def test_direct_mapped_power_of_two(self):
        geom = cache_geometry(CacheConfig(8192, 32, 1, 2))
        assert geom == (5, 255)

    def test_set_associative_rejected(self):
        assert cache_geometry(CacheConfig(8192, 32, 2, 2)) is None

    def test_non_power_of_two_sets_rejected(self):
        # 96KB 1-way with 64B lines: 1536 sets.
        assert cache_geometry(CacheConfig(96 * 1024, 64, 1, 3)) is None


class TestConfigKnob:
    def test_default_on(self):
        machine = Machine(MachineConfig(), seed=1)
        assert machine.fastpath is not None

    def test_config_off(self):
        config = MachineConfig()
        config.fastpath = False
        machine = Machine(config, seed=1)
        assert machine.fastpath is None

    def test_env_var_disables(self):
        with mock.patch.dict(os.environ, {"REPRO_SIM_FASTPATH": "0"}):
            assert MachineConfig().fastpath is False


class TestDiscovery:
    def test_unknown_address_blacklisted(self):
        fp = FastPath({})
        assert fp.discover(0x1000) is False
        # The negative result is cached.
        assert fp.blocks[0x1000] is False

    def test_hot_loop_discovers_blocks(self):
        machine = run_loop()
        fp = machine.fastpath
        assert any(block for block in fp.blocks.values() if block)
        assert fp.replays > 0
        assert fp.replayed_instructions > 0

    def test_load_image_invalidates(self):
        machine = run_loop()
        fp = machine.fastpath
        assert fp.blocks
        machine.load_image(
            assemble(".image u\n" + loop_proc("other", 3, "int")))
        assert not fp.blocks
        assert fp.invalidations >= 1


class TestTiering:
    def test_hot_variants_compile_cold_stay_interpreted(self):
        machine = run_loop(iters=400)
        fp = machine.fastpath
        compiled = [v for b in fp.blocks.values() if b
                    for v in b.variants.values() if v.fn is not None]
        cold = [v for b in fp.blocks.values() if b
                for v in b.variants.values() if v.fn is None]
        # The loop body recurs hundreds of times: it must tier up.
        assert compiled
        assert fp.compiled_variants == len(compiled)
        # Cold variants keep accumulating uses below the threshold
        # instead of being re-recorded.
        for variant in cold:
            assert variant.uses < fp.COMPILE_USES

    def test_single_shot_code_never_compiles(self):
        # One pass over straight-line code: every variant is seen once.
        machine = run_loop(iters=1)
        fp = machine.fastpath
        assert fp.compiled_variants <= fp.recordings


class TestChaining:
    def test_hot_loop_links_blocks(self):
        machine = run_loop(iters=400, flavor="branchy")
        fp = machine.fastpath
        assert fp.links_followed > 0
        # Precomputed residual checks must hold on a steady-state loop.
        assert fp.link_mismatches <= fp.links_followed

    def test_links_only_target_compiled_variants(self):
        machine = run_loop(iters=400, flavor="branchy")
        fp = machine.fastpath
        for block in fp.blocks.values():
            if not block:
                continue
            for variant in block.variants.values():
                for target, _key0, _checks, _im, _fd in (
                        variant.links.values()):
                    assert target.fn is not None


class TestDeferredGroundTruth:
    def test_flush_leaves_no_pending_hits(self):
        machine = run_loop()
        fp = machine.fastpath
        # Core.run flushed the deferred per-variant hit counts into
        # the ground-truth dicts before returning.
        assert not fp.deferred
        for block in fp.blocks.values():
            if not block:
                continue
            for variant in block.variants.values():
                assert variant.hits == 0


class TestSnapshotAndObs:
    def test_snapshot_keys(self):
        machine = run_loop()
        snap = machine.fastpath.snapshot()
        for key in ("replays", "replayed_instructions", "bails",
                    "recordings", "compiled_variants", "variant_misses",
                    "links_followed", "link_mismatches",
                    "headroom_skips", "blocks", "variants",
                    "invalidations", "context_switches"):
            assert key in snap
        assert snap["replays"] >= 1
        assert snap["variants"] >= 1

    def test_session_metrics_include_fastpath(self):
        from repro.collect.session import ProfileSession, SessionConfig
        from repro.workloads.registry import get_workload

        session = ProfileSession(MachineConfig(), SessionConfig(seed=1))
        result = session.run(get_workload("wave5"),
                             max_instructions=20_000)
        flat = derive(session_metrics(result))
        assert flat["sim.fastpath.replays"] > 0
        assert 0.0 <= flat["sim.fastpath.replay_fraction"] <= 1.0
        assert flat["sim.fastpath.bail_rate"] >= 0.0
