"""Coverage for remaining corners: driver mux, machine helpers,
bundles with pathname images, database raw format, registers."""

import pytest

from repro.alpha import regs
from repro.alpha.assembler import assemble
from repro.collect.driver import Driver, DriverConfig
from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.cpu.machine import Machine


class TestRegisters:
    def test_aliases(self):
        assert regs.parse_register("v0") == 0
        assert regs.parse_register("sp") == 30
        assert regs.parse_register("zero") == 31
        assert regs.parse_register("fp") == regs.parse_register("s6")
        assert regs.parse_register("pv") == regs.parse_register("t12")

    def test_fp_registers_offset(self):
        assert regs.parse_register("f0") == 32
        assert regs.parse_register("f31") == 63
        assert regs.is_fp(40)
        assert not regs.is_fp(5)

    def test_display_names_round_trip(self):
        for name in ("t0", "a3", "ra", "sp", "f7"):
            num = regs.parse_register(name)
            assert regs.parse_register(regs.register_name(num)) == num

    def test_is_register(self):
        assert regs.is_register("T4")  # case-insensitive
        assert not regs.is_register("t99")


class TestDriverMux:
    def test_rotate_cycles_through_events(self):
        machine = Machine(MachineConfig(), seed=1)
        driver = Driver(1, DriverConfig(mode="mux"))
        driver.install(machine)
        core = machine.cores[0]

        def current_event():
            return core.counters.slots[1].event

        seen = [current_event()]
        for _ in range(3):
            driver.rotate_mux()
            seen.append(current_event())
        assert seen[0] == seen[3]  # wrapped around
        assert len(set(seen[:3])) == 3

    def test_rotate_noop_for_default_mode(self):
        machine = Machine(MachineConfig(), seed=1)
        driver = Driver(1, DriverConfig(mode="default"))
        driver.install(machine)
        driver.rotate_mux()  # must not raise
        assert len(machine.cores[0].counters.slots) == 2

    def test_cost_scale_auto_derivation(self):
        config = DriverConfig(cycles_period=(62 * 1024, 62 * 1024))
        assert config.effective_cost_scale() == pytest.approx(1.0)
        scaled = DriverConfig(cycles_period=(620, 620))
        assert scaled.effective_cost_scale() == pytest.approx(
            620 / (62 * 1024))

    def test_kernel_memory_scales_with_cpus(self):
        one = Driver(1, DriverConfig()).kernel_memory_bytes()
        four = Driver(4, DriverConfig()).kernel_memory_bytes()
        assert four == 4 * one


class TestMachineHelpers:
    PROGRAM = """
.image m
.proc main
    lda t0, 50(zero)
top:
    subq t0, 1, t0
    bgt t0, top
    ret
.end
"""

    def test_true_counts_and_head_cycles(self):
        machine = Machine(MachineConfig(), seed=1)
        image = machine.load_image(assemble(self.PROGRAM))
        machine.spawn(image)
        machine.run()
        counts = machine.true_counts_for(image)
        heads = machine.true_head_cycles_for(image)
        subq = image.instructions[1]
        assert counts[subq.addr] == 50
        assert heads[subq.addr] >= 50
        assert set(counts) == {i.addr for i in image.instructions}

    def test_time_is_max_over_cores(self):
        machine = Machine(MachineConfig(num_cpus=2), seed=1)
        image = machine.load_image(assemble(self.PROGRAM))
        machine.spawn(image)  # only one process: core 1 stays idle
        machine.run()
        assert machine.time == machine.cores[0].time

    def test_image_transform_applied_once(self):
        calls = []
        machine = Machine(MachineConfig(), seed=1)

        def transform(image):
            calls.append(image.name)
            return image

        machine.image_transform = transform
        image = machine.load_image(assemble(self.PROGRAM))
        machine.load_image(image)  # already linked: no second transform
        assert calls == ["m"]


class TestBundlePathnames:
    def test_multi_image_bundle_with_slashes(self, tmp_path):
        from repro.collect.bundle import load_bundle, save_bundle
        from repro.workloads import x11perf

        session = ProfileSession(
            MachineConfig(),
            SessionConfig(cycles_period=(200, 256), event_period=64))
        result = session.run(x11perf.build(scale=4, rounds=4),
                             max_instructions=100_000)
        save_bundle(result, str(tmp_path / "b"))
        profiles, meta = load_bundle(str(tmp_path / "b"))
        # Pathname-style image names survive the flattened file names.
        assert any("/" in name for name in profiles)
        for name, profile in profiles.items():
            original = result.profile_for(name)
            assert (profile.total(EventType.CYCLES)
                    == original.total(EventType.CYCLES))


class TestSchedulerEdgeCases:
    def test_run_with_no_processes(self):
        machine = Machine(MachineConfig(), seed=1)
        assert machine.run() == 0

    def test_exited_process_not_resubmitted(self):
        machine = Machine(MachineConfig(), seed=1)
        image = machine.load_image(assemble(TestMachineHelpers.PROGRAM))
        proc = machine.spawn(image)
        machine.run()
        retired = machine.instructions_retired
        machine.run()
        assert machine.instructions_retired == retired
        assert proc.exited
