"""Tests for cycle-equivalence (frequency equivalence) classes."""

from repro.alpha.assembler import assemble
from repro.core.cfg import build_cfg
from repro.core.equivalence import compute_equivalence


def classes_for(body):
    image = assemble(".image t\n.proc main\n%s\n.end" % body, base=0x1000)
    cfg = build_cfg(image.procedure("main"))
    return cfg, compute_equivalence(cfg)


class TestLoops:
    def test_loop_body_not_equivalent_to_entry(self):
        body = """
    lda t0, 5(zero)
top:
    subq t0, 1, t0
    bgt t0, top
    ret
"""
        cfg, classes = classes_for(body)
        entry = cfg.block_at(0x1000).index
        loop = cfg.block_at(0x1004).index
        assert classes.class_of[entry] != classes.class_of[loop]

    def test_entry_and_exit_blocks_equivalent(self):
        body = """
    lda t0, 5(zero)
top:
    subq t0, 1, t0
    bgt t0, top
    addq t1, 1, t1
    ret
"""
        cfg, classes = classes_for(body)
        entry = cfg.block_at(0x1000).index
        tail = cfg.block_at(0x1010).index
        assert classes.class_of[entry] == classes.class_of[tail]

    def test_back_edge_not_equivalent_to_exit_edge(self):
        body = """
top:
    subq t0, 1, t0
    bgt t0, top
    ret
"""
        cfg, classes = classes_for(body)
        taken = next(e for e in cfg.edges if e.kind == "taken")
        fall = next(e for e in cfg.edges if e.kind == "fall")
        assert (classes.class_of[("e", taken.index)]
                != classes.class_of[("e", fall.index)])

    def test_nested_loops_three_classes(self):
        body = """
    lda s0, 3(zero)
outer:
    lda s1, 4(zero)
inner:
    subq s1, 1, s1
    bgt s1, inner
    subq s0, 1, s0
    bgt s0, outer
    ret
"""
        cfg, classes = classes_for(body)
        entry = cfg.block_at(0x1000).index
        outer = cfg.block_at(0x1004).index
        inner = cfg.block_at(0x1008).index
        ids = {classes.class_of[entry], classes.class_of[outer],
               classes.class_of[inner]}
        assert len(ids) == 3


class TestBranches:
    DIAMOND = """
    and t0, 1, t1
    beq t1, else_
    addq t2, 1, t2
    br end_
else_:
    addq t3, 1, t3
end_:
    ret
"""

    def test_diamond_arms_not_equivalent(self):
        cfg, classes = classes_for(self.DIAMOND)
        then_block = cfg.block_at(0x1008).index
        else_block = cfg.block_at(0x1010).index
        assert classes.class_of[then_block] != classes.class_of[else_block]

    def test_diamond_head_and_join_equivalent(self):
        cfg, classes = classes_for(self.DIAMOND)
        head = cfg.block_at(0x1000).index
        join = cfg.block_at(0x1014).index
        assert classes.class_of[head] == classes.class_of[join]

    def test_arm_edge_equivalent_to_arm_block(self):
        cfg, classes = classes_for(self.DIAMOND)
        then_block = cfg.block_at(0x1008)
        in_edge = then_block.preds[0]
        assert (classes.class_of[then_block.index]
                == classes.class_of[("e", in_edge.index)])


class TestDegenerateCases:
    def test_missing_edges_gives_singleton_classes(self):
        body = "    lda t0, =0x1000\n    jmp (t0)"
        cfg, classes = classes_for(body)
        sizes = [len(m) for m in classes.members.values()]
        assert all(size == 1 for size in sizes)

    def test_straight_line_all_one_class(self):
        cfg, classes = classes_for("    nop\n    nop\n    ret")
        assert len({classes.class_of[b.index] for b in cfg.blocks}) == 1

    def test_infinite_loop_handled(self):
        body = """
spin:
    addq t0, 1, t0
    br spin
"""
        cfg, classes = classes_for(body)
        assert cfg.blocks[0].index in classes.class_of
