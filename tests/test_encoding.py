"""Tests for binary instruction/image encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.alpha.assembler import assemble
from repro.alpha.encoding import (EncodingError, decode_image,
                                  decode_instruction, encode_image,
                                  encode_instruction, load_executable,
                                  save_executable)
from repro.alpha.instruction import Instruction
from repro.cpu.config import MachineConfig
from repro.cpu.machine import Machine

PROGRAM = """
.image binprog
.data buf, 4096
.proc main
    lda   t1, =buf
    lda   t0, 200(zero)
    ldt   f1, 0(t1)
top:
    ldq   t4, 0(t1)
    addq  t4, 0x7f, t5
    mulq  t5, t5, t6
    stq   t6, 0(t1)
    addt  f1, f1, f2
    cmpult t0, t6, t7
    cmovne t7, t0, t6
    subq  t0, 1, t0
    bgt   t0, top
    jsr   ra, (t1)
.end
"""


def roundtrip(inst, next_addr=4):
    words = encode_instruction(inst, next_addr)
    extension = None
    if len(words) == 2:
        payload = words[0] & 0xFFFFFF
        if payload >> 23:
            payload -= 1 << 24
        extension = payload
    return decode_instruction(words[-1], next_addr - 4, extension)


class TestInstructionRoundtrip:
    @pytest.mark.parametrize("inst", [
        Instruction("addq", ra=1, rb=2, rc=3),
        Instruction("addq", ra=1, imm=200, rc=3),
        Instruction("addq", ra=1, imm=100000, rc=3),   # extension word
        Instruction("ldq", ra=4, rb=30, imm=-16),
        Instruction("stq", ra=4, rb=30, imm=32000),    # extension word
        Instruction("lda", ra=5, rb=31, imm=1 << 20),  # symbol address
        Instruction("addt", ra=33, rb=34, rc=35),      # FP registers
        Instruction("ldt", ra=40, rb=9, imm=8),
        Instruction("stt", ra=41, rb=9, imm=8),
        Instruction("jsr", ra=26, rb=27),
        Instruction("ret", ra=31, rb=26),
        Instruction("call_pal", imm=0x83),
        Instruction("nop"),
    ])
    def test_roundtrip(self, inst):
        decoded = roundtrip(inst)
        assert decoded.op == inst.op
        assert decoded.srcs == inst.srcs
        assert decoded.dst == inst.dst
        assert (decoded.imm or 0) == (inst.imm or 0)

    def test_branch_displacement(self):
        inst = Instruction("bne", ra=5, target=0x1000, addr=0x2000)
        words = encode_instruction(inst, 0x2004)
        decoded = decode_instruction(words[0], 0x2000)
        assert decoded.target == 0x1000

    def test_branch_out_of_range_rejected(self):
        inst = Instruction("br", ra=31, target=0x10_000_000, addr=0)
        with pytest.raises(EncodingError):
            encode_instruction(inst, 4)

    def test_unknown_opcode_number(self):
        with pytest.raises(EncodingError):
            decode_instruction(0xFE << 24, 0)

    @given(st.integers(-(1 << 13), (1 << 13) - 1), st.integers(0, 30),
           st.integers(0, 30))
    @settings(max_examples=50, deadline=None)
    def test_memory_roundtrip_property(self, disp, ra, rb):
        inst = Instruction("ldq", ra=ra, rb=rb, imm=disp)
        decoded = roundtrip(inst)
        assert (decoded.ra, decoded.rb, decoded.imm) == (ra, rb, disp)

    @given(st.integers(-(1 << 22), (1 << 22) - 1))
    @settings(max_examples=50, deadline=None)
    def test_extension_word_property(self, disp):
        inst = Instruction("ldq", ra=1, rb=2, imm=disp)
        assert roundtrip(inst).imm == disp


class TestImageRoundtrip:
    def test_image_binary_roundtrip(self):
        image = assemble(PROGRAM, base=0x30000)
        clone = decode_image(encode_image(image))
        assert clone.name == image.name
        assert clone.base == image.base
        assert len(clone.instructions) == len(image.instructions)
        for a, b in zip(image.instructions, clone.instructions):
            assert a.op == b.op
            assert a.addr == b.addr
            assert a.target == b.target
        assert clone.procedure("main").start == 0x30000
        assert clone.symbols.resolve("buf") == image.data_base

    def test_decoded_binary_executes_identically(self):
        original = assemble(PROGRAM.replace("jsr   ra, (t1)", "ret"),
                            base=None)
        plain = Machine(MachineConfig(), seed=1)
        plain_image = plain.load_image(original)
        p1 = plain.spawn(plain_image)
        plain.run()

        binary = encode_image(plain_image)
        loaded = decode_image(binary)
        machine = Machine(MachineConfig(), seed=1)
        machine.load_image(loaded)
        p2 = machine.spawn(loaded)
        machine.run()
        assert p1.iregs == p2.iregs
        assert p1.memory == p2.memory

    def test_save_and_load_executable(self, tmp_path):
        image = assemble(PROGRAM, base=0x30000)
        path = str(tmp_path / "prog.aexe")
        save_executable(image, path)
        loaded = load_executable(path)
        assert loaded.name == "binprog"
        assert loaded.instruction_at(0x30000).op == "lda"

    def test_unlinked_image_rejected(self):
        with pytest.raises(EncodingError):
            encode_image(assemble(PROGRAM))

    def test_bad_magic_rejected(self):
        with pytest.raises(EncodingError):
            decode_image(b"EXE?" + b"\0" * 64)
