"""Tests for guilty-until-proven-innocent culprit analysis."""

from repro.alpha.assembler import assemble
from repro.collect.database import ImageProfile
from repro.core.cfg import build_cfg
from repro.core.culprits import identify_culprits
from repro.core.frequency import estimate_frequencies
from repro.core.schedule import schedule_cfg
from repro.cpu.events import EventType


def run_culprits(body, samples, events=None, period=100.0):
    image = assemble(".image t\n.proc main\n%s\n.end" % body, base=0x1000)
    proc = image.procedure("main")
    cfg = build_cfg(proc)
    schedules = schedule_cfg(cfg)
    freq = estimate_frequencies(cfg, schedules, samples, period)
    profile = ImageProfile(image, periods={EventType.CYCLES: period,
                                           EventType.IMISS: 10.0,
                                           EventType.DTBMISS: 10.0})
    for addr, count in samples.items():
        profile.add(EventType.CYCLES, addr - image.base, count)
    for event, table in (events or {}).items():
        for addr, count in table.items():
            profile.add(event, addr - image.base, count)
    return identify_culprits(cfg, schedules, freq, samples, profile,
                             proc), image


LOOP_WITH_LOAD = """
    lda t1, =buf
    lda t0, 100(zero)
top:
    ldq t4, 0(t1)
    addq t4, 1, t5
    stq t5, 0(t1)
    lda t1, 8(t1)
    subq t0, 1, t0
    bgt t0, top
    ret
"""


def _body_with_data(body):
    return body  # readability alias


class TestDCacheRule:
    def make(self, samples, events=None):
        image_text = (".image t\n.data buf, 8192\n.proc main\n%s\n.end"
                      % LOOP_WITH_LOAD)
        image = assemble(image_text, base=0x1000)
        proc = image.procedure("main")
        cfg = build_cfg(proc)
        schedules = schedule_cfg(cfg)
        freq = estimate_frequencies(cfg, schedules, samples, 100.0)
        profile = ImageProfile(image, periods={EventType.CYCLES: 100.0})
        for addr, count in samples.items():
            profile.add(EventType.CYCLES, addr - image.base, count)
        return identify_culprits(cfg, schedules, freq, samples, profile,
                                 proc), image

    def test_load_consumer_gets_dcache_culprit_with_source(self):
        # addq (0x100c) stalls hugely; its operand comes from the ldq.
        samples = {0x1008: 50, 0x100C: 500, 0x1010: 50, 0x1014: 50,
                   0x1018: 50, 0x101C: 50}
        culprits, image = self.make(samples)
        assert 0x100C in culprits
        reasons = {c.reason: c for c in culprits[0x100C]}
        assert "dcache" in reasons
        assert reasons["dcache"].source_addr == 0x1008  # the ldq

    def test_store_of_loaded_value_gets_dcache_and_wb(self):
        samples = {0x1008: 50, 0x100C: 50, 0x1010: 500, 0x1014: 50,
                   0x1018: 50, 0x101C: 50}
        culprits, _ = self.make(samples)
        reasons = {c.reason for c in culprits[0x1010]}
        assert "wb" in reasons
        assert "dcache" in reasons

    def test_alu_with_local_nonload_operands_no_dcache(self):
        body = """
    lda t0, 100(zero)
top:
    addq t1, 1, t1
    xor t1, t0, t2
    sll t2, 2, t3
    subq t0, 1, t0
    bgt t0, top
    ret
"""
        samples = {0x1004: 50, 0x1008: 50, 0x100C: 500, 0x1010: 50,
                   0x1014: 50}
        culprits, _ = run_culprits(body, samples)
        if 0x100C in culprits:
            reasons = {c.reason for c in culprits[0x100C]}
            assert "dcache" not in reasons
            assert "wb" not in reasons


class TestICacheRule:
    def test_mid_block_off_line_instruction_ruled_out(self):
        body = """
    lda t0, 100(zero)
top:
    addq t1, 1, t1
    xor t1, t0, t2
    sll t2, 2, t3
    subq t0, 1, t0
    bgt t0, top
    ret
"""
        # 0x1008 is mid-block, not at a 32-byte boundary.
        samples = {0x1004: 50, 0x1008: 500, 0x100C: 50, 0x1010: 50,
                   0x1014: 50}
        culprits, _ = run_culprits(body, samples)
        reasons = {c.reason for c in culprits.get(0x1008, [])}
        assert "icache" not in reasons

    def test_line_start_instruction_possible(self):
        # Pad so a mid-block instruction falls at a line boundary
        # (0x1020 = 32-byte aligned).
        body = """
    lda t0, 100(zero)
top:
    addq t1, 1, t1
    xor t1, t0, t2
    sll t2, 2, t3
    addq t1, t2, t4
    xor t4, t3, t5
    addq t5, 1, t6
    srl t6, 1, t7
    subq t0, 1, t0
    bgt t0, top
    ret
"""
        samples = {addr: 50 for addr in range(0x1004, 0x102C, 4)}
        samples[0x1020] = 500
        culprits, _ = run_culprits(body, samples)
        reasons = {c.reason for c in culprits.get(0x1020, [])}
        assert "icache" in reasons

    def test_imiss_samples_bound_icache(self):
        body = """
    lda t0, 100(zero)
top:
    addq t1, 1, t1
    xor t1, t0, t2
    sll t2, 2, t3
    addq t1, t2, t4
    xor t4, t3, t5
    addq t5, 1, t6
    srl t6, 1, t7
    subq t0, 1, t0
    bgt t0, top
    ret
"""
        samples = {addr: 50 for addr in range(0x1004, 0x102C, 4)}
        samples[0x1020] = 500
        # IMISS samples collected, none at 0x1020: icache ruled out.
        culprits, _ = run_culprits(
            body, samples, events={EventType.IMISS: {0x1004: 1}})
        reasons = {c.reason for c in culprits.get(0x1020, [])}
        assert "icache" not in reasons


class TestBranchRule:
    def test_block_head_after_conditional_gets_branchmp(self):
        body = """
    lda t0, 100(zero)
top:
    and t0, 1, t1
    beq t1, skip
    addq t2, 1, t2
skip:
    subq t0, 1, t0
    bgt t0, top
    ret
"""
        samples = {0x1004: 50, 0x1008: 50, 0x100C: 50,
                   0x1010: 400, 0x1014: 50, 0x1018: 50}
        culprits, _ = run_culprits(body, samples)
        reasons = {c.reason for c in culprits.get(0x1010, [])}
        assert "branchmp" in reasons

    def test_branchmp_bounded_by_penalty(self):
        body = """
    lda t0, 100(zero)
top:
    and t0, 1, t1
    beq t1, skip
    addq t2, 1, t2
skip:
    subq t0, 1, t0
    bgt t0, top
    ret
"""
        samples = {0x1004: 50, 0x1008: 50, 0x100C: 50,
                   0x1010: 4000, 0x1014: 50, 0x1018: 50}
        culprits, _ = run_culprits(body, samples)
        branch = next(c for c in culprits[0x1010]
                      if c.reason == "branchmp")
        dcache_like = [c for c in culprits[0x1010]
                       if c.reason != "branchmp"]
        # Mispredicts can explain at most penalty * executions.
        assert branch.max_cycles < max(
            (c.max_cycles for c in dcache_like), default=float("inf"))


class TestUnexplained:
    def test_stall_with_no_candidates_marked_unexplained(self):
        body = """
    lda t0, 100(zero)
top:
    addq t1, 1, t1
    xor t1, t0, t2
    sll t2, 2, t3
    subq t0, 1, t0
    bgt t0, top
    ret
"""
        samples = {0x1004: 50, 0x1008: 50, 0x100C: 500, 0x1010: 50,
                   0x1014: 50}
        culprits, _ = run_culprits(body, samples)
        if 0x100C in culprits:
            reasons = {c.reason for c in culprits[0x100C]}
            assert "unexplained" in reasons or "dtb" in reasons

    def test_no_stall_no_culprits(self):
        body = """
    lda t0, 100(zero)
top:
    addq t1, 1, t1
    subq t0, 1, t0
    bgt t0, top
    ret
"""
        # Samples land on the leaders only (the paired subq gets none),
        # consistent with ~1 cycle at the head per execution.
        samples = {0x1004: 50, 0x100C: 50}
        culprits, _ = run_culprits(body, samples)
        assert 0x1004 not in culprits  # no dynamic stall: no culprits
        assert 0x1008 not in culprits  # no samples at all

    def test_min_cycles_pessimistic(self):
        samples = {0x1008: 50, 0x100C: 50, 0x1010: 500, 0x1014: 50,
                   0x1018: 50, 0x101C: 50}
        culprits, _ = TestDCacheRule().make(samples)
        rows = culprits[0x1010]
        total_dyn_upper = max(c.max_cycles for c in rows)
        for culprit in rows:
            assert 0.0 <= culprit.min_cycles <= culprit.max_cycles
            assert culprit.max_cycles <= total_dyn_upper + 1e-9
