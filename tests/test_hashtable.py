"""Tests for the driver's sample-aggregation hash table."""

import pytest
from hypothesis import given, strategies as st

from repro.collect.hashtable import (LRU, MOD_COUNTER, SWAP_TO_FRONT,
                                     SampleHashTable)


def fill_bucket(table, pid_base=0):
    """Insert enough distinct keys with one hash bucket to fill it."""
    # With one bucket (buckets=1) everything collides.
    for i in range(table.assoc):
        table.record(pid_base + i, 0x1000, 0)


class TestAggregation:
    def test_hit_increments_count(self):
        table = SampleHashTable(buckets=16, assoc=4)
        table.record(1, 0x100, 0)
        table.record(1, 0x100, 0)
        entries = table.flush()
        assert entries == [((1, 0x100, 0), 2)]

    def test_distinct_keys_do_not_merge(self):
        table = SampleHashTable(buckets=16, assoc=4)
        table.record(1, 0x100, 0)
        table.record(2, 0x100, 0)  # different PID
        table.record(1, 0x100, 1)  # different event
        assert len(table.flush()) == 3

    def test_flush_clears(self):
        table = SampleHashTable(buckets=16, assoc=4)
        table.record(1, 0x100, 0)
        table.flush()
        assert table.flush() == []

    def test_eviction_returns_victim(self):
        table = SampleHashTable(buckets=1, assoc=4)
        fill_bucket(table)
        victim = table.record(99, 0x1000, 0)
        assert victim is not None
        key, count = victim
        assert count == 1

    def test_mod_counter_rotates_victims(self):
        table = SampleHashTable(buckets=1, assoc=4, policy=MOD_COUNTER)
        fill_bucket(table)
        victims = [table.record(100 + i, 0x1000, 0)[0] for i in range(4)]
        slots = {v[0] for v in victims}
        assert len(slots) == 4  # four distinct victims

    def test_swap_to_front_protects_hot_entry(self):
        table = SampleHashTable(buckets=1, assoc=2, policy=SWAP_TO_FRONT)
        table.record(1, 0x100, 0)
        table.record(2, 0x100, 0)
        table.record(1, 0x100, 0)  # hot key moves to front
        victim = table.record(3, 0x100, 0)
        assert victim[0][0] == 2  # the cold key was evicted

    def test_lru_policy(self):
        table = SampleHashTable(buckets=1, assoc=2, policy=LRU)
        table.record(1, 0x100, 0)
        table.record(2, 0x100, 0)
        table.record(1, 0x100, 0)
        victim = table.record(3, 0x100, 0)
        assert victim[0][0] == 2

    def test_miss_rate(self):
        table = SampleHashTable(buckets=16, assoc=4)
        table.record(1, 0x100, 0)
        table.record(1, 0x100, 0)
        assert table.miss_rate == pytest.approx(0.5)

    def test_aggregation_factor(self):
        table = SampleHashTable(buckets=16, assoc=4)
        for _ in range(20):
            table.record(1, 0x100, 0)
        assert table.aggregation_factor == pytest.approx(20.0)

    def test_last_was_hit_flag(self):
        table = SampleHashTable(buckets=16, assoc=4)
        table.record(1, 0x100, 0)
        assert table.last_was_hit is False
        table.record(1, 0x100, 0)
        assert table.last_was_hit is True

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            SampleHashTable(buckets=3)
        with pytest.raises(ValueError):
            SampleHashTable(policy="random")


class TestConservation:
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 40)),
                    min_size=1, max_size=300))
    def test_no_sample_lost(self, stream):
        """Property: every recorded sample is either resident in the
        table or was returned in an eviction."""
        table = SampleHashTable(buckets=4, assoc=2)
        evicted_total = 0
        for pid, pc_index in stream:
            victim = table.record(pid, 0x1000 + pc_index * 4, 0)
            if victim is not None:
                evicted_total += victim[1]
        resident = sum(count for _, count in table.flush())
        assert evicted_total + resident == len(stream)

    @given(st.integers(1, 4), st.sampled_from([MOD_COUNTER, SWAP_TO_FRONT,
                                               LRU]))
    def test_policies_never_exceed_capacity(self, assoc, policy):
        table = SampleHashTable(buckets=2, assoc=assoc, policy=policy)
        for i in range(100):
            table.record(i, 0x100, 0)
        resident = len(table.flush())
        assert resident <= 2 * assoc
