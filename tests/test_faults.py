"""The fault-injection harness: injector, audits, scenario registry.

The injector must be deterministic (same plan, same seed, same firing
pattern and corruption bytes), precise (fires exactly at the requested
hits), and invisible when disabled (NULL_INJECTOR is what production
code paths carry).  The audit module encodes the robustness contract:
no *unaccounted* loss, ever.
"""

import pytest

from repro.faults import audit
from repro.faults.injector import (NULL_INJECTOR, FaultPlan, FaultSpec,
                                   InjectedCrash, TransientDrainError,
                                   bitflip_at_rest, truncate_at_rest)


class TestFaultSpec:
    def test_rejects_unknown_point(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultSpec("daemon.coffee_break", "crash", hits=(1,))

    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec("daemon.drain.cpu", "explode", hits=(1,))

    def test_matches_listed_hits_only(self):
        spec = FaultSpec("daemon.drain.cpu", "crash", hits=(2, 5))
        assert [h for h in range(1, 8) if spec.matches(h, 0)] == [2, 5]

    def test_after_and_limit_window(self):
        spec = FaultSpec("daemon.drain.flush", "transient",
                         after=3, limit=2)
        fired = 0
        hits_fired = []
        for hit in range(1, 10):
            if spec.matches(hit, fired):
                fired += 1
                hits_fired.append(hit)
        assert hits_fired == [3, 4]


class TestFaultInjector:
    def plan(self, *specs, seed=7):
        return FaultPlan(specs=tuple(specs), seed=seed)

    def test_crash_fires_at_requested_hit(self):
        inj = self.plan(
            FaultSpec("daemon.drain.cpu", "crash", hits=(3,))).build()
        inj.check("daemon.drain.cpu")
        inj.check("daemon.drain.cpu")
        with pytest.raises(InjectedCrash) as err:
            inj.check("daemon.drain.cpu")
        assert err.value.point == "daemon.drain.cpu"
        assert err.value.hit == 3
        # The hit was consumed; the next check passes.
        inj.check("daemon.drain.cpu")

    def test_transient_raises_typed_error(self):
        inj = self.plan(
            FaultSpec("daemon.drain.flush", "transient", hits=(1,))).build()
        with pytest.raises(TransientDrainError):
            inj.check("daemon.drain.flush")
        inj.check("daemon.drain.flush")

    def test_unrelated_points_unaffected(self):
        inj = self.plan(
            FaultSpec("daemon.drain.cpu", "crash", hits=(1,))).build()
        inj.check("db.write")
        inj.check("session.restart")
        with pytest.raises(InjectedCrash):
            inj.check("daemon.drain.cpu")

    def test_fired_accounting(self):
        inj = self.plan(
            FaultSpec("driver.overflow", "drop", hits=(1, 2))).build()
        assert inj.fires("driver.overflow") is not None
        assert inj.fires("driver.overflow") is not None
        assert inj.fires("driver.overflow") is None
        assert inj.stats()[("driver.overflow", "drop")] == 2

    def test_corrupt_bytes_truncate_and_bitflip(self):
        data = bytes(range(64)) * 4
        trunc = self.plan(
            FaultSpec("db.write", "truncate", hits=(1,))).build()
        flip = self.plan(
            FaultSpec("db.write", "bitflip", hits=(1,))).build()
        shorter = trunc.corrupt_bytes("db.write", data)
        assert len(shorter) < len(data)
        flipped = flip.corrupt_bytes("db.write", data)
        assert len(flipped) == len(data)
        diff = [i for i in range(len(data)) if flipped[i] != data[i]]
        assert len(diff) == 1
        # Untargeted writes pass through untouched.
        assert trunc.corrupt_bytes("db.write", data) == data

    def test_determinism_same_seed_same_bytes(self):
        data = bytes(range(256))
        plan = self.plan(FaultSpec("db.write", "bitflip", hits=(1,)),
                         seed=42)
        assert (plan.build().corrupt_bytes("db.write", data)
                == plan.build().corrupt_bytes("db.write", data))

    def test_null_injector_is_inert(self):
        assert not NULL_INJECTOR.enabled
        NULL_INJECTOR.check("daemon.drain.cpu")
        assert NULL_INJECTOR.fires("driver.overflow") is None
        assert NULL_INJECTOR.corrupt_bytes("db.write", b"abc") == b"abc"

    def test_at_rest_helpers_deterministic(self):
        data = bytes(range(128))
        assert bitflip_at_rest(data, seed=3) == bitflip_at_rest(data, seed=3)
        assert bitflip_at_rest(data, seed=3) != data
        assert truncate_at_rest(data, seed=3) == truncate_at_rest(
            data, seed=3)
        assert len(truncate_at_rest(data, seed=3)) < len(data)


class TestAudit:
    def report(self, **overrides):
        base = {
            "driver_samples": 100, "dropped": 0, "lost": 0,
            "daemon_samples": 100, "unknown": 10, "recoveries": 0,
            "pipeline_balanced": True, "db_samples": 90,
            "quarantined_samples": 0, "db_balanced": True, "ok": True,
        }
        base.update(overrides)
        return base

    def test_identical_runs_conserve(self):
        comparison = audit.compare_runs(self.report(), self.report())
        assert comparison["ok"]
        assert comparison["accounted_delta"] == 0

    def test_accounted_loss_conserves(self):
        faulted = self.report(dropped=15, daemon_samples=85,
                              db_samples=75)
        comparison = audit.compare_runs(faulted, self.report())
        assert comparison["ok"]
        assert comparison["accounted_delta"] == 15

    def test_unaccounted_loss_detected(self):
        # 15 samples vanished but only 5 were accounted: FAIL.
        faulted = self.report(dropped=5, daemon_samples=85,
                              db_samples=75, pipeline_balanced=False,
                              ok=False)
        comparison = audit.compare_runs(faulted, self.report())
        assert not comparison["ok"]

    def test_double_count_detected(self):
        # The database holds more than the daemon ever processed.
        faulted = self.report(db_samples=130, db_balanced=False,
                              ok=False)
        comparison = audit.compare_runs(faulted, self.report())
        assert not comparison["ok"]

    def test_unknown_shift_is_not_loss(self):
        # A dropped loadmap reroutes 20 samples to 'unknown'; nothing
        # was lost, the invariant must still hold.
        faulted = self.report(unknown=30, db_samples=70)
        comparison = audit.compare_runs(faulted, self.report())
        assert comparison["ok"]
        assert comparison["unknown_delta"] == 20

    def test_perturbed_machine_detected(self):
        faulted = self.report(driver_samples=99, daemon_samples=99,
                              db_samples=89)
        comparison = audit.compare_runs(faulted, self.report())
        assert not comparison["identical_streams"]
        assert not comparison["ok"]


class TestScenarioRegistry:
    def test_names_unique_and_quick_subset_nonempty(self):
        from repro.faults.scenarios import SCENARIOS, scenario_names

        names = [s.name for s in SCENARIOS]
        assert len(names) == len(set(names))
        assert len(scenario_names(quick=True)) >= 4
        assert len(names) >= 10

    def test_get_scenario_rejects_typos(self):
        from repro.faults.scenarios import get_scenario

        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("crash-mid-drian")

    def test_every_fault_point_is_covered(self):
        """The matrix exercises every injectable pipeline stage."""
        from repro.faults.scenarios import SCENARIOS

        covered = {spec.point
                   for scenario in SCENARIOS
                   for spec in scenario.specs}
        assert {"driver.overflow", "daemon.drain.flush",
                "daemon.drain.cpu", "daemon.drain.merge",
                "daemon.checkpoint", "db.checkpoint", "daemon.loadmap",
                "session.restart"} <= covered
        assert {s.post for s in SCENARIOS if s.post} == {
            "bitflip", "truncate", "manifest"}


class TestChaosCli:
    def test_list_scenarios(self, capsys):
        from repro.tools.dcpichaos import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "crash-mid-drain" in out
        assert "torn-db-write" in out

    def test_rejects_unknown_scenario(self):
        from repro.tools.dcpichaos import main

        with pytest.raises(KeyError, match="unknown scenario"):
            main(["--scenarios", "no-such-fault"])

    def test_single_scenario_run_exits_zero(self, tmp_path, capsys):
        from repro.tools.dcpichaos import main

        json_path = str(tmp_path / "chaos.json")
        code = main(["--scenarios", "machine-restart",
                     "--max-instructions", "16000",
                     "--json", json_path])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "machine-restart" in out
        import json as json_module
        with open(json_path) as handle:
            cases = json_module.load(handle)
        assert cases[0]["ok"]
        assert cases[0]["recoveries"] == 1


class TestRunCase:
    def test_crash_case_holds_invariant(self):
        from repro.faults.scenarios import get_scenario, run_case

        case = run_case(get_scenario("crash-mid-drain"), "gcc",
                        budget=16_000)
        assert case["ok"], case["comparison"]
        assert case["recoveries"] >= 1
        assert case["faulted"]["pipeline_balanced"]
        assert case["faulted"]["db_balanced"]

    def test_torn_write_is_quarantined_not_decoded(self):
        from repro.faults.scenarios import get_scenario, run_case

        case = run_case(get_scenario("torn-db-write"), "gcc",
                        budget=16_000)
        assert case["ok"], case["comparison"]
        assert case["faulted"]["quarantined_samples"] > 0
        assert case["corrupted_file"]

    def test_torn_manifest_rebuild_loses_nothing(self):
        from repro.faults.scenarios import get_scenario, run_case

        case = run_case(get_scenario("torn-manifest"), "gcc",
                        budget=16_000)
        assert case["ok"], case["comparison"]
        assert (case["faulted"]["db_samples"]
                == case["reference"]["db_samples"])
        assert case["corrupted_file"] == "MANIFEST.json"
