"""Unit and property tests for the opcode semantics table."""

import pytest
from hypothesis import given, strategies as st

from repro.alpha.opcodes import (ISSUE_CLASSES, MASK64, OPCODES, _s64,
                                 issue_class)

u64 = st.integers(min_value=0, max_value=MASK64)
s_small = st.integers(min_value=-(1 << 40), max_value=1 << 40)


def sem(name):
    return OPCODES[name].sem


def cond(name):
    return OPCODES[name].cond


class TestIntegerOps:
    def test_addq_basic(self):
        assert sem("addq")(2, 3) == 5

    def test_addq_wraps_64_bits(self):
        assert sem("addq")(MASK64, 1) == 0

    def test_subq_borrow_wraps(self):
        assert sem("subq")(0, 1) == MASK64

    def test_addl_sign_extends_32_bit_result(self):
        # 0x7fffffff + 1 overflows 32 bits -> negative longword.
        result = sem("addl")(0x7FFFFFFF, 1)
        assert _s64(result) == -(1 << 31)

    def test_mulq_signed(self):
        minus_two = MASK64 - 1  # -2
        assert _s64(sem("mulq")(minus_two, 3)) == -6

    def test_s4addq(self):
        assert sem("s4addq")(10, 3) == 43

    def test_s8addq(self):
        assert sem("s8addq")(10, 3) == 83

    def test_logicals(self):
        assert sem("and")(0b1100, 0b1010) == 0b1000
        assert sem("bis")(0b1100, 0b1010) == 0b1110
        assert sem("xor")(0b1100, 0b1010) == 0b0110
        assert sem("bic")(0b1111, 0b0101) == 0b1010

    def test_shifts(self):
        assert sem("sll")(1, 63) == 1 << 63
        assert sem("srl")(1 << 63, 63) == 1
        # sra preserves sign.
        assert sem("sra")(MASK64, 5) == MASK64

    def test_shift_count_masked_to_6_bits(self):
        assert sem("sll")(1, 64) == 1  # 64 & 63 == 0

    @given(u64, u64)
    def test_addq_subq_inverse(self, a, b):
        assert sem("subq")(sem("addq")(a, b), b) == a

    @given(u64, u64)
    def test_xor_self_inverse(self, a, b):
        assert sem("xor")(sem("xor")(a, b), b) == a

    @given(s_small, s_small)
    def test_cmplt_matches_python(self, a, b):
        assert sem("cmplt")(a & MASK64, b & MASK64) == int(a < b)

    @given(u64, u64)
    def test_cmpult_unsigned(self, a, b):
        assert sem("cmpult")(a, b) == int(a < b)

    @given(u64, u64)
    def test_cmpule_consistent_with_cmpult_and_cmpeq(self, a, b):
        ule = sem("cmpule")(a, b)
        assert ule == (sem("cmpult")(a, b) | sem("cmpeq")(a, b))


class TestFloatOps:
    def test_addt(self):
        assert sem("addt")(1.5, 2.25) == 3.75

    def test_mult(self):
        assert sem("mult")(3.0, -2.0) == -6.0

    def test_divt_by_zero_is_quiet(self):
        assert sem("divt")(1.0, 0.0) == 0.0

    def test_cpys_as_move(self):
        assert sem("cpys")(-2.0, 2.0) == -2.0
        assert sem("cpys")(3.0, -5.0) == 5.0


class TestBranchConditions:
    @pytest.mark.parametrize("name,value,expected", [
        ("beq", 0, True), ("beq", 1, False),
        ("bne", 0, False), ("bne", 5, True),
        ("blt", MASK64, True), ("blt", 1, False),
        ("ble", 0, True), ("bgt", 0, False),
        ("bge", 0, True), ("bge", MASK64, False),
        ("blbc", 2, True), ("blbc", 3, False),
        ("blbs", 3, True), ("blbs", 2, False),
    ])
    def test_conditions(self, name, value, expected):
        assert cond(name)(value) is expected

    @given(u64)
    def test_beq_bne_complementary(self, value):
        assert cond("beq")(value) != cond("bne")(value)

    @given(u64)
    def test_blt_bge_complementary(self, value):
        assert cond("blt")(value) != cond("bge")(value)


class TestIssueClasses:
    def test_every_opcode_has_issue_class(self):
        for name, info in OPCODES.items():
            assert info.cls in ISSUE_CLASSES, name

    def test_load_latency_exceeds_alu(self):
        assert ISSUE_CLASSES["LD"].latency > ISSUE_CLASSES["IADD"].latency

    def test_fdiv_not_pipelined(self):
        assert ISSUE_CLASSES["FDIV"].busy > 0

    def test_stores_single_pipe(self):
        assert ISSUE_CLASSES["ST"].pipes == ("E0",)

    def test_issue_class_helper(self):
        assert issue_class("ldq") is ISSUE_CLASSES["LD"]
