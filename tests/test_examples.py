"""Smoke tests: the shipped examples must run to completion.

Every example honors the ``DCPI_EXAMPLE_BUDGET`` environment variable
(instructions to simulate), so CI can execute the whole set -- even the
variance study that takes minutes at full scale -- with a tiny budget.
Each runs in a subprocess so a crash cannot take the test runner down.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")

ALL_EXAMPLES = (
    "quickstart.py",
    "continuous_daemon.py",
    "binary_workflow.py",
    "query_tuning.py",
    "variance_investigation.py",
    "x11_server_analysis.py",
)

#: Small enough for a CI smoke job, big enough that every example still
#: collects samples to analyze.
SMOKE_BUDGET = "60000"


def run_example(name, budget=None, timeout=240):
    env = dict(os.environ)
    if budget is not None:
        env["DCPI_EXAMPLE_BUDGET"] = budget
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True, text=True, timeout=timeout, env=env)


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs_with_tiny_budget(name):
    result = run_example(name, budget=SMOKE_BUDGET)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example narrates its findings


def test_quickstart_output_shape():
    result = run_example("quickstart.py")
    out = result.stdout
    for needle in ("dcpiprof", "dcpicalc", "Best-case",
                   "stall summary", "Total tallied"):
        assert needle in out
