"""Smoke tests: the shipped examples must run to completion.

Only the fast examples run here (the variance study takes minutes);
each runs in a subprocess so a crash cannot take the test runner down.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = ("quickstart.py", "continuous_daemon.py",
                 "binary_workflow.py")


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    path = os.path.join(EXAMPLES, name)
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True,
        timeout=240)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example narrates its findings


def test_quickstart_output_shape():
    path = os.path.join(EXAMPLES, "quickstart.py")
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True,
        timeout=240)
    out = result.stdout
    for needle in ("dcpiprof", "dcpicalc", "Best-case",
                   "stall summary", "Total tallied"):
        assert needle in out
