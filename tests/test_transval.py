"""Layer-4 (static translation validation) tests.

Directed coverage of :mod:`repro.check.transval`: the validator
accepts every plan the planner actually ships, accepts hand-built
legal rewrites (identity, independent reorders, block permutations
through the inversion/elision/stub machinery), and rejects
semantics-breaking plans and tampered images with a concrete per-block
counterexample -- all without running either image.
"""

import json

import pytest

from repro.alpha.assembler import assemble
from repro.check import run_rewrite_layer
from repro.check.runner import plan_workload
from repro.check.transval import (R_CTRL, R_DATA, R_FROZEN, R_REG,
                                  R_STRUCTURE, format_expr,
                                  validate_plan, validate_result,
                                  validate_workload_plans)
from repro.opt import (BlockPlan, ProcPlan, RewritePlan,
                       image_fingerprint, rewrite_image)
from repro.tools import dcpicheck
from repro.workloads import OPT_TARGETS

# Offsets (see the listing in the tests below):
#   0x00 lda t0      \ entry block [0x00, 0x08)
#   0x04 lda v0      /
#   0x08 and t0,15   \ loop head  [0x08, 0x10)
#   0x0c beq -> 0x18 /
#   0x10 addq t5,1   \ hot path   [0x10, 0x18)
#   0x14 br  -> 0x1c /
#   0x18 addq t5,7   - rare path  [0x18, 0x1c)
#   0x1c addq t0,1   \
#   0x20 cmpult      | join       [0x1c, 0x28)
#   0x24 bne -> 0x08 /
#   0x28 ret         - exit       [0x28, 0x2c)
BRANCHY = """
.image t
.proc main
    lda   t0, 0(zero)
    lda   v0, 64(zero)
main_loop:
    and   t0, 15, t4
    beq   t4, main_rare
    addq  t5, 1, t5
    br    main_join
main_rare:
    addq  t5, 7, t5
main_join:
    addq  t0, 1, t0
    cmpult t0, v0, t9
    bne   t9, main_loop
    ret
.end
"""

BLOCKS = ((0x00, 0x08), (0x08, 0x10), (0x10, 0x18),
          (0x18, 0x1c), (0x1c, 0x28), (0x28, 0x2c))


def fresh():
    return assemble(BRANCHY)


def plan_of(blocks, frozen=False):
    image = fresh()
    proc = image.procedures[0]
    return RewritePlan(
        image.name, image_fingerprint(fresh()),
        [ProcPlan(proc.name, blocks, frozen=frozen)],
        data_offset=None, stats={})


def identity_blocks():
    return [BlockPlan(start, end) for start, end in BLOCKS]


class TestAccepts:
    def test_identity_plan(self):
        report = validate_plan(fresh(), plan_of(identity_blocks()))
        assert report.verdict == "accepted"
        assert report.ok
        assert report.blocks_checked == len(BLOCKS)
        assert report.to_findings() == []

    def test_independent_reorder(self):
        # The two entry lda's touch different registers; swapping them
        # is exactly what the scheduler does.
        blocks = identity_blocks()
        blocks[0] = BlockPlan(0x00, 0x08, order=[0x04, 0x00])
        report = validate_plan(fresh(), plan_of(blocks))
        assert report.verdict == "accepted"

    def test_block_permutation_exercises_primitives(self):
        # Move the rare block out of line: the br at 0x14 elides into
        # the join, the beq needs a stub or retarget -- the full
        # terminator-rewrite rule set in one plan.
        blocks = [BlockPlan(0x00, 0x08), BlockPlan(0x08, 0x10),
                  BlockPlan(0x10, 0x18), BlockPlan(0x1c, 0x28),
                  BlockPlan(0x28, 0x2c), BlockPlan(0x18, 0x1c)]
        report = validate_plan(fresh(), plan_of(blocks))
        assert report.verdict == "accepted"

    def test_whole_proc_identity_block(self):
        # One non-frozen block spanning all control flow: legal (and
        # what test_opt's identity round-trip ships), proven verbatim.
        report = validate_plan(fresh(),
                               plan_of([BlockPlan(0x00, 0x2c)]))
        assert report.verdict == "accepted"

    @pytest.mark.parametrize("name", OPT_TARGETS)
    def test_shipped_plans_validate(self, name):
        workload, plans = plan_workload(name, max_instructions=40_000)
        assert plans, "planner built nothing for %s" % name
        reports = validate_workload_plans(workload, plans)
        for image_name, report in sorted(reports.items()):
            assert report.verdict == "accepted", (
                image_name, [str(f) for f in report.to_findings()])


class TestRejects:
    def test_dependent_swap_names_the_diverging_state(self):
        # cmpult reads the addq's result; swapping them changes r23.
        blocks = identity_blocks()
        blocks[4] = BlockPlan(0x1c, 0x28, order=[0x20, 0x1c, 0x24])
        report = validate_plan(fresh(), plan_of(blocks))
        assert report.verdict == "rejected"
        assert not report.ok
        rules = {ce.rule for ce in report.counterexamples}
        assert R_REG in rules
        ce = next(c for c in report.counterexamples if c.rule == R_REG)
        # The counterexample pins down block, register and both
        # symbolic values.
        assert ce.block == 0x1c
        assert "r23" in ce.message
        assert "addq" in ce.detail and "cmpult" in ce.detail

    def test_reorder_across_control_flow_rejected(self):
        # A multi-block span may only ship verbatim; reordering
        # across the interior beq is never provable.
        blocks = [BlockPlan(0x00, 0x2c,
                            order=[0x04, 0x00] + list(range(0x08,
                                                            0x2c, 4)))]
        report = validate_plan(fresh(), plan_of(blocks))
        assert report.verdict == "rejected"
        assert any(ce.rule == R_CTRL for ce in report.counterexamples)

    def test_tampered_frozen_proc_rejected(self):
        plan = plan_of([BlockPlan(0x00, 0x2c)], frozen=True)
        original = fresh()
        result = rewrite_image(original, plan)
        assert result.applied
        result.image.instructions[4].imm = 2   # addq t5, 1 -> t5, 2
        report = validate_result(original, plan, result)
        assert report.verdict == "rejected"
        assert any(ce.rule == R_FROZEN
                   for ce in report.counterexamples)

    def test_tampered_scheduled_block_rejected(self):
        plan = plan_of(identity_blocks())
        original = fresh()
        result = rewrite_image(original, plan)
        assert result.applied
        result.image.instructions[7].imm = 3   # join addq t0, 1 -> 3
        report = validate_result(original, plan, result)
        assert report.verdict == "rejected"
        assert any(ce.rule == R_REG for ce in report.counterexamples)

    def test_tampered_branch_target_rejected(self):
        plan = plan_of(identity_blocks())
        original = fresh()
        result = rewrite_image(original, plan)
        assert result.applied
        result.image.instructions[9].target = 0x00  # bne loop -> entry
        report = validate_result(original, plan, result)
        assert report.verdict == "rejected"
        assert any(ce.rule == R_CTRL for ce in report.counterexamples)

    def test_corrupted_old2new_is_a_structure_counterexample(self):
        plan = plan_of(identity_blocks())
        original = fresh()
        result = rewrite_image(original, plan)
        assert result.applied
        result.old2new[0x10], result.old2new[0x14] = (
            result.old2new[0x14], result.old2new[0x10])
        report = validate_result(original, plan, result)
        assert report.verdict == "rejected"
        assert report.counterexamples[0].rule == R_STRUCTURE

    def test_relocated_data_pin_rejected(self):
        # A pin that doesn't reproduce the original placement moves
        # every pointer into the data region, even though the symbol
        # names still correspond.
        asm = """
.image t
.data buf, 64
.proc main
    lda   t1, =buf
    stq   t2, 0(t1)
    ret
.end
"""
        image = assemble(asm)
        proc = image.procedures[0]
        expected = (image.code_size + 8191) & ~8191
        plan = RewritePlan(
            image.name, image_fingerprint(assemble(asm)),
            [ProcPlan(proc.name, [BlockPlan(proc.start, proc.end)])],
            data_offset=expected + 8192, stats={})
        report = validate_plan(assemble(asm), plan)
        assert report.verdict == "rejected"
        ce = next(c for c in report.counterexamples if c.rule == R_DATA)
        assert "pins data" in ce.message

    def test_moved_data_symbol_rejected(self):
        asm = """
.image t
.data buf, 64
.proc main
    lda   t1, =buf
    stq   t2, 0(t1)
    ret
.end
"""
        image = assemble(asm)
        proc = image.procedures[0]
        plan = RewritePlan(
            image.name, image_fingerprint(assemble(asm)),
            [ProcPlan(proc.name, [BlockPlan(proc.start, proc.end)])],
            data_offset=image.data_offset or 0x2000, stats={})
        original = assemble(asm)
        # Force the pin the image actually uses so the rewrite applies.
        plan.data_offset = None
        result = rewrite_image(original, plan)
        assert result.applied
        result.image.symbols._symbols["buf"] += 8
        report = validate_result(original, plan, result)
        assert report.verdict == "rejected"
        assert any(ce.rule == R_DATA for ce in report.counterexamples)


class TestBailsAndReporting:
    def test_fingerprint_mismatch_is_bailed_not_rejected(self):
        plan = plan_of(identity_blocks())
        # imm is fixup-rewritten at link time and thus outside the
        # fingerprint; an opcode change is the layout-independent kind
        # of drift the fingerprint exists to catch.
        other = assemble(BRANCHY.replace("addq  t5, 7", "subq  t5, 7"))
        report = validate_plan(other, plan)
        assert report.verdict == "bailed"
        assert report.ok    # nothing shipped, nothing to prove
        findings = report.to_findings()
        assert len(findings) == 1
        assert findings[0].rule == "rewrite/plan-not-applicable"
        assert findings[0].severity == "warning"

    def test_report_dict_is_json_ready(self):
        blocks = identity_blocks()
        blocks[4] = BlockPlan(0x1c, 0x28, order=[0x20, 0x1c, 0x24])
        report = validate_plan(fresh(), plan_of(blocks))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["verdict"] == "rejected"
        assert payload["counterexamples"]
        first = payload["counterexamples"][0]
        assert set(first) == {"rule", "proc", "block", "new_block",
                              "message", "detail"}

    def test_format_expr_is_readable(self):
        expr = ("op", "cmpult",
                ("op", "addq", ("reg", 1), ("const", 1)),
                ("reg", 0))
        assert format_expr(expr) == \
            "(cmpult (addq r1@entry 0x1) r0@entry)"
        assert format_expr(("postcall", 2, 26)) == "r26@call2"
        assert format_expr(("codeaddr", 8)) == "ret@0x8"


class TestLayerWiring:
    def test_rewrite_layer_is_clean_on_opt_targets(self):
        findings = run_rewrite_layer(OPT_TARGETS,
                                     max_instructions=40_000)
        assert [f for f in findings if f.severity == "error"] == []

    def test_dcpicheck_cli_runs_layer4(self, capsys):
        rc = dcpicheck.main(["--layers", "rewrite",
                             "--workloads", "opt-branchy",
                             "--json", "-"])
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert rc == 0
        assert payload["schema"] == 2
        assert payload["layers"] == ["rewrite"]
        assert payload["counts"]["error"] == 0
