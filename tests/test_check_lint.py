"""Layer-3 (AST lint) tests: every rule fires on a seeded violation,
stays quiet on the sanctioned idiom, and the committed source is clean.
"""

import textwrap

from repro.check.lint import (HOT_PATH_MODULES, SERIALIZING_MODULES,
                              lint_paths, lint_source)
from repro.check.runner import CheckConfig


def lint(source, relpath="core/somewhere.py"):
    return lint_source(textwrap.dedent(source), relpath)


def rules(findings):
    return sorted({f.rule for f in findings})


class TestWallclock:
    HOT = HOT_PATH_MODULES[0]

    def test_wallclock_in_hot_module_fires(self):
        findings = lint("""
            import time

            def drain():
                return time.time()
            """, self.HOT)
        assert rules(findings) == ["lint/wallclock-in-hot-path"]

    def test_wallclock_in_merge_function_fires_anywhere(self):
        findings = lint("""
            import time

            def merge_shards(shards):
                started = time.perf_counter()
                return shards, started
            """)
        assert rules(findings) == ["lint/wallclock-in-hot-path"]

    def test_wallclock_elsewhere_is_fine(self):
        findings = lint("""
            import time

            def report():
                return time.time()
            """)
        assert findings == []


class TestUnseededRandom:
    def test_module_level_random_fires(self):
        findings = lint("""
            import random

            def jitter():
                return random.random()
            """)
        assert rules(findings) == ["lint/unseeded-random"]

    def test_seeded_instance_is_fine(self):
        findings = lint("""
            import random

            def make_prng(seed):
                return random.Random(seed)
            """)
        assert findings == []


class TestSetIteration:
    SER = SERIALIZING_MODULES[0]

    def test_set_iteration_in_serializing_module_fires(self):
        findings = lint("""
            def dump(xs):
                s = set(xs)
                return [encode(x) for x in s]
            """, self.SER)
        assert rules(findings) == ["lint/unordered-set-iteration"]

    def test_sorted_set_is_fine(self):
        findings = lint("""
            def dump(xs):
                s = set(xs)
                return [encode(x) for x in sorted(s)]
            """, self.SER)
        assert findings == []

    def test_set_iteration_elsewhere_is_fine(self):
        findings = lint("""
            def count(xs):
                total = 0
                for x in set(xs):
                    total += 1
                return total
            """)
        assert findings == []


class TestMutableDefault:
    def test_list_default_fires(self):
        findings = lint("""
            def record(value, sink=[]):
                sink.append(value)
                return sink
            """)
        assert rules(findings) == ["lint/mutable-default-arg"]

    def test_none_default_is_fine(self):
        findings = lint("""
            def record(value, sink=None):
                sink = sink if sink is not None else []
                sink.append(value)
                return sink
            """)
        assert findings == []


class TestPicklableField:
    def test_mutable_field_on_picklable_type_fires(self):
        findings = lint("""
            class ShardSpec:
                offsets = []
            """)
        assert rules(findings) == ["lint/mutable-picklable-field"]

    def test_frozen_dataclass_with_mutable_default_fires(self):
        findings = lint("""
            import dataclasses

            @dataclasses.dataclass(frozen=True)
            class Row:
                items = {}
            """)
        assert rules(findings) == ["lint/mutable-picklable-field"]

    def test_immutable_defaults_are_fine(self):
        findings = lint("""
            class ShardSpec:
                offsets = ()
                label = "x"
            """)
        assert findings == []


class TestHookGuard:
    def test_unguarded_obs_hook_fires(self):
        findings = lint("""
            def run(workload, obs=None):
                obs.counter("runs").inc()
                return workload
            """)
        assert rules(findings) == ["lint/unguarded-hook"]

    def test_null_object_guard_is_fine(self):
        findings = lint("""
            def run(workload, obs=None):
                obs = obs or NULL_OBS
                obs.counter("runs").inc()
                return workload
            """)
        assert findings == []

    def test_explicit_if_check_is_fine(self):
        findings = lint("""
            def run(workload, faults=None):
                if faults is not None:
                    faults.check("run")
                return workload
            """)
        assert findings == []


class TestCtxWriteGuard:
    def test_unguarded_intern_fires(self):
        findings = lint("""
            def publish(self, ctx):
                return self.ctx_table.intern(ctx)
            """)
        assert rules(findings) == ["lint/unguarded-ctx-write"]

    def test_guarded_intern_is_fine(self):
        findings = lint("""
            def publish(self, ctx):
                if ctx is not NULL_CTX:
                    return self.ctx_table.intern(ctx)
                return OTHER_ID
            """)
        assert findings == []

    def test_guard_attribute_form_is_fine(self):
        findings = lint("""
            def publish(self, proc):
                if proc.ctx is not context.NULL_CTX:
                    return self.ctx_table.intern(proc.ctx)
                return OTHER_ID
            """)
        assert findings == []

    def test_else_branch_is_not_guarded(self):
        findings = lint("""
            def publish(self, ctx):
                if ctx is not NULL_CTX:
                    pass
                else:
                    return self.ctx_table.intern(ctx)
            """)
        assert rules(findings) == ["lint/unguarded-ctx-write"]

    def test_wrong_comparison_fires(self):
        findings = lint("""
            def publish(self, ctx):
                if ctx is NULL_CTX:
                    return self.ctx_table.intern(ctx)
            """)
        assert rules(findings) == ["lint/unguarded-ctx-write"]

    def test_non_ctx_receiver_is_ignored(self):
        findings = lint("""
            def dedupe(self, name):
                return self.string_pool.intern(name)
            """)
        assert findings == []

    def test_named_ignore_suppresses_early_return_style(self):
        findings = lint("""
            def publish(self, ctx):
                if ctx is NULL_CTX:
                    return OTHER_ID
                return self.ctx_table.intern(ctx)  # dcpicheck: ignore[unguarded-ctx-write]
            """)
        assert findings == []


class TestUnseededBackoff:
    def test_sleep_in_retry_function_fires(self):
        findings = lint("""
            import time

            def ingest_with_retry(self, handle):
                time.sleep(0.01)
            """)
        assert rules(findings) == ["lint/unseeded-backoff"]

    def test_wallclock_in_backoff_function_fires(self):
        findings = lint("""
            import time

            def backoff_schedule(self):
                return time.monotonic()
            """)
        assert rules(findings) == ["lint/unseeded-backoff"]

    def test_entropy_seeded_jitter_in_backoff_fires(self):
        findings = lint("""
            import random

            def next_backoff(attempt):
                rng = random.Random()
                return 2 ** attempt * rng.random()
            """)
        assert rules(findings) == ["lint/unseeded-backoff"]

    def test_seeded_schedule_with_injected_sleeper_is_fine(self):
        findings = lint("""
            import random

            def backoff_schedule(self):
                rng = random.Random(self.seed)
                return [2 ** a * (0.5 + 0.5 * rng.random())
                        for a in range(self.attempts)]

            def acquire_with_retry(self):
                for delay in self.backoff_schedule():
                    self._sleep(delay / 1000.0)
            """)
        assert findings == []

    def test_sleep_outside_backoff_logic_is_fine(self):
        findings = lint("""
            import time

            def wait_for_worker():
                time.sleep(0.1)
            """)
        assert findings == []

    def test_named_ignore_suppresses(self):
        findings = lint("""
            import time

            def poll_with_retry(self):
                time.sleep(0.01)  # dcpicheck: ignore[unseeded-backoff]
            """)
        assert findings == []


class TestSwallowedException:
    def test_except_pass_fires(self):
        findings = lint("""
            def cleanup(path):
                try:
                    remove(path)
                except OSError:
                    pass
            """)
        assert rules(findings) == ["lint/swallowed-exception"]

    def test_bare_except_fires(self):
        findings = lint("""
            def run(step):
                try:
                    step()
                except:
                    log("step failed")
            """)
        assert rules(findings) == ["lint/swallowed-exception"]

    def test_except_ellipsis_body_fires(self):
        findings = lint("""
            def probe(target):
                try:
                    target.ping()
                except ConnectionError:
                    ...
            """)
        assert rules(findings) == ["lint/swallowed-exception"]

    def test_handled_exception_is_fine(self):
        findings = lint("""
            def load(path, default):
                try:
                    return read(path)
                except OSError:
                    return default
            """)
        assert findings == []

    def test_named_ignore_suppresses(self):
        findings = lint("""
            def gc(path):
                try:
                    remove(path)
                except OSError:  # dcpicheck: ignore[swallowed-exception]
                    pass
            """)
        assert findings == []


class TestSuppression:
    def test_bare_ignore_suppresses(self):
        findings = lint("""
            import random

            def jitter():
                return random.random()  # dcpicheck: ignore
            """)
        assert findings == []

    def test_named_ignore_suppresses_that_rule(self):
        findings = lint("""
            import random

            def jitter():
                return random.random()  # dcpicheck: ignore[unseeded-random]
            """)
        assert findings == []

    def test_wrong_rule_name_does_not_suppress(self):
        findings = lint("""
            import random

            def jitter():
                return random.random()  # dcpicheck: ignore[dead-write]
            """)
        assert rules(findings) == ["lint/unseeded-random"]


class TestSyntaxError:
    def test_unparseable_module_is_reported(self):
        findings = lint_source("def broken(:\n", "x.py")
        assert rules(findings) == ["lint/syntax-error"]


class TestRepoIsClean:
    def test_package_source_has_no_findings(self):
        root = CheckConfig().resolved_src_root()
        assert lint_paths(root) == []
