"""Unit tests for the profile-guided optimizer (repro.opt).

Covers the three layers separately -- the rewriter's branch-target
patching, the planning passes against analysis output, the oracle's
translation-aware identity check -- and then the whole loop through
:func:`repro.opt.optimize_workload` and the ``dcpiopt`` CLI.
"""

import json

import pytest

from repro.alpha.assembler import assemble
from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.core.analyze import AnalysisConfig, analyze_image
from repro.opt import (BlockPlan, ImageRewriter, OptConfig, ProcPlan,
                       RewritePlan, build_plan, image_fingerprint,
                       optimize_workload, rewrite_image, sweep_workload,
                       verify_identity)
from repro.tools import dcpiopt
from repro.workloads import OPT_TARGETS, get_workload

BRANCHY = """
.image t
.proc main
    lda   t0, 0(zero)
    lda   v0, 64(zero)
main_loop:
    and   t0, 15, t4
    beq   t4, main_rare
    addq  t5, 1, t5
    br    main_join
main_rare:
    addq  t5, 7, t5
main_join:
    addq  t0, 1, t0
    cmpult t0, v0, t9
    bne   t9, main_loop
    ret
.end
"""


def _profile(workload, max_instructions=40_000, seed=1):
    session = ProfileSession(
        MachineConfig(num_cpus=workload.num_cpus),
        SessionConfig(mode="cycles", seed=seed,
                      cycles_period=(240, 256)))
    return session.run(workload, max_instructions=max_instructions)


def _planned(name, config=None, max_instructions=40_000):
    workload = get_workload(name)
    collected = _profile(workload, max_instructions=max_instructions)
    plans = []
    for image in collected.machine.loader.images:
        profile = collected.profiles.get(image.name)
        if profile is None or not profile.total(EventType.CYCLES):
            continue
        analyses = analyze_image(image, profile, AnalysisConfig())
        if analyses:
            plans.append(build_plan(image, analyses,
                                    config or OptConfig()))
    return workload, plans


def test_identity_plan_roundtrips():
    # A plan that keeps every block in place must reproduce the image
    # instruction for instruction.
    image = assemble(BRANCHY)
    proc = image.procedures[0]
    base = image.base or 0
    plan = RewritePlan(
        image.name, image_fingerprint(image),
        [ProcPlan(proc.name,
                  [BlockPlan(proc.start - base, proc.end - base)])],
        data_offset=None, stats={})
    result = rewrite_image(image, plan)
    assert result.applied
    ops = [(i.op, i.ra, i.rb, i.rc) for i in image.instructions]
    new_ops = [(i.op, i.ra, i.rb, i.rc)
               for i in result.image.instructions]
    assert ops == new_ops


def test_fingerprint_mismatch_bails():
    # A retargeted branch is a different control-flow graph; a plan
    # computed on one build must refuse the other.
    image = assemble(BRANCHY)
    other = assemble(BRANCHY.replace("beq   t4, main_rare",
                                     "beq   t4, main_join"))
    plan = RewritePlan(
        image.name, image_fingerprint(other),
        [], data_offset=None, stats={})
    result = rewrite_image(image, plan)
    assert not result.applied
    assert "match" in result.reason


def _branchy_plan(blocks=None, frozen=False, data_offset=None):
    image = assemble(BRANCHY)
    proc = image.procedures[0]
    if blocks is None:
        blocks = [BlockPlan(proc.start, proc.end)]
    return image, RewritePlan(
        image.name, image_fingerprint(assemble(BRANCHY)),
        [ProcPlan(proc.name, blocks, frozen=frozen)],
        data_offset=data_offset, stats={})


class TestEveryBailoutReturnsTheImageUntouched:
    """One directed test per counted ``rewrite_image`` bailout.

    Each asserts the contract the counter advertises: the input image
    comes back *by identity*, unmodified, with ``applied`` False.
    """

    def check(self, image, plan, fragment):
        result = rewrite_image(image, plan)
        assert not result.applied
        assert result.image is image
        assert fragment in result.reason, result.reason
        assert result.old2new == {}
        return result

    def test_already_linked(self):
        image, plan = _branchy_plan()
        image.link(0x1_0000)
        self.check(image, plan, "already linked")

    def test_fingerprint_mismatch(self):
        image, plan = _branchy_plan()
        plan.fingerprint = image_fingerprint(
            assemble(BRANCHY.replace("addq  t5, 7", "subq  t5, 7")))
        self.check(image, plan, "match the profiled build")

    def test_plan_procs_do_not_match(self):
        image, plan = _branchy_plan()
        plan.procs[0].name = "ghost"
        self.check(image, plan, "procedures do not match")

    def test_unknown_block(self):
        image, plan = _branchy_plan(
            blocks=[BlockPlan(0x00, 0x100)])
        self.check(image, plan, "unknown block")

    def test_misaligned_block(self):
        image, plan = _branchy_plan(
            blocks=[BlockPlan(0x02, 0x0a)])
        self.check(image, plan, "unknown block")

    def test_order_not_a_permutation(self):
        image, plan = _branchy_plan(
            blocks=[BlockPlan(0x00, 0x08, order=[0x00, 0x00])])
        self.check(image, plan, "not a permutation")

    def test_duplicate_emission(self):
        # Two overlapping blocks would emit the shared range twice.
        image, plan = _branchy_plan(
            blocks=[BlockPlan(0x00, 0x08), BlockPlan(0x04, 0x0c),
                    BlockPlan(0x0c, 0x2c)])
        self.check(image, plan, "more than once")

    def test_frozen_proc_with_non_identity_plan(self):
        image, plan = _branchy_plan(
            blocks=[BlockPlan(0x00, 0x08, order=[0x04, 0x00]),
                    BlockPlan(0x08, 0x2c)],
            frozen=True)
        self.check(image, plan, "frozen")

    def test_bad_target_remap(self):
        # Dropping the rare block leaves the beq with nowhere to go.
        image, plan = _branchy_plan(
            blocks=[BlockPlan(0x00, 0x08), BlockPlan(0x08, 0x10),
                    BlockPlan(0x10, 0x18), BlockPlan(0x1c, 0x28),
                    BlockPlan(0x28, 0x2c)])
        self.check(image, plan, "unmapped")

    def test_data_overlap(self):
        # Pin the data where the code lives: refuse, never link a
        # program whose data shadows its instructions.
        image, plan = _branchy_plan(data_offset=0x10)
        self.check(image, plan, "overruns the pinned data")


def test_build_plan_straightens_hot_path():
    _, plans = _planned("opt-branchy")
    assert plans, "no plan built for opt-branchy"
    stats = plans[0].stats
    assert stats.get("blocks_moved", 0) > 0


def test_rewriter_elides_hot_branch():
    workload, plans = _planned(
        "opt-branchy", OptConfig(layout=True, schedule=False,
                                 split=False))
    rewriter = ImageRewriter(plans)
    baseline = assemble(workload._asm(), image_name=workload.name)
    rewritten = rewriter(assemble(workload._asm(),
                                  image_name=workload.name))
    result = rewriter.results[workload.name]
    assert result.applied, result.reason
    # The hot-path `br main_join` is elided (straightened); any stub
    # the layout inserts lands on the cold path.
    assert result.stats["branches_elided"] >= 1
    assert len(rewritten.instructions) \
        <= len(baseline.instructions) + result.stats["stubs_inserted"]


def test_oracle_accepts_true_rewrite_and_measures_speedup():
    workload, plans = _planned("opt-branchy")
    report = verify_identity(workload, plans)
    assert report.identical, report.mismatches
    assert not report.skipped
    assert report.speedup > 0.0


def test_dropped_block_bails_not_corrupts():
    # Damage a plan so a block vanishes: branches into it become
    # unmappable, the rewrite bails, and the program runs unmodified
    # (skipped, never wrong).
    workload, plans = _planned("opt-branchy")
    victim = None
    for proc_plan in plans[0].procs:
        if len(proc_plan.blocks) > 2:
            victim = proc_plan
            break
    assert victim is not None
    del victim.blocks[1]
    report = verify_identity(workload, plans)
    assert report.identical
    assert report.skipped
    assert report.speedup == 0.0


def test_oracle_catches_semantically_wrong_reorder():
    # Force an applied-but-wrong rewrite: swap two dependent
    # instructions inside the hot block.  The A/B run must report
    # mismatches, not a speedup.
    workload, plans = _planned(
        "opt-branchy", OptConfig(layout=True, schedule=False,
                                 split=False))
    victim = None
    for proc_plan in plans[0].procs:
        for block in proc_plan.blocks:
            if len(block.order) == 4:     # the addq/xor/and/br block
                victim = block
    assert victim is not None
    victim.order[0], victim.order[1] = victim.order[1], victim.order[0]
    report = verify_identity(workload, plans)
    assert not report.skipped
    assert not report.identical
    assert report.mismatches


@pytest.mark.parametrize("name", OPT_TARGETS)
def test_optimize_workload_end_to_end(name):
    report = optimize_workload(name, max_instructions=40_000)
    assert report.accepted, (report.oracle.mismatches, report.findings)
    assert report.speedup >= 0.05, report.speedup
    payload = report.report()
    assert payload["schema"] == 2
    assert payload["workload"] == name
    assert payload["baseline"]["cycles"] > payload["optimized"]["cycles"]


def test_optimize_rejects_are_not_speedups():
    # An undecidable (truncated) verify run must zero the speedup and
    # surface the reason, not silently report a win.
    report = optimize_workload("opt-branchy", max_instructions=40_000,
                               verify_instructions=1_000)
    assert not report.accepted
    assert report.speedup == 0.0
    assert any("undecidable" in m for m in report.oracle.mismatches)


def test_icache_split_removes_conflict_misses():
    from repro.opt.oracle import event_total

    report = optimize_workload("opt-icache", max_instructions=40_000)
    assert report.accepted
    before = event_total(report.oracle.baseline_machine,
                         EventType.IMISS)
    after = event_total(report.oracle.optimized_machine,
                        EventType.IMISS)
    assert after < before / 4, (before, after)


def test_sweep_degrades_gracefully():
    rows = sweep_workload("opt-branchy",
                          periods=((240, 256), (3840, 4096)),
                          losses=(0.0, 0.3),
                          max_instructions=40_000)
    assert len(rows) == 4
    for row in rows:
        assert row["accepted"], row
        assert row["speedup"] >= 0.0, row
    # More samples at the shorter period.
    by_period = {}
    for row in rows:
        by_period.setdefault(row["period"], []).append(row["samples"])
    short, long_ = sorted(by_period)
    assert max(by_period[short]) >= max(by_period[long_])


def test_cli_run_report_and_sweep(tmp_path, capsys):
    out = tmp_path / "report.json"
    rc = dcpiopt.main(["run", "--workload", "opt-branchy",
                       "--max-instructions", "40000",
                       "--out", str(out)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "ACCEPTED" in text
    payload = json.loads(out.read_text())
    assert payload["schema"] == 2
    assert payload["accepted"]

    rc = dcpiopt.main(["report", str(out)])
    assert rc == 0
    assert "speedup" in capsys.readouterr().out

    sweep_out = tmp_path / "sweep.json"
    rc = dcpiopt.main(["sweep", "--workloads", "opt-branchy",
                       "--period", "240:256", "--loss", "0.0",
                       "--max-instructions", "40000",
                       "--out", str(sweep_out)])
    assert rc == 0
    sweep = json.loads(sweep_out.read_text())
    assert sweep["schema"] == 1
    assert len(sweep["rows"]) == 1


def test_cli_single_pass_selection(capsys):
    rc = dcpiopt.main(["run", "--workload", "opt-stall",
                       "--max-instructions", "40000",
                       "--passes", "schedule", "--json"])
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert rc == 0
    assert payload["accepted"]
    assert payload["passes"].get("scheduled_blocks", 0) > 0
    assert payload["passes"].get("blocks_moved", 0) == 0
