"""Tests for the TLB, branch predictor and write buffer."""

from repro.cpu.branch import BranchPredictor
from repro.cpu.tlb import TLB
from repro.cpu.writebuffer import WriteBuffer


def identity_map(vpage):
    return vpage + 1000


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(4, miss_penalty=40)
        ppage, penalty, missed = tlb.translate(1, 7, identity_map)
        assert (ppage, penalty, missed) == (1007, 40, True)
        ppage, penalty, missed = tlb.translate(1, 7, identity_map)
        assert (ppage, penalty, missed) == (1007, 0, False)

    def test_asn_isolation(self):
        tlb = TLB(4, 40)
        tlb.translate(1, 7, identity_map)
        _, penalty, missed = tlb.translate(2, 7, identity_map)
        assert missed is True

    def test_fifo_eviction(self):
        tlb = TLB(2, 40)
        tlb.translate(0, 1, identity_map)
        tlb.translate(0, 2, identity_map)
        tlb.translate(0, 3, identity_map)  # evicts page 1
        _, _, missed = tlb.translate(0, 1, identity_map)
        assert missed is True
        _, _, missed = tlb.translate(0, 3, identity_map)
        assert missed is False

    def test_flush(self):
        tlb = TLB(4, 40)
        tlb.translate(0, 1, identity_map)
        tlb.flush()
        _, _, missed = tlb.translate(0, 1, identity_map)
        assert missed is True

    def test_stats(self):
        tlb = TLB(4, 40)
        tlb.translate(0, 1, identity_map)
        tlb.translate(0, 1, identity_map)
        assert tlb.hits == 1 and tlb.misses == 1


class TestBranchPredictor:
    def test_learns_taken_loop(self):
        bp = BranchPredictor(64)
        results = [bp.predict_conditional(0x100, True) for _ in range(10)]
        assert all(results[2:])  # warmed up after a couple

    def test_mispredicts_alternating_pattern_sometimes(self):
        bp = BranchPredictor(64)
        outcomes = [bp.predict_conditional(0x100, bool(i % 2))
                    for i in range(20)]
        assert not all(outcomes)

    def test_loop_exit_mispredicted(self):
        bp = BranchPredictor(64)
        for _ in range(10):
            bp.predict_conditional(0x100, True)
        assert bp.predict_conditional(0x100, False) is False

    def test_btb_indirect(self):
        bp = BranchPredictor(64)
        assert bp.predict_indirect(0x200, 0x300) is False  # cold
        assert bp.predict_indirect(0x200, 0x300) is True
        assert bp.predict_indirect(0x200, 0x400) is False  # target changed

    def test_return_stack(self):
        bp = BranchPredictor(64)
        bp.push_call(0x104)
        bp.push_call(0x204)
        assert bp.predict_return(0x204) is True
        assert bp.predict_return(0x104) is True
        assert bp.predict_return(0x104) is False  # empty stack

    def test_ras_depth_bounded(self):
        bp = BranchPredictor(64, ras_depth=2)
        for addr in (1, 2, 3):
            bp.push_call(addr)
        assert bp.predict_return(3) is True
        assert bp.predict_return(2) is True
        assert bp.predict_return(1) is False  # pushed out

    def test_mispredict_counter(self):
        bp = BranchPredictor(64)
        bp.predict_conditional(0, False)
        bp.predict_conditional(0, False)
        assert bp.predictions == 2
        assert bp.mispredictions >= 1


class TestWriteBuffer:
    def test_merge_same_block(self):
        wb = WriteBuffer(entries=2, drain_cycles=100)
        assert wb.earliest_issue(0x100, 0) == 0
        wb.commit(0x100, 0)
        assert wb.commit(0x108, 1) is True  # same 32B block merges
        assert wb.merges == 1

    def test_overflow_stalls_until_drain(self):
        wb = WriteBuffer(entries=2, drain_cycles=50)
        wb.commit(0x000, 0)   # drains at 50
        wb.commit(0x100, 0)   # drains at 100 (sequential port)
        stall_until = wb.earliest_issue(0x200, 1)
        assert stall_until == 50

    def test_entries_expire(self):
        wb = WriteBuffer(entries=1, drain_cycles=10)
        wb.commit(0x000, 0)
        assert wb.earliest_issue(0x100, 20) == 20  # old entry drained

    def test_occupancy(self):
        wb = WriteBuffer(entries=4, drain_cycles=100)
        wb.commit(0x000, 0)
        wb.commit(0x100, 0)
        assert wb.occupancy(1) == 2
        assert wb.occupancy(1000) == 0

    def test_allocation_counter(self):
        wb = WriteBuffer(entries=4, drain_cycles=10)
        wb.commit(0x000, 0)
        wb.commit(0x200, 0)
        assert wb.allocations == 2
