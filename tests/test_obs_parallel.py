"""Self-monitoring under the sharded runner: the registry reduction
must be order-independent, and serial vs pooled runs must agree."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collect.parallel import (ParallelSessionRunner, ShardSpec,
                                    merge_shard_obs, run_shard)
from repro.obs import COUNTER, GAUGE, derive, merge_metrics

WORKLOAD = "mccalpin-assign"
BUDGET = 12_000

ENTRY = st.one_of(
    st.builds(lambda v: {"type": COUNTER, "value": v},
              st.integers(min_value=0, max_value=10 ** 6)),
    st.builds(lambda v, p: {"type": GAUGE, "value": v,
                            "peak": max(v, p)},
              st.integers(min_value=0, max_value=10 ** 6),
              st.integers(min_value=0, max_value=10 ** 6)))

# Names map to a fixed kind so snapshots never disagree on type.
SNAPSHOT = st.dictionaries(
    st.sampled_from(["c.a", "c.b", "g.a"]), ENTRY, max_size=3).map(
        lambda d: {name: entry for name, entry in d.items()
                   if (entry["type"] == COUNTER) == name.startswith("c.")})


class TestReductionProperties:
    @given(st.lists(SNAPSHOT, max_size=6), st.randoms())
    @settings(max_examples=50)
    def test_any_permutation_reduces_identically(self, snapshots, rng):
        shuffled = list(snapshots)
        rng.shuffle(shuffled)
        assert merge_metrics(shuffled) == merge_metrics(snapshots)

    @given(st.lists(SNAPSHOT, min_size=2, max_size=6),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=50)
    def test_any_grouping_reduces_identically(self, snapshots, split):
        split = min(split, len(snapshots) - 1)
        two_level = merge_metrics([merge_metrics(snapshots[:split]),
                                   merge_metrics(snapshots[split:])])
        assert two_level == merge_metrics(snapshots)


def _specs(count=3, obs=True):
    return [ShardSpec(workload=WORKLOAD, seed=seed, obs=obs,
                      max_instructions=BUDGET)
            for seed in range(1, count + 1)]


@pytest.fixture(scope="module")
def shard_results():
    """The same shard list executed serially, once per module."""
    return [run_shard(spec) for spec in _specs()]


class TestShardObs:
    def test_every_shard_ships_a_snapshot(self, shard_results):
        for shard in shard_results:
            assert shard.obs["driver.samples"]["value"] > 0
            assert shard.obs["session.instructions"]["value"] == BUDGET
            assert shard.trace_events  # obs shards carry their spans

    def test_merged_counters_equal_serial_sums(self, shard_results):
        merged = merge_shard_obs(shard_results)
        for name in ("driver.samples", "daemon.samples",
                     "session.instructions", "driver.hash.misses"):
            assert merged[name]["value"] == sum(
                shard.obs[name]["value"] for shard in shard_results)

    def test_merge_order_independent_on_real_shards(self, shard_results):
        forward = merge_shard_obs(shard_results)
        assert merge_shard_obs(shard_results[::-1]) == forward
        regrouped = merge_metrics(
            [merge_shard_obs(shard_results[:1]),
             merge_shard_obs(shard_results[1:])])
        assert regrouped == forward

    def test_serial_and_pooled_runs_report_identical_totals(self):
        serial = ParallelSessionRunner(workers=1).run(_specs())
        pooled = ParallelSessionRunner(workers=3).run(_specs())
        # Wall-clock gauges/histograms legitimately differ between
        # runs; every counter total must match exactly.
        def counters(snapshot):
            return {name: entry["value"]
                    for name, entry in snapshot.items()
                    if entry["type"] == COUNTER}

        assert counters(serial.obs) == counters(pooled.obs)
        assert serial.merged.encode_all() == pooled.merged.encode_all()

    def test_shard_results_pickle(self, shard_results):
        clone = pickle.loads(pickle.dumps(shard_results[0]))
        assert clone.obs == shard_results[0].obs
        assert clone.trace_events == shard_results[0].trace_events

    def test_obs_does_not_perturb_profiles(self):
        spec_on, spec_off = _specs(1, obs=True)[0], _specs(1, obs=False)[0]
        on, off = run_shard(spec_on), run_shard(spec_off)
        assert on.profiles == off.profiles
        assert on.cycles == off.cycles
        assert off.trace_events is None

    def test_derived_rates_are_exact_not_averaged(self, shard_results):
        merged = derive(merge_shard_obs(shard_results))
        hits = sum(s.obs["driver.hash.hits"]["value"]
                   for s in shard_results)
        misses = sum(s.obs["driver.hash.misses"]["value"]
                     for s in shard_results)
        assert merged["driver.hash.miss_rate"] == pytest.approx(
            misses / (hits + misses))


class TestCtxSpanLinkage:
    """dcpimon traces and sample profiles share request identity."""

    @pytest.fixture(scope="class")
    def ctx_shard(self):
        spec = ShardSpec(workload="slow-client", seed=1, obs=True,
                         context=True, max_instructions=BUDGET)
        return run_shard(spec)

    def test_trace_carries_one_instant_per_class(self, ctx_shard):
        instants = [event for event in ctx_shard.trace_events
                    if event.get("name") == "ctx.class"]
        by_name = {event["args"]["cls"]: event["args"]["span"]
                   for event in instants}
        assert set(by_name) == set(ctx_shard.ctx["classes"])
        assert len(instants) == len(by_name)

    def test_trace_spans_match_ledger_spans(self, ctx_shard):
        from repro.ctx import span_id

        instants = {event["args"]["cls"]: event["args"]["span"]
                    for event in ctx_shard.trace_events
                    if event.get("name") == "ctx.class"}
        for name, span in instants.items():
            assert span == span_id(name)
            assert ctx_shard.ctx["spans"][name] == span

    def test_ctx_off_trace_has_no_class_instants(self, shard_results):
        for shard in shard_results:
            assert all(event.get("name") != "ctx.class"
                       for event in shard.trace_events)
