"""End-to-end tests for the ``dcpicheck`` CLI."""

import json

import pytest

from repro.check.findings import REPORT_SCHEMA
from repro.tools.dcpicheck import main

BAD_MODULE = """\
import random


def jitter():
    return random.random()
"""


@pytest.fixture
def bad_src(tmp_path):
    """A source tree with exactly one seeded lint violation."""
    src = tmp_path / "src"
    src.mkdir()
    (src / "noise.py").write_text(BAD_MODULE)
    return str(src)


class TestGating:
    def test_clean_image_run_exits_zero(self, capsys):
        code = main(["--layers", "image",
                     "--workloads", "mccalpin-assign"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 error(s)" in out

    def test_seeded_violation_fails_the_gate(self, bad_src, capsys):
        code = main(["--layers", "lint", "--src", bad_src])
        out = capsys.readouterr().out
        assert code == 1
        assert "lint/unseeded-random" in out

    def test_severity_threshold_controls_the_gate(self, tmp_path):
        # An integer use-before-def is a warning: it gates at
        # --severity warning but not at the default error level.
        src = tmp_path / "src"
        src.mkdir()
        (src / "ok.py").write_text("X = 1\n")
        assert main(["--layers", "lint", "--src", str(src),
                     "--severity", "warning"]) == 0

    def test_unknown_layer_is_rejected(self):
        with pytest.raises(SystemExit):
            main(["--layers", "image,nonsense"])

    def test_unknown_workload_is_a_keyerror(self):
        with pytest.raises(KeyError):
            main(["--layers", "image", "--workloads", "no-such-load"])


class TestJsonReport:
    def test_report_schema(self, bad_src, tmp_path):
        report_path = tmp_path / "out" / "report.json"
        code = main(["--layers", "lint", "--src", bad_src,
                     "--json", str(report_path)])
        assert code == 1
        payload = json.loads(report_path.read_text())
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["generated_by"] == "dcpicheck"
        assert payload["layers"] == ["lint"]
        assert payload["counts"]["error"] == 1
        assert payload["counts"]["waived"] == 0
        (finding,) = payload["findings"]
        assert finding["rule"] == "lint/unseeded-random"
        assert finding["severity"] == "error"
        assert finding["waived"] is False
        assert "noise.py" in finding["location"]
        assert "lint" in payload["runtime_s"]

    def test_rewrite_layer_report_is_deterministic(self, capsys):
        # Two Layer-4 runs over the same seeded profile must serialize
        # byte-identically (modulo wall-clock runtimes): the epoch
        # store and CI diffing both key on stable report bytes.
        payloads = []
        for _ in range(2):
            code = main(["--layers", "rewrite",
                         "--workloads", "opt-branchy",
                         "--json", "-"])
            assert code == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["schema"] == REPORT_SCHEMA
            assert payload["layers"] == ["rewrite"]
            payload.pop("runtime_s")
            payloads.append(json.dumps(payload, sort_keys=False))
        assert payloads[0] == payloads[1]

    def test_json_to_stdout_is_parseable(self, bad_src, capsys):
        code = main(["--layers", "lint", "--src", bad_src,
                     "--json", "-"])
        captured = capsys.readouterr()
        assert code == 1
        payload = json.loads(captured.out)
        assert payload["counts"]["error"] == 1
        # Human-readable output moves to stderr so stdout stays JSON.
        assert "dcpicheck:" in captured.err


class TestWaivers:
    def test_waived_finding_does_not_gate(self, bad_src, tmp_path,
                                          capsys):
        waivers = tmp_path / "waivers.toml"
        waivers.write_text(
            '[[waiver]]\n'
            'rule = "lint/unseeded-random"\n'
            'location = "noise.py"\n'
            'reason = "seeded jitter is exercised by the chaos tests"\n')
        code = main(["--layers", "lint", "--src", bad_src,
                     "--waivers", str(waivers)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 waived" in out
        assert "[waived: seeded jitter" in out

    def test_waiver_for_another_location_still_gates(self, bad_src,
                                                     tmp_path):
        waivers = tmp_path / "waivers.toml"
        waivers.write_text(
            '[[waiver]]\n'
            'rule = "lint/unseeded-random"\n'
            'location = "some/other/module.py"\n'
            'reason = "unrelated"\n')
        assert main(["--layers", "lint", "--src", bad_src,
                     "--waivers", str(waivers)]) == 1


class TestCliEntryPoint:
    def test_cli_module_delegates(self, bad_src):
        from repro.tools.cli import main_dcpicheck

        assert main_dcpicheck(["--layers", "lint", "--src",
                               bad_src, "-q"]) == 1
