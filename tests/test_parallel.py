"""The parallel shard runner and its deterministic reducer.

The load-bearing guarantee: merging worker shards is a commutative,
associative integer sum over (image, event, offset) keys, so worker
count, scheduling, and merge order never change the profile -- the same
invariant the paper's daemon relies on when draining per-CPU hash
tables in arbitrary order.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collect.database import ProfileDatabase
from repro.collect.driver import DriverConfig
from repro.collect.parallel import (MergedProfiles, ParallelSessionRunner,
                                    ShardSpec, merge_periods,
                                    merge_shard_ctx, merge_shards,
                                    run_shard, shard_matrix)
from repro.collect.session import SessionConfig
from repro.cpu.events import EventType
from repro.ctx import canonical_ledger_bytes

BUDGET = 15_000


@pytest.fixture(scope="module")
def shard_results():
    """Three real shards, run once in-process and reused by the tests."""
    shards = shard_matrix(["mccalpin-assign", "gcc"], seeds=(1,),
                          modes=("default",), max_instructions=BUDGET)
    shards.append(ShardSpec(workload="mccalpin-assign", seed=2,
                            mode="cycles", max_instructions=BUDGET))
    return [run_shard(spec) for spec in shards]


def merged_bytes(results):
    merged = MergedProfiles(merge_shards(results), merge_periods(results))
    return merged.encode_all()


# -- order-independence on real profiling shards ---------------------------


@settings(max_examples=25, deadline=None)
@given(order=st.permutations(range(3)))
def test_merge_order_never_changes_profile(shard_results, order):
    """Any merge order yields byte-identical canonical profiles."""
    baseline = merged_bytes(shard_results)
    shuffled = [shard_results[i] for i in order]
    assert merged_bytes(shuffled) == baseline


def test_merge_is_associative_on_real_shards(shard_results):
    """Reducing partial merges equals reducing everything at once."""
    left = merge_shards(shard_results[:1])
    right = merge_shards(shard_results[1:])
    assert merge_shards([left, right]) == merge_shards(shard_results)


# -- order-independence on synthetic sample maps (hypothesis) --------------


def _profile_maps():
    offsets = st.integers(min_value=0, max_value=64).map(lambda n: n * 4)
    by_offset = st.dictionaries(offsets, st.integers(1, 1_000), max_size=6)
    by_event = st.dictionaries(
        st.sampled_from((EventType.CYCLES, EventType.IMISS)),
        by_offset, max_size=2)
    return st.dictionaries(st.sampled_from(("libc", "vmunix", "app")),
                           by_event, max_size=3)


@settings(max_examples=80, deadline=None)
@given(shards=st.lists(_profile_maps(), max_size=6), data=st.data())
def test_reducer_is_order_and_grouping_independent(shards, data):
    expected = merge_shards(shards)
    order = data.draw(st.permutations(range(len(shards))))
    assert merge_shards([shards[i] for i in order]) == expected
    if shards:
        split = data.draw(st.integers(0, len(shards)))
        regrouped = [merge_shards(shards[:split]),
                     merge_shards(shards[split:])]
        assert merge_shards(regrouped) == expected


# -- context-dimension shards (repro.ctx) ----------------------------------


@pytest.fixture(scope="module")
def ctx_shard_results():
    """Three real ctx-enabled shards of the traffic scenarios."""
    shards = [ShardSpec(workload=workload, seed=seed, context=True,
                        max_instructions=BUDGET)
              for seed, workload in enumerate(
                  ("bursty", "slow-client", "mixed-tenant"), start=1)]
    return [run_shard(spec) for spec in shards]


@settings(max_examples=25, deadline=None)
@given(order=st.permutations(range(3)))
def test_ctx_merge_is_order_independent_byte_for_byte(
        ctx_shard_results, order):
    """Profiles AND the merged context ledger survive any shard order."""
    baseline_profiles = merged_bytes(ctx_shard_results)
    baseline_ledger = canonical_ledger_bytes(
        merge_shard_ctx(ctx_shard_results))
    shuffled = [ctx_shard_results[i] for i in order]
    assert merged_bytes(shuffled) == baseline_profiles
    assert canonical_ledger_bytes(
        merge_shard_ctx(shuffled)) == baseline_ledger


def test_ctx_merge_is_associative_on_real_shards(ctx_shard_results):
    whole = canonical_ledger_bytes(merge_shard_ctx(ctx_shard_results))
    left = merge_shard_ctx(ctx_shard_results[:1])
    right = merge_shard_ctx(ctx_shard_results[1:])
    assert canonical_ledger_bytes(
        merge_shard_ctx([left, right])) == whole


def test_ctx_shards_ship_ledgers_with_requests(ctx_shard_results):
    for result in ctx_shard_results:
        assert result.ctx is not None
        assert result.ctx["schema"] == 1
        assert result.ctx["classes"]
        assert result.ctx["requests"]


def test_ctx_off_shards_ship_no_ledger(shard_results):
    assert all(result.ctx is None for result in shard_results)
    assert merge_shard_ctx(shard_results) is None


def test_ctx_shard_results_are_picklable(ctx_shard_results):
    clone = pickle.loads(pickle.dumps(ctx_shard_results[0]))
    assert clone.ctx == ctx_shard_results[0].ctx


# -- parallel vs serial byte-identity --------------------------------------


def test_pool_run_matches_serial_run_byte_identical():
    """A 4-worker pool and a serial loop produce identical databases."""
    shards = shard_matrix(["mccalpin-assign", "gcc"], seeds=(1, 2),
                          modes=("default",), max_instructions=BUDGET)
    serial = ParallelSessionRunner(workers=1).run(shards)
    pooled = ParallelSessionRunner(workers=4).run(shards)
    assert serial.merged.encode_all() == pooled.merged.encode_all()
    assert serial.merged.total() == pooled.merged.total() > 0
    assert [r.spec for r in pooled.shards] == shards
    assert pooled.total_instructions() == serial.total_instructions()


def test_shard_results_are_picklable(shard_results):
    for result in shard_results:
        clone = pickle.loads(pickle.dumps(result))
        assert clone.profiles == result.profiles
        assert clone.spec == result.spec


# -- merged-profile persistence and stats ----------------------------------


def test_merged_profiles_save_and_reload(tmp_path, shard_results):
    merged = MergedProfiles(merge_shards(shard_results),
                            merge_periods(shard_results))
    database = ProfileDatabase(str(tmp_path / "db"))
    merged.save(database)
    image = merged.images()[0]
    event = sorted(merged.counts[image], key=str)[0]
    counts, _ = database.load(image, event)
    assert counts == merged.counts[image][event]


def test_merged_profiles_save_accepts_path(tmp_path, shard_results):
    merged = MergedProfiles(merge_shards(shard_results),
                            merge_periods(shard_results))
    root = str(tmp_path / "db_from_path")
    merged.save(root)  # the README's documented form
    image = merged.images()[0]
    event = sorted(merged.counts[image], key=str)[0]
    counts, _ = ProfileDatabase(root).load(image, event)
    assert counts == merged.counts[image][event]


def test_shard_overhead_requires_baseline():
    spec = ShardSpec(workload="mccalpin-assign", seed=1,
                     max_instructions=BUDGET, baseline=True)
    result = run_shard(spec)
    overhead = result.overhead_pct()
    assert overhead is not None
    assert -1.0 < overhead < 10.0
    no_base = run_shard(ShardSpec(workload="mccalpin-assign", seed=1,
                                  max_instructions=BUDGET))
    assert no_base.overhead_pct() is None


def test_shard_matrix_covers_cross_product():
    shards = shard_matrix(["gcc", "dss"], seeds=(1, 2, 3),
                          modes=("cycles", "mux"))
    assert len(shards) == 12
    assert len({s.label() for s in shards}) == 12


# -- fault-injected shards (crash recovery under the pool) -----------------


def _crash_plan():
    from repro.faults.injector import FaultPlan, FaultSpec

    # Shards drain once per 200k-instruction chunk; with BUDGET below
    # that, the first drain is the only one -- crash there.
    return FaultPlan(specs=(
        FaultSpec("daemon.drain.cpu", "crash", hits=(1,)),), seed=1)


def _shard_conserves(result):
    """The per-shard pipeline book, from shipped-back stats alone."""
    stats = result.stats
    return (stats["driver_samples"]
            == stats["daemon_samples"] + stats["driver_dropped"]
            + stats["daemon_lost_samples"])


def test_faulted_shard_recovers_and_conserves():
    spec = ShardSpec(workload="gcc", seed=1, mode="default",
                     max_instructions=BUDGET, faults=_crash_plan())
    result = run_shard(spec)
    assert result.stats["daemon_recoveries"] >= 1
    assert _shard_conserves(result)


def test_faulted_shard_spec_survives_pickling():
    spec = ShardSpec(workload="gcc", seed=1,
                     max_instructions=BUDGET, faults=_crash_plan())
    clone = pickle.loads(pickle.dumps(spec))
    assert clone.faults == spec.faults


def test_faulted_pool_run_matches_fault_free_minus_losses():
    """Parallel-shard variant of the recovery invariant: a crashing
    shard in a worker pool merges to the fault-free totals minus its
    accounted losses (here: zero extra loss -- the journal-less shard
    re-drains its pinned batches)."""
    clean = [ShardSpec(workload="gcc", seed=1, mode="default",
                       max_instructions=BUDGET),
             ShardSpec(workload="mccalpin-assign", seed=1,
                       mode="default", max_instructions=BUDGET)]
    faulted = [ShardSpec(workload="gcc", seed=1, mode="default",
                         max_instructions=BUDGET, faults=_crash_plan()),
               clean[1]]
    reference = ParallelSessionRunner(workers=2).run(clean)
    chaotic = ParallelSessionRunner(workers=2).run(faulted)
    for shard in chaotic.shards:
        assert _shard_conserves(shard)
    ref_stats = reference.by_label()["gcc/seed1/default"].stats
    new_stats = chaotic.by_label()["gcc/seed1/default"].stats
    # Identical streams (faults never touch the machine)...
    assert new_stats["driver_samples"] == ref_stats["driver_samples"]
    # ... and merged counts differ by exactly the accounted losses.
    accounted = ((new_stats["driver_dropped"]
                  + new_stats["daemon_lost_samples"])
                 - (ref_stats["driver_dropped"]
                    + ref_stats["daemon_lost_samples"]))
    unknown_shift = (new_stats["daemon_unknown_samples"]
                     - ref_stats["daemon_unknown_samples"])
    assert (reference.merged.total() - chaotic.merged.total()
            == accounted + unknown_shift)


# -- SessionConfig validation (typed-Optional fix) -------------------------


def test_session_config_rejects_bad_mode():
    with pytest.raises(ValueError, match="unknown session mode"):
        SessionConfig(mode="turbo").make_driver_config()


def test_session_config_rejects_bad_driver_type():
    with pytest.raises(TypeError, match="DriverConfig"):
        SessionConfig(driver="not-a-config").make_driver_config()


def test_session_config_rejects_bad_db_root_type():
    with pytest.raises(TypeError, match="db_root"):
        SessionConfig(db_root=42).make_driver_config()


def test_session_config_accepts_explicit_driver():
    config = SessionConfig(mode="cycles",
                           driver=DriverConfig(buckets=128))
    driver_config = config.make_driver_config()
    assert driver_config.buckets == 128
    assert driver_config.mode == "cycles"
