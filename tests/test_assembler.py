"""Tests for the two-pass assembler."""

import pytest

from repro.alpha import regs
from repro.alpha.assembler import AssemblerError, assemble

SIMPLE = """
.image prog
.proc main
    addq  t0, 1, t1
    ldq   t2, 8(sp)
    stq   t2, 16(sp)
    beq   t1, done
    br    main
done:
    ret
.end
"""


class TestBasicParsing:
    def test_assembles_and_counts_instructions(self):
        image = assemble(SIMPLE)
        assert len(image.instructions) == 6

    def test_image_directive_sets_name(self):
        assert assemble(SIMPLE).name == "prog"

    def test_default_image_name(self):
        assert assemble(".proc p\n    ret\n.end").name == "a.out"

    def test_operate_registers(self):
        inst = assemble(SIMPLE).instructions[0]
        assert inst.op == "addq"
        assert inst.ra == regs.parse_register("t0")
        assert inst.imm == 1
        assert inst.rc == regs.parse_register("t1")

    def test_memory_operand(self):
        inst = assemble(SIMPLE).instructions[1]
        assert inst.rb == regs.parse_register("sp")
        assert inst.imm == 8

    def test_negative_displacement(self):
        image = assemble(".proc p\n    ldq t0, -16(sp)\n    ret\n.end")
        assert image.instructions[0].imm == -16

    def test_hex_immediate(self):
        image = assemble(".proc p\n    addq t0, 0x10, t0\n    ret\n.end")
        assert image.instructions[0].imm == 16

    def test_comments_and_blank_lines_ignored(self):
        text = "# leading\n\n.proc p\n    nop  # trailing\n    ret\n.end\n"
        assert len(assemble(text).instructions) == 2

    def test_register_operand_form(self):
        image = assemble(".proc p\n    addq t0, t1, t2\n    ret\n.end")
        assert image.instructions[0].rb == regs.parse_register("t1")
        assert image.instructions[0].imm is None


class TestLabelsAndBranches:
    def test_forward_branch_resolves(self):
        image = assemble(SIMPLE, base=0x1000)
        beq = image.instructions[3]
        assert beq.target == 0x1000 + 5 * 4  # 'done' label

    def test_backward_branch_resolves(self):
        image = assemble(SIMPLE, base=0x1000)
        br = image.instructions[4]
        assert br.target == 0x1000

    def test_undefined_label_raises(self):
        with pytest.raises(AssemblerError, match="undefined label"):
            assemble(".proc p\n    br nowhere\n.end")

    def test_duplicate_label_raises(self):
        text = ".proc p\nx:\n    nop\nx:\n    ret\n.end"
        with pytest.raises(AssemblerError, match="duplicate label"):
            assemble(text)

    def test_cross_procedure_branch_allowed(self):
        text = (".proc a\n    br helper\n.end\n"
                ".proc helper\n    ret\n.end")
        image = assemble(text, base=0)
        assert image.instructions[0].target == 4


class TestDataAndSymbols:
    def test_data_reserves_space(self):
        image = assemble(".data buf, 4096\n.proc p\n    ret\n.end")
        assert image.data_size >= 4096

    def test_lda_symbol_fixup_after_link(self):
        text = ".data buf, 64\n.proc p\n    lda t0, =buf\n    ret\n.end"
        image = assemble(text, base=0x10000)
        assert image.instructions[0].imm == image.data_base

    def test_lda_numeric_pseudo(self):
        text = ".proc p\n    lda t0, =0x2000\n    ret\n.end"
        assert assemble(text).instructions[0].imm == 0x2000

    def test_extern_symbol_resolution(self):
        text = ".proc p\n    lda pv, =helper\n    ret\n.end"
        image = assemble(text, externs={"helper": 0xBEEF0})
        assert image.instructions[0].imm == 0xBEEF0

    def test_unknown_symbol_raises(self):
        text = ".proc p\n    lda pv, =nosuch\n    ret\n.end"
        with pytest.raises(AssemblerError, match="undefined symbol"):
            assemble(text)

    def test_data_symbols_page_separated_from_code(self):
        text = ".data buf, 8\n.proc p\n    ret\n.end"
        image = assemble(text, base=0x10000)
        assert image.data_base % 8192 == 0
        assert image.data_base >= image.end


class TestJumps:
    def test_ret_defaults_to_ra(self):
        image = assemble(".proc p\n    ret\n.end")
        assert image.instructions[0].rb == regs.parse_register("ra")

    def test_ret_explicit_register(self):
        image = assemble(".proc p\n    ret (t9)\n.end")
        assert image.instructions[0].rb == regs.parse_register("t9")

    def test_jsr(self):
        image = assemble(".proc p\n    jsr ra, (pv)\n    ret\n.end")
        inst = image.instructions[0]
        assert inst.ra == regs.parse_register("ra")
        assert inst.rb == regs.parse_register("pv")

    def test_jmp_single_operand(self):
        image = assemble(".proc p\n    jmp (t0)\n.end")
        assert image.instructions[0].rb == regs.parse_register("t0")


class TestErrors:
    @pytest.mark.parametrize("text,pattern", [
        ("    nop", "outside .proc"),
        (".proc a\n.proc b\n.end\n.end", "nested"),
        (".end", ".end without"),
        (".proc p\n    nop\n", "missing .end"),
        (".proc p\n    frobnicate t0\n.end", "unknown opcode"),
        (".proc p\n    addq t0, t1\n.end", "3 operands"),
        (".proc p\n    ldq t0, t1\n.end", "bad memory operand"),
        (".proc p\n    addq t0, 1, qq9\n.end", "unknown register"),
        (".bogus x\n.proc p\n    ret\n.end", "unknown directive"),
    ])
    def test_syntax_errors(self, text, pattern):
        with pytest.raises(AssemblerError, match=pattern):
            assemble(text)
