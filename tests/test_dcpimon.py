"""Tests for the ``dcpimon`` self-monitoring tool."""

import json

import pytest

from repro.tools import dcpimon
from repro.tools.cli import main_dcpimon

QUICK = ["--workload", "mccalpin-assign", "--shards", "2",
         "--workers", "1", "--max-instructions", "8000"]


@pytest.fixture(scope="module")
def report_run(tmp_path_factory):
    """One live report run shared by the tests (they only read)."""
    trace = str(tmp_path_factory.mktemp("mon") / "trace.jsonl")
    argv = ["report", *QUICK, "--trace", trace]
    args = dcpimon._build_parser().parse_args(argv)
    return dcpimon.run_report(args), trace


class TestReport:
    def test_report_sections(self, report_run):
        text, _ = report_run
        for heading in ("Collection", "Per-CPU", "Daemon", "Shards",
                        "Analysis phases"):
            assert heading in text
        assert "samples/sec" in text
        assert "hash-table miss rate" in text
        assert "merge cost" in text

    def test_phase_breakdown_names_analysis_passes(self, report_run):
        text, _ = report_run
        for phase in ("analyze.cfg", "analyze.schedule",
                      "analyze.frequency", "analyze.culprits",
                      "session.execute"):
            assert phase in text

    def test_trace_is_valid_chrome_jsonl(self, report_run):
        _, trace = report_run
        events = [json.loads(line)
                  for line in open(trace) if line.strip()]
        phases = {event["ph"] for event in events}
        assert "X" in phases and "M" in phases and "C" in phases
        # Shard events were re-stamped onto their own pids.
        assert {e["pid"] for e in events if e["ph"] == "X"} >= {0, 1, 2}

    def test_post_hoc_report_matches_live(self, report_run):
        text, trace = report_run
        rebuilt = dcpimon.report_from_trace(trace)
        for line in ("hash-table miss rate", "samples/sec"):
            live = next(ln for ln in text.splitlines() if line in ln)
            post = next(ln for ln in rebuilt.splitlines() if line in ln)
            assert live == post
        assert "Shards" in rebuilt and "merge cost" in rebuilt

    def test_cli_entry_point(self, capsys, tmp_path):
        code = main_dcpimon(["report", *QUICK, "--shards", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "dcpimon" in out and "Collection" in out

    def test_from_trace_via_cli(self, capsys, report_run):
        _, trace = report_run
        assert main_dcpimon(["report", "--from-trace", trace]) == 0
        assert "Analysis phases" in capsys.readouterr().out


class TestOverhead:
    def test_measure_overhead_shape(self):
        result = dcpimon.measure_overhead(
            "mccalpin-assign", budget=6000, repeats=1)
        assert result["disabled_s"] > 0
        assert result["enabled_s"] > 0
        assert "overhead_pct" in result

    def test_gate_passes_with_generous_ceiling(self, capsys):
        code = main_dcpimon(["overhead", "--budget", "6000",
                             "--repeats", "1", "--max-pct", "1000"])
        assert code == 0
        assert "overhead" in capsys.readouterr().out

    def test_gate_fails_when_exceeded(self, capsys):
        code = main_dcpimon(["overhead", "--budget", "6000",
                             "--repeats", "1", "--max-pct=-1e9"])
        assert code == 1
        assert "FAIL" in capsys.readouterr().err
