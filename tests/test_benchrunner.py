"""The dcpibench harness: discovery, JSON results, and regression gate."""

import copy
import json
import os

import pytest

from repro.tools.benchrunner import (compare_results, default_bench_dir,
                                     discover_benchmarks, load_results, main)

REPO_BENCH_DIR = os.path.normpath(os.path.join(
    os.path.dirname(__file__), "..", "benchmarks"))


def test_discovers_the_suite():
    benchmarks = discover_benchmarks(REPO_BENCH_DIR)
    names = [name for name, _ in benchmarks]
    assert len(names) >= 10
    assert "table3_overhead" in names
    assert all(path.endswith(".py") for _, path in benchmarks)
    assert default_bench_dir()  # resolvable from the repo checkout


def _payload(name, elapsed=10.0, samples=5000, overhead=1.0, passed=True,
             clamp=None):
    return {
        "schema": 1,
        "benchmark": name,
        "file": "bench_%s.py" % name,
        "quick": clamp is not None,
        "max_instructions_clamp": clamp,
        "passed": passed,
        "tests": [{"id": "bench_%s.py::test" % name,
                   "outcome": "passed" if passed else "failed",
                   "duration_s": elapsed}],
        "metrics": {
            "elapsed_s": elapsed,
            "tests": 1,
            "sessions": 4,
            "instructions": 200_000,
            "cycles": 400_000,
            "samples": samples,
            "overhead_pct_mean": overhead,
        },
    }


def _write_results(dirpath, payloads):
    os.makedirs(dirpath, exist_ok=True)
    for payload in payloads:
        path = os.path.join(dirpath,
                            "BENCH_%s.json" % payload["benchmark"])
        with open(path, "w") as handle:
            json.dump(payload, handle)
    return dirpath


@pytest.fixture
def result_dirs(tmp_path):
    old = [_payload("alpha"), _payload("beta", elapsed=5.0, overhead=2.0)]
    new = copy.deepcopy(old)
    _write_results(str(tmp_path / "old"), old)
    return tmp_path, old, new


def test_compare_identical_runs_is_clean(result_dirs):
    tmp_path, _, new = result_dirs
    _write_results(str(tmp_path / "new"), new)
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")))
    assert comparison.ok
    assert not comparison.regressions


def test_compare_flags_injected_time_regression(result_dirs):
    tmp_path, _, new = result_dirs
    new[0]["metrics"]["elapsed_s"] = 30.0  # 3x the old 10s
    _write_results(str(tmp_path / "new"), new)
    exit_code = main(["compare", str(tmp_path / "old"),
                      str(tmp_path / "new")])
    assert exit_code == 1
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")))
    assert any("elapsed_s" in r for r in comparison.regressions)


def test_compare_flags_new_failure(result_dirs):
    tmp_path, _, new = result_dirs
    new[1]["passed"] = False
    _write_results(str(tmp_path / "new"), new)
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")))
    assert any("fails now" in r for r in comparison.regressions)


def test_compare_flags_overhead_regression(result_dirs):
    tmp_path, _, new = result_dirs
    new[1]["metrics"]["overhead_pct_mean"] = 9.0  # was 2.0
    _write_results(str(tmp_path / "new"), new)
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")))
    assert any("overhead" in r for r in comparison.regressions)


def test_compare_flags_sample_drift_same_setup(result_dirs):
    tmp_path, _, new = result_dirs
    new[0]["metrics"]["samples"] = 6000  # 20% drift, same clamp
    _write_results(str(tmp_path / "new"), new)
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")))
    assert any("drift" in r for r in comparison.regressions)


def test_compare_ignores_sample_drift_across_different_clamps(result_dirs):
    tmp_path, _, new = result_dirs
    new[0] = _payload("alpha", samples=500, clamp=50_000)
    _write_results(str(tmp_path / "new"), new)
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")))
    assert not any("drift" in r for r in comparison.regressions)


def test_compare_notes_added_and_missing_benchmarks(result_dirs):
    tmp_path, _, new = result_dirs
    new = [new[0], _payload("gamma")]
    _write_results(str(tmp_path / "new"), new)
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")))
    assert comparison.ok  # appearance/disappearance is not a regression
    assert any("missing" in n for n in comparison.notes)
    assert any("new benchmark" in n for n in comparison.notes)


def test_compare_cli_errors_on_empty_dir(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["compare", str(empty), str(empty)]) == 2


def test_compare_fails_on_schema_mismatch(result_dirs):
    tmp_path, _, new = result_dirs
    new[0]["schema"] = 99
    _write_results(str(tmp_path / "new"), new)
    exit_code = main(["compare", str(tmp_path / "old"),
                      str(tmp_path / "new")])
    assert exit_code == 1
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")))
    assert any("schema" in r for r in comparison.regressions)


def test_compare_lenient_skips_schema_mismatch(result_dirs):
    tmp_path, _, new = result_dirs
    new[0]["schema"] = 99
    # The incomparable benchmark would otherwise also trip the
    # elapsed-time gate; --lenient must skip it entirely.
    new[0]["metrics"]["elapsed_s"] = 100.0
    _write_results(str(tmp_path / "new"), new)
    assert main(["compare", str(tmp_path / "old"),
                 str(tmp_path / "new"), "--lenient"]) == 0
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")),
                                 lenient=True)
    assert comparison.ok
    assert any("schema" in n for n in comparison.notes)


def test_compare_accepts_one_version_older_baseline(result_dirs):
    """Schema bumps are additive: schema N baselines gate schema N+1
    results on every shared field instead of hard-failing."""
    tmp_path, _, new = result_dirs
    new[0]["schema"] = 2  # baseline stays at 1
    new[0]["fleet"] = {"samples_ingested": 123}  # additive block
    _write_results(str(tmp_path / "new"), new)
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")))
    assert comparison.ok
    assert any("one version older" in n for n in comparison.notes)


def test_compare_still_gates_shared_fields_across_schema_skew(result_dirs):
    tmp_path, _, new = result_dirs
    new[0]["schema"] = 2
    new[0]["metrics"]["samples"] = 6000  # 20% drift, same clamp
    _write_results(str(tmp_path / "new"), new)
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")))
    assert any("drift" in r for r in comparison.regressions)


def test_compare_rejects_schema_downgrade_and_wider_gaps(result_dirs):
    tmp_path, old, new = result_dirs
    # Downgrade: new results one version OLDER than the baseline.
    old[0]["schema"] = 2
    _write_results(str(tmp_path / "old"), old)
    _write_results(str(tmp_path / "new"), new)
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")))
    assert any("not comparable" in r for r in comparison.regressions)
    # Gap of two versions: not covered by the additive-bump policy.
    new[0]["schema"] = 4
    _write_results(str(tmp_path / "new"), new)
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")))
    assert any("not comparable" in r for r in comparison.regressions)


def test_compare_warns_on_fleet_block_drift(result_dirs):
    tmp_path, old, new = result_dirs
    old[0]["fleet"] = {"samples_ingested": 100, "disk_bytes_full": 900}
    new[0]["fleet"] = {"samples_ingested": 120, "disk_bytes_full": 900}
    _write_results(str(tmp_path / "old"), old)
    _write_results(str(tmp_path / "new"), new)
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")))
    assert comparison.ok  # drift warns, never fails the build
    assert any("fleet samples ingested" in w for w in comparison.warnings)


def test_compare_flags_throughput_regression(result_dirs):
    tmp_path, old, new = result_dirs
    for payload in (old[0], new[0]):
        payload["fastpath"] = True
    old[0]["metrics"]["instructions_per_sec"] = 500_000.0
    new[0]["metrics"]["instructions_per_sec"] = 350_000.0  # -30%
    _write_results(str(tmp_path / "old"), old)
    _write_results(str(tmp_path / "new"), new)
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")))
    assert any("instructions/sec" in r for r in comparison.regressions)
    # A drop within the threshold passes.
    new[0]["metrics"]["instructions_per_sec"] = 460_000.0  # -8%
    _write_results(str(tmp_path / "new"), new)
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")))
    assert comparison.ok


def test_compare_skips_throughput_across_fastpath_settings(result_dirs):
    tmp_path, old, new = result_dirs
    old[0]["fastpath"] = True
    new[0]["fastpath"] = False
    old[0]["metrics"]["instructions_per_sec"] = 500_000.0
    new[0]["metrics"]["instructions_per_sec"] = 300_000.0
    _write_results(str(tmp_path / "old"), old)
    _write_results(str(tmp_path / "new"), new)
    comparison = compare_results(load_results(str(tmp_path / "old")),
                                 load_results(str(tmp_path / "new")))
    assert not any("instructions/sec" in r
                   for r in comparison.regressions)


def test_run_single_benchmark_end_to_end(tmp_path):
    """dcpibench really runs a benchmark and emits schema-valid JSON."""
    results_dir = str(tmp_path / "results")
    exit_code = main(["--quick", "--workers", "1", "table5_space",
                      "--results-dir", results_dir,
                      "--bench-dir", REPO_BENCH_DIR])
    assert exit_code == 0
    path = os.path.join(results_dir, "BENCH_table5_space.json")
    with open(path) as handle:
        payload = json.load(handle)
    assert payload["passed"] is True
    assert payload["quick"] is True
    assert payload["benchmark"] == "table5_space"
    assert payload["metrics"]["samples"] > 0
    assert payload["metrics"]["elapsed_s"] > 0
    assert payload["runner"]["returncode"] == 0
    assert payload["tests"] and all(
        t["outcome"] == "passed" for t in payload["tests"])
    # The human-readable rendering still lands next to the JSON.
    assert payload["text_results"] == ["table5_space.txt"]
    assert os.path.exists(os.path.join(results_dir, "table5_space.txt"))
