"""Tests for epoch management and the branch-interpretation edge-sample
mode."""

import pytest

from repro.alpha.assembler import assemble
from repro.collect.daemon import Daemon
from repro.collect.database import ProfileDatabase
from repro.collect.driver import Driver, DriverConfig
from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.osim.loader import Loader

LOOP = """
.image e
.proc main
    lda t0, 3000(zero)
top:
    and t0, 3, t1
    beq t1, skip
    addq t2, 1, t2
skip:
    subq t0, 1, t0
    bgt t0, top
    ret
.end
"""


class TestEpochs:
    def make_env(self):
        loader = Loader()
        daemon = Daemon(loader, periods={EventType.CYCLES: 100.0})
        image = loader.link(assemble(
            ".image app\n.proc main\n    nop\n    ret\n.end"))
        loader.notify_exec(7, [image])
        driver = Driver(1, DriverConfig(buckets=16, assoc=4,
                                        cost_scale=1.0))
        return loader, daemon, driver, image

    def test_advance_epoch_clears_memory(self, tmp_path):
        loader, daemon, driver, image = self.make_env()
        db = ProfileDatabase(str(tmp_path))
        driver.record(0, 7, image.base, EventType.CYCLES, 0)
        daemon.drain(driver)
        assert daemon.advance_epoch(db) == 1
        assert daemon.profiles == {}
        counts, _ = db.load("app", EventType.CYCLES, epoch=0)
        assert counts == {0: 1}

    def test_epochs_do_not_overlap(self, tmp_path):
        loader, daemon, driver, image = self.make_env()
        db = ProfileDatabase(str(tmp_path))
        driver.record(0, 7, image.base, EventType.CYCLES, 0)
        daemon.drain(driver)
        daemon.advance_epoch(db)
        driver.record(0, 7, image.base + 4, EventType.CYCLES, 1)
        driver.record(0, 7, image.base + 4, EventType.CYCLES, 2)
        daemon.drain(driver)
        daemon.merge_to_disk(db)
        assert db.epochs() == [0, 1]
        epoch0, _ = db.load("app", EventType.CYCLES, epoch=0)
        epoch1, _ = db.load("app", EventType.CYCLES, epoch=1)
        assert epoch0 == {0: 1}
        assert epoch1 == {4: 2}

    def test_epoch_counts_sum_to_total(self, tmp_path):
        loader, daemon, driver, image = self.make_env()
        db = ProfileDatabase(str(tmp_path))
        for i in range(10):
            driver.record(0, 7, image.base, EventType.CYCLES, i)
        daemon.drain(driver)
        daemon.advance_epoch(db)
        for i in range(5):
            driver.record(0, 7, image.base, EventType.CYCLES, i)
        daemon.drain(driver)
        daemon.merge_to_disk(db)
        total = 0
        for epoch in db.epochs():
            counts, _ = db.load("app", EventType.CYCLES, epoch=epoch)
            total += sum(counts.values())
        assert total == 15


class TestInterpretMode:
    def run(self, mode):
        session = ProfileSession(
            MachineConfig(),
            SessionConfig(mode="cycles", cycles_period=(60, 64),
                          edge_sampling=True, edge_mode=mode,
                          charge_overhead=False))

        def workload(machine):
            machine.spawn(assemble(LOOP), name="e")

        return session.run(workload)

    def test_interpret_mode_collects_only_control_edges(self):
        result = self.run("interpret")
        image = result.daemon.images["e"]
        profile = result.profile_for("e")
        assert profile.edge_counts
        for (from_off, to_off) in profile.edge_counts:
            inst = image.instruction_at(image.base + from_off)
            assert inst.is_control

    def test_interpret_cheaper_than_double(self):
        def overhead(mode):
            session = ProfileSession(
                MachineConfig(),
                SessionConfig(mode="cycles", cycles_period=(240, 256),
                              edge_sampling=True, edge_mode=mode))

            def workload(machine):
                machine.spawn(assemble(LOOP), name="e")

            return session.run(workload).cycles
        assert overhead("interpret") < overhead("double")

    def test_interpret_ratio_still_accurate(self):
        result = self.run("interpret")
        image = result.daemon.images["e"]
        profile = result.profile_for("e")
        beq = next(i for i in image.instructions if i.op == "beq")
        edges = profile.edges_by_addr()
        taken = edges.get((beq.addr, beq.target), 0)
        fall = edges.get((beq.addr, beq.addr + 4), 0)
        if taken + fall >= 30:
            assert taken / (taken + fall) == pytest.approx(0.25,
                                                           abs=0.15)

    def test_double_mode_also_collects_straightline(self):
        result = self.run("double")
        image = result.daemon.images["e"]
        profile = result.profile_for("e")
        kinds = set()
        for (from_off, _) in profile.edge_counts:
            inst = image.instruction_at(image.base + from_off)
            kinds.add(inst.is_control)
        assert kinds == {True, False}
