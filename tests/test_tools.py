"""Tests for the dcpi* analysis tools."""

import pytest

from conftest import make_copy_workload
from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.tools.dcpicalc import dcpicalc
from repro.tools.dcpidiff import dcpidiff, diff_rows
from repro.tools.dcpiprof import dcpiprof, procedure_table
from repro.tools.dcpistats import dcpistats, stats_rows
from repro.tools.dcpitopstalls import dcpitopstalls


@pytest.fixture(scope="module")
def copy_result():
    session = ProfileSession(
        MachineConfig(),
        SessionConfig(cycles_period=(120, 128), event_period=64, seed=3))
    return session.run(make_copy_workload(n=6000))


class TestDcpiprof:
    def test_table_rows(self, copy_result):
        rows, total, _ = procedure_table(copy_result.profiles.values())
        assert rows[0]["procedure"] == "copy"
        assert total > 0

    def test_render(self, copy_result):
        text = dcpiprof(copy_result.profiles.values())
        assert "Total samples for event type cycles" in text
        assert "copy" in text
        assert "copy.prog" in text

    def test_limit(self, copy_result):
        text = dcpiprof(copy_result.profiles.values(), limit=0)
        assert "copy.prog" not in text.splitlines()[-1]

    def test_multi_image_listing(self):
        from repro.workloads import x11perf

        session = ProfileSession(
            MachineConfig(),
            SessionConfig(cycles_period=(200, 256), event_period=64))
        result = session.run(x11perf.build(scale=4, rounds=4),
                             max_instructions=120_000)
        rows, _, _ = procedure_table(result.profiles.values())
        images = {row["image"] for row in rows}
        assert len(images) >= 3  # app, libraries, kernel all present


class TestDcpicalc:
    def test_listing_structure(self, copy_result):
        image = copy_result.daemon.images["copy.prog"]
        profile = copy_result.profile_for("copy.prog")
        text = dcpicalc(image, "copy", profile)
        assert "Best-case" in text
        assert "Actual" in text
        assert "(dual issue)" in text
        assert "ldq" in text and "stq" in text

    def test_bubbles_name_culprits(self, copy_result):
        image = copy_result.daemon.images["copy.prog"]
        profile = copy_result.profile_for("copy.prog")
        text = dcpicalc(image, "copy", profile)
        assert "write-buffer overflow" in text
        assert "D-cache miss" in text


class TestDcpistats:
    def make_runs(self, n=3):
        runs = []
        for seed in range(1, n + 1):
            session = ProfileSession(
                MachineConfig(),
                SessionConfig(cycles_period=(200, 256), event_period=64,
                              seed=seed))
            result = session.run(make_copy_workload(n=3000))
            runs.append(list(result.profiles.values()))
        return runs

    def test_rows(self):
        runs = self.make_runs()
        rows = stats_rows(runs)
        assert rows
        row = rows[0]
        assert row["procedure"] == "copy"
        assert len(row["counts"]) == 3
        assert row["range_pct"] >= 0

    def test_render(self):
        runs = self.make_runs()
        text = dcpistats(runs)
        assert "range%" in text
        assert "copy" in text
        assert "TOTAL" in text


class TestDcpidiff:
    def test_identical_profiles_diff_to_zero_share(self, copy_result):
        profiles = list(copy_result.profiles.values())
        rows = diff_rows(profiles, profiles)
        assert all(abs(r["share_delta"]) < 1e-12 for r in rows)

    def test_render(self, copy_result):
        profiles = list(copy_result.profiles.values())
        text = dcpidiff(profiles, profiles)
        assert "procedure" in text


class TestDcpitopstalls:
    def test_whole_image_summary(self, copy_result):
        image = copy_result.daemon.images["copy.prog"]
        profile = copy_result.profile_for("copy.prog")
        text = dcpitopstalls(image, profile)
        assert "Cycle accounting" in text
        assert "dcache" in text
        assert "execution" in text


class TestDcpiprofByImage:
    def test_image_listing(self):
        from repro.tools.dcpiprof import dcpiprof_by_image, image_table
        from repro.workloads import x11perf

        session = ProfileSession(
            MachineConfig(),
            SessionConfig(cycles_period=(200, 256), event_period=64))
        result = session.run(x11perf.build(scale=4, rounds=4),
                             max_instructions=120_000)
        rows, total = image_table(result.profiles.values())
        assert total > 0
        assert rows == sorted(rows, key=lambda r: -r["primary"])
        text = dcpiprof_by_image(result.profiles.values())
        assert "image" in text
        assert "/vmunix" in text or "shlib" in text
