"""Unit tests for the Figure 4-style stall summaries."""

import pytest

from repro.alpha.assembler import assemble
from repro.collect.database import ImageProfile
from repro.core.analyze import analyze_procedure
from repro.cpu.events import DYNAMIC_REASONS, EventType

LOOP = """
.image s
.data buf, 8192
.proc main
    lda t1, =buf
    lda t0, 500(zero)
top:
    ldq t4, 0(t1)
    addq t4, 1, t5
    stq t5, 0(t1)
    lda t1, 8(t1)
    subq t0, 1, t0
    bgt t0, top
    ret
.end
"""


def make_analysis(samples):
    image = assemble(LOOP, base=0x1000)
    profile = ImageProfile(image, periods={EventType.CYCLES: 100.0})
    for addr, count in samples.items():
        profile.add(EventType.CYCLES, addr - image.base, count)
    return analyze_procedure(image, "main", profile)


# Loop body at 0x1008..0x101c; consumer addq stalls on dcache.
SAMPLES = {0x1008: 50, 0x100C: 400, 0x1010: 60, 0x1014: 50, 0x101C: 50}


class TestStallSummary:
    def test_identity_tally(self):
        summary = make_analysis(SAMPLES).summary()
        total = (summary.subtotal_dynamic + summary.subtotal_static
                 + summary.execution + summary.net_error)
        assert total == pytest.approx(1.0)

    def test_all_dynamic_reasons_present(self):
        summary = make_analysis(SAMPLES).summary()
        assert set(summary.dynamic) == set(DYNAMIC_REASONS)
        for lo, hi in summary.dynamic.values():
            assert 0.0 <= lo <= hi <= 1.0

    def test_memory_bound_loop_blames_memory(self):
        summary = make_analysis(SAMPLES).summary()
        assert summary.dynamic["dcache"][1] > 0.3
        assert summary.subtotal_dynamic > 0.3

    def test_stall_free_profile(self):
        # Samples exactly proportional to M: no dynamic stalls at all.
        analysis = make_analysis(
            {0x1008: 50, 0x100C: 100, 0x1014: 50, 0x101C: 50})
        summary = analysis.summary()
        assert summary.subtotal_dynamic < 0.35

    def test_empty_profile(self):
        summary = make_analysis({}).summary()
        assert summary.total_cycles == 0
        assert summary.execution == 0.0
        assert summary.render()  # renders without dividing by zero

    def test_render_layout(self):
        text = make_analysis(SAMPLES).summary().render()
        assert text.count("%") > 15
        for section in ("Subtotal dynamic", "Subtotal static",
                        "Total stall", "Net sampling error"):
            assert section in text

    def test_unexplained_gain_nonpositive(self):
        summary = make_analysis(SAMPLES).summary()
        assert summary.unexplained_gain <= 0.0
