"""Fleet resilience (PR 9): sharded concurrent ingest identity, spool
overflow conservation, deterministic backoff, and crash recovery.

The load-bearing invariants:

* a sharded store's merged bytes are identical to the serial
  single-shard store's, for any shard count, any delta interleaving,
  and real concurrent multi-process writers;
* the bounded ship spool never loses a sample silently -- offered
  samples always split exactly into pending + acked + dropped;
* every backoff schedule (ingest-lock retry and ship retry) is a pure
  function of its seed;
* an injected machine / store crash recovers to byte-identical store
  contents with the conservation identity exactly balanced.
"""

import multiprocessing
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, FaultSpec
from repro.fleet import (Delta, FleetConfig, FleetMachine, FleetSession,
                         FleetStore, IngestRetry, ShipSpool)

MACHINES = 4
EPOCHS = 2
BUDGET = 6_000


@pytest.fixture(scope="module")
def fleet_deltas():
    config = FleetConfig(machines=MACHINES, epochs=EPOCHS, seed=23)
    machines = [
        FleetMachine("m%02d" % i, config.machine_workload(i),
                     config.machine_seed(i))
        for i in range(MACHINES)
    ]
    deltas = []
    for _ in range(EPOCHS):
        for machine in machines:
            deltas.append(machine.run_epoch(BUDGET))
    shipped = sum(machine.shipped_samples for machine in machines)
    assert shipped > 0
    return deltas, shipped


def _store_bytes(store):
    return store.merged().encode_all()


def _tiny_delta(batch, samples=10):
    return Delta(machine_id="m00", epoch=batch - 1, batch=batch,
                 generation=1, workload="w", seed=1,
                 profiles={"img": {"cycles": {0: samples}}},
                 periods={"cycles": 4.0})


# -- sharded == serial (the tentpole identity) ------------------------------


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_sharded_ingest_byte_identical_to_serial(fleet_deltas,
                                                 tmp_path_factory, data):
    """Any shard count, any interleaving: same merged bytes."""
    deltas, shipped = fleet_deltas
    shards = data.draw(st.sampled_from([2, 3, 4]))
    order = data.draw(st.permutations(list(range(len(deltas)))))
    serial = FleetStore(str(tmp_path_factory.mktemp("serial")))
    for delta in deltas:
        serial.ingest(delta)
    sharded = FleetStore(str(tmp_path_factory.mktemp("sharded")),
                         shards=shards)
    for index in order:
        sharded.ingest(deltas[index])
    assert _store_bytes(sharded) == _store_bytes(serial)
    assert sharded.total_samples() == shipped
    assert sharded.epochs() == serial.epochs()


def test_shard_routing_is_stable_and_partitioned(fleet_deltas, tmp_path):
    """A machine always routes to the same shard, in every process
    that opens the store (the hash is unsalted), and a shard only
    holds its own machines."""
    deltas, _ = fleet_deltas
    root = str(tmp_path / "store")
    store = FleetStore(root, shards=4)
    for delta in deltas:
        store.ingest(delta)
    reopened = FleetStore(root)
    assert reopened.num_shards == 4
    for delta in deltas:
        assert (store.shard_for(delta.machine_id).index
                == reopened.shard_for(delta.machine_id).index)
    for shard in reopened.shards:
        for machine_id in shard.ledger["machines"]:
            assert reopened.shard_for(machine_id).index == shard.index


def test_reshard_of_existing_store_is_refused(fleet_deltas, tmp_path):
    deltas, _ = fleet_deltas
    root = str(tmp_path / "store")
    store = FleetStore(root, shards=2)
    store.ingest(deltas[0])
    with pytest.raises(ValueError, match="shards"):
        FleetStore(root, shards=3)


def _ingest_worker(root, deltas):
    store = FleetStore(root, retry=IngestRetry(
        attempts=12, base_ms=1.0, cap_ms=40.0, seed=0))
    for delta in deltas:
        store.ingest(delta)


def test_four_process_concurrent_ingest_matches_serial(fleet_deltas,
                                                       tmp_path):
    """Four real OS processes ingest concurrently into one 4-shard
    store; contention rides the bounded lock retry, and the result is
    byte-identical to the serial single-shard store."""
    deltas, shipped = fleet_deltas
    serial = FleetStore(str(tmp_path / "serial"))
    for delta in deltas:
        serial.ingest(delta)
    root = str(tmp_path / "concurrent")
    FleetStore(root, shards=4)   # create layout + persist shard meta
    ctx = multiprocessing.get_context("fork")
    workers = [
        ctx.Process(target=_ingest_worker,
                    args=(root, deltas[index::4]))
        for index in range(4)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
    assert all(worker.exitcode == 0 for worker in workers)
    store = FleetStore(root)
    assert store.total_samples() == shipped
    assert _store_bytes(store) == _store_bytes(serial)
    assert not any(store.verify()[index]["quarantined"]
                   for index in range(4))


# -- spool overflow conservation --------------------------------------------


@given(capacity=st.integers(min_value=1, max_value=5),
       sizes=st.lists(st.integers(min_value=1, max_value=50),
                      max_size=12))
def test_spool_overflow_conserves_samples(capacity, sizes):
    """offered == pending + evicted, sample-exact, oldest dropped."""
    spool = ShipSpool(capacity=capacity, seed=3)
    offered = 0
    evicted_samples = 0
    for batch, samples in enumerate(sizes, 1):
        delta = _tiny_delta(batch, samples=samples)
        offered += samples
        for victim in spool.offer(delta):
            evicted_samples += victim.total_samples()
    pending = sum(entry.delta.total_samples()
                  for entry in spool.pending())
    assert offered == pending + evicted_samples
    assert spool.dropped_samples == evicted_samples
    assert spool.dropped_deltas == max(0, len(sizes) - capacity)
    assert len(spool) == min(len(sizes), capacity)
    # Drop-oldest: the survivors are exactly the newest offers.
    expected = list(range(1, len(sizes) + 1))[-capacity:]
    assert [entry.delta.batch
            for entry in spool.pending()] == expected


def test_spool_does_not_account_delivered_entries_as_lost():
    """An entry whose copy reached the store (ack lost) is not loss."""
    spool = ShipSpool(capacity=1, seed=1)
    first = _tiny_delta(1, samples=7)
    spool.offer(first)
    spool.mark_delivered(first.delta_id)
    evicted = spool.offer(_tiny_delta(2, samples=9))
    assert [d.delta_id for d in evicted] == [first.delta_id]
    assert spool.dropped_deltas == 1
    assert spool.dropped_samples == 0   # stored upstream, not lost
    assert spool.abandon()[0].total_samples() == 9
    assert spool.dropped_samples == 9


# -- deterministic backoff ---------------------------------------------------


@given(seed=st.integers(min_value=0, max_value=2 ** 16))
def test_ingest_backoff_schedule_is_pure_function_of_seed(seed):
    retry = IngestRetry(attempts=6, base_ms=2.0, cap_ms=20.0, seed=seed)
    first = retry.backoff_schedule()
    assert first == retry.backoff_schedule()
    assert first == IngestRetry(attempts=6, base_ms=2.0, cap_ms=20.0,
                                seed=seed).backoff_schedule()
    assert len(first) == retry.attempts - 1
    for attempt, delay in enumerate(first):
        ceiling = min(20.0, 2.0 * 2 ** attempt)
        assert ceiling * 0.5 <= delay < ceiling
    assert abs(retry.budget_ms() - sum(first)) < 1e-9


@given(seed=st.integers(min_value=0, max_value=2 ** 16))
def test_ship_backoff_is_pure_function_of_seed(seed):
    def schedule(spool):
        entry = spool.pending()[0]
        return [spool.backoff_for_retry(entry) for _ in range(8)]

    first = ShipSpool(capacity=2, seed=seed)
    twin = ShipSpool(capacity=2, seed=seed)
    for spool in (first, twin):
        spool.offer(_tiny_delta(1))
    delays = schedule(first)
    assert delays == schedule(twin)
    for attempt, delay in enumerate(delays):
        ceiling = min(first.cap_ms, first.base_ms * 2 ** attempt)
        assert ceiling * 0.5 <= delay < ceiling
    assert first.retries == 8
    assert abs(first.backoff_ms - sum(delays)) < 1e-9


# -- crash recovery, end to end ---------------------------------------------


def _fleet_config(seed=7, faults=None, **overrides):
    settings = dict(machines=2, epochs=2, seed=seed,
                    epoch_instructions=4_000, drain_interval=1_000,
                    durable=True, faults=faults)
    settings.update(overrides)
    return FleetConfig(**settings)


def _run(root, config):
    return FleetSession(config).run(str(root))


def _crash_case(tmp_path, point, hits, **overrides):
    """Run clean and crash-faulted twins; both must store identical
    bytes with conservation balanced and at least one recovery."""
    clean = _run(tmp_path / "clean", _fleet_config(**overrides))
    plan = FaultPlan(specs=(FaultSpec(point, "crash", hits=hits),),
                     seed=5)
    faulted = _run(tmp_path / "faulted",
                   _fleet_config(faults=plan, **overrides))
    assert clean.findings == [] and faulted.findings == []
    assert _store_bytes(faulted.store) == _store_bytes(clean.store)
    assert faulted.store.total_samples() == clean.store.total_samples()
    return faulted


def test_machine_crash_mid_epoch_recovers_losslessly(tmp_path):
    faulted = _crash_case(tmp_path, "fleet.machine.run", (3,))
    assert faulted.resilience["machine_recoveries"] >= 1


def test_preship_crash_reships_the_closed_epoch(tmp_path):
    faulted = _crash_case(tmp_path, "fleet.machine.ship", (2,))
    assert faulted.resilience["machine_recoveries"] >= 1


def test_store_crash_mid_ingest_recovers_on_reopen(tmp_path):
    faulted = _crash_case(tmp_path, "fleet.store.ingest", (2,))
    assert faulted.resilience["store_recoveries"] >= 1


def test_lost_ack_reship_is_absorbed_by_dedupe(tmp_path):
    clean = _run(tmp_path / "clean", _fleet_config())
    plan = FaultPlan(specs=(FaultSpec("fleet.ack", "drop",
                                      hits=(1,)),), seed=5)
    faulted = _run(tmp_path / "faulted", _fleet_config(faults=plan))
    assert faulted.findings == []
    assert faulted.resilience["acks_lost"] == 1
    assert faulted.store.stats()["duplicates_dropped"] >= 1
    assert _store_bytes(faulted.store) == _store_bytes(clean.store)


def test_ship_timeouts_drain_through_seeded_backoff(tmp_path):
    clean = _run(tmp_path / "clean", _fleet_config())
    plan = FaultPlan(specs=(FaultSpec("fleet.ship", "transient",
                                      hits=(1, 3)),), seed=5)
    faulted = _run(tmp_path / "faulted", _fleet_config(faults=plan))
    assert faulted.findings == []
    assert faulted.resilience["ship_retries"] == 2
    assert faulted.resilience["backoff_ms"] > 0
    assert _store_bytes(faulted.store) == _store_bytes(clean.store)
    # Same seed, same faults: the modelled backoff charge replays.
    twin = _run(tmp_path / "twin", _fleet_config(
        faults=FaultPlan(specs=(FaultSpec("fleet.ship", "transient",
                                          hits=(1, 3)),), seed=5)))
    assert twin.resilience == faulted.resilience


def test_durable_machine_releases_acked_epochs(tmp_path):
    """Acked epochs leave the machine's local database (bounded local
    footprint) while unacked ones would survive for re-shipping."""
    from repro.collect.database import ProfileDatabase

    _run(tmp_path / "store", _fleet_config())
    for index in range(2):
        local = os.path.join(str(tmp_path / "store"), "machines",
                             "m%02d" % index)
        assert ProfileDatabase(local).epochs() == []
