"""Tests for images, linking, symbol tables and serialization."""

import pytest

from repro.alpha.assembler import assemble
from repro.alpha.serialize import image_from_dict, image_to_dict

TWO_PROCS = """
.image libx
.data table, 256
.proc alpha
    nop
    br alpha
.end
.proc beta
    addq t0, 1, t0
    ret
.end
"""


@pytest.fixture
def image():
    return assemble(TWO_PROCS, base=0x20000)


class TestLinking:
    def test_base_and_end(self, image):
        assert image.base == 0x20000
        assert image.end == 0x20000 + 4 * 4

    def test_instruction_addresses_sequential(self, image):
        addrs = [inst.addr for inst in image.instructions]
        assert addrs == [0x20000, 0x20004, 0x20008, 0x2000C]

    def test_procedure_ranges(self, image):
        alpha = image.procedure("alpha")
        beta = image.procedure("beta")
        assert (alpha.start, alpha.end) == (0x20000, 0x20008)
        assert (beta.start, beta.end) == (0x20008, 0x20010)

    def test_contains(self, image):
        assert 0x20008 in image
        assert 0x20010 not in image

    def test_branch_target_rebased(self, image):
        assert image.instructions[1].target == 0x20000

    def test_symbols_resolved(self, image):
        assert image.symbols.resolve("alpha") == 0x20000
        assert image.symbols.resolve("table") == image.data_base

    def test_duplicate_symbol_rejected(self):
        text = ".data x, 8\n.proc x\n    ret\n.end"
        with pytest.raises(ValueError, match="duplicate"):
            assemble(text)


class TestLookup:
    def test_instruction_at(self, image):
        assert image.instruction_at(0x20004).op == "br"

    def test_offset_of(self, image):
        assert image.offset_of(0x2000C) == 12

    def test_procedure_at(self, image):
        assert image.procedure_at(0x2000C).name == "beta"
        assert image.procedure_at(0x20000).name == "alpha"

    def test_procedure_at_outside_returns_none(self, image):
        assert image.procedure_at(0x90000) is None

    def test_entry_defaults_to_first_procedure(self, image):
        assert image.entry() == 0x20000
        assert image.entry("beta") == 0x20008

    def test_slice(self, image):
        insts = image.slice(0x20008, 0x20010)
        assert [i.op for i in insts] == ["addq", "ret"]

    def test_procedure_instructions(self, image):
        beta = image.procedure("beta")
        assert [i.op for i in beta.instructions()] == ["addq", "ret"]


class TestSerialization:
    def test_roundtrip_preserves_everything(self, image):
        clone = image_from_dict(image_to_dict(image))
        assert clone.name == image.name
        assert clone.base == image.base
        assert len(clone.instructions) == len(image.instructions)
        assert clone.instructions[1].target == 0x20000
        assert clone.procedure("beta").start == 0x20008
        assert clone.symbols.resolve("table") == image.data_base

    def test_unlinked_image_rejected(self):
        with pytest.raises(ValueError, match="unlinked"):
            image_to_dict(assemble(TWO_PROCS))

    def test_roundtrip_instruction_semantics_preserved(self, image):
        clone = image_from_dict(image_to_dict(image))
        addq = clone.instructions[2]
        assert addq.info.sem(5, 1) == 6
