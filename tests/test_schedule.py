"""Tests for the static scheduler (M_i computation)."""

from repro.alpha.assembler import assemble
from repro.core.cfg import build_cfg
from repro.core.schedule import schedule_cfg


def schedule_for(body):
    image = assemble(".image t\n.proc main\n%s\n.end" % body, base=0x1000)
    cfg = build_cfg(image.procedure("main"))
    return cfg, schedule_cfg(cfg)


class TestPairing:
    def test_independent_pair_m_values(self):
        cfg, schedules = schedule_for(
            "    addq t0, 1, t1\n    addq t2, 1, t3\n    ret")
        rows = schedules[0].rows
        assert rows[0].m == 1
        assert rows[1].m == 0
        assert rows[1].paired

    def test_dependent_pair_does_not_pair(self):
        cfg, schedules = schedule_for(
            "    addq t0, 1, t1\n    addq t1, 1, t2\n    ret")
        rows = schedules[0].rows
        assert rows[1].m == 1
        assert not rows[1].paired

    def test_two_stores_slot(self):
        cfg, schedules = schedule_for(
            "    stq t0, 0(sp)\n    stq t1, 8(sp)\n    ret")
        rows = schedules[0].rows
        assert rows[1].m == 1
        assert ("slotting", 1, None) in rows[1].stalls

    def test_issue_points_are_m_positive(self):
        cfg, schedules = schedule_for(
            "    addq t0, 1, t1\n    addq t2, 1, t3\n"
            "    addq t4, 1, t5\n    addq t6, 1, t7\n    ret")
        ms = [r.m for r in schedules[0].rows]
        assert ms == [1, 0, 1, 0, 1]


class TestDependencies:
    def test_load_consumer_static_stall(self):
        cfg, schedules = schedule_for(
            "    ldq t1, 0(sp)\n    addq t1, 1, t2\n    ret")
        rows = schedules[0].rows
        # Load latency 2: consumer waits one extra cycle statically.
        assert rows[1].m == 2
        assert rows[1].stalls[0][0] == "ra_dep"
        assert rows[1].dep_source == rows[0].inst.addr

    def test_imul_consumer_fu_dependency(self):
        cfg, schedules = schedule_for(
            "    mulq t0, t1, t2\n    addq t2, 1, t3\n    ret")
        rows = schedules[0].rows
        assert rows[1].m == 8
        assert rows[1].stalls[0][0] == "fu_dep"

    def test_second_operand_rb_dep(self):
        cfg, schedules = schedule_for(
            "    ldq t1, 0(sp)\n    addq t0, t1, t2\n    ret")
        rows = schedules[0].rows
        assert rows[1].stalls[0][0] == "rb_dep"

    def test_back_to_back_divides_fu_busy(self):
        cfg, schedules = schedule_for(
            "    divt f1, f2, f3\n    divt f4, f5, f6\n    ret")
        rows = schedules[0].rows
        assert rows[1].m > 8
        assert any(r == "fu_dep" for r, _, _ in rows[1].stalls)

    def test_blocks_scheduled_independently(self):
        body = """
    ldq t1, 0(sp)
top:
    addq t1, 1, t1
    bgt t0, top
    ret
"""
        cfg, schedules = schedule_for(body)
        loop_block = cfg.block_at(0x1004)
        rows = schedules[loop_block.index].rows
        # In isolation the addq has no producers: no static stall.
        assert rows[0].m == 1

    def test_best_case_cycles(self):
        cfg, schedules = schedule_for(
            "    addq t0, 1, t1\n    addq t2, 1, t3\n    ret")
        assert schedules[0].best_case_cycles == 2  # pair + ret

    def test_by_addr_lookup(self):
        cfg, schedules = schedule_for("    nop\n    ret")
        assert schedules[0].m_of(0x1000) == 1
