"""Extended tests for the frequency heuristic's corners."""

import pytest

from repro.alpha.assembler import assemble
from repro.core.cfg import build_cfg
from repro.core.frequency import (FrequencyConfig, _issue_point_ratios,
                                  estimate_frequencies)
from repro.core.schedule import schedule_cfg

CHAIN = """
.image f
.proc main
    lda t0, 100(zero)
top:
    ldq t1, 0(sp)
    addq t1, 1, t2
    subq t0, 1, t0
    bgt t0, top
    ret
.end
"""


def cfg_sched(text):
    image = assemble(text, base=0x1000)
    cfg = build_cfg(image.procedure("main"))
    return cfg, schedule_cfg(cfg)


class TestDependenceChainRefinement:
    def test_consumer_ratio_sums_over_chain(self):
        cfg, schedules = cfg_sched(CHAIN)
        loop = cfg.block_at(0x1004)
        # ldq at 0x1004 (M=1); addq at 0x1008 depends on it (M=2).
        # Suppose the ldq's dynamic stall shifted samples onto it: the
        # chain ratio for addq must pool (S_ldq + S_addq)/(M_ldq+M_addq).
        samples = {0x1004: 90, 0x1008: 60, 0x100C: 50, 0x1010: 50}
        ratios = _issue_point_ratios(loop, schedules[loop.index],
                                     samples, FrequencyConfig())
        values = sorted(r for r, _ in ratios)
        assert pytest.approx((90 + 60) / 3.0, rel=0.01) in values

    def test_chain_start_outside_block_uses_plain_ratio(self):
        cfg, schedules = cfg_sched(CHAIN)
        loop = cfg.block_at(0x1004)
        rows = schedules[loop.index].rows
        first = rows[0]
        assert first.dep_source is None  # producer is outside the block


class TestConfigKnobs:
    def test_min_class_samples_forces_fallback(self):
        cfg, schedules = cfg_sched(CHAIN)
        samples = {0x1004: 30, 0x1008: 30, 0x100C: 30, 0x1010: 30}
        strict = FrequencyConfig(min_class_samples=1000)
        freq = estimate_frequencies(cfg, schedules, samples, 100.0,
                                    strict)
        loop = cfg.block_at(0x1004)
        assert freq.block_confidence(loop.index) == "low"

    def test_cluster_ratio_widens_cluster(self):
        cfg, schedules = cfg_sched(CHAIN)
        samples = {0x1004: 50, 0x1008: 100, 0x100C: 80, 0x1010: 60}
        tight = estimate_frequencies(
            cfg, schedules, samples, 100.0,
            FrequencyConfig(cluster_ratio=1.05, min_cluster_frac=0.01))
        wide = estimate_frequencies(
            cfg, schedules, samples, 100.0,
            FrequencyConfig(cluster_ratio=10.0, min_cluster_frac=0.01))
        loop = cfg.block_at(0x1004)
        # A wide cluster averages in the stalled points: higher count.
        assert wide.block_count(loop.index) \
            >= tight.block_count(loop.index)

    def test_propagation_degrades_confidence(self):
        text = """
.image f
.proc main
    lda t0, 100(zero)
head:
    and t0, 1, t1
    beq t1, else_
    addq t2, 1, t2
    addq t3, 1, t3
    xor t2, t3, t4
    br join
else_:
    nop
join:
    subq t0, 1, t0
    bgt t0, head
    ret
.end
"""
        cfg, schedules = cfg_sched(text)
        samples = {0x1004: 300, 0x1008: 300,
                   0x100C: 150, 0x1010: 151, 0x1014: 150, 0x1018: 150,
                   0x1020: 300, 0x1024: 300}
        freq = estimate_frequencies(cfg, schedules, samples, 100.0)
        else_block = cfg.block_at(0x101C)
        then_block = cfg.block_at(0x100C)
        rank = {"low": 0, "medium": 1, "high": 2}
        assert (rank[freq.block_confidence(else_block.index)]
                < rank[freq.block_confidence(then_block.index)] + 1)
        cid = freq.classes.class_of[else_block.index]
        assert freq.class_propagated[cid] is True

    def test_cpi_of_zero_count(self):
        cfg, schedules = cfg_sched(CHAIN)
        freq = estimate_frequencies(cfg, schedules, {}, 100.0)
        assert freq.cpi_of(0x1004, 0) == 0.0

    def test_unknown_class_count_is_zero(self):
        cfg, schedules = cfg_sched(CHAIN)
        freq = estimate_frequencies(cfg, schedules, {}, 100.0)
        assert freq.block_count(cfg.block_at(0x1004).index) == 0.0
