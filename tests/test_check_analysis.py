"""Layer-2 (analysis invariant) checker tests.

A clean profiled session must verify with zero findings; directed
perturbations of the ground truth, the schedules, the culprit map and
the estimates must each produce their expected finding.
"""

import pytest
from conftest import make_copy_workload

from repro.check.analysis_checks import (check_culprit_coverage,
                                         check_equivalence_truth,
                                         check_estimate_flow,
                                         check_flow_conservation,
                                         check_merge_determinism,
                                         check_schedule_invariants,
                                         split_profiles, verify_procedure)
from repro.collect.session import ProfileSession, SessionConfig
from repro.core.analyze import AnalysisConfig, analyze_image
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType


@pytest.fixture
def profiled():
    """One profiled copy-loop session plus its per-procedure analyses."""
    # A short CYCLES period gives every block enough samples that
    # the perturbation tests have real estimates to tamper with.
    session = ProfileSession(
        MachineConfig(),
        SessionConfig(mode="cycles", seed=1, cycles_period=(120, 136)))
    result = session.run(make_copy_workload(800),
                         max_instructions=30_000)
    analyses = []
    for profile in result.profiles.values():
        analyses.extend(analyze_image(profile.image, profile).values())
    assert analyses, "the session produced no analyzable procedures"
    return result, analyses


def _rules(findings):
    return sorted({f.rule for f in findings})


class TestCleanSession:
    def test_all_invariants_hold(self, profiled):
        result, analyses = profiled
        for analysis in analyses:
            assert verify_procedure(analysis) == []
            assert check_flow_conservation(result.machine,
                                           analysis.cfg) == []
            assert check_equivalence_truth(
                result.machine, analysis.cfg,
                analysis.freq.classes) == []

    def test_analyze_hook_collects_no_findings(self):
        session = ProfileSession(MachineConfig(),
                                 SessionConfig(mode="cycles", seed=1))
        result = session.run(make_copy_workload(400),
                             max_instructions=15_000)
        config = AnalysisConfig(verify_invariants=True)
        for profile in result.profiles.values():
            for analysis in analyze_image(profile.image, profile,
                                          config).values():
                assert analysis.check_findings == []


class TestSchedulePerturbation:
    def test_zero_m_on_issue_point(self, profiled):
        _, analyses = profiled
        analysis = analyses[0]
        row = next(row for block in analysis.cfg.blocks
                   for row in analysis.schedules[block.index].rows
                   if not row.paired)
        row.m = 0
        findings = check_schedule_invariants(analysis.cfg,
                                             analysis.schedules)
        assert "analysis/schedule-m" in _rules(findings)

    def test_bogus_pairing_of_block_leader(self, profiled):
        _, analyses = profiled
        analysis = analyses[0]
        block = analysis.cfg.blocks[0]
        rows = analysis.schedules[block.index].rows
        rows[0].paired = True
        rows[0].m = 0
        findings = check_schedule_invariants(analysis.cfg,
                                             analysis.schedules)
        assert "analysis/schedule-pairing" in _rules(findings)


class _StubEdge:
    def __init__(self, index, kind):
        self.index = index
        self.kind = kind


class _StubBlock:
    def __init__(self, index, start, preds, succs):
        self.index = index
        self.start = start
        self.preds = preds
        self.succs = succs


class _StubCfg:
    """Entry -> loop (self edge) -> exit: the smallest loop CFG."""

    class _Image:
        name = "stub"
        base = 0

    class _Proc:
        name = "stub"

    def __init__(self):
        self.proc = self._Proc()
        self.proc.image = self._Image()
        self.missing_edges = False
        entry_edge = _StubEdge(0, "fall")
        back_edge = _StubEdge(1, "taken")
        exit_edge = _StubEdge(2, "exit")
        self.blocks = [
            _StubBlock(0, 0, [], [entry_edge]),
            _StubBlock(1, 8, [entry_edge, back_edge],
                       [back_edge, exit_edge]),
        ]


class _StubFreq:
    def __init__(self, blocks, edges, confidence):
        self.blocks = blocks
        self.edges = edges
        self.confidence = confidence

    def block_count(self, index):
        return self.blocks.get(index, 0.0)

    def edge_count(self, index):
        return self.edges.get(index, 0.0)

    def block_confidence(self, index):
        return self.confidence.get(index, "low")


class TestFlowPerturbation:
    def test_ground_truth_imbalance_is_detected(self, profiled):
        result, analyses = profiled
        analysis = analyses[0]
        block = next(b for b in analysis.cfg.blocks
                     if b.index != 0 and b.preds)
        result.machine.gt_count[block.start] = (
            result.machine.gt_count.get(block.start, 0) + 10_000)
        findings = check_flow_conservation(result.machine, analysis.cfg)
        assert "analysis/flow-conservation" in _rules(findings)

    def test_unequal_class_members_are_detected(self, profiled):
        result, analyses = profiled
        analysis = analyses[0]
        classes = analysis.freq.classes
        members = next(m for m in classes.members.values()
                       if len([x for x in m
                               if not isinstance(x, tuple)]) >= 1)
        block_index = next(x for x in members
                           if not isinstance(x, tuple))
        block = analysis.cfg.blocks[block_index]
        result.machine.gt_count[block.start] = (
            result.machine.gt_count.get(block.start, 0) + 10_000)
        findings = check_equivalence_truth(result.machine, analysis.cfg,
                                           classes)
        assert "analysis/equivalence-violated" in _rules(findings)

    def test_perturbed_estimates_leave_a_flow_residual(self):
        # Two-block loop with consistent estimates, then the block
        # count is inflated 10x: both checks see the same structure,
        # only the perturbed one reports a residual.
        cfg = _StubCfg()
        freq = _StubFreq(
            blocks={0: 1.0, 1: 200.0},
            edges={0: 1.0, 1: 199.0},
            confidence={0: "low", 1: "high"})
        assert check_estimate_flow(cfg, freq) == []
        freq.blocks[1] *= 10.0
        findings = check_estimate_flow(cfg, freq)
        assert "analysis/flow-residual" in _rules(findings)

    def test_low_confidence_estimates_are_not_judged(self):
        # Residuals on low-confidence blocks measure sampling noise,
        # not a propagation defect; the checker must skip them.
        cfg = _StubCfg()
        freq = _StubFreq(
            blocks={0: 1.0, 1: 2000.0},
            edges={0: 1.0, 1: 199.0},
            confidence={0: "low", 1: "low"})
        assert check_estimate_flow(cfg, freq) == []


class TestCulpritPerturbation:
    def test_dropped_culprits_become_unexplained_stalls(self, profiled):
        _, analyses = profiled
        analysis = analyses[0]
        samples = analysis.profile.samples_for(analysis.proc,
                                               EventType.CYCLES)
        assert samples, "no samples landed in the procedure"
        # With every culprit discarded and a threshold below any
        # sampled CPI, each sampled instruction is an unexplained stall.
        findings = check_culprit_coverage(
            analysis.cfg, analysis.schedules, analysis.freq, samples,
            {}, analysis.period, dyn_threshold=-100.0)
        assert findings
        assert _rules(findings) == ["analysis/unexplained-stall"]


class TestMergeDeterminism:
    PROFILES = {"img": {EventType.CYCLES: {0: 10, 8: 6, 16: 3, 24: 9}}}
    PERIODS = {EventType.CYCLES: 2.0}

    def test_real_export_merges_deterministically(self, profiled):
        result, _ = profiled
        export = result.export_mergeable()
        assert check_merge_determinism(export["profiles"],
                                       export["periods"]) == []

    def test_split_conserves_counts(self):
        shards = split_profiles(self.PROFILES, ways=3)
        total = {}
        for shard in shards:
            for offset, count in shard.get("img", {}).get(
                    EventType.CYCLES, {}).items():
                total[offset] = total.get(offset, 0) + count
        assert total == self.PROFILES["img"][EventType.CYCLES]

    def test_order_dependent_merge_is_caught(self, monkeypatch):
        from repro.collect import parallel

        real_merge = parallel.merge_shards

        def biased_merge(shards):
            # Deliberately order-dependent: drops the last shard.
            shards = list(shards)
            return real_merge(shards[:-1] if len(shards) > 1 else shards)

        monkeypatch.setattr(parallel, "merge_shards", biased_merge)
        findings = check_merge_determinism(self.PROFILES, self.PERIODS,
                                           label="biased")
        assert "analysis/merge-nondeterminism" in _rules(findings)
