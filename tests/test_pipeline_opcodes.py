"""Execution tests for less-common opcodes running through the full
pipeline (semantics + timing integration)."""

from conftest import run_asm

MASK64 = (1 << 64) - 1


def wrap(body, data=""):
    return ".image t\n%s.proc main\n%s\n    ret\n.end" % (data, body)


class TestConditionalMoves:
    def test_cmovne_moves_when_nonzero(self):
        machine, _ = run_asm(wrap(
            "    lda t0, 1(zero)\n    lda t1, 7(zero)\n"
            "    lda t2, 9(zero)\n    cmovne t0, t1, t2"))
        assert machine.processes[0].iregs[3] == 7

    def test_cmovne_keeps_old_value_when_zero(self):
        machine, _ = run_asm(wrap(
            "    lda t1, 7(zero)\n    lda t2, 9(zero)\n"
            "    cmovne zero, t1, t2"))
        assert machine.processes[0].iregs[3] == 9

    def test_cmoveq(self):
        machine, _ = run_asm(wrap(
            "    lda t1, 7(zero)\n    lda t2, 9(zero)\n"
            "    cmoveq zero, t1, t2"))
        assert machine.processes[0].iregs[3] == 7


class TestShiftsAndArithmetic:
    def test_sra_sign_extends(self):
        machine, _ = run_asm(wrap(
            "    lda t0, -16(zero)\n    sra t0, 2, t1"))
        assert machine.processes[0].iregs[2] == MASK64 - 3  # -4

    def test_ldah_shifts_16(self):
        machine, _ = run_asm(wrap("    ldah t0, 2(zero)"))
        assert machine.processes[0].iregs[1] == 2 << 16

    def test_mulq_through_pipeline(self):
        machine, _ = run_asm(wrap(
            "    lda t0, 11(zero)\n    lda t1, 13(zero)\n"
            "    mulq t0, t1, t2"))
        assert machine.processes[0].iregs[3] == 143

    def test_back_to_back_mulq_unit_contention(self):
        body = ("    lda t0, 3(zero)\n"
                "    mulq t0, t0, t1\n"
                "    mulq t0, t0, t2")
        machine, image = run_asm(wrap(body))
        second = image.instructions[2]
        stalls = machine.gt_stall.get(second.addr, {})
        assert stalls.get("imul", 0) > 0

    def test_addl_wraps_32(self):
        machine, _ = run_asm(wrap(
            "    lda t0, 0x7fff(zero)\n    sll t0, 16, t0\n"
            "    addl t0, t0, t1"))
        # 0x7fff0000 + 0x7fff0000 overflows a longword -> negative.
        assert machine.processes[0].iregs[2] >> 63 == 1


class TestLowBitBranches:
    def test_blbs_taken_on_odd(self):
        body = """
    lda t0, 3(zero)
    blbs t0, odd
    lda t1, 1(zero)
odd:
    lda t2, 2(zero)
"""
        machine, _ = run_asm(wrap(body))
        proc = machine.processes[0]
        assert proc.iregs[2] == 0  # skipped
        assert proc.iregs[3] == 2

    def test_blbc_taken_on_even(self):
        body = """
    lda t0, 4(zero)
    blbc t0, even
    lda t1, 1(zero)
even:
    lda t2, 2(zero)
"""
        machine, _ = run_asm(wrap(body))
        assert machine.processes[0].iregs[2] == 0


class TestFloatingPoint:
    def test_divt_through_pipeline(self):
        body = ("    lda t0, 12(zero)\n    lda t1, =buf\n"
                "    stq t0, 0(t1)\n    ldt f1, 0(t1)\n"
                "    lda t0, 3(zero)\n    stq t0, 8(t1)\n"
                "    ldt f2, 8(t1)\n    divt f1, f2, f3\n"
                "    stt f3, 16(t1)")
        machine, image = run_asm(wrap(body, data=".data buf, 64\n"))
        assert machine.processes[0].peek(image.data_base + 16) == 4.0

    def test_fbranch_direction(self):
        body = ("    lda t0, 5(zero)\n    lda t1, =buf\n"
                "    stq t0, 0(t1)\n    ldt f1, 0(t1)\n"
                "    fbne f1, nonzero\n    lda t2, 1(zero)\n"
                "nonzero:\n    lda t3, 2(zero)")
        machine, _ = run_asm(wrap(body, data=".data buf, 64\n"))
        proc = machine.processes[0]
        assert proc.iregs[3] == 0  # branch taken
        assert proc.iregs[4] == 2

    def test_fdiv_consumer_stalls_long(self):
        body = ("    divt f1, f2, f3\n"
                "    addt f3, f3, f4")
        machine, image = run_asm(wrap(body))
        consumer = image.instructions[1]
        assert machine.gt_head[consumer.addr] >= 17  # FDIV latency 18


class TestJumps:
    def test_jmp_indirect(self):
        body = """
    lda t0, =hop
    jmp (t0)
.end
.proc hop
    lda t1, 5(zero)
"""
        machine, _ = run_asm(wrap(body))
        assert machine.processes[0].iregs[2] == 5

    def test_call_pal_is_inert(self):
        machine, _ = run_asm(wrap("    call_pal 0x83\n    lda t0, 1(zero)"))
        assert machine.processes[0].iregs[1] == 1
        assert machine.processes[0].exited

    def test_jsr_return_roundtrip(self):
        # main saves its own ra in t9 around the call; the trailing
        # ret appended by wrap() belongs to leaf.
        body = """
    bis ra, ra, t9
    lda pv, =leaf
    jsr ra, (pv)
    lda t2, 3(zero)
    ret (t9)
.end
.proc leaf
    lda t1, 9(zero)
"""
        machine, _ = run_asm(wrap(body), max_instructions=100)
        proc = machine.processes[0]
        assert proc.iregs[2] == 9
        assert proc.iregs[3] == 3
