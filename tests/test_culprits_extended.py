"""Extended culprit-rule tests: FU-busy candidates, the rare-predecessor
I-cache rule, and DTBMISS-based elimination."""

from repro.alpha.assembler import assemble
from repro.collect.database import ImageProfile
from repro.core.cfg import build_cfg
from repro.core.culprits import identify_culprits
from repro.core.frequency import estimate_frequencies
from repro.core.schedule import schedule_cfg
from repro.cpu.events import EventType


def run_culprits(text, samples, events=None):
    image = assemble(".image t\n" + text, base=0x1000)
    proc = image.procedure("main")
    cfg = build_cfg(proc)
    schedules = schedule_cfg(cfg)
    freq = estimate_frequencies(cfg, schedules, samples, 100.0)
    periods = {EventType.CYCLES: 100.0, EventType.IMISS: 10.0,
               EventType.DTBMISS: 10.0}
    profile = ImageProfile(image, periods=periods)
    for addr, count in samples.items():
        profile.add(EventType.CYCLES, addr - image.base, count)
    for event, table in (events or {}).items():
        for addr, count in table.items():
            profile.add(event, addr - image.base, count)
    return identify_culprits(cfg, schedules, freq, samples, profile,
                             proc), image


class TestFunctionalUnitRules:
    MUL_LOOP = """
.proc main
    lda t0, 100(zero)
top:
    mulq t1, t1, t2
    mulq t3, t3, t4
    subq t0, 1, t0
    bgt t0, top
    ret
.end
"""

    def test_second_multiply_gets_imul_candidate(self):
        # The second mulq is stalled well beyond its static M (which
        # already accounts for the unit): pessimistic extra contention.
        samples = {0x1004: 50, 0x1008: 600, 0x100C: 50, 0x1010: 50}
        culprits, image = run_culprits(self.MUL_LOOP, samples)
        reasons = {c.reason for c in culprits.get(0x1008, [])}
        assert "imul" in reasons
        imul = next(c for c in culprits[0x1008] if c.reason == "imul")
        assert imul.source_addr == 0x1004

    def test_multiply_without_predecessor_not_imul(self):
        samples = {0x1004: 600, 0x1008: 50, 0x100C: 50, 0x1010: 50}
        culprits, _ = run_culprits(self.MUL_LOOP, samples)
        reasons = {c.reason for c in culprits.get(0x1004, [])}
        assert "imul" not in reasons  # no earlier mul in the block


class TestDtbElimination:
    LOAD_LOOP = """
.data buf, 8192
.proc main
    lda t1, =buf
    lda t0, 100(zero)
top:
    ldq t4, 0(t1)
    addq t4, 1, t5
    lda t1, 8(t1)
    subq t0, 1, t0
    bgt t0, top
    ret
.end
"""

    def test_dtbmiss_samples_bound_dtb(self):
        samples = {0x1008: 50, 0x100C: 800, 0x1010: 50, 0x1014: 50,
                   0x1018: 50}
        # DTBMISS monitored, zero samples at the consumer: dtb's upper
        # bound collapses to zero and the candidate disappears.
        culprits, _ = run_culprits(
            self.LOAD_LOOP, samples,
            events={EventType.DTBMISS: {0x1004: 1}})
        reasons = {c.reason for c in culprits[0x100C]}
        assert "dcache" in reasons
        assert "dtb" not in reasons

    def test_without_dtbmiss_samples_dtb_stays(self):
        samples = {0x1008: 50, 0x100C: 800, 0x1010: 50, 0x1014: 50,
                   0x1018: 50}
        culprits, _ = run_culprits(self.LOAD_LOOP, samples)
        reasons = {c.reason for c in culprits[0x100C]}
        assert "dtb" in reasons  # pessimistic when information is limited


class TestRarePredecessorRule:
    SKEWED = """
.proc main
    lda t0, 1000(zero)
top:
    addq t1, 1, t1
    xor t1, t0, t2
    and t0, 255, t3
    bne t3, hot
    addq t4, 1, t4
    addq t4, 2, t4
    addq t4, 3, t4
    addq t4, 4, t4
hot:
    sll t2, 1, t5
    subq t0, 1, t0
    bgt t0, top
    ret
.end
"""

    def test_rare_cold_path_predecessor_ignored(self):
        # 'hot' (0x1024) is entered from the bne at 0x1010 and from the
        # rarely-executed cold path; the rare predecessor must not stop
        # the analysis.  The hot join's candidates include the
        # block-head reasons (branch mispredict, I-cache) and the
        # pessimistic dcache (its operand producer lies outside the
        # block) -- but never wb (it is not a store).
        samples = {0x1004: 500, 0x1008: 500, 0x100C: 500, 0x1010: 500,
                   0x1014: 3, 0x1018: 2, 0x101C: 2, 0x1020: 2,
                   0x1024: 2500, 0x1028: 500, 0x102C: 500}
        culprits, image = run_culprits(self.SKEWED, samples)
        assert 0x1024 in culprits
        reasons = {c.reason for c in culprits[0x1024]}
        assert "wb" not in reasons
        assert "branchmp" in reasons
