"""Tests for the device driver and the user-mode daemon."""

import pytest

from repro.alpha.assembler import assemble
from repro.collect.daemon import Daemon
from repro.collect.driver import (EVENT_ORDINAL, INTERRUPT_SETUP, Driver,
                                  DriverConfig)
from repro.cpu.events import EventType
from repro.faults.injector import FaultPlan, FaultSpec
from repro.osim.loader import Loader


def make_driver(**overrides):
    defaults = dict(buckets=16, assoc=4, overflow_capacity=8,
                    cost_scale=1.0)
    defaults.update(overrides)
    return Driver(1, DriverConfig(**defaults))


class TestDriverRecord:
    def test_cost_includes_setup(self):
        driver = make_driver()
        cost = driver.record(0, 1, 0x100, EventType.CYCLES, 0)
        assert cost >= INTERRUPT_SETUP

    def test_hit_cheaper_than_eviction(self):
        driver = make_driver(buckets=1)
        driver.record(0, 1, 0x100, EventType.CYCLES, 0)
        hit_cost = driver.record(0, 1, 0x100, EventType.CYCLES, 1)
        for i in range(4):
            driver.record(0, 10 + i, 0x100, EventType.CYCLES, 2 + i)
        evict_cost = driver.record(0, 99, 0x100, EventType.CYCLES, 10)
        assert evict_cost > hit_cost

    def test_charge_overhead_false_returns_zero(self):
        driver = make_driver(charge_overhead=False)
        assert driver.record(0, 1, 0x100, EventType.CYCLES, 0) == 0
        # ... but statistics still accumulate.
        assert driver.stats()["samples"] == 1

    def test_cost_scaling(self):
        full = make_driver(cost_scale=1.0)
        scaled = make_driver(cost_scale=0.1)
        c_full = full.record(0, 1, 0x100, EventType.CYCLES, 0)
        c_scaled = scaled.record(0, 1, 0x100, EventType.CYCLES, 0)
        assert c_scaled <= c_full * 0.11 + 1

    def test_event_sample_accounting(self):
        driver = make_driver()
        driver.record(0, 1, 0x100, EventType.CYCLES, 0)
        driver.record(0, 1, 0x100, EventType.IMISS, 1)
        assert driver.event_samples[EventType.CYCLES] == 1
        assert driver.event_samples[EventType.IMISS] == 1

    def test_trace_logging(self):
        driver = make_driver(log_trace=True)
        driver.record(0, 7, 0x104, EventType.CYCLES, 0)
        assert driver.trace == [(0, 7, 0x104,
                                 EVENT_ORDINAL[EventType.CYCLES])]

    def test_overflow_buffer_fills_and_notifies(self):
        driver = make_driver(buckets=1, assoc=1, overflow_capacity=2)
        notified = []
        driver.add_overflow_listener(notified.append)
        for i in range(10):
            driver.record(0, i, 0x100, EventType.CYCLES, i)
        assert notified  # at least one buffer-full notification

    def test_flush_returns_everything_once(self):
        driver = make_driver(buckets=1, assoc=2, overflow_capacity=4)
        for i in range(10):
            driver.record(0, i, 0x100, EventType.CYCLES, i)
        entries = driver.flush(0)
        total = sum(count for _, count in entries)
        assert total + driver.cpus[0].dropped == 10
        assert driver.flush(0) == []

    def test_stats_shape(self):
        driver = make_driver()
        for i in range(5):
            driver.record(0, 1, 0x100 + 4 * i, EventType.CYCLES, i)
        stats = driver.stats()
        assert stats["samples"] == 5
        assert 0.0 <= stats["miss_rate"] <= 1.0
        assert stats["avg_miss_cost"] >= stats["avg_hit_cost"] >= 0

    def test_kernel_memory_matches_paper_scale(self):
        # Paper section 5.3: 512 KB of kernel memory per processor with
        # 16K-entry tables and 8K-sample overflow buffers.
        driver = Driver(1, DriverConfig(buckets=4096, assoc=4,
                                        overflow_capacity=8192))
        assert driver.kernel_memory_bytes() == 512 * 1024


class TestTwoPhaseFlush:
    """Flush batches stay pinned in the driver until acknowledged."""

    def loaded_driver(self, samples=10, **overrides):
        driver = make_driver(buckets=1, assoc=2, overflow_capacity=4,
                             **overrides)
        for i in range(samples):
            driver.record(0, i, 0x100, EventType.CYCLES, i)
        return driver

    def test_begin_flush_pins_until_ack(self):
        driver = self.loaded_driver()
        seq, entries = driver.begin_flush(0)
        assert entries
        assert driver.recover_inflight(0) == [(seq, entries)]
        driver.ack(0, seq)
        assert driver.recover_inflight(0) == []

    def test_flush_seqs_increase(self):
        driver = self.loaded_driver()
        seq1, _ = driver.begin_flush(0)
        for i in range(10):
            driver.record(0, 50 + i, 0x200, EventType.CYCLES, i)
        seq2, _ = driver.begin_flush(0)
        assert seq2 > seq1

    def test_unacked_batches_survive_for_recovery(self):
        """A dead daemon's flushed-but-unacked samples are exactly
        recover_inflight's payload -- nothing needs re-sampling."""
        driver = self.loaded_driver()
        seq, entries = driver.begin_flush(0)
        flushed = sum(count for _, count in entries)
        recovered = driver.recover_inflight(0)
        assert sum(count for _, count in recovered[0][1]) == flushed

    def test_drop_pending_accounts_everything(self):
        driver = self.loaded_driver(samples=20)
        driver.begin_flush(0)           # pinned inflight, never acked
        for i in range(10):
            driver.record(0, 90 + i, 0x300, EventType.CYCLES, i)
        driver.drop_pending(0)
        state = driver.cpus[0]
        assert state.samples == 30
        assert state.dropped == 30      # every sample accounted
        assert driver.flush(0) == []
        assert driver.recover_inflight(0) == []

    def test_drop_all_pending_sums_cpus(self):
        driver = Driver(2, DriverConfig(buckets=1, assoc=2,
                                        overflow_capacity=4,
                                        cost_scale=1.0))
        for cpu in (0, 1):
            for i in range(5):
                driver.record(cpu, i, 0x100, EventType.CYCLES, i)
        dropped = driver.drop_all_pending()
        assert dropped == 10
        assert sum(s.dropped for s in driver.cpus) == 10

    def test_injected_overflow_burst_is_accounted(self):
        plan = FaultPlan(specs=(
            FaultSpec("driver.overflow", "drop", hits=(1,)),), seed=1)
        driver = Driver(1, DriverConfig(buckets=1, assoc=1,
                                        overflow_capacity=2,
                                        cost_scale=1.0),
                        faults=plan.build())
        for i in range(12):
            driver.record(0, i, 0x100, EventType.CYCLES, i)
        state = driver.cpus[0]
        assert state.dropped > 0
        kept = sum(count for _, count in driver.flush(0))
        assert kept + state.dropped == state.samples


class TestDaemon:
    def make_env(self):
        loader = Loader()
        daemon = Daemon(loader, periods={EventType.CYCLES: 100.0})
        image = loader.link(assemble(
            ".image app\n.proc main\n    nop\n    ret\n.end"))
        loader.notify_exec(7, [image])
        return loader, daemon, image

    def test_samples_mapped_to_image(self):
        loader, daemon, image = self.make_env()
        driver = make_driver()
        driver.record(0, 7, image.base + 4, EventType.CYCLES, 0)
        daemon.drain(driver)
        profile = daemon.profiles["app"]
        assert profile.counts[EventType.CYCLES][4] == 1

    def test_unknown_pc_counted(self):
        loader, daemon, image = self.make_env()
        driver = make_driver()
        driver.record(0, 7, 0xDEAD0000, EventType.CYCLES, 0)
        daemon.drain(driver)
        assert daemon.unknown_samples == 1
        assert "app" not in daemon.profiles

    def test_fallback_to_global_map_for_unknown_pid(self):
        loader, daemon, image = self.make_env()
        driver = make_driver()
        driver.record(0, 999, image.base, EventType.CYCLES, 0)
        daemon.drain(driver)
        assert daemon.profiles["app"].total(EventType.CYCLES) == 1

    def test_reap_forgets_mappings(self):
        loader, daemon, image = self.make_env()
        daemon.reap(7)
        assert 7 not in daemon._maps

    def test_aggregated_counts_preserved(self):
        loader, daemon, image = self.make_env()
        driver = make_driver()
        for _ in range(17):
            driver.record(0, 7, image.base, EventType.CYCLES, 0)
        daemon.drain(driver)
        assert daemon.profiles["app"].total(EventType.CYCLES) == 17
        assert daemon.total_samples == 17
        assert daemon.entries_processed < 17  # aggregation worked

    def test_cost_per_sample_decreases_with_aggregation(self):
        loader, daemon, image = self.make_env()
        driver = make_driver()
        for _ in range(100):
            driver.record(0, 7, image.base, EventType.CYCLES, 0)
        daemon.drain(driver)
        aggregated_cost = daemon.stats()["cost_per_sample"]

        loader2 = Loader()
        daemon2 = Daemon(loader2, periods={EventType.CYCLES: 100.0})
        image2 = loader2.link(assemble(
            ".image app2\n.proc main\n" + "    nop\n" * 120 + "    ret\n.end"))
        loader2.notify_exec(8, [image2])
        driver2 = make_driver(buckets=4, assoc=1)
        for i in range(100):
            driver2.record(0, 8, image2.base + (i % 100) * 4,
                           EventType.CYCLES, i)
        daemon2.drain(driver2)
        spread_cost = daemon2.stats()["cost_per_sample"]
        assert spread_cost > aggregated_cost

    def test_resident_memory_grows_with_profiles(self):
        loader, daemon, image = self.make_env()
        before = daemon.resident_bytes()
        driver = make_driver()
        for i in range(50):
            driver.record(0, 7, image.base + 4 * (i % 2),
                          EventType.CYCLES, i)
        daemon.drain(driver)
        assert daemon.resident_bytes() > before
        assert daemon.peak_resident_bytes() >= daemon.resident_bytes()

    def test_merge_to_disk(self, tmp_path):
        from repro.collect.database import ProfileDatabase

        loader, daemon, image = self.make_env()
        driver = make_driver()
        driver.record(0, 7, image.base, EventType.CYCLES, 0)
        daemon.drain(driver)
        db = ProfileDatabase(str(tmp_path / "db"))
        daemon.merge_to_disk(db)
        counts, period = db.load("app", EventType.CYCLES)
        assert counts == {0: 1}
        assert period == 100


class TestDaemonLossAccounting:
    """Satellite 1: driver drops surface in Daemon.stats() and obs."""

    def make_env(self):
        loader = Loader()
        daemon = Daemon(loader, periods={EventType.CYCLES: 100.0})
        image = loader.link(assemble(
            ".image app\n.proc main\n    nop\n    ret\n.end"))
        loader.notify_exec(7, [image])
        return loader, daemon, image

    def test_driver_drops_reach_daemon_stats(self):
        loader, daemon, image = self.make_env()
        driver = make_driver(buckets=1, assoc=1, overflow_capacity=2)
        for i in range(40):
            driver.record(0, i, image.base, EventType.CYCLES, i)
        driver.drop_pending(0)
        daemon.drain(driver)
        dropped = sum(s.dropped for s in driver.cpus)
        assert dropped > 0
        assert daemon.stats()["samples_dropped"] == dropped

    def test_per_cpu_dropped_in_driver_metrics(self):
        driver = Driver(2, DriverConfig(buckets=1, assoc=1,
                                        overflow_capacity=2,
                                        cost_scale=1.0))
        for i in range(20):
            driver.record(1, i, 0x100, EventType.CYCLES, i)
        driver.drop_pending(1)
        flat = driver.metrics()
        assert flat["driver.cpu1.overflow.dropped"]["value"] > 0
        assert flat["driver.cpu0.overflow.dropped"]["value"] == 0
        legacy = driver.stats()
        assert legacy["dropped"] == driver.cpus[1].dropped

    def test_retry_backoff_charges_cycles(self):
        loader, daemon, image = self.make_env()
        daemon.faults = FaultPlan(specs=(
            FaultSpec("daemon.drain.flush", "transient", hits=(1,)),),
            seed=1).build()
        driver = make_driver()
        driver.record(0, 7, image.base, EventType.CYCLES, 0)
        before = daemon.cycles
        daemon.drain(driver)
        assert daemon.drain_retries == 1
        assert daemon.cycles - before >= 10_000   # backoff charged
        assert daemon.total_samples == 1          # nothing lost

    def test_exhausted_retries_shed_backlog(self):
        loader, daemon, image = self.make_env()
        daemon.faults = FaultPlan(specs=(
            FaultSpec("daemon.drain.flush", "transient",
                      after=1, limit=4),), seed=1).build()
        driver = make_driver()
        for i in range(6):
            driver.record(0, 7, image.base, EventType.CYCLES, i)
        daemon.drain(driver)
        assert daemon.drain_failures == 1
        assert daemon.total_samples == 0
        assert driver.cpus[0].dropped == 6        # accounted, not silent
        assert daemon.stats()["samples_dropped"] == 6

    def test_journal_replay_with_watermark_is_idempotent(self, tmp_path):
        """Batches at or below the recovered watermark replay from the
        journal only; the re-drain acks them without re-merging."""
        from repro.collect.database import ProfileDatabase
        from repro.collect.journal import DrainJournal

        loader, daemon, image = self.make_env()
        db = ProfileDatabase(str(tmp_path / "db"))
        journal = DrainJournal(db.journal_path())
        daemon.journal = journal
        driver = make_driver()
        for i in range(8):
            driver.record(0, 7, image.base + 4 * (i % 2),
                          EventType.CYCLES, i)
        # Journal + merge, but never ack (daemon dies before the ack).
        seq, entries = driver.begin_flush(0)
        journal.append(0, seq, entries)
        daemon._process(entries)
        daemon._drained_seq[0] = seq

        recovered = Daemon.recover(loader, db, journal=journal,
                                   periods={EventType.CYCLES: 100.0})
        # Journal replay: watermark in db meta is absent, so replay
        # delivers the batch exactly once...
        assert recovered.total_samples == 8
        recovered._drained_seq[0] = seq
        # ... and the re-drain sees the pinned batch already merged.
        recovered.redrain_inflight(driver)
        assert recovered.total_samples == 8
        assert driver.recover_inflight(0) == []
