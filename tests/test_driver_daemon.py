"""Tests for the device driver and the user-mode daemon."""

from repro.alpha.assembler import assemble
from repro.collect.daemon import Daemon
from repro.collect.driver import (EVENT_ORDINAL, INTERRUPT_SETUP, Driver,
                                  DriverConfig)
from repro.cpu.events import EventType
from repro.osim.loader import Loader


def make_driver(**overrides):
    defaults = dict(buckets=16, assoc=4, overflow_capacity=8,
                    cost_scale=1.0)
    defaults.update(overrides)
    return Driver(1, DriverConfig(**defaults))


class TestDriverRecord:
    def test_cost_includes_setup(self):
        driver = make_driver()
        cost = driver.record(0, 1, 0x100, EventType.CYCLES, 0)
        assert cost >= INTERRUPT_SETUP

    def test_hit_cheaper_than_eviction(self):
        driver = make_driver(buckets=1)
        driver.record(0, 1, 0x100, EventType.CYCLES, 0)
        hit_cost = driver.record(0, 1, 0x100, EventType.CYCLES, 1)
        for i in range(4):
            driver.record(0, 10 + i, 0x100, EventType.CYCLES, 2 + i)
        evict_cost = driver.record(0, 99, 0x100, EventType.CYCLES, 10)
        assert evict_cost > hit_cost

    def test_charge_overhead_false_returns_zero(self):
        driver = make_driver(charge_overhead=False)
        assert driver.record(0, 1, 0x100, EventType.CYCLES, 0) == 0
        # ... but statistics still accumulate.
        assert driver.stats()["samples"] == 1

    def test_cost_scaling(self):
        full = make_driver(cost_scale=1.0)
        scaled = make_driver(cost_scale=0.1)
        c_full = full.record(0, 1, 0x100, EventType.CYCLES, 0)
        c_scaled = scaled.record(0, 1, 0x100, EventType.CYCLES, 0)
        assert c_scaled <= c_full * 0.11 + 1

    def test_event_sample_accounting(self):
        driver = make_driver()
        driver.record(0, 1, 0x100, EventType.CYCLES, 0)
        driver.record(0, 1, 0x100, EventType.IMISS, 1)
        assert driver.event_samples[EventType.CYCLES] == 1
        assert driver.event_samples[EventType.IMISS] == 1

    def test_trace_logging(self):
        driver = make_driver(log_trace=True)
        driver.record(0, 7, 0x104, EventType.CYCLES, 0)
        assert driver.trace == [(0, 7, 0x104,
                                 EVENT_ORDINAL[EventType.CYCLES])]

    def test_overflow_buffer_fills_and_notifies(self):
        driver = make_driver(buckets=1, assoc=1, overflow_capacity=2)
        notified = []
        driver.add_overflow_listener(notified.append)
        for i in range(10):
            driver.record(0, i, 0x100, EventType.CYCLES, i)
        assert notified  # at least one buffer-full notification

    def test_flush_returns_everything_once(self):
        driver = make_driver(buckets=1, assoc=2, overflow_capacity=4)
        for i in range(10):
            driver.record(0, i, 0x100, EventType.CYCLES, i)
        entries = driver.flush(0)
        total = sum(count for _, count in entries)
        assert total + driver.cpus[0].dropped == 10
        assert driver.flush(0) == []

    def test_stats_shape(self):
        driver = make_driver()
        for i in range(5):
            driver.record(0, 1, 0x100 + 4 * i, EventType.CYCLES, i)
        stats = driver.stats()
        assert stats["samples"] == 5
        assert 0.0 <= stats["miss_rate"] <= 1.0
        assert stats["avg_miss_cost"] >= stats["avg_hit_cost"] >= 0

    def test_kernel_memory_matches_paper_scale(self):
        # Paper section 5.3: 512 KB of kernel memory per processor with
        # 16K-entry tables and 8K-sample overflow buffers.
        driver = Driver(1, DriverConfig(buckets=4096, assoc=4,
                                        overflow_capacity=8192))
        assert driver.kernel_memory_bytes() == 512 * 1024


class TestDaemon:
    def make_env(self):
        loader = Loader()
        daemon = Daemon(loader, periods={EventType.CYCLES: 100.0})
        image = loader.link(assemble(
            ".image app\n.proc main\n    nop\n    ret\n.end"))
        loader.notify_exec(7, [image])
        return loader, daemon, image

    def test_samples_mapped_to_image(self):
        loader, daemon, image = self.make_env()
        driver = make_driver()
        driver.record(0, 7, image.base + 4, EventType.CYCLES, 0)
        daemon.drain(driver)
        profile = daemon.profiles["app"]
        assert profile.counts[EventType.CYCLES][4] == 1

    def test_unknown_pc_counted(self):
        loader, daemon, image = self.make_env()
        driver = make_driver()
        driver.record(0, 7, 0xDEAD0000, EventType.CYCLES, 0)
        daemon.drain(driver)
        assert daemon.unknown_samples == 1
        assert "app" not in daemon.profiles

    def test_fallback_to_global_map_for_unknown_pid(self):
        loader, daemon, image = self.make_env()
        driver = make_driver()
        driver.record(0, 999, image.base, EventType.CYCLES, 0)
        daemon.drain(driver)
        assert daemon.profiles["app"].total(EventType.CYCLES) == 1

    def test_reap_forgets_mappings(self):
        loader, daemon, image = self.make_env()
        daemon.reap(7)
        assert 7 not in daemon._maps

    def test_aggregated_counts_preserved(self):
        loader, daemon, image = self.make_env()
        driver = make_driver()
        for _ in range(17):
            driver.record(0, 7, image.base, EventType.CYCLES, 0)
        daemon.drain(driver)
        assert daemon.profiles["app"].total(EventType.CYCLES) == 17
        assert daemon.total_samples == 17
        assert daemon.entries_processed < 17  # aggregation worked

    def test_cost_per_sample_decreases_with_aggregation(self):
        loader, daemon, image = self.make_env()
        driver = make_driver()
        for _ in range(100):
            driver.record(0, 7, image.base, EventType.CYCLES, 0)
        daemon.drain(driver)
        aggregated_cost = daemon.stats()["cost_per_sample"]

        loader2 = Loader()
        daemon2 = Daemon(loader2, periods={EventType.CYCLES: 100.0})
        image2 = loader2.link(assemble(
            ".image app2\n.proc main\n" + "    nop\n" * 120 + "    ret\n.end"))
        loader2.notify_exec(8, [image2])
        driver2 = make_driver(buckets=4, assoc=1)
        for i in range(100):
            driver2.record(0, 8, image2.base + (i % 100) * 4,
                           EventType.CYCLES, i)
        daemon2.drain(driver2)
        spread_cost = daemon2.stats()["cost_per_sample"]
        assert spread_cost > aggregated_cost

    def test_resident_memory_grows_with_profiles(self):
        loader, daemon, image = self.make_env()
        before = daemon.resident_bytes()
        driver = make_driver()
        for i in range(50):
            driver.record(0, 7, image.base + 4 * (i % 2),
                          EventType.CYCLES, i)
        daemon.drain(driver)
        assert daemon.resident_bytes() > before
        assert daemon.peak_resident_bytes() >= daemon.resident_bytes()

    def test_merge_to_disk(self, tmp_path):
        from repro.collect.database import ProfileDatabase

        loader, daemon, image = self.make_env()
        driver = make_driver()
        driver.record(0, 7, image.base, EventType.CYCLES, 0)
        daemon.drain(driver)
        db = ProfileDatabase(str(tmp_path / "db"))
        daemon.merge_to_disk(db)
        counts, period = db.load("app", EventType.CYCLES)
        assert counts == {0: 1}
        assert period == 100
