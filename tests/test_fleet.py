"""The fleet subsystem: store merge identity, retention accounting,
transport faults, epoch queries, and the dcpifleet CLI."""

import io
import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check.analysis_checks import check_fleet_conservation
from repro.faults import (DELAY, DROP, DUPLICATE, FLEET_SHIP, FaultPlan,
                          FaultSpec)
from repro.fleet import (Delta, DeltaTransport, FleetConfig, FleetMachine,
                         FleetSession, FleetStore, IngestRetry,
                         RetentionPolicy, compact, compactable_windows,
                         downsample, parse_epochs)
from repro.fleet.cli import main as fleet_main
from repro.fleet.query import FleetQuery

# One small fleet simulated once per module; property tests re-ingest
# its deltas into fresh stores, which is cheap.
MACHINES = 2
EPOCHS = 3
BUDGET = 8_000


@pytest.fixture(scope="module")
def fleet_deltas():
    config = FleetConfig(machines=MACHINES, epochs=EPOCHS, seed=11)
    machines = [
        FleetMachine("m%02d" % i, config.machine_workload(i),
                     config.machine_seed(i))
        for i in range(MACHINES)
    ]
    deltas = []
    for _ in range(EPOCHS):
        for machine in machines:
            deltas.append(machine.run_epoch(BUDGET))
    shipped = sum(machine.shipped_samples for machine in machines)
    assert shipped > 0
    return deltas, shipped


def _fill(root, deltas):
    store = FleetStore(root)
    for delta in deltas:
        store.ingest(delta)
    return store


def _store_bytes(store):
    """The byte-identity oracle: canonical encoding of the merge."""
    return store.merged().encode_all()


# -- order independence (the PR 1 invariant, fleet-scale) ------------------


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_store_bytes_identical_under_reordering(fleet_deltas, tmp_path_factory,
                                                data):
    """Any permutation of delta arrivals produces the same store bytes."""
    deltas, _ = fleet_deltas
    order = data.draw(st.permutations(list(range(len(deltas)))))
    base = _fill(str(tmp_path_factory.mktemp("ordered")), deltas)
    shuffled = _fill(str(tmp_path_factory.mktemp("shuffled")),
                     [deltas[i] for i in order])
    assert _store_bytes(base) == _store_bytes(shuffled)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_store_bytes_identical_under_duplication(fleet_deltas,
                                                 tmp_path_factory, data):
    """Replaying any subset of deltas (in any order) changes nothing:
    the (machine, epoch, batch) dedupe makes delivery idempotent."""
    deltas, shipped = fleet_deltas
    dupes = data.draw(st.lists(
        st.integers(min_value=0, max_value=len(deltas) - 1), max_size=6))
    order = data.draw(st.permutations(
        list(range(len(deltas))) + dupes))
    base = _fill(str(tmp_path_factory.mktemp("clean")), deltas)
    noisy = _fill(str(tmp_path_factory.mktemp("noisy")),
                  [deltas[i] for i in order])
    assert _store_bytes(base) == _store_bytes(noisy)
    assert noisy.ledger["duplicates_dropped"] == len(dupes)
    assert noisy.total_samples() == shipped


def test_dedupe_survives_store_reopen(fleet_deltas, tmp_path):
    """The applied-delta ledger is committed atomically with the
    samples, so a replay after restart is still recognized."""
    deltas, shipped = fleet_deltas
    root = str(tmp_path / "store")
    _fill(root, deltas)
    reopened = FleetStore(root)
    assert reopened.ingest(deltas[0]) is False
    assert reopened.ledger["duplicates_dropped"] == 1
    assert reopened.total_samples() == shipped


# -- Layer 2 conservation invariant ----------------------------------------


def test_clean_fleet_conserves_exactly(fleet_deltas, tmp_path):
    """Clean runs: fleet-merged counts == sum of per-machine counts."""
    deltas, shipped = fleet_deltas
    store = _fill(str(tmp_path / "store"), deltas)
    assert store.total_samples() == shipped
    assert check_fleet_conservation(shipped=shipped,
                                    stored=store.total_samples()) == []


def test_conservation_check_flags_imbalance():
    lost = check_fleet_conservation(shipped=100, stored=90)
    assert len(lost) == 1
    assert lost[0].rule == "analysis/fleet-conservation"
    assert lost[0].severity == "error"
    assert "lost" in lost[0].message
    doubled = check_fleet_conservation(shipped=100, stored=120)
    assert "double" in doubled[0].message
    balanced = check_fleet_conservation(
        shipped=100, stored=80, transit_lost=12, residue=5, quarantined=3)
    assert balanced == []


def test_fleet_session_end_to_end_clean(tmp_path):
    config = FleetConfig(machines=2, epochs=2, seed=5,
                         epoch_instructions=BUDGET)
    result = FleetSession(config).run(FleetStore(str(tmp_path / "s")))
    report = result.report()
    assert report["ok"], report["findings"]
    assert report["store"]["stored_samples"] == report["shipped_samples"]
    assert report["transport"]["lost_samples"] == 0


def test_fleet_session_conserves_under_transport_faults(tmp_path):
    """Drops, duplicates and delays on the fleet hop: everything is
    either stored, or accounted as transit loss -- never silent."""
    plan = FaultPlan(specs=(
        FaultSpec(point=FLEET_SHIP, action=DROP, hits=(2,)),
        FaultSpec(point=FLEET_SHIP, action=DUPLICATE, hits=(3, 6)),
        FaultSpec(point=FLEET_SHIP, action=DELAY, hits=(5, 8)),
    ), seed=3)
    config = FleetConfig(machines=2, epochs=4, seed=5,
                         epoch_instructions=BUDGET, faults=plan)
    result = FleetSession(config).run(FleetStore(str(tmp_path / "s")))
    report = result.report()
    assert report["ok"], report["findings"]
    assert report["transport"]["lost_deltas"] == 1
    assert report["transport"]["lost_samples"] > 0
    assert report["store"]["duplicates_dropped"] == 2
    assert (report["store"]["stored_samples"]
            + report["transport"]["lost_samples"]
            == report["shipped_samples"])


# -- transport accounting ---------------------------------------------------


def _tiny_delta(batch, samples=10):
    return Delta(machine_id="m00", epoch=0, batch=batch, generation=1,
                 workload="w", seed=1,
                 profiles={"img": {"cycles": {0: samples}}},
                 periods={"cycles": 4.0})


def test_transport_fault_accounting():
    plan = FaultPlan(specs=(
        FaultSpec(point=FLEET_SHIP, action=DROP, hits=(1,)),
        FaultSpec(point=FLEET_SHIP, action=DELAY, hits=(2,)),
        FaultSpec(point=FLEET_SHIP, action=DUPLICATE, hits=(3,)),
    ), seed=1)
    transport = DeltaTransport(faults=plan.build())
    assert transport.ship(_tiny_delta(1)) == []          # dropped
    assert transport.ship(_tiny_delta(2)) == []          # held back
    third = _tiny_delta(3)
    deliveries = transport.ship(third)
    # The delayed delta arrives first, then the duplicate pair.
    assert [d.batch for d in deliveries] == [2, 3, 3]
    assert transport.flush() == []
    stats = transport.stats
    assert stats.shipped == 3
    assert stats.delivered == 3
    assert stats.lost_deltas == 1 and stats.lost_samples == 10
    assert stats.duplicated == 1 and stats.delayed == 1


def test_transport_flush_delivers_trailing_delayed():
    plan = FaultPlan(specs=(
        FaultSpec(point=FLEET_SHIP, action=DELAY, hits=(1,)),), seed=1)
    transport = DeltaTransport(faults=plan.build())
    assert transport.ship(_tiny_delta(1)) == []
    flushed = transport.flush()
    assert [d.batch for d in flushed] == [1]
    assert transport.stats.delivered == 1
    assert transport.stats.lost_samples == 0


# -- single-writer ingest lock ----------------------------------------------


def _fcntl_available():
    try:
        import fcntl  # noqa: F401
    except ImportError:
        return False
    return True


@pytest.mark.skipif(not _fcntl_available(),
                    reason="advisory locking needs fcntl (POSIX)")
def test_concurrent_ingest_times_out_loudly(tmp_path):
    """A contended writer retries with backoff, then fails loudly.

    flock conflicts are per open file description, so two store
    handles in one process exercise the same path as two processes.
    The loser's backoff sleeps are captured (not slept) so the test
    asserts the seeded schedule was actually consumed.
    """
    from repro.fleet import FleetStoreBusyError, IngestRetry

    root = str(tmp_path / "store")
    retry = IngestRetry(attempts=3, base_ms=2.0, cap_ms=8.0, seed=7)
    first = FleetStore(root, retry=retry)
    second = FleetStore(root, retry=retry)
    slept = []
    second.shards[0]._sleep = slept.append
    with first.shards[0]._ingest_lock():
        with pytest.raises(FleetStoreBusyError, match="single-writer"):
            second.ingest(_tiny_delta(1))
    # Every backoff step in the seeded schedule was consumed.
    assert slept == [ms / 1000.0 for ms in retry.backoff_schedule()]
    # The loser applied nothing: the delta is still ingestable.
    assert second.ingest(_tiny_delta(1)) is True


@pytest.mark.skipif(not _fcntl_available(),
                    reason="advisory locking needs fcntl (POSIX)")
def test_contended_ingest_succeeds_within_backoff_budget(tmp_path):
    """A writer that finds the lock freed mid-backoff ingests fine."""
    root = str(tmp_path / "store")
    retry = IngestRetry(attempts=4, base_ms=1.0, cap_ms=4.0, seed=3)
    first = FleetStore(root, retry=retry)
    second = FleetStore(root, retry=retry)
    lock = first.shards[0]._ingest_lock()
    lock.__enter__()
    releases = iter([False, True])

    def sleep_then_release(_seconds):
        if next(releases, False):
            lock.__exit__(None, None, None)

    second.shards[0]._sleep = sleep_then_release
    assert second.ingest(_tiny_delta(1)) is True
    assert second.ledger["lock_retries"] == 2
    assert second.stats()["lock_retries"] == 2


@pytest.mark.skipif(not _fcntl_available(),
                    reason="advisory locking needs fcntl (POSIX)")
def test_ingest_lock_is_released_after_each_ingest(tmp_path):
    """Sequential ingests through distinct handles all succeed."""
    root = str(tmp_path / "store")
    first = FleetStore(root)
    assert first.ingest(_tiny_delta(1)) is True
    second = FleetStore(root)
    assert second.ingest(_tiny_delta(2)) is True
    # ... including when an earlier ingest was a rejected duplicate.
    third = FleetStore(root)
    assert third.ingest(_tiny_delta(2)) is False
    assert third.ingest(_tiny_delta(3)) is True


# -- retention --------------------------------------------------------------


def test_downsample_accounting_identity():
    counts = {0: 9, 4: 1, 8: 16, 12: 3}
    kept, residue = downsample(counts, 4)
    # Quotients keep original sample units; sub-quotient entries drop.
    assert kept == {0: 8, 8: 16}
    assert residue == sum(counts.values()) - sum(kept.values())
    assert downsample(counts, 1) == (counts, 0)


@given(counts=st.dictionaries(
    st.integers(min_value=0, max_value=4096),
    st.integers(min_value=1, max_value=500), max_size=40),
    divisor=st.integers(min_value=1, max_value=16))
def test_downsample_never_loses_silently(counts, divisor):
    kept, residue = downsample(counts, divisor)
    assert sum(kept.values()) + residue == sum(counts.values())
    assert all(value > 0 for value in kept.values())


def test_compactable_windows_respect_horizon():
    policy = RetentionPolicy(keep_full=3, window=2)
    # Newest epoch 7 -> horizon 5: windows [0,1], [2,3] qualify; [4,5]
    # straddles the horizon and must wait.
    assert compactable_windows(policy, [0, 1, 2, 3, 4, 5, 6, 7]) == [0, 2]
    assert compactable_windows(policy, []) == []
    # Everything still inside keep_full: nothing to do.
    assert compactable_windows(policy, [0, 1, 2]) == []


def test_retention_accounting_and_idempotence(fleet_deltas, tmp_path):
    """pre-compaction total == post-compaction total + recorded residue,
    and re-running compaction is a no-op."""
    deltas, shipped = fleet_deltas
    store = _fill(str(tmp_path / "store"), deltas)
    pre_total = store.total_samples()
    policy = RetentionPolicy(keep_full=1, window=2, count_divisor=3)
    report = compact(store, policy)
    assert report["windows"], "expected the [0,1] window to compact"
    assert report["pre_samples"] == (
        report["post_samples"] + report["residue"])
    assert (store.total_samples() + store.ledger["downsample_residue"]
            == pre_total == shipped)
    # Epoch 1 merged into epoch 0; epoch 2 stays full-res.
    assert store.epochs() == [0, 2]
    # Idempotent: the compacted window is recorded in the ledger.
    again = compact(store, policy)
    assert again["windows"] == []
    assert store.ledger["compactions"] == 1


def test_lossless_retention_keeps_every_sample(fleet_deltas, tmp_path):
    deltas, shipped = fleet_deltas
    store = _fill(str(tmp_path / "store"), deltas)
    report = compact(store, RetentionPolicy(keep_full=1, window=2,
                                            count_divisor=1))
    assert report["residue"] == 0
    assert store.total_samples() == shipped
    assert check_fleet_conservation(
        shipped=shipped, stored=store.total_samples()) == []


def test_retention_policy_parse_and_validation():
    policy = RetentionPolicy.parse("6:3:2")
    assert (policy.keep_full, policy.window, policy.count_divisor) \
        == (6, 3, 2)
    assert RetentionPolicy.parse("6").spec() == "6:4:1"
    assert RetentionPolicy.parse(policy.spec()) == policy
    with pytest.raises(ValueError):
        RetentionPolicy(keep_full=-1)
    with pytest.raises(ValueError):
        RetentionPolicy(window=0)
    with pytest.raises(ValueError):
        RetentionPolicy.parse("1:2:3:4")


# -- queries ----------------------------------------------------------------


def test_parse_epochs_forms():
    assert parse_epochs("1..3", [0, 1, 2, 3, 4]) == [1, 2, 3]
    assert parse_epochs("2", [0, 1, 2]) == [2]
    assert parse_epochs("all", [2, 0, 1]) == [0, 1, 2]
    assert parse_epochs(None, [1, 0]) == [0, 1]
    # Compacted-away interior epochs simply do not appear.
    assert parse_epochs("0..5", [0, 2, 5]) == [0, 2, 5]
    with pytest.raises(ValueError):
        parse_epochs("3..1", [1, 2, 3])


def test_top_and_timeseries_are_consistent(fleet_deltas, tmp_path):
    deltas, shipped = fleet_deltas
    store = _fill(str(tmp_path / "store"), deltas)
    query = FleetQuery(store)
    top = query.top()
    assert top["total_samples"] == store.total_samples(
        event=query.event)
    assert abs(sum(r["share"] for r in top["rows"]) - 1.0) < 1e-9
    # Shares are procedure-attributed via the shipped symbol tables.
    assert all(":" in row["name"] for row in top["rows"])
    series = query.timeseries(name=top["rows"][0]["name"])
    per_epoch = [point["rows"][top["rows"][0]["name"]]["samples"]
                 for point in series["series"].values()]
    assert sum(per_epoch) == top["rows"][0]["samples"]


def test_movers_significance_tracks_sampling_error(fleet_deltas, tmp_path):
    deltas, _ = fleet_deltas
    store = _fill(str(tmp_path / "store"), deltas)
    query = FleetQuery(store)
    movers = query.movers("0", "1..2")
    for row in movers["rows"]:
        # The bound is the z-scaled sqrt-count error of both shares.
        assert row["bound"] >= 0.0
        if row["significant"]:
            assert abs(row["delta"]) > row["bound"]
    # A huge z makes every bound unclearable: nothing is significant.
    strict = query.movers("0", "1..2", z=1e6)
    assert not any(row["significant"] for row in strict["rows"])
    # A min-share-delta floor above every delta silences them too.
    floored = query.movers("0", "1..2", z=0.0, min_share_delta=2.0)
    assert not any(row["significant"] for row in floored["rows"])


def test_regress_against_self_is_quiet(fleet_deltas, tmp_path):
    deltas, _ = fleet_deltas
    store = _fill(str(tmp_path / "store"), deltas)
    query = FleetQuery(store)
    baseline = query.baseline()
    report = query.regress(baseline=baseline)
    assert report["regressions"] == []


def test_regress_flags_inflated_share(fleet_deltas, tmp_path):
    """Deflating one procedure in the baseline makes today's share an
    increase -- regress must flag exactly when it is significant."""
    deltas, _ = fleet_deltas
    store = _fill(str(tmp_path / "store"), deltas)
    query = FleetQuery(store)
    baseline = query.baseline()
    hottest = max(baseline["samples"], key=baseline["samples"].get)
    removed = baseline["samples"][hottest] * 3 // 4
    baseline["samples"][hottest] -= removed
    baseline["total_samples"] -= removed
    report = query.regress(baseline=baseline)
    assert any(row["name"] == hottest for row in report["regressions"])
    # A share *decrease* of the same size is not a regression.
    inflated = query.baseline()
    inflated["samples"][hottest] += removed
    inflated["total_samples"] += removed
    report = query.regress(baseline=inflated)
    assert not any(row["name"] == hottest
                   for row in report["regressions"])


# -- determinism and the CLI ------------------------------------------------


def _run_cli(argv):
    out = io.StringIO()
    code = fleet_main(argv, out=out)
    return code, out.getvalue()


def test_cli_run_is_deterministic(tmp_path):
    reports = []
    for name in ("a", "b"):
        root = str(tmp_path / name)
        code, _ = _run_cli([
            "run", "--store", root, "--machines", "2", "--epochs", "2",
            "--seed", "9", "--epoch-instructions", str(BUDGET),
            "--json", os.path.join(root, "report.json")])
        assert code == 0
        with open(os.path.join(root, "report.json")) as handle:
            reports.append(json.load(handle))
        stores = FleetStore(root)
        reports[-1]["_bytes"] = sorted(
            (k, v) for k, v in _store_bytes(stores).items())
    assert reports[0] == reports[1]


def test_cli_query_output_is_deterministic(fleet_deltas, tmp_path):
    deltas, _ = fleet_deltas
    outputs = []
    for name in ("a", "b"):
        root = str(tmp_path / name)
        _fill(root, deltas)
        _, top = _run_cli(["top", "--store", root, "--json"])
        _, movers = _run_cli(["movers", "--store", root,
                              "--base-epochs", "0", "--epochs", "1..2",
                              "--json"])
        outputs.append(top + movers)
    assert outputs[0] == outputs[1]


def test_cli_regress_exit_codes(fleet_deltas, tmp_path):
    deltas, _ = fleet_deltas
    root = str(tmp_path / "store")
    _fill(root, deltas)
    baseline_path = str(tmp_path / "baseline.json")
    code, _ = _run_cli(["regress", "--store", root,
                        "--write-baseline", baseline_path])
    assert code == 0
    # Against its own baseline: quiet, exit 0.
    code, text = _run_cli(["regress", "--store", root,
                           "--baseline", baseline_path])
    assert code == 0
    assert "no significant share regressions" in text
    # Deflate the hottest procedure in the committed baseline: its
    # current share is now a significant increase -> exit 2.
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    hottest = max(baseline["samples"], key=baseline["samples"].get)
    removed = baseline["samples"][hottest] * 3 // 4
    baseline["samples"][hottest] -= removed
    baseline["total_samples"] -= removed
    with open(baseline_path, "w") as handle:
        json.dump(baseline, handle)
    code, text = _run_cli(["regress", "--store", root,
                           "--baseline", baseline_path])
    assert code == 2
    assert "REGRESSION" in text and hottest in text
    # Misuse: neither or both comparison sources -> exit 1.
    code, _ = _run_cli(["regress", "--store", root])
    assert code == 1


def test_cli_run_reports_conservation_findings(tmp_path):
    """A run whose invariant fails exits nonzero (the CI contract)."""
    root = str(tmp_path / "store")
    code, _ = _run_cli([
        "run", "--store", root, "--machines", "1", "--epochs", "1",
        "--seed", "2", "--epoch-instructions", str(BUDGET)])
    assert code == 0
    # Re-running a *different* fleet into the same store breaks the
    # books: the new session's delta ids collide with the committed
    # ones, so its (different) samples are deduped away and the
    # session's shipped total no longer balances -- the invariant
    # must catch it and the CLI must exit nonzero.
    code, text = _run_cli([
        "run", "--store", root, "--machines", "1", "--epochs", "1",
        "--seed", "3", "--epoch-instructions", str(BUDGET)])
    assert code == 1
    assert "fleet-conservation" in text
