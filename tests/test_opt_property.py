"""Property test: no repro.opt pass can change what a program computes.

Hypothesis composes random programs from the synthetic-workload
assembly generators (the same strategy family as the fast-path
differential test), profiles each one, runs every subset of the
optimizer's passes over the profile, and requires, for every rewrite:

* the oracle proves architectural identity (registers, memory, exit
  state -- modulo the code-address translation), or the rewrite bailed
  and the program ran untouched;
* the rewritten image introduces zero new non-INFO Layer-1 findings
  over the baseline image's budget.

Speedup is *not* asserted here -- random programs owe us nothing --
only that the optimizer's contract ("only performance changes") holds
on programs it was never tuned for.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.alpha.assembler import assemble
from repro.opt import OptConfig, optimize_workload
from repro.workloads.asmgen import caller_proc, loop_proc
from repro.workloads.base import Workload

FLAVORS = ("int", "mem", "fp", "branchy", "stream")

PASS_SUBSETS = (
    OptConfig(layout=True, schedule=False, split=False),
    OptConfig(layout=False, schedule=True, split=False),
    OptConfig(layout=False, schedule=False, split=True),
    OptConfig(layout=True, schedule=True, split=True),
)


@st.composite
def programs(draw):
    """One assembly image: a few leaf loops plus a caller."""
    count = draw(st.integers(min_value=1, max_value=3))
    needs_buf = False
    procs = []
    for index in range(count):
        flavor = draw(st.sampled_from(FLAVORS))
        iters = draw(st.integers(min_value=1, max_value=96))
        kwargs = {}
        if flavor in ("mem", "stream"):
            needs_buf = True
            kwargs["buf"] = "heap"
            kwargs["wrap"] = draw(st.sampled_from((16, 64, 256)))
            kwargs["stride"] = draw(st.sampled_from((8, 16)))
            if flavor == "stream":
                iters = min(iters, 60)
        procs.append(loop_proc("leaf%d" % index, iters, flavor,
                               **kwargs))
    rounds = draw(st.integers(min_value=1, max_value=3))
    procs.append(caller_proc(
        "main", ["leaf%d" % i for i in range(count)], rounds=rounds))
    data = ".data heap, 4096\n" if needs_buf else ""
    return ".image t\n%s%s" % (data, "".join(procs))


class GeneratedWorkload(Workload):
    """Wrap one generated program as a registry-shaped workload."""

    name = "hypothesis-opt"
    num_cpus = 1

    def __init__(self, text):
        self.text = text

    def setup(self, machine):
        image = assemble(self.text)
        machine.spawn(image, entry="t:main", name=self.name)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs(), st.sampled_from(PASS_SUBSETS))
def test_any_pass_preserves_the_program(text, config):
    report = optimize_workload(GeneratedWorkload(text),
                               max_instructions=40_000,
                               opt_config=config)
    # Identity holds whether the rewrite applied or bailed; bailing is
    # a legal outcome, corruption never is.
    assert report.oracle.identical, report.oracle.mismatches
    # Zero new non-INFO Layer-1 findings on every rewritten image.
    assert not any(report.findings.values()), report.findings
    # And the accounting is consistent: a reported speedup implies the
    # verified path was taken.
    if report.speedup:
        assert report.accepted
