"""Unit tests for the assembly generators and workload internals."""

import pytest

from repro.alpha.assembler import assemble
from repro.cpu.config import MachineConfig
from repro.cpu.machine import Machine
from repro.workloads.asmgen import caller_proc, loop_proc
from repro.workloads.bigcode import BigCode, straightline_proc


def run_proc(text, data="", entry=None):
    machine = Machine(MachineConfig(), seed=1)
    image = machine.load_image(assemble(".image t\n%s%s" % (data, text)))
    machine.spawn(image, entry=entry)
    machine.run(max_instructions=500_000)
    return machine, image


class TestLoopProc:
    def test_int_flavor_iterates_exactly(self):
        machine, image = run_proc(loop_proc("work", 37, "int"))
        loop_head = None
        # The counter increment executes once per iteration.
        for inst in image.instructions:
            if inst.op == "addq" and inst.imm == 1:
                loop_head = inst
                break
        assert machine.gt_count[loop_head.addr] == 37

    def test_mem_flavor_stays_in_buffer(self):
        text = loop_proc("sweep", 5000, "mem", buf="heap", wrap=64,
                         stride=8)
        machine, image = run_proc(text, data=".data heap, 1024\n")
        base = image.symbols.resolve("heap")
        touched = [addr for addr in machine.processes[0].memory
                   if base <= addr < base + 4096]
        assert touched
        assert max(touched) < base + 64 * 8

    def test_fp_flavor_uses_float_units(self):
        machine, image = run_proc(loop_proc("fp", 10, "fp"))
        assert any(inst.info.cls in ("FADD", "FMUL")
                   for inst in image.instructions)
        assert machine.processes[0].exited

    def test_branchy_flavor_mispredicts(self):
        machine, image = run_proc(loop_proc("br", 500, "branchy"))
        assert machine.cores[0].bp.mispredictions > 20

    def test_stream_flavor_copies(self):
        text = loop_proc("cp", 64, "stream", buf="heap", wrap=256,
                         stride=8)
        machine, image = run_proc(text, data=".data heap, 4096\n")
        assert machine.processes[0].exited

    def test_unknown_flavor_rejected(self):
        with pytest.raises(ValueError):
            loop_proc("x", 10, "quantum")

    def test_mem_needs_buffer(self):
        with pytest.raises(ValueError):
            loop_proc("x", 10, "mem")


class TestCallerProc:
    def test_rounds_multiply_callee_executions(self):
        text = (loop_proc("leaf", 10, "int")
                + caller_proc("main", ["leaf", "leaf"], rounds=5))
        machine, image = run_proc(text, entry="t:main")
        leaf_entry = image.procedure("leaf").start
        assert machine.gt_count[leaf_entry] == 10

    def test_counter_survives_callee_clobbering(self):
        # Callees that use s0-s3 (like generated procedures) must not
        # break the caller's round counter (regression test).
        clobber = """
.proc clobber
    lda s0, 1(zero)
    lda s1, 1(zero)
    lda s2, 1(zero)
    lda s3, 1(zero)
    ret
.end
"""
        text = clobber + caller_proc("main", ["clobber"], rounds=7)
        machine, image = run_proc(text, entry="t:main")
        assert machine.gt_count[image.procedure("clobber").start] == 7

    def test_nested_callers(self):
        text = (loop_proc("leaf", 3, "int")
                + caller_proc("inner", ["leaf"], rounds=2)
                + caller_proc("outer", ["inner"], rounds=3))
        machine, image = run_proc(text, entry="t:outer")
        # s5 is callee-saved, so nesting works: leaf runs 3 * 2 times.
        assert machine.processes[0].exited
        assert machine.gt_count[image.procedure("leaf").start] == 6


class TestBigCode:
    def test_straightline_proc_size(self):
        import random

        text = ".image t\n" + straightline_proc("big", 200,
                                                random.Random(1))
        image = assemble(text)
        assert len(image.instructions) == 201  # + ret

    def test_code_exceeds_icache(self):
        workload = BigCode(procedures=10, min_insts=300, max_insts=600,
                           rounds=2)
        machine = Machine(MachineConfig(), seed=1)
        workload.setup(machine)
        image = machine.processes[0].images[0]
        assert image.code_size > 8192  # larger than L1 I-cache

    def test_generates_imiss_events(self):
        from repro.cpu.events import EventType

        workload = BigCode(procedures=10, min_insts=300, max_insts=600,
                           rounds=3)
        machine = Machine(MachineConfig(), seed=1)
        workload.setup(machine)
        machine.run(max_instructions=100_000)
        imisses = sum(row.get(EventType.IMISS, 0)
                      for row in machine.gt_events.values())
        assert imisses > 1000
