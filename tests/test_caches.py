"""Tests for the cache models."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.cpu.caches import Cache, Hierarchy
from repro.cpu.config import CacheConfig


def make_cache(size=1024, line=32, assoc=1, latency=2):
    return Cache(CacheConfig(size, line, assoc, latency))


class TestDirectMapped:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert cache.lookup(0x100) is False
        assert cache.lookup(0x100) is True

    def test_same_line_hits(self):
        cache = make_cache(line=32)
        cache.lookup(0x100)
        assert cache.lookup(0x11F) is True  # same 32-byte line

    def test_adjacent_line_misses(self):
        cache = make_cache(line=32)
        cache.lookup(0x100)
        assert cache.lookup(0x120) is False

    def test_conflict_eviction(self):
        cache = make_cache(size=1024, line=32)  # 32 sets
        cache.lookup(0x0)
        cache.lookup(0x0 + 1024)  # same set, different tag
        assert cache.lookup(0x0) is False

    def test_no_allocate_leaves_cache_unchanged(self):
        cache = make_cache()
        cache.lookup(0x40, allocate=False)
        assert cache.contains(0x40) is False

    def test_flush(self):
        cache = make_cache()
        cache.lookup(0x100)
        cache.flush()
        assert cache.contains(0x100) is False

    def test_stats(self):
        cache = make_cache()
        cache.lookup(0)
        cache.lookup(0)
        cache.lookup(4096)
        assert cache.hits == 1
        assert cache.misses == 2

    def test_bad_line_size_rejected(self):
        with pytest.raises(ValueError):
            make_cache(line=48)


class TestSetAssociative:
    def test_ways_avoid_conflict(self):
        cache = make_cache(size=2048, line=32, assoc=2)  # 32 sets
        span = 32 * 32
        cache.lookup(0)
        cache.lookup(span)
        assert cache.lookup(0) is True
        assert cache.lookup(span) is True

    def test_lru_eviction_order(self):
        cache = make_cache(size=2048, line=32, assoc=2)
        span = 32 * 32
        cache.lookup(0)          # A
        cache.lookup(span)       # B
        cache.lookup(0)          # touch A -> B is LRU
        cache.lookup(2 * span)   # evicts B
        assert cache.contains(0) is True
        assert cache.contains(span) is False

    def test_three_way_modulo_indexing(self):
        # 96KB 3-way with 64B lines: 512 sets (power of two here, but
        # exercise the modulo path with a non-power-of-two set count).
        cache = Cache(CacheConfig(96 * 1024, 64, 4, 8))
        assert cache.num_sets == 384
        for addr in range(0, 96 * 1024, 64):
            cache.lookup(addr)
        hits = sum(cache.lookup(addr)
                   for addr in range(0, 96 * 1024, 64))
        assert hits == 96 * 1024 // 64  # everything fits

    def test_evict_random(self):
        cache = make_cache(size=2048, line=32, assoc=2)
        cache.lookup(0)
        rng = random.Random(0)
        cache.evict_random(rng, 200)
        assert cache.contains(0) is False


class TestHierarchy:
    def make(self):
        l1 = make_cache(size=256, line=32, assoc=1, latency=2)
        l2 = make_cache(size=1024, line=32, assoc=2, latency=8)
        board = make_cache(size=4096, line=32, assoc=1, latency=20)
        return Hierarchy(l1, l2, board, memory_latency=60)

    def test_full_miss_latency(self):
        h = self.make()
        latency, missed = h.access(0x100)
        assert missed is True
        assert latency == 2 + 8 + 20 + 60

    def test_l1_hit_latency(self):
        h = self.make()
        h.access(0x100)
        latency, missed = h.access(0x100)
        assert missed is False
        assert latency == 2

    def test_l2_hit_after_l1_conflict(self):
        h = self.make()
        h.access(0x0)
        h.access(0x0 + 256)  # evicts L1 line, both now in L2
        latency, missed = h.access(0x0)
        assert missed is True
        assert latency == 2 + 8

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=60))
    def test_latency_always_bounded(self, addrs):
        h = self.make()
        for addr in addrs:
            latency, _ = h.access(addr)
            assert 2 <= latency <= 90
