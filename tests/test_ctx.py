"""The request-context dimension (repro.ctx).

The two load-bearing guarantees:

* disabled (the default) is *zero-cost and byte-identical*: a session
  with ``context=False`` produces a database byte-for-byte equal to
  one whose workload never heard of contexts;
* enabled, attribution is exact and durable: every sample lands in
  its request class, the ledger commits atomically with the samples,
  survives crash recovery, and merges order-independently.
"""

import hashlib
import json
import os

import pytest

from repro.collect.hashtable import SampleHashTable
from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.ctx import (NULL_CTX, OTHER_CLASS, OTHER_ID, ContextLedger,
                       ContextTable, canonical_ledger_bytes,
                       merge_ledger_meta, span_id)
from repro.faults.injector import FaultPlan, FaultSpec
from repro.workloads.asmgen import caller_proc, loop_proc

BUDGET = 30_000


def _server_image():
    from repro.alpha.assembler import assemble

    text = ".image srv\n.data heap, 65536\n"
    text += loop_proc("fast_path", 40, "int")
    text += loop_proc("slow_path", 40, "mem", buf="heap", wrap=1024,
                      stride=32)
    text += caller_proc("serve", ["fast_path", "slow_path"], rounds=3)
    return assemble(text, image_name="srv")


def _workload(ctx_labels=True):
    """Two request classes plus one unlabeled background process."""

    def setup(machine):
        image = machine.load_image(_server_image())
        for index in range(2):
            machine.spawn(image, entry="srv:serve",
                          name="api.%d" % index,
                          **({"ctx": "req.api"} if ctx_labels else {}))
        machine.spawn(image, entry="srv:serve", name="batch.0",
                      **({"ctx": "req.batch"} if ctx_labels else {}))
        machine.spawn(image, entry="srv:serve", name="bg.0")

    return setup


def _session(tmp_path=None, context=True, **overrides):
    config = SessionConfig(context=context, seed=5,
                           db_root=(str(tmp_path) if tmp_path else None),
                           **overrides)
    return ProfileSession(MachineConfig(num_cpus=2), config)


def _tree_digest(root):
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()


# -- the context table (fixed slots, paper-style accounting) ---------------


class TestContextTable:
    def test_intern_issues_monotonic_ids(self):
        table = ContextTable(slots=4)
        a = table.intern("req.a")
        b = table.intern("req.b")
        assert a == OTHER_ID + 1
        assert b == a + 1
        assert table.intern("req.a") == a  # hit
        assert table.hits == 1
        assert table.interns == 2

    def test_id_zero_is_reserved_for_other(self):
        table = ContextTable(slots=4)
        assert table.names[OTHER_ID] == OTHER_CLASS
        assert table.intern("req.a") != OTHER_ID

    def test_eviction_accounts_and_never_reuses_ids(self):
        table = ContextTable(slots=2)
        issued = {table.intern("req.%d" % n) for n in range(5)}
        assert len(issued) == 5  # ids are never reused
        assert table.evictions == 3
        assert table.resident == 2
        # A re-interned evicted class gets a *fresh* id: thrash costs
        # ids and accounted evictions, never aliased attribution.
        again = table.intern("req.0")
        assert again not in issued

    def test_names_remember_evicted_classes(self):
        table = ContextTable(slots=1)
        a = table.intern("req.a")
        b = table.intern("req.b")
        assert table.names[a] == "req.a"
        assert table.names[b] == "req.b"

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            ContextTable(slots=0)

    def test_stats_shape(self):
        table = ContextTable(slots=8)
        table.intern("x")
        stats = table.stats()
        assert stats["slots"] == 8
        assert stats["resident"] == 1
        assert stats["interns"] == 1


def test_span_id_is_a_pure_function_of_the_name():
    assert span_id("req.api") == span_id("req.api")
    assert span_id("req.api") != span_id("req.batch")
    assert len(span_id("anything")) == 8
    int(span_id("anything"), 16)  # hex


# -- the hash table's context key --------------------------------------------


class TestHashtableCtxKey:
    def test_default_keys_stay_three_tuples(self):
        table = SampleHashTable()
        table.record(1, 0x1000, 0)
        assert dict(table.flush()) == {(1, 0x1000, 0): 1}

    def test_ctx_widens_the_key(self):
        table = SampleHashTable()
        table.record(1, 0x1000, 0, ctx=3)
        assert dict(table.flush()) == {(1, 0x1000, 0, 3): 1}

    def test_distinct_contexts_do_not_merge(self):
        table = SampleHashTable()
        for ctx in (1, 2, 1):
            table.record(7, 0x2000, 0, ctx=ctx)
        counts = dict(table.flush())
        assert counts[(7, 0x2000, 0, 1)] == 2
        assert counts[(7, 0x2000, 0, 2)] == 1


# -- end-to-end attribution ---------------------------------------------------


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def result(self):
        return _session().run(_workload(), max_instructions=BUDGET)

    def test_samples_attribute_to_classes(self, result):
        ledger = result.ctx_ledger
        assert set(ledger.classes) >= {"req.api", "req.batch"}
        assert all(sum(by_event.values()) > 0
                   for by_event in ledger.classes.values())

    def test_unlabeled_process_lands_in_other(self, result):
        ledger = result.ctx_ledger
        assert OTHER_CLASS in ledger.classes
        # <other> is the reserved id, not an unknown one.
        assert ledger.other_samples == 0

    def test_requests_fold_with_os_accounting(self, result):
        ledger = result.ctx_ledger
        api = ledger.requests["req.api"]
        assert len(api) == 2
        for entry in api.values():
            assert entry["cycles"] > 0
            assert entry["instructions"] > 0
        assert len(ledger.requests["req.batch"]) == 1
        assert len(ledger.requests[OTHER_CLASS]) == 1

    def test_culprits_name_real_procedures(self, result):
        culprits = result.ctx_ledger.culprits
        procedures = {proc for by_proc in culprits.values()
                      for proc in by_proc}
        assert any(proc.startswith("srv:") for proc in procedures)

    def test_driver_table_snapshot_is_absorbed(self, result):
        ledger = result.ctx_ledger
        assert ledger.table_slots == 64
        assert ledger.table_interns == 2
        assert ledger.ids["1"] in ("req.api", "req.batch")

    def test_attribution_is_deterministic(self):
        first = _session().run(_workload(), max_instructions=BUDGET)
        second = _session().run(_workload(), max_instructions=BUDGET)
        assert canonical_ledger_bytes(
            first.ctx_ledger) == canonical_ledger_bytes(
                second.ctx_ledger)

    def test_ctx_off_has_no_ledger(self):
        result = _session(context=False).run(_workload(),
                                             max_instructions=BUDGET)
        assert result.ctx_ledger is None


# -- persistence: atomic commit, recovery, epochs ----------------------------


class TestPersistence:
    def test_ledger_commits_with_the_manifest(self, tmp_path):
        result = _session(tmp_path / "db").run(_workload(),
                                               max_instructions=BUDGET)
        manifest = json.load(open(tmp_path / "db" / "MANIFEST.json"))
        blob = manifest["ctx"]
        assert blob["schema"] == 1
        meta = blob["epochs"]["0000"]
        assert meta == result.ctx_ledger.to_meta()

    def test_ctx_off_manifest_has_no_ctx_key(self, tmp_path):
        _session(tmp_path / "db", context=False).run(
            _workload(), max_instructions=BUDGET)
        manifest = json.load(open(tmp_path / "db" / "MANIFEST.json"))
        assert "ctx" not in manifest

    def test_from_meta_round_trips(self, tmp_path):
        result = _session(tmp_path / "db").run(_workload(),
                                               max_instructions=BUDGET)
        meta = result.ctx_ledger.to_meta()
        assert ContextLedger.from_meta(meta).to_meta() == meta

    def test_from_meta_rejects_newer_schema(self):
        with pytest.raises(ValueError):
            ContextLedger.from_meta({"schema": 99})

    def test_crash_recovery_preserves_attribution(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec("daemon.drain.merge", "crash", hits=(2,)),),
            seed=1)
        faulted = _session(tmp_path / "crash", faults=plan,
                           checkpoint_drains=1).run(
            _workload(), max_instructions=BUDGET)
        clean = _session(tmp_path / "clean", checkpoint_drains=1).run(
            _workload(), max_instructions=BUDGET)
        assert faulted.daemon.recoveries >= 1
        assert canonical_ledger_bytes(
            faulted.ctx_ledger) == canonical_ledger_bytes(
                clean.ctx_ledger)

    def test_epoch_advance_closes_the_ledger(self, tmp_path):
        session = _session(tmp_path / "db")
        result = session.run(_workload(), max_instructions=BUDGET)
        daemon, database = result.daemon, result.database
        closed = daemon.ctx.to_meta()
        daemon.advance_epoch()
        assert daemon.ctx.to_meta() == ContextLedger().to_meta()
        daemon.merge_to_disk(database)
        blob = database.get_meta("ctx")
        assert blob["epochs"]["0000"] == closed
        assert "0001" in blob["epochs"]


# -- disabled-path byte identity ---------------------------------------------


class TestDisabledByteIdentity:
    def test_ctx_labels_cost_nothing_when_disabled(self, tmp_path):
        """ctx= spawn labels with context=False leave the database
        byte-identical to a run whose workload has no labels at all
        (the pre-context pipeline, dcpiab-style)."""
        _session(tmp_path / "labeled", context=False).run(
            _workload(ctx_labels=True), max_instructions=BUDGET)
        _session(tmp_path / "plain", context=False).run(
            _workload(ctx_labels=False), max_instructions=BUDGET)
        assert _tree_digest(tmp_path / "labeled") == _tree_digest(
            tmp_path / "plain")

    def test_enabled_run_does_not_perturb_the_machine(self, tmp_path):
        """The context dimension observes; it must never change the
        simulated machine's instruction stream or cycle count."""
        on = _session(tmp_path / "on", context=True).run(
            _workload(), max_instructions=BUDGET)
        off = _session(tmp_path / "off", context=False).run(
            _workload(), max_instructions=BUDGET)
        assert on.cycles == off.cycles
        assert on.instructions == off.instructions


# -- ledger merge algebra -----------------------------------------------------


class TestLedgerMerge:
    def _meta(self, name, samples, key="1:100", cycles=10):
        ledger = ContextLedger()
        ledger.bind(1, name)
        ledger.add_sample(1, EventType.CYCLES, samples)
        ledger.add_request(name, key, cycles, cycles * 2)
        return ledger.to_meta()

    def test_counts_sum_and_requests_union(self):
        merged = merge_ledger_meta([self._meta("a", 3, key="1:100"),
                                    self._meta("a", 4, key="2:100")])
        assert merged["classes"]["a"][str(EventType.CYCLES.value)] == 7
        assert len(merged["requests"]["a"]) == 2

    def test_duplicate_shard_is_idempotent_on_requests(self):
        meta = self._meta("a", 3)
        merged = merge_ledger_meta([meta, meta])
        assert len(merged["requests"]["a"]) == 1
        assert merged["requests"]["a"]["1:100"]["cycles"] == 10

    def test_merge_drops_per_run_ids(self):
        meta = self._meta("a", 3)
        merged = merge_ledger_meta([meta])
        assert merged["ids"] == {str(OTHER_ID): OTHER_CLASS}

    def test_unknown_id_samples_land_in_other(self):
        ledger = ContextLedger()
        assert ledger.add_sample(42, EventType.CYCLES, 5) == OTHER_CLASS
        assert ledger.other_samples == 5


# -- ctx-slot thrash: attribution survives a tiny table ----------------------


def test_slot_thrash_accounts_evictions_without_aliasing():
    result = _session(ctx_slots=1).run(_workload(),
                                       max_instructions=BUDGET)
    ledger = result.ctx_ledger
    assert ledger.table_slots == 1
    assert ledger.table_evictions >= 1
    # Every sample still lands in a *named* class -- evicted classes
    # re-intern under fresh ids, they are never aliased.
    assert ledger.other_samples == 0
    assert set(ledger.classes) >= {"req.api", "req.batch"}


def test_null_ctx_publish_keeps_the_other_register():
    result = _session().run(_workload(), max_instructions=BUDGET)
    table = result.driver.ctx_table
    # Only the two labeled classes were interned; NULL_CTX processes
    # ride the reserved register, guarded by the lint-enforced
    # 'is not NULL_CTX' pattern.
    assert table.interns == 2
    assert not NULL_CTX  # falsy sentinel, compared with 'is'
