"""Tests for the command-line entry points."""

import pytest

from repro.tools.cli import (main_dcpicalc, main_dcpid, main_dcpiprof,
                             main_dcpistats)


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "session")
    rc = main_dcpid(["--workload", "mccalpin", "--out", path,
                     "--max-instructions", "60000", "--period", "128"])
    assert rc == 0
    return path


class TestDcpid:
    def test_creates_bundle_layout(self, bundle):
        import os

        assert os.path.exists(os.path.join(bundle, "images.json"))
        assert os.path.exists(os.path.join(bundle, "meta.json"))
        assert os.path.isdir(os.path.join(bundle, "db"))

    def test_unknown_workload_exits_nonzero(self, tmp_path):
        with pytest.raises((KeyError, SystemExit)):
            main_dcpid(["--workload", "quake3",
                        "--out", str(tmp_path / "x")])


class TestDcpiprofCli:
    def test_lists_procedures(self, bundle, capsys):
        assert main_dcpiprof([bundle]) == 0
        out = capsys.readouterr().out
        assert "assign" in out
        assert "Total samples" in out

    def test_limit_flag(self, bundle, capsys):
        assert main_dcpiprof([bundle, "--limit", "1"]) == 0


class TestDcpicalcCli:
    def test_renders_listing(self, bundle, capsys):
        assert main_dcpicalc([bundle, "--procedure", "assign"]) == 0
        out = capsys.readouterr().out
        assert "Best-case" in out
        assert "ldq" in out

    def test_missing_procedure_fails(self, bundle, capsys):
        assert main_dcpicalc([bundle, "--procedure", "nosuch"]) == 1


class TestDcpistatsCli:
    def test_multiple_bundles(self, bundle, tmp_path, capsys):
        other = str(tmp_path / "second")
        main_dcpid(["--workload", "mccalpin", "--out", other,
                    "--max-instructions", "60000", "--seed", "5",
                    "--period", "128"])
        assert main_dcpistats([bundle, other]) == 0
        out = capsys.readouterr().out
        assert "range%" in out
        assert "set 1" in out and "set 2" in out


class TestDcpixCli:
    def test_block_counts(self, bundle, capsys):
        from repro.tools.cli import main_dcpix

        assert main_dcpix([bundle, "--image", "mccalpin"]) == 0
        out = capsys.readouterr().out
        assert "# dcpix" in out

    def test_unknown_image(self, bundle):
        from repro.tools.cli import main_dcpix

        assert main_dcpix([bundle, "--image", "nosuch"]) == 1


class TestDcpicfgCli:
    def test_dot_output(self, bundle, capsys):
        from repro.tools.cli import main_dcpicfg

        assert main_dcpicfg([bundle, "--procedure", "assign"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_unknown_procedure(self, bundle):
        from repro.tools.cli import main_dcpicfg

        assert main_dcpicfg([bundle, "--procedure", "nosuch"]) == 1
