"""Tests for the Table 1 baseline profilers."""

import pytest

from repro.alpha.assembler import assemble
from repro.baselines import (ClockProfiler, GprofProfiler, IprobeProfiler,
                             PixieProfiler)
from repro.baselines.instrument import (COUNTER_SYMBOL, instrument_image,
                                        read_counts)
from repro.cpu.config import MachineConfig
from repro.cpu.machine import Machine
from repro.workloads import mccalpin

LOOPY = """
.image loopy
.data buf, 1024
.proc main
    lda t0, 50(zero)
top:
    and t0, 1, t2
    beq t2, skip
    addq t3, 1, t3
skip:
    subq t0, 1, t0
    bgt t0, top
    ret
.end
"""


class TestInstrumentation:
    def test_rewritten_image_bigger(self):
        image = assemble(LOOPY)
        new, block_map = instrument_image(image)
        assert len(new.instructions) > len(image.instructions)
        # Leaders: entry, loop head, taken arm, join, and the ret after
        # the loop-back branch.
        assert len(block_map) == 5

    def test_counts_match_ground_truth(self):
        machine = Machine(MachineConfig(), seed=1)
        new, block_map = instrument_image(assemble(LOOPY))
        machine.load_image(new)
        proc = machine.spawn(new)
        machine.run()
        counts = read_counts(proc, new, block_map)
        # The simulator's own ground truth for the same run: the count
        # of each block equals the count of its first real instruction
        # (which sits right after the 4-instruction preamble).
        for addr, count in counts.items():
            first_real = addr + 16
            assert machine.gt_count[first_real] == count

    def test_rewritten_program_computes_same_result(self):
        plain = Machine(MachineConfig(), seed=1)
        image = plain.load_image(assemble(LOOPY))
        p1 = plain.spawn(image)
        plain.run()

        instrumented = Machine(MachineConfig(), seed=1)
        new, _ = instrument_image(assemble(LOOPY))
        instrumented.load_image(new)
        p2 = instrumented.spawn(new)
        instrumented.run()
        # t3 counts the taken-arm executions in both runs.
        assert p1.iregs[4] == p2.iregs[4]

    def test_procedures_only_mode(self):
        image = assemble(LOOPY)
        new, block_map = instrument_image(image, procedures_only=True)
        assert len(block_map) == 1

    def test_counter_symbol_reserved(self):
        new, _ = instrument_image(assemble(LOOPY))
        assert COUNTER_SYMBOL in new.symbols

    def test_linked_image_rejected(self):
        with pytest.raises(ValueError):
            instrument_image(assemble(LOOPY, base=0x1000))


class TestProfilers:
    @pytest.fixture(scope="class")
    def workload(self):
        return mccalpin.build("assign", n=1024, iterations=2)

    def test_pixie_overhead_positive_exact_counts(self, workload):
        result = PixieProfiler(MachineConfig()).profile(workload)
        assert result.overhead > 0.01
        counts = result.data["block_counts"]
        # The unrolled loop block runs n/4 * iterations times.
        assert max(counts.values()) == 512

    def test_prof_low_overhead(self, workload):
        result = ClockProfiler(MachineConfig()).profile(workload)
        assert result.overhead < 0.02
        assert result.data["histogram"]

    def test_prof_scope_is_app_only(self):
        result = ClockProfiler(MachineConfig()).profile(
            mccalpin.build("assign", n=1024, iterations=2))
        assert result.scope == "App"

    def test_gprof_counts_calls(self, workload):
        result = GprofProfiler(MachineConfig()).profile(workload)
        calls = result.data["call_counts"]
        assert calls[("assign", "mccalpin")] == 1

    def test_iprobe_memory_grows_linearly(self, workload):
        result = IprobeProfiler(MachineConfig()).profile(workload)
        assert result.data["buffer_bytes"] == result.data["samples"] * 16
        assert result.data["bytes_per_mcycle"] > 0

    def test_rows_have_table1_columns(self, workload):
        result = ClockProfiler(MachineConfig()).profile(workload)
        row = result.row()
        assert set(row) == {"system", "overhead_pct", "scope", "grain",
                            "stalls"}
