"""Tests for the SPEC-like workload suites."""

from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.cpu.machine import Machine
from repro.workloads import specfp, specint


def run_profiled(workload, max_instructions=100_000):
    session = ProfileSession(
        MachineConfig(num_cpus=workload.num_cpus),
        SessionConfig(cycles_period=(200, 256), event_period=64))
    return session.run(workload, max_instructions=max_instructions)


class TestSpecInt:
    def test_all_components_execute(self):
        machine = Machine(MachineConfig(), seed=1)
        specint.build(scale=5).setup(machine)
        machine.run()
        assert machine.processes[0].exited
        image = machine.processes[0].images[0]
        for name in ("compress_", "li_", "perl_", "ijpeg_", "vortex_"):
            entry = image.procedure(name).start
            assert machine.gt_count[entry] == 3  # runspec rounds

    def test_li_is_memory_bound(self):
        result = run_profiled(specint.build(scale=60))
        image = result.daemon.images["specint95"]
        profile = result.profile_for("specint95")
        from repro.core import analyze_procedure

        analysis = analyze_procedure(image, "li_", profile)
        # Pointer chasing: the chase load (ldq t2, 0(t2)) waits on its
        # own previous result every iteration, so its per-instruction
        # CPI reflects at least the load-use latency.  (The procedure-
        # wide CPI is diluted by the cheap list-initialization loop.)
        chase = next(row for row in analysis.instructions
                     if row.inst.op == "ldq"
                     and row.inst.ra == row.inst.rb)
        assert chase.cpi > 1.5

    def test_compress_is_compute_bound(self):
        result = run_profiled(specint.build(scale=60))
        image = result.daemon.images["specint95"]
        profile = result.profile_for("specint95")
        from repro.core import analyze_procedure

        analysis = analyze_procedure(image, "compress_", profile)
        assert analysis.actual_cpi < 2.0


class TestSpecFp:
    def test_terminates(self):
        machine = Machine(MachineConfig(), seed=1)
        specfp.build(scale=4).setup(machine)
        machine.run()
        assert machine.processes[0].exited

    def test_su2cor_exercises_fdiv(self):
        machine = Machine(MachineConfig(), seed=1)
        specfp.build(scale=8).setup(machine)
        machine.run(max_instructions=200_000)
        image = machine.processes[0].images[0]
        divt = next(i for i in image.instructions if i.op == "divt")
        assert machine.gt_count.get(divt.addr, 0) > 0

    def test_parallel_variant_spreads_over_cpus(self):
        workload = specfp.build(scale=10, parallel=True)
        assert workload.num_cpus == 4
        result = run_profiled(workload, max_instructions=120_000)
        busy = [c.instructions_retired for c in result.machine.cores]
        assert all(b > 0 for b in busy)

    def test_profiles_name_the_fortran_procedures(self):
        result = run_profiled(specfp.build(scale=30))
        totals = result.profile_for("specfp95").procedure_totals(
            EventType.CYCLES)
        assert totals["swim_"] > 0
        assert totals["tomcatv_"] > 0


class TestRegistryIntegration:
    def test_spec_names_registered(self):
        from repro.workloads.registry import WORKLOADS, get_workload

        assert "specint95" in WORKLOADS
        assert "specfp95" in WORKLOADS
        assert get_workload("parallel-specfp").num_cpus == 4
