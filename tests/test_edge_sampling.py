"""Tests for the section 7 double-sampling (edge samples) prototype."""

import pytest

from repro.alpha.assembler import assemble
from repro.collect.session import ProfileSession, SessionConfig
from repro.core.cfg import build_cfg
from repro.core.frequency import estimate_frequencies
from repro.core.schedule import schedule_cfg
from repro.cpu.config import MachineConfig

LOOP = """
.image edgy
.proc main
    lda t0, 3000(zero)
top:
    and t0, 3, t1
    beq t1, skip
    addq t2, 1, t2
skip:
    subq t0, 1, t0
    bgt t0, top
    ret
.end
"""


def run_session(edge_sampling=True):
    session = ProfileSession(
        MachineConfig(),
        SessionConfig(mode="cycles", cycles_period=(60, 64),
                      event_period=64, edge_sampling=edge_sampling,
                      charge_overhead=False))

    def workload(machine):
        machine.spawn(assemble(LOOP), name="edgy")

    return session.run(workload)


class TestCollection:
    def test_edge_samples_collected(self):
        result = run_session()
        assert result.driver.stats()["edge_samples"] > 50
        profile = result.profile_for("edgy")
        assert profile.edge_counts

    def test_disabled_by_default(self):
        result = run_session(edge_sampling=False)
        assert result.driver.stats()["edge_samples"] == 0
        assert not result.profile_for("edgy").edge_counts

    def test_edges_are_plausible_control_flow(self):
        result = run_session()
        image = result.daemon.images["edgy"]
        profile = result.profile_for("edgy")
        for (from_off, to_off), count in profile.edge_counts.items():
            inst = image.instruction_at(image.base + from_off)
            if not inst.is_control:
                # Straight-line pair: to must be from + 4.
                assert to_off == from_off + 4

    def test_branch_ratio_matches_truth(self):
        result = run_session()
        image = result.daemon.images["edgy"]
        profile = result.profile_for("edgy")
        beq = next(i for i in image.instructions if i.op == "beq")
        edges = profile.edges_by_addr()
        taken = edges.get((beq.addr, beq.target), 0)
        fall = edges.get((beq.addr, beq.addr + 4), 0)
        if taken + fall >= 30:
            ratio = taken / (taken + fall)
            # True ratio: t0 % 4 == 0 a quarter of the time.
            assert ratio == pytest.approx(0.25, abs=0.15)

    def test_edge_cost_charged(self):
        def cycles(on):
            session = ProfileSession(
                MachineConfig(),
                SessionConfig(mode="cycles", cycles_period=(240, 256),
                              edge_sampling=on))

            def workload(machine):
                machine.spawn(assemble(LOOP), name="edgy")

            return session.run(workload).cycles
        assert cycles(True) > cycles(False)


class TestFrequencyIntegration:
    DIAMOND = """
.image d
.proc main
    lda t0, 400(zero)
head:
    and t0, 1, t1
    beq t1, else_
    nop
    br join
else_:
    nop
join:
    subq t0, 1, t0
    bgt t0, head
    ret
.end
"""

    def _setup(self):
        image = assemble(self.DIAMOND, base=0x1000)
        proc = image.procedure("main")
        cfg = build_cfg(proc)
        schedules = schedule_cfg(cfg)
        # Samples on head and join only: the two arms stay unknown to
        # pure flow propagation (one equation, two unknowns).
        samples = {0x1004: 100, 0x1008: 100, 0x1018: 100, 0x101C: 100}
        return cfg, schedules, samples

    def test_arms_unknown_without_edge_samples(self):
        cfg, schedules, samples = self._setup()
        freq = estimate_frequencies(cfg, schedules, samples, 100.0)
        then_block = cfg.block_at(0x100C)
        assert freq.block_count(then_block.index) == 0.0

    def test_edge_samples_resolve_the_split(self):
        cfg, schedules, samples = self._setup()
        beq_addr = 0x1008
        else_addr = 0x1014
        edge_samples = {(beq_addr, else_addr): 30,
                        (beq_addr, beq_addr + 4): 30}
        freq = estimate_frequencies(cfg, schedules, samples, 100.0,
                                    edge_samples=edge_samples)
        then_block = cfg.block_at(0x100C)
        else_block = cfg.block_at(0x1014)
        head_block = cfg.block_at(0x1004)
        head = freq.block_count(head_block.index)
        assert freq.block_count(then_block.index) == pytest.approx(
            head / 2, rel=0.01)
        assert freq.block_count(else_block.index) == pytest.approx(
            head / 2, rel=0.01)

    def test_edge_samples_never_override_flow(self):
        cfg, schedules, samples = self._setup()
        # Give the then-arm direct samples so flow pins both arms;
        # wildly wrong edge samples must then be ignored.
        samples[0x100C] = 25  # then-arm nop: ~quarter of head
        beq_addr = 0x1008
        edge_samples = {(beq_addr, 0x1014): 1000,
                        (beq_addr, beq_addr + 4): 1}
        with_edges = estimate_frequencies(cfg, schedules, samples, 100.0,
                                          edge_samples=edge_samples)
        without = estimate_frequencies(cfg, schedules, samples, 100.0)
        then_block = cfg.block_at(0x100C)
        assert (with_edges.block_count(then_block.index)
                == without.block_count(then_block.index))
