"""Differential property test: fast path vs slow path, byte-identical.

Hypothesis composes small programs from the synthetic-workload
assembly generators (:mod:`repro.workloads.asmgen`) -- mixed flavors,
iteration counts, call structures, buffer strides -- and runs each
program twice on otherwise-identical machines: once with the block
issue cache on, once with it off.  Every observable the profiler or
the validation experiments can see must match byte for byte: execution
counts, head-of-queue cycles, per-reason stall attributions,
per-instruction event counts, edge counts, retired-instruction totals,
machine time, and the branch-predictor / cache / TLB model counters.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.alpha.assembler import assemble
from repro.cpu.config import MachineConfig
from repro.cpu.machine import Machine
from repro.tools.abcheck import _canonical
from repro.workloads.asmgen import caller_proc, loop_proc

FLAVORS = ("int", "mem", "fp", "branchy", "stream")


@st.composite
def programs(draw):
    """One assembly image: a few leaf loops plus a caller."""
    count = draw(st.integers(min_value=1, max_value=3))
    needs_buf = False
    procs = []
    for index in range(count):
        flavor = draw(st.sampled_from(FLAVORS))
        iters = draw(st.integers(min_value=1, max_value=96))
        kwargs = {}
        if flavor in ("mem", "stream"):
            needs_buf = True
            kwargs["buf"] = "heap"
            kwargs["wrap"] = draw(st.sampled_from((16, 64, 256)))
            kwargs["stride"] = draw(st.sampled_from((8, 16)))
            if flavor == "stream":
                # The copy loop advances 4 quads per iteration and must
                # stay inside the front half of the 4KB buffer.
                iters = min(iters, 60)
        procs.append(loop_proc("leaf%d" % index, iters, flavor,
                               **kwargs))
    rounds = draw(st.integers(min_value=1, max_value=3))
    procs.append(caller_proc(
        "main", ["leaf%d" % i for i in range(count)], rounds=rounds))
    data = ".data heap, 4096\n" if needs_buf else ""
    return ".image t\n%s%s" % (data, "".join(procs))


def observables(machine):
    """Canonical bytes of everything the fast path must not change."""
    core = machine.cores[0]
    return _canonical({
        "gt_count": machine.gt_count,
        "gt_head": machine.gt_head,
        "gt_stall": machine.gt_stall,
        "gt_events": machine.gt_events,
        "gt_edges": machine.gt_edges,
        "retired": machine.instructions_retired,
        "time": machine.time,
        "bp": (core.bp.predictions, core.bp.mispredictions),
        "l1i": (core.ihier.l1.hits, core.ihier.l1.misses),
        "l1d": (core.dhier.l1.hits, core.dhier.l1.misses),
        "l2": (core.ihier.l2.hits, core.ihier.l2.misses),
        "dtb": (core.dtb.hits, core.dtb.misses),
        "regs": machine.processes[0].iregs,
        "fregs": machine.processes[0].fregs,
        "memory": machine.processes[0].memory,
    })


def run_program(text, fastpath):
    config = MachineConfig()
    config.fastpath = fastpath
    machine = Machine(config, seed=1)
    image = machine.load_image(assemble(text))
    machine.spawn(image, entry="t:main")
    machine.run(max_instructions=200_000)
    return machine


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_fastpath_is_observationally_identical(text):
    fast = run_program(text, True)
    slow = run_program(text, False)
    assert observables(fast) == observables(slow)


def test_fastpath_engages_on_generated_programs():
    # A sanity anchor for the property above: the differential test is
    # vacuous if the fast path never actually replays anything.
    hot = ".image t\n%s%s" % (
        loop_proc("leafhot", 500, "int"),
        caller_proc("main", ["leafhot"], rounds=2))
    machine = run_program(hot, True)
    assert machine.fastpath.replayed_instructions > 0
