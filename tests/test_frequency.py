"""Tests for the frequency-estimation heuristic."""

import pytest

from repro.alpha.assembler import assemble
from repro.core.cfg import build_cfg
from repro.core.frequency import (FrequencyConfig, _cluster_estimate,
                                  estimate_frequencies)
from repro.core.schedule import schedule_cfg

LOOP = """
    lda t0, 100(zero)
top:
    addq t1, 1, t1
    xor  t1, t0, t2
    sll  t2, 1, t3
    subq t0, 1, t0
    bgt t0, top
    ret
"""


def analysis_for(body, samples, period=100.0, config=None):
    image = assemble(".image t\n.proc main\n%s\n.end" % body, base=0x1000)
    cfg = build_cfg(image.procedure("main"))
    schedules = schedule_cfg(cfg)
    return cfg, estimate_frequencies(cfg, schedules, samples, period,
                                     config)


class TestClusterSelection:
    def test_tight_cluster_mean(self):
        ratios = [(10.0, 100), (10.5, 100), (11.0, 100), (50.0, 100)]
        estimate, points, tightness = _cluster_estimate(
            ratios, FrequencyConfig())
        assert estimate == pytest.approx(10.5, rel=0.01)
        assert points == 3

    def test_all_identical(self):
        ratios = [(5.0, 10)] * 4
        estimate, points, _ = _cluster_estimate(ratios, FrequencyConfig())
        assert estimate == 5.0
        assert points == 4

    def test_empty_returns_none(self):
        assert _cluster_estimate([], FrequencyConfig()) is None

    def test_all_zero_ratios_rejected(self):
        assert _cluster_estimate([(0.0, 0)] * 3,
                                 FrequencyConfig()) is None


class TestDirectEstimation:
    def test_loop_frequency_recovered(self):
        # Hand-made samples: every issue point in the loop body saw
        # samples consistent with 100 executions at period 100
        # (i.e. about 1 sample per execution per M=1 issue point).
        image_samples = {
            0x1004: 1, 0x1008: 1, 0x100C: 1, 0x1010: 1, 0x1014: 1}
        # Scale up so the class passes the min-sample threshold.
        samples = {addr: 60 for addr in image_samples}
        cfg, freq = analysis_for(LOOP, samples)
        loop_block = cfg.block_at(0x1004)
        # Ratio 60 at period 100 -> 6000 executions.
        assert freq.block_count(loop_block.index) == pytest.approx(
            6000, rel=0.2)

    def test_stalled_issue_point_excluded(self):
        samples = {0x1004: 60, 0x1008: 60, 0x100C: 60, 0x1010: 61,
                   0x1014: 600}  # the branch looks badly stalled
        cfg, freq = analysis_for(LOOP, samples)
        loop_block = cfg.block_at(0x1004)
        assert freq.block_count(loop_block.index) == pytest.approx(
            6000, rel=0.2)

    def test_sample_poor_class_uses_sum_ratio(self):
        samples = {0x1004: 2, 0x100C: 1}
        config = FrequencyConfig(min_class_samples=40)
        cfg, freq = analysis_for(LOOP, samples, config=config)
        loop_block = cfg.block_at(0x1004)
        assert freq.block_confidence(loop_block.index) == "low"
        assert freq.block_count(loop_block.index) > 0

    def test_confidence_high_for_tight_rich_cluster(self):
        samples = {0x1004: 100, 0x1008: 100, 0x100C: 100, 0x1010: 101,
                   0x1014: 99}
        cfg, freq = analysis_for(LOOP, samples)
        loop_block = cfg.block_at(0x1004)
        assert freq.block_confidence(loop_block.index) == "high"

    def test_count_of_and_cpi(self):
        samples = {0x1004: 60, 0x1008: 60, 0x100C: 60, 0x1010: 60,
                   0x1014: 60}
        cfg, freq = analysis_for(LOOP, samples)
        count = freq.count_of(0x1008)
        assert count == pytest.approx(6000, rel=0.05)
        assert freq.cpi_of(0x1008, 60) == pytest.approx(1.0, rel=0.05)


class TestPropagation:
    DIAMOND = """
    lda t0, 200(zero)
head:
    and t0, 1, t1
    beq t1, else_
    addq t2, 1, t2
    addq t3, 1, t3
    xor t2, t3, t4
    br join
else_:
    nop
join:
    subq t0, 1, t0
    bgt t0, head
    ret
"""

    def test_unsampled_arm_inferred_from_flow(self):
        # Samples land in head, the then-arm and the join; the else-arm
        # got none.  Flow constraints must infer else = head - then.
        samples = {
            # head block (and t0/beq): 2 insts, M=1 each
            0x1004: 100, 0x1008: 100,
            # then-arm
            0x100C: 50, 0x1010: 50, 0x1014: 50, 0x1018: 50,
            # join
            0x1020: 100, 0x1024: 100,
        }
        cfg, freq = analysis_for(self.DIAMOND, samples)
        else_block = cfg.block_at(0x101C)
        head_block = cfg.block_at(0x1004)
        then_block = cfg.block_at(0x100C)
        head_count = freq.block_count(head_block.index)
        then_count = freq.block_count(then_block.index)
        else_count = freq.block_count(else_block.index)
        assert else_count == pytest.approx(head_count - then_count,
                                           rel=0.05)

    def test_propagated_estimates_marked(self):
        samples = {0x1004: 100, 0x1008: 100,
                   0x100C: 50, 0x1010: 50, 0x1014: 50, 0x1018: 50,
                   0x1020: 100, 0x1024: 100}
        cfg, freq = analysis_for(self.DIAMOND, samples)
        else_block = cfg.block_at(0x101C)
        cid = freq.classes.class_of[else_block.index]
        assert freq.class_propagated.get(cid) is True

    def test_propagation_never_negative(self):
        # Inconsistent samples (then-arm appears hotter than head) must
        # clamp the inferred else-arm at zero, not go negative.
        samples = {0x1004: 50, 0x1008: 50,
                   0x100C: 200, 0x1010: 200, 0x1014: 200, 0x1018: 200,
                   0x1020: 50, 0x1024: 50}
        cfg, freq = analysis_for(self.DIAMOND, samples)
        else_block = cfg.block_at(0x101C)
        assert freq.block_count(else_block.index) >= 0.0

    def test_edge_counts_follow_blocks(self):
        samples = {0x1004: 100, 0x1008: 100,
                   0x100C: 50, 0x1010: 50, 0x1014: 50, 0x1018: 50,
                   0x1020: 100, 0x1024: 100}
        cfg, freq = analysis_for(self.DIAMOND, samples)
        then_block = cfg.block_at(0x100C)
        in_edge = then_block.preds[0]
        assert freq.edge_count(in_edge.index) == pytest.approx(
            freq.block_count(then_block.index), rel=0.01)
