"""``dcpitrace``: the per-request-class report tool (repro.ctx).

Covers the pure report math (percentiles, tails, report building), the
CLI round trip over a real context-enabled profiling run, determinism
of the emitted JSON, and the loud exit when a database carries no
context ledger.
"""

import json

import pytest

from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.ctx import span_id
from repro.tools.dcpitrace import (REPORT_SCHEMA, build_report, main,
                                   percentile, tail_stats)
from repro.workloads.registry import get_workload

BUDGET = 15_000


# -- pure math --------------------------------------------------------------


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0
        assert percentile([], 99) == 0

    def test_single_value_is_every_percentile(self):
        assert percentile([7], 50) == 7
        assert percentile([7], 99) == 7

    def test_nearest_rank_on_ten_values(self):
        values = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        assert percentile(values, 50) == 60
        assert percentile(values, 95) == 100
        assert percentile(values, 99) == 100

    def test_monotonic_in_pct(self):
        values = sorted(range(1, 101))
        picks = [percentile(values, pct) for pct in (10, 50, 90, 99)]
        assert picks == sorted(picks)


class TestTailStats:
    def test_empty(self):
        stats = tail_stats([])
        assert stats == {"n": 0, "p50": 0, "p95": 0, "p99": 0,
                         "max": 0, "mean": 0}

    def test_unsorted_input_is_sorted_first(self):
        stats = tail_stats([300, 100, 200])
        assert stats["n"] == 3
        assert stats["p50"] == 200
        assert stats["max"] == 300
        assert stats["mean"] == 200


# -- build_report on a synthetic ledger -------------------------------------


def _meta():
    return {
        "schema": 1,
        "classes": {"req.a": {"cycles": 30, "imiss": 2},
                    "req.b": {"cycles": 10}},
        "culprits": {"req.a": {"srv:hot": 25, "srv:cold": 5,
                               "libc:memcpy": 25}},
        "requests": {"req.a": {"1:10": {"cycles": 4000,
                                        "instructions": 2000,
                                        "process": "srv",
                                        "done": True}},
                     "req.b": {"1:11": {"cycles": 900,
                                        "instructions": 300,
                                        "process": "srv",
                                        "done": True}}},
        "other_samples": 3,
        "table_slots": 64,
        "table_evictions": 1,
        "table_interns": 5,
    }


class TestBuildReport:
    def test_schema_and_shares(self):
        report = build_report(_meta(), period=2048, db="x")
        assert report["schema"] == REPORT_SCHEMA
        assert report["period"] == 2048
        assert set(report["classes"]) == {"req.a", "req.b"}
        a, b = report["classes"]["req.a"], report["classes"]["req.b"]
        assert a["cycles_samples"] == 30
        assert a["est_cycles"] == 30 * 2048
        assert a["share"] == pytest.approx(0.75)
        assert b["share"] == pytest.approx(0.25)

    def test_cpi_is_request_cycles_over_instructions(self):
        report = build_report(_meta())
        assert report["classes"]["req.a"]["cpi"] == pytest.approx(2.0)
        assert report["classes"]["req.b"]["cpi"] == pytest.approx(3.0)

    def test_culprits_sorted_by_count_then_name_and_limited(self):
        report = build_report(_meta(), limit=2)
        culprits = report["classes"]["req.a"]["culprits"]
        assert [c["procedure"] for c in culprits] == [
            "libc:memcpy", "srv:hot"]

    def test_spans_are_deterministic_ids(self):
        report = build_report(_meta())
        assert report["classes"]["req.a"]["span"] == span_id("req.a")

    def test_table_and_other_samples_pass_through(self):
        report = build_report(_meta())
        assert report["other_samples"] == 3
        assert report["table"] == {"slots": 64, "evictions": 1,
                                   "interns": 5}

    def test_report_is_json_safe_and_deterministic(self):
        one = json.dumps(build_report(_meta()), sort_keys=True)
        two = json.dumps(build_report(_meta()), sort_keys=True)
        assert one == two


# -- CLI round trip over a real run -----------------------------------------


@pytest.fixture(scope="module")
def traced_db(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("trace") / "db")
    rc = main(["run", "--workload", "slow-client", "--out", root,
               "--max-instructions", str(BUDGET), "--seed", "3"])
    assert rc == 0
    return root


class TestCli:
    def test_report_json_covers_the_workload_classes(self, traced_db,
                                                     capsys):
        assert main(["report", traced_db, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == REPORT_SCHEMA
        assert {"client.fast", "client.slow"} <= set(report["classes"])
        fast = report["classes"]["client.fast"]
        assert fast["requests"] > 0
        assert fast["tail"]["n"] == fast["requests"]
        assert fast["tail"]["p50"] <= fast["tail"]["p99"]

    def test_report_json_is_deterministic(self, traced_db, capsys):
        main(["report", traced_db, "--json"])
        first = capsys.readouterr().out
        main(["report", traced_db, "--json"])
        assert capsys.readouterr().out == first

    def test_human_report_renders_every_class(self, traced_db, capsys):
        assert main(["report", traced_db]) == 0
        out = capsys.readouterr().out
        assert "client.fast" in out
        assert "client.slow" in out
        assert "context table:" in out

    def test_ctxless_database_exits_one_loudly(self, tmp_path, capsys):
        root = str(tmp_path / "plain")
        session = ProfileSession(MachineConfig(num_cpus=2),
                                 SessionConfig(db_root=root))
        session.run(get_workload("slow-client"),
                    max_instructions=BUDGET)
        assert main(["report", root, "--json"]) == 1
        err = capsys.readouterr().err
        assert "no context ledger" in err
