"""Tests for the on-disk profile database and binary formats."""

import pytest
from hypothesis import given, strategies as st

from repro.collect.database import (FORMAT_COMPACT, FORMAT_RAW, ImageProfile,
                                    ProfileDatabase, decode_profile,
                                    encode_profile)
from repro.cpu.events import EventType

counts_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=1 << 24).map(lambda x: x * 4),
    st.integers(min_value=1, max_value=1 << 30),
    max_size=200)


class TestEncoding:
    @given(counts_strategy)
    def test_compact_roundtrip(self, counts):
        data = encode_profile(counts, "/bin/app", EventType.CYCLES, 62000)
        decoded, name, event, period, epoch = decode_profile(data)
        assert decoded == counts
        assert name == "/bin/app"
        assert event is EventType.CYCLES
        assert period == 62000

    @given(counts_strategy)
    def test_raw_roundtrip(self, counts):
        data = encode_profile(counts, "app", EventType.IMISS, 100,
                              fmt=FORMAT_RAW)
        decoded, _, event, _, _ = decode_profile(data)
        assert decoded == counts
        assert event is EventType.IMISS

    def test_compact_is_smaller_for_dense_profiles(self):
        # Typical profile: consecutive offsets, modest counts -- the
        # paper's "factor of three" compression claim.
        counts = {4 * i: 50 + (i % 100) for i in range(5000)}
        raw = encode_profile(counts, "app", EventType.CYCLES, 62000,
                             fmt=FORMAT_RAW)
        compact = encode_profile(counts, "app", EventType.CYCLES, 62000,
                                 fmt=FORMAT_COMPACT)
        assert len(raw) / len(compact) > 2.5

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="not a DCPI"):
            decode_profile(b"XXXX" + b"\0" * 30)

    def test_truncated_data_rejected(self):
        data = encode_profile({4: 1}, "app", EventType.CYCLES, 100)
        with pytest.raises(Exception):
            decode_profile(data[:-1])


class TestDatabase:
    def test_save_and_load(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        db.save("/bin/app", EventType.CYCLES, {0: 5, 8: 2}, 62000)
        counts, period = db.load("/bin/app", EventType.CYCLES)
        assert counts == {0: 5, 8: 2}

    def test_save_merges_counts(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        db.save("app", EventType.CYCLES, {0: 5}, 100)
        db.save("app", EventType.CYCLES, {0: 3, 4: 1}, 100)
        counts, _ = db.load("app", EventType.CYCLES)
        assert counts == {0: 8, 4: 1}

    def test_epochs_are_separate(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        db.save("app", EventType.CYCLES, {0: 1}, 100, epoch=0)
        db.save("app", EventType.CYCLES, {0: 9}, 100, epoch=1)
        assert db.load("app", EventType.CYCLES, epoch=0)[0] == {0: 1}
        assert db.load("app", EventType.CYCLES, epoch=1)[0] == {0: 9}
        assert db.epochs() == [0, 1]

    def test_profiles_listing(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        db.save("app", EventType.CYCLES, {0: 1}, 100)
        db.save("app", EventType.IMISS, {0: 1}, 50)
        listed = list(db.profiles())
        assert ("app", EventType.CYCLES) in listed
        assert ("app", EventType.IMISS) in listed

    def test_disk_bytes(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        assert db.disk_bytes() == 0
        db.save("app", EventType.CYCLES, {4 * i: 1 for i in range(100)},
                100)
        assert db.disk_bytes() > 100

    def test_image_names_with_slashes(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        db.save("/usr/shlib/X11/libos.so", EventType.CYCLES, {0: 1}, 100)
        counts, _ = db.load("/usr/shlib/X11/libos.so", EventType.CYCLES)
        assert counts == {0: 1}


class TestImageProfile:
    def make(self):
        from repro.alpha.assembler import assemble

        image = assemble(
            ".image app\n.proc a\n    nop\n    nop\n    ret\n.end\n"
            ".proc b\n    nop\n    ret\n.end", base=0x1000)
        profile = ImageProfile(image, periods={EventType.CYCLES: 100.0})
        profile.add(EventType.CYCLES, 0, 10)
        profile.add(EventType.CYCLES, 4, 5)
        profile.add(EventType.CYCLES, 12, 3)
        return image, profile

    def test_total(self):
        _, profile = self.make()
        assert profile.total(EventType.CYCLES) == 18
        assert profile.total(EventType.IMISS) == 0

    def test_add_accumulates(self):
        _, profile = self.make()
        profile.add(EventType.CYCLES, 0, 1)
        assert profile.counts[EventType.CYCLES][0] == 11

    def test_samples_by_addr(self):
        image, profile = self.make()
        samples = profile.samples_by_addr(EventType.CYCLES)
        assert samples[0x1000] == 10

    def test_samples_for_procedure(self):
        image, profile = self.make()
        proc_b = image.procedure("b")
        samples = profile.samples_for(proc_b, EventType.CYCLES)
        assert samples == {0x100C: 3}

    def test_procedure_totals(self):
        image, profile = self.make()
        totals = profile.procedure_totals(EventType.CYCLES)
        assert totals == {"a": 15, "b": 3}
