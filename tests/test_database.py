"""Tests for the on-disk profile database and binary formats."""

import json
import os

import pytest
from hypothesis import given, strategies as st

from repro.collect.database import (FORMAT_COMPACT, FORMAT_RAW,
                                    MANIFEST_NAME, CorruptProfileError,
                                    ImageProfile, ProfileDatabase,
                                    decode_profile, encode_profile)
from repro.cpu.events import EventType
from repro.faults.injector import bitflip_at_rest

counts_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=1 << 24).map(lambda x: x * 4),
    st.integers(min_value=1, max_value=1 << 30),
    max_size=200)


class TestEncoding:
    @given(counts_strategy)
    def test_compact_roundtrip(self, counts):
        data = encode_profile(counts, "/bin/app", EventType.CYCLES, 62000)
        decoded, name, event, period, epoch = decode_profile(data)
        assert decoded == counts
        assert name == "/bin/app"
        assert event is EventType.CYCLES
        assert period == 62000

    @given(counts_strategy)
    def test_raw_roundtrip(self, counts):
        data = encode_profile(counts, "app", EventType.IMISS, 100,
                              fmt=FORMAT_RAW)
        decoded, _, event, _, _ = decode_profile(data)
        assert decoded == counts
        assert event is EventType.IMISS

    def test_compact_is_smaller_for_dense_profiles(self):
        # Typical profile: consecutive offsets, modest counts -- the
        # paper's "factor of three" compression claim.
        counts = {4 * i: 50 + (i % 100) for i in range(5000)}
        raw = encode_profile(counts, "app", EventType.CYCLES, 62000,
                             fmt=FORMAT_RAW)
        compact = encode_profile(counts, "app", EventType.CYCLES, 62000,
                                 fmt=FORMAT_COMPACT)
        assert len(raw) / len(compact) > 2.5

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="not a DCPI"):
            decode_profile(b"XXXX" + b"\0" * 30)

    def test_truncated_data_rejected(self):
        data = encode_profile({4: 1}, "app", EventType.CYCLES, 100)
        with pytest.raises(Exception):
            decode_profile(data[:-1])


class TestDatabase:
    def test_save_and_load(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        db.save("/bin/app", EventType.CYCLES, {0: 5, 8: 2}, 62000)
        counts, period = db.load("/bin/app", EventType.CYCLES)
        assert counts == {0: 5, 8: 2}

    def test_save_merges_counts(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        db.save("app", EventType.CYCLES, {0: 5}, 100)
        db.save("app", EventType.CYCLES, {0: 3, 4: 1}, 100)
        counts, _ = db.load("app", EventType.CYCLES)
        assert counts == {0: 8, 4: 1}

    def test_epochs_are_separate(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        db.save("app", EventType.CYCLES, {0: 1}, 100, epoch=0)
        db.save("app", EventType.CYCLES, {0: 9}, 100, epoch=1)
        assert db.load("app", EventType.CYCLES, epoch=0)[0] == {0: 1}
        assert db.load("app", EventType.CYCLES, epoch=1)[0] == {0: 9}
        assert db.epochs() == [0, 1]

    def test_profiles_listing(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        db.save("app", EventType.CYCLES, {0: 1}, 100)
        db.save("app", EventType.IMISS, {0: 1}, 50)
        listed = list(db.profiles())
        assert ("app", EventType.CYCLES) in listed
        assert ("app", EventType.IMISS) in listed

    def test_disk_bytes(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        assert db.disk_bytes() == 0
        db.save("app", EventType.CYCLES, {4 * i: 1 for i in range(100)},
                100)
        assert db.disk_bytes() > 100

    def test_image_names_with_slashes(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        db.save("/usr/shlib/X11/libos.so", EventType.CYCLES, {0: 1}, 100)
        counts, _ = db.load("/usr/shlib/X11/libos.so", EventType.CYCLES)
        assert counts == {0: 1}


class TestCorruptionHandling:
    """Satellite 2: typed errors, quarantine, and robust iteration."""

    def fill(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        db.save("app", EventType.CYCLES, {0: 5, 8: 2}, 100)
        db.save("lib", EventType.CYCLES, {4: 7}, 100)
        return db

    def corrupt(self, db, image="app"):
        record = db._load_manifest()["records"]["0000/%s@cycles" % image]
        path = os.path.join(db.root, record["file"])
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(bitflip_at_rest(data, seed=5))
        return record

    def test_decode_raises_typed_error(self):
        data = encode_profile({4: 1}, "app", EventType.CYCLES, 100)
        with pytest.raises(CorruptProfileError):
            decode_profile(data[:-3])
        with pytest.raises(CorruptProfileError):
            decode_profile(bitflip_at_rest(data, seed=1))
        # ... which is still a ValueError for legacy callers.
        assert issubclass(CorruptProfileError, ValueError)

    def test_load_quarantines_and_accounts(self, tmp_path):
        db = self.fill(tmp_path)
        self.corrupt(db)
        fresh = ProfileDatabase(str(tmp_path))
        with pytest.raises(CorruptProfileError):
            fresh.load("app", EventType.CYCLES)
        assert fresh.quarantined_samples() == 7  # declared total 5+2
        assert fresh.warnings
        # The file was moved aside, not deleted.
        quarantine = os.path.join(str(tmp_path), "quarantine")
        assert os.listdir(quarantine)

    def test_iteration_survives_corrupt_files(self, tmp_path):
        db = self.fill(tmp_path)
        self.corrupt(db)
        fresh = ProfileDatabase(str(tmp_path))
        loaded = {name: counts for name, _, counts, _ in fresh.load_all()}
        assert loaded == {"lib": {4: 7}}        # app skipped, lib kept
        assert list(fresh.profiles()) == [("lib", EventType.CYCLES)]
        assert fresh.epochs() == [0]

    def test_missing_file_quarantined_on_load(self, tmp_path):
        db = self.fill(tmp_path)
        record = db._load_manifest()["records"]["0000/app@cycles"]
        os.unlink(os.path.join(db.root, record["file"]))
        fresh = ProfileDatabase(str(tmp_path))
        with pytest.raises(CorruptProfileError, match="missing"):
            fresh.load("app", EventType.CYCLES)
        assert fresh.quarantined_samples() == 7

    def test_verify_reports_losses(self, tmp_path):
        db = self.fill(tmp_path)
        self.corrupt(db, image="lib")
        fresh = ProfileDatabase(str(tmp_path))
        report = fresh.verify()
        assert report["quarantined"] == 1
        assert report["lost_samples"] == 7
        assert fresh.total_samples() == 7  # app's 5+2 survive

    def test_v2_files_still_load(self, tmp_path):
        """Pre-checksum (version 2) profiles remain readable."""
        db = self.fill(tmp_path)
        record = db._load_manifest()["records"]["0000/app@cycles"]
        path = os.path.join(db.root, record["file"])
        with open(path, "rb") as handle:
            data = handle.read()
        import struct
        import zlib
        body = data[:-4]                      # strip the CRC trailer
        v2 = body[:4] + struct.pack("<H", 2) + body[6:]
        with open(path, "wb") as handle:
            handle.write(v2)
        # Fix the manifest's whole-file CRC to match the rewrite.
        manifest_path = os.path.join(db.root, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["records"]["0000/app@cycles"]["crc"] = zlib.crc32(v2)
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        counts, _ = ProfileDatabase(str(tmp_path)).load(
            "app", EventType.CYCLES)
        assert counts == {0: 5, 8: 2}


class TestCheckpoint:
    """The idempotent-replace checkpoint and its manifest commit."""

    PROFILES = {"app": {EventType.CYCLES: {0: 5, 4: 3}}}
    PERIODS = {EventType.CYCLES: 100}

    def test_checkpoint_is_idempotent(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        for _ in range(3):
            db.checkpoint(self.PROFILES, self.PERIODS, epoch=0,
                          meta={"epoch": 0})
        assert db.total_samples() == 8          # never 16 or 24
        counts, _ = db.load("app", EventType.CYCLES)
        assert counts == {0: 5, 4: 3}

    def test_checkpoint_replaces_not_merges(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        db.checkpoint(self.PROFILES, self.PERIODS, epoch=0)
        grown = {"app": {EventType.CYCLES: {0: 9, 4: 3, 8: 1}}}
        db.checkpoint(grown, self.PERIODS, epoch=0)
        counts, _ = db.load("app", EventType.CYCLES)
        assert counts == {0: 9, 4: 3, 8: 1}

    def test_checkpoint_drops_vanished_images(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        both = {"app": {EventType.CYCLES: {0: 1}},
                "lib": {EventType.CYCLES: {0: 2}}}
        db.checkpoint(both, self.PERIODS, epoch=0)
        db.checkpoint(self.PROFILES, self.PERIODS, epoch=0)
        assert list(ProfileDatabase(str(tmp_path)).profiles()) == [
            ("app", EventType.CYCLES)]

    def test_checkpoint_meta_roundtrips(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        meta = {"epoch": 2, "total_samples": 8,
                "drained_seq": {"0": 5}}
        db.checkpoint(self.PROFILES, self.PERIODS, epoch=2, meta=meta)
        assert ProfileDatabase(str(tmp_path)).checkpoint_meta() == meta

    def test_old_generation_files_are_collected(self, tmp_path):
        db = ProfileDatabase(str(tmp_path))
        db.checkpoint(self.PROFILES, self.PERIODS, epoch=0)
        db.checkpoint(self.PROFILES, self.PERIODS, epoch=0)
        epoch_dir = os.path.join(str(tmp_path), "epoch0000")
        profs = [n for n in os.listdir(epoch_dir) if n.endswith(".prof")]
        assert len(profs) == 1                  # stale generation GC'd

    def test_scan_ignores_uncommitted_orphans(self, tmp_path):
        """Generation-suffixed files without a manifest are leftovers
        of a crashed commit; adopting them would double-count."""
        db = ProfileDatabase(str(tmp_path))
        db.checkpoint(self.PROFILES, self.PERIODS, epoch=0)
        os.unlink(os.path.join(str(tmp_path), MANIFEST_NAME))
        fresh = ProfileDatabase(str(tmp_path))
        assert fresh.total_samples() == 0
        assert list(fresh.profiles()) == []

    def test_corrupt_manifest_rebuild_adopts_committed_files(
            self, tmp_path):
        """At-rest damage to the manifest must not turn committed,
        CRC-valid generation files into GC bait (silent total loss);
        the rebuild adopts them instead."""
        db = ProfileDatabase(str(tmp_path))
        db.checkpoint(self.PROFILES, self.PERIODS, epoch=0)
        manifest_path = os.path.join(str(tmp_path), MANIFEST_NAME)
        with open(manifest_path, "rb") as handle:
            data = handle.read()
        with open(manifest_path, "wb") as handle:
            handle.write(data[:len(data) // 2])    # torn at rest
        fresh = ProfileDatabase(str(tmp_path))
        assert fresh.total_samples() == 8
        assert fresh.quarantined_samples() == 0
        counts, _ = fresh.load("app", EventType.CYCLES)
        assert counts == {0: 5, 4: 3}
        assert fresh.warnings
        # The next commit's GC must keep the adopted files.
        fresh.save("lib", EventType.CYCLES, {0: 1}, 100)
        assert ProfileDatabase(str(tmp_path)).total_samples() == 9

    def test_corrupt_manifest_rebuild_keeps_highest_generation(
            self, tmp_path):
        """Two generations of one key (a crash left the superseded
        file behind): the rebuild must pick the numerically highest
        generation, not the lexicographically last filename."""
        epoch_dir = os.path.join(str(tmp_path), "epoch0000")
        os.makedirs(epoch_dir)
        for gen, counts in ((2, {0: 1}), (10, {0: 1, 4: 2})):
            data = encode_profile(counts, "app", EventType.CYCLES, 100)
            with open(os.path.join(epoch_dir,
                                   "app@cycles.g%d.prof" % gen),
                      "wb") as handle:
                handle.write(data)
        with open(os.path.join(str(tmp_path), MANIFEST_NAME),
                  "w") as handle:
            handle.write("{not json")
        db = ProfileDatabase(str(tmp_path))
        counts, _ = db.load("app", EventType.CYCLES)
        assert counts == {0: 1, 4: 2}
        assert db._load_manifest()["generation"] == 10

    def test_corrupt_manifest_rebuild_salvages_quarantine_totals(
            self, tmp_path):
        """A generation file that fails its CRC during the rebuild is
        quarantined with a best-effort decoded total, not a silent 0."""
        db = ProfileDatabase(str(tmp_path))
        db.checkpoint(self.PROFILES, self.PERIODS, epoch=0)  # total 8
        record = db._load_manifest()["records"]["0000/app@cycles"]
        path = os.path.join(db.root, record["file"])
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            # Zero the CRC trailer: the body stays fully decodable,
            # so the salvaged total should be exact.
            handle.write(data[:-4] + b"\0\0\0\0")
        manifest_path = os.path.join(str(tmp_path), MANIFEST_NAME)
        with open(manifest_path, "w") as handle:
            handle.write("{not json")
        fresh = ProfileDatabase(str(tmp_path))
        assert fresh.total_samples() == 0
        assert fresh.quarantined_samples() == 8

    def test_scan_still_adopts_legacy_files(self, tmp_path):
        """Pre-manifest databases (no .g<N> suffix) are scanned in."""
        epoch_dir = os.path.join(str(tmp_path), "epoch0000")
        os.makedirs(epoch_dir)
        data = encode_profile({0: 4}, "app", EventType.CYCLES, 100)
        with open(os.path.join(epoch_dir, "app@cycles.prof"),
                  "wb") as handle:
            handle.write(data)
        db = ProfileDatabase(str(tmp_path))
        counts, _ = db.load("app", EventType.CYCLES)
        assert counts == {0: 4}

    def test_manifest_commit_is_atomic_under_crash(self, tmp_path):
        """A crash during commit leaves the previous state intact and
        no staged records visible."""
        from repro.faults.injector import FaultPlan, FaultSpec

        plan = FaultPlan(specs=(
            FaultSpec("db.checkpoint", "crash", hits=(2,)),), seed=1)
        db = ProfileDatabase(str(tmp_path), faults=plan.build())
        db.checkpoint(self.PROFILES, self.PERIODS, epoch=0)   # hit 1: ok
        grown = {"app": {EventType.CYCLES: {0: 9, 4: 3, 8: 1}}}
        with pytest.raises(Exception, match="injected crash"):
            db.checkpoint(grown, self.PERIODS, epoch=0)       # hit 2
        # The staged mutation must not linger in memory or on disk.
        assert db.total_samples() == 8
        assert ProfileDatabase(str(tmp_path)).total_samples() == 8

    def test_injected_write_corruption_is_detected(self, tmp_path):
        from repro.faults.injector import FaultPlan, FaultSpec

        plan = FaultPlan(specs=(
            FaultSpec("db.write", "bitflip", hits=(1,)),), seed=3)
        db = ProfileDatabase(str(tmp_path), faults=plan.build())
        db.checkpoint(self.PROFILES, self.PERIODS, epoch=0)
        fresh = ProfileDatabase(str(tmp_path))
        with pytest.raises(CorruptProfileError):
            fresh.load("app", EventType.CYCLES)
        assert fresh.quarantined_samples() == 8


class TestImageProfile:
    def make(self):
        from repro.alpha.assembler import assemble

        image = assemble(
            ".image app\n.proc a\n    nop\n    nop\n    ret\n.end\n"
            ".proc b\n    nop\n    ret\n.end", base=0x1000)
        profile = ImageProfile(image, periods={EventType.CYCLES: 100.0})
        profile.add(EventType.CYCLES, 0, 10)
        profile.add(EventType.CYCLES, 4, 5)
        profile.add(EventType.CYCLES, 12, 3)
        return image, profile

    def test_total(self):
        _, profile = self.make()
        assert profile.total(EventType.CYCLES) == 18
        assert profile.total(EventType.IMISS) == 0

    def test_add_accumulates(self):
        _, profile = self.make()
        profile.add(EventType.CYCLES, 0, 1)
        assert profile.counts[EventType.CYCLES][0] == 11

    def test_samples_by_addr(self):
        image, profile = self.make()
        samples = profile.samples_by_addr(EventType.CYCLES)
        assert samples[0x1000] == 10

    def test_samples_for_procedure(self):
        image, profile = self.make()
        proc_b = image.procedure("b")
        samples = profile.samples_for(proc_b, EventType.CYCLES)
        assert samples == {0x100C: 3}

    def test_procedure_totals(self):
        image, profile = self.make()
        totals = profile.procedure_totals(EventType.CYCLES)
        assert totals == {"a": 15, "b": 3}
