"""Cross-module integration tests and end-to-end invariants."""

from hypothesis import given, settings, strategies as st

from repro.alpha.assembler import assemble
from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.cpu.machine import Machine


class TestSampleConservation:
    """Every sample taken by the driver must reach a profile (or be
    explicitly accounted as dropped/unknown)."""

    def test_driver_to_daemon_conservation(self):
        from conftest import make_copy_workload

        session = ProfileSession(
            MachineConfig(),
            SessionConfig(cycles_period=(60, 64), event_period=32))
        result = session.run(make_copy_workload(n=6000))
        taken = sum(result.driver.event_samples.values())
        landed = sum(profile.total(event)
                     for profile in result.profiles.values()
                     for event in EventType)
        unknown = result.daemon.unknown_samples
        dropped = sum(s.dropped for s in result.driver.cpus)
        assert taken == landed + unknown + dropped

    def test_db_round_trip_conserves_counts(self, tmp_path):
        from conftest import make_copy_workload

        session = ProfileSession(
            MachineConfig(),
            SessionConfig(cycles_period=(120, 128),
                          db_root=str(tmp_path / "db")))
        result = session.run(make_copy_workload(n=3000))
        stored, _ = result.database.load("copy.prog", EventType.CYCLES)
        live = result.profile_for("copy.prog").counts[EventType.CYCLES]
        assert stored == live


class TestContextSwitchIsolation:
    """Two interleaved processes must not corrupt each other."""

    PROGRAM = """
.image iso{tag}
.data acc, 64
.proc main
    lda t1, =acc
    lda t0, {n}(zero)
    lda t3, 0(zero)
top:
    addq t3, {step}, t3
    subq t0, 1, t0
    bgt t0, top
    stq t3, 0(t1)
    ret
.end
"""

    def test_interleaved_processes_compute_independently(self):
        config = MachineConfig(quantum=300)  # force many switches
        machine = Machine(config, seed=1)
        img_a = machine.load_image(assemble(
            self.PROGRAM.format(tag="a", n=5000, step=3)))
        img_b = machine.load_image(assemble(
            self.PROGRAM.format(tag="b", n=5000, step=7)))
        proc_a = machine.spawn(img_a)
        proc_b = machine.spawn(img_b)
        machine.run()
        assert machine.scheduler.context_switches > 5
        acc_a = img_a.symbols.resolve("acc")
        acc_b = img_b.symbols.resolve("acc")
        assert proc_a.peek(acc_a) == 15000
        assert proc_b.peek(acc_b) == 35000

    def test_same_image_two_processes(self):
        machine = Machine(MachineConfig(quantum=300), seed=1)
        image = machine.load_image(assemble(
            self.PROGRAM.format(tag="x", n=2000, step=1)))
        procs = [machine.spawn(image) for _ in range(3)]
        machine.run()
        acc = image.symbols.resolve("acc")
        for proc in procs:
            assert proc.peek(acc) == 2000


class TestDeterminism:
    def test_full_stack_deterministic(self):
        from repro.workloads import x11perf

        def run():
            session = ProfileSession(
                MachineConfig(),
                SessionConfig(cycles_period=(200, 256), seed=4))
            result = session.run(x11perf.build(scale=4, rounds=4),
                                 max_instructions=80_000)
            return (result.cycles,
                    {name: profile.counts
                     for name, profile in result.profiles.items()})
        assert run() == run()


class TestInterpreterCrossCheck:
    """Property: the pipeline's architectural results match a simple
    reference interpreter on random straight-line integer programs."""

    OPS = ("addq", "subq", "xor", "and", "bis", "s4addq", "cmpult",
           "sll", "srl")

    @staticmethod
    def reference(instructions):
        from repro.alpha.opcodes import OPCODES

        regs = [0] * 32
        for op, ra, imm, rc in instructions:
            result = OPCODES[op].sem(regs[ra], imm)
            if rc != 31:
                regs[rc] = result
        return regs

    @given(st.lists(
        st.tuples(st.sampled_from(OPS),
                  st.integers(0, 7),       # ra in t0..t7 space (1..8)
                  st.integers(0, 255),     # literal
                  st.integers(0, 7)),      # rc
        min_size=1, max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_matches_reference(self, program):
        lines = [".image p", ".proc main"]
        instructions = []
        for op, ra, imm, rc in program:
            # Map 0..7 onto t0..t7 = r1..r8.
            lines.append("    %s t%d, %d, t%d" % (op, ra, imm, rc))
            instructions.append((op, ra + 1, imm, rc + 1))
        lines.append("    ret")
        lines.append(".end")
        machine = Machine(MachineConfig(), seed=1)
        image = machine.load_image(assemble("\n".join(lines)))
        proc = machine.spawn(image)
        machine.run()
        expected = self.reference(instructions)
        assert proc.iregs[1:9] == expected[1:9]


class TestFailureInjection:
    def test_driver_drops_when_daemon_stalls(self):
        """If the daemon never drains, the driver's bounded buffers drop
        samples rather than grow without limit."""
        from repro.collect.driver import Driver, DriverConfig

        driver = Driver(1, DriverConfig(buckets=1, assoc=1,
                                        overflow_capacity=4))
        for i in range(100):
            driver.record(0, i, 0x1000, EventType.CYCLES, i)
        state = driver.cpus[0]
        assert state.dropped > 0
        # Buffered + resident + dropped still accounts for everything.
        buffered = sum(count for buf in state.full for _, count in buf)
        buffered += sum(count for _, count in state.active)
        resident = sum(count for _, count in state.table.flush())
        assert buffered + resident + state.dropped == 100

    def test_samples_with_dead_pid_still_attributed(self):
        """After a process exits and is reaped, late samples fall back
        to the global image map (kernel recognizer path)."""
        from conftest import make_copy_workload

        session = ProfileSession(
            MachineConfig(), SessionConfig(cycles_period=(120, 128)))
        result = session.run(make_copy_workload(n=2000))
        daemon = result.daemon
        image = daemon.images["copy.prog"]
        driver = result.driver
        # Simulate a straggler sample from the dead process.
        daemon.reap(result.machine.processes[0].pid)
        driver.record(0, result.machine.processes[0].pid,
                      image.base + 4, EventType.CYCLES, 0)
        before = daemon.unknown_samples
        daemon.drain(driver)
        assert daemon.unknown_samples == before  # resolved via fallback
