"""End-to-end tests of the analysis pipeline on simulated profiles."""

import pytest

from repro.core import analyze_procedure
from repro.core.analyze import analyze_image
from repro.cpu.events import EventType


@pytest.fixture(scope="module")
def copy_analysis():
    from conftest import make_copy_workload
    from repro.collect.session import ProfileSession, SessionConfig
    from repro.cpu.config import MachineConfig

    session = ProfileSession(
        MachineConfig(),
        SessionConfig(cycles_period=(120, 128), event_period=64, seed=3))
    result = session.run(make_copy_workload(n=8000))
    image = result.daemon.images["copy.prog"]
    profile = result.profile_for("copy.prog")
    return result, image, analyze_procedure(image, "copy", profile)


class TestCopyLoopAnalysis:
    def test_best_case_cpi_matches_paper(self, copy_analysis):
        _, _, analysis = copy_analysis
        # The paper's Figure 2: best-case 0.62 CPI for this exact loop.
        assert analysis.best_case_cpi == pytest.approx(0.62, abs=0.05)

    def test_actual_cpi_reflects_memory_stalls(self, copy_analysis):
        _, _, analysis = copy_analysis
        assert analysis.actual_cpi > 2 * analysis.best_case_cpi

    def test_frequency_estimate_close_to_truth(self, copy_analysis):
        result, image, analysis = copy_analysis
        true_counts = result.machine.true_counts_for(image)
        loop_rows = [row for row in analysis.instructions
                     if true_counts[row.inst.addr] > 100]
        for row in loop_rows:
            error = abs(row.count - true_counts[row.inst.addr]) \
                / true_counts[row.inst.addr]
            assert error < 0.35, row.inst

    def test_hot_store_has_memory_culprits(self, copy_analysis):
        _, _, analysis = copy_analysis
        stalled = max(analysis.instructions, key=lambda r: r.samples)
        assert stalled.inst.is_store
        reasons = {c.reason for c in stalled.culprits}
        assert "wb" in reasons
        assert "dcache" in reasons

    def test_dcache_culprit_points_to_feeding_load(self, copy_analysis):
        _, _, analysis = copy_analysis
        stalled = max(analysis.instructions, key=lambda r: r.samples)
        dcache = next(c for c in stalled.culprits
                      if c.reason == "dcache")
        producer = analysis.by_addr[dcache.source_addr]
        assert producer.inst.is_load

    def test_dual_issued_instructions_detected(self, copy_analysis):
        _, _, analysis = copy_analysis
        assert any(row.paired for row in analysis.instructions)

    def test_total_cycles_consistent_with_samples(self, copy_analysis):
        _, _, analysis = copy_analysis
        assert analysis.total_cycles == pytest.approx(
            analysis.total_samples * analysis.period)


class TestSummary:
    def test_summary_fractions(self, copy_analysis):
        _, _, analysis = copy_analysis
        summary = analysis.summary()
        # Dynamic stalls dominate this memory-bound loop.
        assert summary.subtotal_dynamic > 0.5
        lo, hi = summary.dynamic["dcache"]
        assert 0.0 <= lo <= hi <= 1.0
        # Static + dynamic + execution + error tally to one.
        total = (summary.subtotal_dynamic + summary.subtotal_static
                 + summary.execution + summary.net_error)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_render_contains_categories(self, copy_analysis):
        _, _, analysis = copy_analysis
        text = analysis.summary().render()
        for needle in ("Best-case", "D-cache miss", "Write buffer",
                       "Subtotal dynamic", "Slotting", "Execution",
                       "Total tallied"):
            assert needle in text


class TestAnalyzeImage:
    def test_orders_by_samples(self, copy_analysis):
        result, image, _ = copy_analysis
        profile = result.profile_for("copy.prog")
        analyses = analyze_image(image, profile)
        assert list(analyses) == ["copy"]

    def test_min_samples_filter(self, copy_analysis):
        result, image, _ = copy_analysis
        profile = result.profile_for("copy.prog")
        total = profile.total(EventType.CYCLES)
        analyses = analyze_image(image, profile, min_samples=total + 1)
        assert analyses == {}


class TestAnnotationsExport:
    def test_annotations_are_offset_keyed_and_complete(
            self, copy_analysis):
        _, image, analysis = copy_analysis
        rows = analysis.annotations()
        base = image.base or 0
        expected = {inst.addr - base
                    for inst in image.instructions
                    if analysis.proc.start <= inst.addr
                    < analysis.proc.end}
        assert {row["offset"] for row in rows} == expected
        offsets = [row["offset"] for row in rows]
        assert offsets == sorted(offsets)
        for row in rows:
            assert row["cpi"] >= 0.0
            assert row["count"] >= 0
            for culprit in row["culprits"]:
                assert culprit.min_cycles <= culprit.max_cycles

    def test_export_annotations_is_json_ready(self, copy_analysis):
        import json

        result, image, _ = copy_analysis
        from repro.core.analyze import export_annotations
        from repro.core.culprits import Culprit

        analyses = analyze_image(image, result.profile_for("copy.prog"))
        export = export_annotations(analyses)
        assert set(export) == {"copy"}
        block = export["copy"]
        assert block["end"] > block["start"] >= 0
        assert block["instructions"]

        def jsonable(obj):
            if isinstance(obj, Culprit):
                return obj._asdict() if hasattr(obj, "_asdict") \
                    else vars(obj)
            raise TypeError(type(obj))

        json.dumps(export, default=jsonable)
