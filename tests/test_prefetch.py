"""Tests for the instruction stream buffer (sequential prefetch)."""

from repro.alpha.assembler import assemble
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.cpu.machine import Machine

STRAIGHT = ".image p\n.proc main\n" + "    addq t0, 1, t0\n" * 400 \
    + "    ret\n.end"


def run(istream_entries):
    config = MachineConfig()
    config.istream_entries = istream_entries
    machine = Machine(config, seed=1)
    machine.load_image(assemble(STRAIGHT))
    machine.spawn(machine.loader.images[0])
    machine.run()
    imisses = sum(row.get(EventType.IMISS, 0)
                  for row in machine.gt_events.values())
    icache_stall = sum(row.get("icache", 0)
                       for row in machine.gt_stall.values())
    return machine, imisses, icache_stall


class TestStreamBuffer:
    def test_prefetch_cuts_stall_not_events(self):
        _, imiss_off, stall_off = run(0)
        _, imiss_on, stall_on = run(4)
        # The counter still sees (almost) every miss...
        assert imiss_on >= imiss_off * 0.9
        # ...but straight-line fetch stall collapses.
        assert stall_on < stall_off * 0.5

    def test_prefetch_speeds_up_straightline_code(self):
        machine_off, _, _ = run(0)
        machine_on, _, _ = run(4)
        assert machine_on.time < machine_off.time

    def test_disabled_by_default(self):
        assert MachineConfig().istream_entries == 0

    def test_stream_buffer_bounded(self):
        machine, _, _ = run(2)
        assert len(machine.cores[0]._istream) <= 2

    def test_architectural_results_unchanged(self):
        machine_off, _, _ = run(0)
        machine_on, _, _ = run(4)
        assert (machine_off.processes[0].iregs
                == machine_on.processes[0].iregs)
