"""End-to-end tests for profiling sessions."""

import pytest

from conftest import make_copy_workload
from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType


def make_session(**overrides):
    defaults = dict(cycles_period=(120, 128), event_period=64, seed=2)
    defaults.update(overrides)
    return ProfileSession(MachineConfig(), SessionConfig(**defaults))


class TestSessionRun:
    def test_profiles_produced(self):
        result = make_session().run(make_copy_workload(n=2000))
        assert "copy.prog" in result.profiles
        assert result.total_samples(EventType.CYCLES) > 50

    def test_default_mode_collects_imiss(self):
        result = make_session(mode="default").run(
            make_copy_workload(n=2000))
        assert EventType.IMISS in result.driver.event_samples or True
        # IMISS sampling is configured even if this tiny loop misses
        # too rarely to overflow the counter.
        assert result.machine.cores[0].counters.counts_event(
            EventType.IMISS)

    def test_cycles_mode_has_single_counter(self):
        result = make_session(mode="cycles").run(
            make_copy_workload(n=1000))
        assert len(result.machine.cores[0].counters.slots) == 1

    def test_mux_mode_rotates_events(self):
        result = make_session(mode="mux", drain_interval=5000).run(
            make_copy_workload(n=4000))
        slots = result.machine.cores[0].counters.slots
        assert len(slots) == 2
        # After several drains the mux slot moved off IMISS.
        assert result.daemon.drains > 2

    def test_deterministic_given_seed(self):
        r1 = make_session().run(make_copy_workload(n=1000))
        r2 = make_session().run(make_copy_workload(n=1000))
        assert r1.cycles == r2.cycles
        assert (r1.profile_for("copy.prog").counts
                == r2.profile_for("copy.prog").counts)

    def test_different_seed_changes_timing(self):
        r1 = make_session(seed=1).run(make_copy_workload(n=1000))
        r2 = make_session(seed=9).run(make_copy_workload(n=1000))
        assert r1.cycles != r2.cycles  # page mapping differs

    def test_stats_keys(self):
        result = make_session().run(make_copy_workload(n=1000))
        stats = result.stats()
        for key in ("instructions", "cycles", "driver_samples",
                    "driver_miss_rate", "daemon_cost_per_sample",
                    "daemon_resident_bytes"):
            assert key in stats

    def test_max_instructions_respected(self):
        result = make_session().run(make_copy_workload(n=100000),
                                    max_instructions=5000)
        assert result.instructions <= 6000


class TestOverhead:
    def test_profiling_overhead_small_but_positive(self):
        session = make_session(cycles_period=(1920, 2048))
        workload = make_copy_workload(n=20000)
        base = session.run_baseline(workload)
        prof = session.run(workload)
        overhead = (prof.cycles - base.cycles) / base.cycles
        assert 0.0 <= overhead < 0.10

    def test_charge_overhead_false_is_free(self):
        session = make_session(charge_overhead=False)
        workload = make_copy_workload(n=5000)
        base = session.run_baseline(workload)
        prof = session.run(workload)
        assert prof.cycles == base.cycles

    def test_baseline_matches_profiled_instruction_stream(self):
        session = make_session()
        workload = make_copy_workload(n=2000)
        base = session.run_baseline(workload)
        prof = session.run(workload)
        assert base.instructions == prof.instructions


class TestDatabaseIntegration:
    def test_db_written(self, tmp_path):
        session = make_session(db_root=str(tmp_path / "db"))
        result = session.run(make_copy_workload(n=2000))
        assert result.database is not None
        counts, period = result.database.load("copy.prog",
                                              EventType.CYCLES)
        assert sum(counts.values()) == result.profile_for(
            "copy.prog").total(EventType.CYCLES)


class TestBundleRoundtrip:
    def test_save_and_load_bundle(self, tmp_path):
        from repro.collect.bundle import load_bundle, save_bundle

        result = make_session().run(make_copy_workload(n=2000))
        save_bundle(result, str(tmp_path / "bundle"))
        profiles, meta = load_bundle(str(tmp_path / "bundle"))
        assert "copy.prog" in profiles
        original = result.profile_for("copy.prog")
        loaded = profiles["copy.prog"]
        assert (loaded.total(EventType.CYCLES)
                == original.total(EventType.CYCLES))
        assert loaded.periods[EventType.CYCLES] == pytest.approx(124.0)
