"""The (modified) system loader.

The paper's daemon learns where images live from three sources: a
modified ``/sbin/loader`` for dynamic images, a kernel exec-path
recognizer for static images, and a scan of already-running processes.
Here a single :class:`Loader` plays all three roles: it assigns
non-overlapping link addresses, links images, and emits
:class:`LoadMapEvent` notifications to registered listeners (the
profiling daemon subscribes to these).

As on the paper's systems, a shared image is mapped at the same address
in every process that uses it.
"""

from collections import namedtuple

#: Notification sent to listeners when an image is mapped into a process.
LoadMapEvent = namedtuple("LoadMapEvent", "pid image base source")


class Loader:
    """Links images at unique addresses and broadcasts load maps."""

    FIRST_BASE = 0x0001_0000
    ALIGN = 0x1_0000  # 64 KB between images

    def __init__(self):
        self._next_base = self.FIRST_BASE
        self._listeners = []
        self.images = []

    def add_listener(self, callback):
        """Register callback(LoadMapEvent); used by the profiling daemon."""
        self._listeners.append(callback)

    def remove_listener(self, callback):
        """Unregister *callback* (a dead daemon stops hearing events).

        Unregistering twice is legal and does nothing.
        """
        if callback in self._listeners:
            self._listeners.remove(callback)

    def link(self, image):
        """Link *image* at the next free address range (idempotent)."""
        if image.base is not None:
            return image
        image.link(self._next_base)
        end = max(image.end, (image.data_base or 0) + image.data_size)
        self._next_base = (end + self.ALIGN) & ~(self.ALIGN - 1)
        self.images.append(image)
        return image

    def notify_exec(self, pid, images, source="exec"):
        """Announce that *pid* mapped *images* (the loadmap path)."""
        for image in images:
            if image.base is None:
                raise ValueError("image %s not linked" % image.name)
            event = LoadMapEvent(pid, image, image.base, source)
            for listener in self._listeners:
                listener(event)

    def image_at(self, addr):
        """Return the image containing *addr*, or None."""
        for image in self.images:
            if addr in image:
                return image
        return None
