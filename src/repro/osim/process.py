"""Simulated processes and their address spaces.

Each process owns architectural state (registers, PC, memory contents)
plus the pipeline scoreboard, so execution resumes transparently across
context switches.  Virtual data pages are mapped to pseudo-random
physical pages on first touch, with the assignment drawn from a per-run
seed: physically-indexed caches therefore see different conflict
patterns in different runs, which is the paper's explanation for the
wave5 benchmark's run-to-run variance.
"""

from repro.alpha.regs import NUM_REGS
from repro.ctx.context import NULL_CTX

#: Address a top-level ``ret`` returns to; reaching it exits the process.
EXIT_ADDR = 0xF0000000

#: Base of the per-process stack region (grows down).
STACK_TOP = 0x7F000000
STACK_BYTES = 1 << 20


class Process:
    """One runnable process: registers, memory, page mapping."""

    def __init__(self, pid, name, images, entry, page_rng, page_bits=13,
                 ctx=NULL_CTX):
        self.pid = pid
        self.asn = pid
        self.name = name
        # Request-class identity (repro.ctx); NULL_CTX = unattributed.
        self.ctx = ctx
        self.images = list(images)
        self.memory = {}
        self.iregs = [0] * 32
        self.fregs = [0.0] * 32
        self.reg_ready = [0] * NUM_REGS
        self.reg_ready_static = [0] * NUM_REGS
        self.reg_dyn_reason = {}
        self.pc = entry
        self.exit_addr = EXIT_ADDR
        self.last_pc = entry
        self.resume_time = 0
        self.imul_free = 0
        self.fdiv_free = 0
        self.exited = False
        self.iregs[26] = EXIT_ADDR  # ra: top-level return exits
        self.iregs[30] = STACK_TOP  # sp
        self._page_rng = page_rng
        self._page_bits = page_bits
        self._page_map = {}
        # Cycles and instructions this process has spent on a CPU (set
        # by the scheduler; the per-request accounting dcpitrace's tail
        # analysis reads).
        self.cpu_cycles = 0
        self.instructions = 0

    def translate_data(self, vpage):
        """Map a virtual data page to its per-run physical page."""
        ppage = self._page_map.get(vpage)
        if ppage is None:
            ppage = self._page_rng.getrandbits(19)
            self._page_map[vpage] = ppage
        return ppage

    def set_args(self, **registers):
        """Set initial registers by name, e.g. ``set_args(a0=..., a1=...)``."""
        from repro.alpha import regs as _regs

        for name, value in registers.items():
            num = _regs.parse_register(name)
            if num < 32:
                self.iregs[num] = value & ((1 << 64) - 1)
            else:
                self.fregs[num - 32] = float(value)
        return self

    def poke(self, addr, value):
        """Write *value* (int or float) at 8-byte-aligned address *addr*."""
        self.memory[addr & ~7] = value

    def peek(self, addr):
        """Read the 8-byte-aligned value at *addr* (0 if never written)."""
        return self.memory.get(addr & ~7, 0)

    def __repr__(self):
        state = "exited" if self.exited else "pc=%#x" % self.pc
        return "<Process %d %s %s>" % (self.pid, self.name, state)
