"""Operating-system substrate: processes, loader, scheduler."""

from repro.osim.loader import Loader, LoadMapEvent
from repro.osim.process import EXIT_ADDR, Process
from repro.osim.sched import Scheduler

__all__ = ["Process", "EXIT_ADDR", "Loader", "LoadMapEvent", "Scheduler"]
