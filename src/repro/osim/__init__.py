"""Operating-system substrate: processes, loader, scheduler."""

from repro.osim.process import Process, EXIT_ADDR
from repro.osim.loader import Loader, LoadMapEvent
from repro.osim.sched import Scheduler

__all__ = ["Process", "EXIT_ADDR", "Loader", "LoadMapEvent", "Scheduler"]
