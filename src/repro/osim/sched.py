"""A quantum-based round-robin scheduler over the machine's cores.

Just enough operating system to produce the workload shapes the paper
measures: timeshared uniprocessors with many PIDs (the gcc workload's
high hash-eviction rate), and multiprocessors running one process per
CPU (AltaVista, DSS).
"""

from collections import deque

from repro.cpu import pipeline


class Scheduler:
    """Round-robin scheduler with a fixed cycle quantum."""

    def __init__(self, machine, quantum=None):
        self.machine = machine
        self.quantum = quantum or machine.config.quantum
        self._queues = [deque() for _ in machine.cores]
        self.context_switches = 0

    def submit(self, process, cpu=None):
        """Queue *process*; round-robins across CPUs if *cpu* is None."""
        if cpu is None:
            cpu = min(range(len(self._queues)),
                      key=lambda i: len(self._queues[i]))
        self._queues[cpu].append(process)

    def pending(self):
        return sum(len(q) for q in self._queues)

    def run(self, max_instructions=None):
        """Run all queued processes to completion (or the budget).

        Cores execute one quantum each in turn so their local clocks stay
        roughly aligned.  Returns the total instructions retired.
        """
        machine = self.machine
        start_retired = machine.instructions_retired
        while True:
            progressed = False
            for cpu, queue in enumerate(self._queues):
                if not queue:
                    continue
                if (max_instructions is not None
                        and machine.instructions_retired - start_retired
                        >= max_instructions):
                    return machine.instructions_retired - start_retired
                proc = queue.popleft()
                core = machine.cores[cpu]
                if machine.ctx_sink is not None:
                    # Publish the dispatched process's request context
                    # to the profiling driver's per-CPU context
                    # register (repro.ctx); None when profiling runs
                    # without the context dimension, so the default
                    # path costs one attribute read.
                    machine.ctx_sink(cpu, proc.pid, proc.ctx)
                inst_limit = None
                if max_instructions is not None:
                    inst_limit = (max_instructions
                                  - (machine.instructions_retired
                                     - start_retired))
                before = core.time
                before_retired = core.instructions_retired
                status = core.run(proc, cycle_limit=self.quantum,
                                  inst_limit=inst_limit)
                proc.cpu_cycles += core.time - before
                proc.instructions += (core.instructions_retired
                                      - before_retired)
                progressed = True
                if status == pipeline.EXITED:
                    proc.exited = True
                elif status == pipeline.QUANTUM:
                    queue.append(proc)
                    self.context_switches += 1
                    if machine.fastpath is not None:
                        # No flush: block-cache keys are entry-relative
                        # and the scoreboard lives on the Process, so a
                        # switch cannot stale a cached schedule.  The
                        # notification keeps an obs counter the A/B
                        # suite uses to assert exactly that.
                        machine.fastpath.note_context_switch()
                else:  # budget exhausted
                    queue.append(proc)
            if not progressed:
                break
        return machine.instructions_retired - start_retired
