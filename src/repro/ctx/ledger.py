"""The schema-versioned context ledger the database commits atomically.

The daemon keeps one :class:`ContextLedger` per epoch: per-class sample
totals by event, per-class culprit procedures (CYCLES samples), and
per-request OS accounting (cycles and instructions per process) folded
in by the session at the end of the run.  ``merge_to_disk`` commits
the ledger under the manifest's ``ctx`` key in the *same atomic
manifest rename* as the samples -- exactly like the fleet store's
ledger -- so a crash can never separate a checkpoint from its
attribution, and recovery reloads both together.

Everything in the ledger is keyed by request-class *name*, never by
the driver's interned ids: ids are per-run, arrival-order-dependent
and ephemeral, while names merge commutatively.  Shard merges are
therefore order-independent (integer sums plus idempotent per-request
entries), which ``tests/test_parallel.py`` property-tests byte-for-byte
via :func:`canonical_ledger_bytes`.
"""

import json

from repro.ctx.context import OTHER_CLASS, OTHER_ID, span_id

#: Ledger schema version (bump on any shape change; stored in every
#: committed blob so readers can reject blobs they do not understand).
CTX_SCHEMA = 1


class ContextLedger:
    """Per-epoch request-class attribution, mergeable and JSON-safe."""

    def __init__(self):
        self.schema = CTX_SCHEMA
        #: str(interned id) -> class name (per-run binding; the daemon
        #: absorbs the driver's table every drain).
        self.ids = {str(OTHER_ID): OTHER_CLASS}
        #: class name -> {event value: samples}.
        self.classes = {}
        #: class name -> {"image:procedure": CYCLES samples}.
        self.culprits = {}
        #: class name -> {request key: {"cycles", "instructions",
        #: "process", "done"}} -- OS accounting per request (process).
        self.requests = {}
        #: samples drained under an id the daemon never learned.
        self.other_samples = 0
        # Context-table accounting (latest driver snapshot).
        self.table_slots = 0
        self.table_evictions = 0
        self.table_interns = 0

    # -- write path (daemon/session) ---------------------------------------

    def bind(self, ident, name):
        """Learn that interned id *ident* means class *name*."""
        self.ids[str(ident)] = name

    def absorb_table(self, table):
        """Absorb the driver's :class:`ContextTable` snapshot.

        Ids are monotonic and never reused, so repeatedly unioning the
        table's name map is safe; the counters are driver-lifetime
        totals and replace the previous snapshot.
        """
        for ident, name in table.names.items():
            self.ids[str(ident)] = name
        self.table_slots = table.slots
        self.table_evictions = table.evictions
        self.table_interns = table.interns

    def class_for(self, ident):
        """The class name bound to *ident* (``<other>`` if unknown)."""
        return self.ids.get(str(ident), OTHER_CLASS)

    def add_sample(self, ident, event, count):
        """Attribute *count* samples of *event* to *ident*'s class."""
        name = self.ids.get(str(ident))
        if name is None:
            name = OTHER_CLASS
            self.other_samples += count
        by_event = self.classes.setdefault(name, {})
        value = str(getattr(event, "value", event))
        by_event[value] = by_event.get(value, 0) + count
        return name

    def add_culprit(self, name, image_name, procedure, count):
        """Charge *count* CYCLES samples to a culprit procedure."""
        by_proc = self.culprits.setdefault(name, {})
        key = "%s:%s" % (image_name, procedure)
        by_proc[key] = by_proc.get(key, 0) + count

    def add_request(self, name, key, cycles, instructions,
                    process="", done=False):
        """Record one request's OS accounting (idempotent by *key*).

        A request is a process; *key* must be unique per request
        across every shard that could be merged (the session uses
        ``"<seed>:<pid>"``).  Re-folding the same request replaces its
        entry, so checkpoints and crash-recovery re-runs never double
        count.
        """
        self.requests.setdefault(name, {})[str(key)] = {
            "cycles": int(cycles),
            "instructions": int(instructions),
            "process": process,
            "done": bool(done),
        }

    # -- serialization ------------------------------------------------------

    def to_meta(self):
        """JSON-safe snapshot for the database manifest's ``ctx`` key."""
        return {
            "schema": self.schema,
            "ids": dict(self.ids),
            "classes": {name: dict(by_event)
                        for name, by_event in self.classes.items()},
            "culprits": {name: dict(by_proc)
                         for name, by_proc in self.culprits.items()},
            "requests": {name: {key: dict(entry)
                                for key, entry in by_key.items()}
                         for name, by_key in self.requests.items()},
            "spans": {name: span_id(name) for name in self.classes},
            "other_samples": self.other_samples,
            "table_slots": self.table_slots,
            "table_evictions": self.table_evictions,
            "table_interns": self.table_interns,
        }

    @classmethod
    def from_meta(cls, meta):
        """Rebuild a ledger from :meth:`to_meta` output (or None)."""
        ledger = cls()
        if not meta:
            return ledger
        schema = meta.get("schema", 0)
        if schema > CTX_SCHEMA:
            raise ValueError(
                "context ledger schema %s is newer than supported %s"
                % (schema, CTX_SCHEMA))
        ledger.ids.update(meta.get("ids", {}))
        ledger.classes = {name: dict(by_event)
                          for name, by_event in
                          meta.get("classes", {}).items()}
        ledger.culprits = {name: dict(by_proc)
                           for name, by_proc in
                           meta.get("culprits", {}).items()}
        ledger.requests = {name: {key: dict(entry)
                                  for key, entry in by_key.items()}
                           for name, by_key in
                           meta.get("requests", {}).items()}
        ledger.other_samples = meta.get("other_samples", 0)
        ledger.table_slots = meta.get("table_slots", 0)
        ledger.table_evictions = meta.get("table_evictions", 0)
        ledger.table_interns = meta.get("table_interns", 0)
        return ledger


def merge_ledger_meta(metas):
    """Reduce ledger blobs into one (commutative and associative).

    Sample and culprit counts sum per (class, event/procedure) key;
    request entries union (equal keys carry equal accounting when the
    same shard is merged twice, and elementwise ``max`` breaks any
    tie, keeping the reduction order-independent); table accounting
    sums (per-shard tables are disjoint).  Per-run id bindings are
    dropped: ids are arrival-order-dependent and meaningless across
    runs, and keeping them would break merge order-independence.
    """
    merged = ContextLedger()
    merged.ids = {str(OTHER_ID): OTHER_CLASS}
    for meta in metas:
        if meta is None:
            continue
        if hasattr(meta, "to_meta"):
            meta = meta.to_meta()
        for name, by_event in meta.get("classes", {}).items():
            dest = merged.classes.setdefault(name, {})
            for event, count in by_event.items():
                dest[event] = dest.get(event, 0) + count
        for name, by_proc in meta.get("culprits", {}).items():
            dest = merged.culprits.setdefault(name, {})
            for proc, count in by_proc.items():
                dest[proc] = dest.get(proc, 0) + count
        for name, by_key in meta.get("requests", {}).items():
            dest = merged.requests.setdefault(name, {})
            for key, entry in by_key.items():
                seen = dest.get(key)
                if seen is None:
                    dest[key] = dict(entry)
                else:
                    for field in ("cycles", "instructions"):
                        seen[field] = max(seen.get(field, 0),
                                          entry.get(field, 0))
                    seen["done"] = seen.get("done") or entry.get("done")
        merged.other_samples += meta.get("other_samples", 0)
        merged.table_slots += meta.get("table_slots", 0)
        merged.table_evictions += meta.get("table_evictions", 0)
        merged.table_interns += meta.get("table_interns", 0)
    return merged.to_meta()


def canonical_ledger_bytes(meta):
    """Canonical bytes of a ledger blob (the byte-identity oracle)."""
    if hasattr(meta, "to_meta"):
        meta = meta.to_meta()
    return json.dumps(meta, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
