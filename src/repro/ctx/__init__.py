"""Per-request attribution: the context dimension (``repro.ctx``).

The paper attributes cycles to instructions and images; the modern
continuous-profiling standard additionally correlates profiles with
*traces*: traces say where the time went, profiles say why.  This
package carries a request-class identity ("context") from the workload
that spawns a process, through the OS simulator's context switches and
the driver's sample hash key, into a schema-versioned ledger the
database commits atomically with the samples -- so ``dcpitrace`` can
answer "which *requests* eat the cycles", not just which instructions.

Zero-cost when off: a session that never enables the context dimension
publishes nothing, hashes 3-tuples exactly as before, and produces
byte-identical databases (differential-tested in ``tests/test_ctx.py``).
"""

from repro.ctx.context import (NULL_CTX, OTHER_CLASS, OTHER_ID,
                               ContextTable, span_id)
from repro.ctx.ledger import (CTX_SCHEMA, ContextLedger,
                              canonical_ledger_bytes, merge_ledger_meta)

__all__ = [
    "NULL_CTX",
    "OTHER_CLASS",
    "OTHER_ID",
    "ContextTable",
    "span_id",
    "CTX_SCHEMA",
    "ContextLedger",
    "canonical_ledger_bytes",
    "merge_ledger_meta",
]
