"""The context register and the driver's fixed-size context table.

A *context* is a request-class label a workload attaches to a process
at spawn time (``machine.spawn(..., ctx="search.query")``).  The OS
simulator publishes the dispatched process's context to the driver on
every context switch -- the software analogue of the paper's per-CPU
"context register" next to the performance counters -- and the driver
latches its interned small-integer id into the sample hash key.

The interning table mirrors the paper's hash-table design philosophy
(section 4.2): fixed capacity chosen up front, a mod-counter victim
picked on overflow, and every eviction *accounted* rather than silent.
Ids are monotonically increasing and never reused, so a drained sample
keyed under an id that has since been evicted still resolves to the
right class name; only ids the daemon never learned fall back to the
``<other>`` bucket (also accounted).

``NULL_CTX`` is the zero-cost null object: processes default to it,
and the driver's publish path must only touch the table under the
guarded ``if ctx is not NULL_CTX:`` pattern (dcpicheck's
``lint/unguarded-ctx-write`` rule enforces exactly that).
"""

import zlib


class _NullContext:
    """Sentinel for "no request context" (the NULL-object pattern)."""

    __slots__ = ()

    def __repr__(self):
        return "NULL_CTX"

    def __bool__(self):
        return False


#: The one shared "no context" sentinel (compare with ``is``).
NULL_CTX = _NullContext()

#: Reserved context id for "no/unknown context" samples.
OTHER_ID = 0

#: Class name every unattributable sample lands under.
OTHER_CLASS = "<other>"


def span_id(name):
    """Deterministic 8-hex-digit span id for request class *name*.

    A pure function of the name, so profiles, trace spans and shard
    merges agree on the id without any coordination -- the linkage
    that lets dcpimon traces and dcpitrace reports share identity.
    """
    return "%08x" % (zlib.crc32(str(name).encode("utf-8")) & 0xFFFFFFFF)


class ContextTable:
    """Fixed-capacity request-class interning table (driver-side).

    ``intern`` maps a context label to a small integer id for the
    sample hash key.  The table holds at most *slots* resident classes;
    interning a new class into a full table evicts a victim chosen by
    a mod counter (the paper's replacement policy) and bumps the
    ``evictions`` counter.  A re-interned class receives a *fresh* id
    -- ids are never reused -- so thrash shows up as extra distinct
    ids and accounted evictions, never as cross-class sample aliasing.
    """

    def __init__(self, slots=64):
        if slots < 1:
            raise ValueError("context table needs at least one slot")
        self.slots = slots
        #: resident class name -> id.
        self._ids = {}
        #: resident names in slot order (victim selection).
        self._resident = []
        self._mod_counter = 0
        self._next_id = OTHER_ID + 1
        #: id -> class name for every id ever issued (monotonic).
        self.names = {OTHER_ID: OTHER_CLASS}
        self.hits = 0
        self.interns = 0
        self.evictions = 0

    def intern(self, ctx):
        """Return the resident id for *ctx*, interning it if needed."""
        name = str(ctx)
        ident = self._ids.get(name)
        if ident is not None:
            self.hits += 1
            return ident
        self.interns += 1
        if len(self._resident) >= self.slots:
            self.evictions += 1
            victim_slot = self._mod_counter % self.slots
            self._mod_counter += 1
            victim = self._resident[victim_slot]
            del self._ids[victim]
            self._resident[victim_slot] = name
        else:
            self._resident.append(name)
        ident = self._next_id
        self._next_id += 1
        self._ids[name] = ident
        self.names[ident] = name
        return ident

    @property
    def resident(self):
        """Number of classes currently resident."""
        return len(self._ids)

    def stats(self):
        """Accounting snapshot (mirrors the hash table's counters)."""
        return {
            "slots": self.slots,
            "resident": self.resident,
            "hits": self.hits,
            "interns": self.interns,
            "evictions": self.evictions,
        }
