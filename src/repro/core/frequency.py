"""Frequency and CPI estimation from CYCLES samples (paper section 6.1).

The sample count S_i of instruction *i* is proportional to F_i * C_i
(frequency times cycles-at-head); the job here is to factor that
product.  The heuristic follows the paper:

1. group blocks and edges into frequency-equivalence classes;
2. within each class, look at the *issue points* (instructions with
   statically-computed minimum head time M_i > 0): an issue point that
   suffered no dynamic stall has S_i / M_i ~= F (in sample units);
3. average a cluster of the smaller ratios (small ratios are the stall-
   free issue points), refined over dependence chains, falling back to
   sum(S)/sum(M) for sample-poor classes;
4. propagate estimates through the CFG's flow constraints (frequency of
   a block equals the sum of its incoming and of its outgoing edges);
5. grade each estimate low/medium/high confidence.

Counts are expressed in *execution-count units*: ``count = F * P``
where P is the sampling period, directly comparable with instrumented
execution counts (the paper's Figures 8 and 9 comparison).
"""

from dataclasses import dataclass

from repro.core.equivalence import compute_equivalence

LOW, MEDIUM, HIGH = "low", "medium", "high"
_CONF_RANK = {LOW: 0, MEDIUM: 1, HIGH: 2}


@dataclass
class FrequencyConfig:
    """Tunables of the estimation heuristic (paper defaults in spirit)."""

    cluster_ratio: float = 1.5     # max/min ratio within a cluster
    min_cluster_frac: float = 0.25  # cluster must hold this share of points
    min_class_samples: int = 40    # below this, use sum(S)/sum(M)
    high_conf_points: int = 3
    high_conf_tightness: float = 1.25
    high_conf_samples: int = 200
    max_propagation_passes: int = 100


class FrequencyAnalysis:
    """Result of frequency estimation for one procedure."""

    def __init__(self, cfg, classes, period):
        self.cfg = cfg
        self.classes = classes
        self.period = period
        #: class id -> estimated count (executions, i.e. F * P), or None
        self.class_count = {}
        #: class id -> confidence level
        self.class_confidence = {}
        #: class id -> True if the estimate came from flow propagation
        self.class_propagated = {}

    # -- lookups -----------------------------------------------------------

    def block_count(self, block_index):
        """Estimated executions of block *block_index* (0 if unknown)."""
        cid = self.classes.class_of.get(block_index)
        value = self.class_count.get(cid)
        return value if value is not None else 0.0

    def edge_count(self, edge_index):
        cid = self.classes.class_of.get(("e", edge_index))
        value = self.class_count.get(cid)
        return value if value is not None else 0.0

    def count_of(self, addr):
        """Estimated executions of the instruction at *addr*."""
        block = self.cfg.block_at(addr)
        return self.block_count(block.index)

    def confidence_of(self, addr):
        block = self.cfg.block_at(addr)
        cid = self.classes.class_of.get(block.index)
        return self.class_confidence.get(cid, LOW)

    def block_confidence(self, block_index):
        cid = self.classes.class_of.get(block_index)
        return self.class_confidence.get(cid, LOW)

    def edge_confidence(self, edge_index):
        cid = self.classes.class_of.get(("e", edge_index))
        return self.class_confidence.get(cid, LOW)

    def cpi_of(self, addr, samples):
        """Average cycles at head per execution for the instruction at
        *addr* given its CYCLES sample count."""
        count = self.count_of(addr)
        if count <= 0:
            return 0.0
        return samples * self.period / count


def _issue_point_ratios(block, schedule, samples, config):
    """Return the list of (ratio, weight_samples) for a block's issue
    points, with dependence-chain refinement (section 6.1.3).

    For an issue point *i* whose static stall waits on an earlier
    instruction *j* in the same block, the ratio uses the sums of S and
    M over (j, i]: dynamic stalls of *j* overlap *i*'s static stall, so
    the summed ratio is more reliable than S_i / M_i alone.
    """
    rows = schedule.rows
    addr_index = {row.inst.addr: k for k, row in enumerate(rows)}
    ratios = []
    for k, row in enumerate(rows):
        if row.m <= 0:
            continue
        start = k
        if row.dep_source is not None and row.dep_source in addr_index:
            j = addr_index[row.dep_source]
            if j < k:
                start = j + 1
        sum_s = 0
        sum_m = 0
        for pos in range(start, k + 1):
            sum_s += samples.get(rows[pos].inst.addr, 0)
            sum_m += rows[pos].m
        if sum_m > 0:
            ratios.append((sum_s / sum_m, sum_s))
    return ratios


def _cluster_estimate(ratios, config):
    """Average the smallest tight cluster of ratios.

    Returns (estimate, n_points, tightness) or None if no acceptable
    cluster exists.
    """
    if not ratios:
        return None
    # Zero ratios are issue points that received no samples at all --
    # sampling noise, not evidence of zero frequency (the instruction
    # demonstrably executed if its class has samples).  Skip them.
    values = sorted(r for r, _ in ratios if r > 0)
    if not values:
        return None
    n = len(values)
    min_size = max(1, int(config.min_cluster_frac * n))
    for start in range(n):
        lo = values[start]
        cluster = [v for v in values[start:]
                   if v <= config.cluster_ratio * lo]
        if len(cluster) >= min_size:
            estimate = sum(cluster) / len(cluster)
            tightness = max(cluster) / min(cluster)
            return estimate, len(cluster), tightness
    return None


def estimate_frequencies(cfg, schedules, samples, period, config=None,
                         edge_samples=None, obs=None):
    """Estimate execution counts for every class of *cfg*.

    Args:
        cfg: the procedure's :class:`CFG`.
        schedules: {block index: BlockSchedule} from the static scheduler.
        samples: {absolute address: CYCLES sample count}.
        period: mean sampling period in cycles.
        config: optional :class:`FrequencyConfig`.
        edge_samples: optional {(from addr, to addr): count} from the
            double-sampling prototype (paper section 7); branch-sourced
            pairs split a known block count between a conditional
            branch's two out-edges by their sampled ratio.
        obs: optional :class:`repro.obs.Observability`; wraps the pass
            in an ``analyze.frequency`` span (with the equivalence
            phase nested inside as ``analyze.equivalence``).

    Returns a :class:`FrequencyAnalysis`.
    """
    from repro.obs import NULL_OBS

    obs = obs or NULL_OBS
    with obs.span("analyze.frequency", proc=cfg.proc.name):
        analysis = _estimate_frequencies(cfg, schedules, samples, period,
                                         config, edge_samples, obs)
    obs.counter("analyze.frequency.classes_estimated").inc(
        len(analysis.class_count))
    return analysis


def _estimate_frequencies(cfg, schedules, samples, period, config,
                          edge_samples, obs):
    config = config or FrequencyConfig()
    classes = compute_equivalence(cfg, obs=obs)
    analysis = FrequencyAnalysis(cfg, classes, period)

    # Phase 1: direct estimates from issue points, class by class.
    for cid, members in classes.members.items():
        blocks = [m for m in members if not isinstance(m, tuple)]
        if not blocks:
            continue
        ratios = []
        class_samples = 0
        sum_s_all = 0
        sum_m_all = 0
        for bindex in blocks:
            schedule = schedules[bindex]
            ratios.extend(_issue_point_ratios(
                cfg.blocks[bindex], schedule, samples, config))
            for row in schedule.rows:
                s = samples.get(row.inst.addr, 0)
                class_samples += s
                sum_s_all += s
                sum_m_all += row.m
        if class_samples == 0:
            continue  # no evidence; leave for propagation
        if class_samples < config.min_class_samples or not ratios:
            if sum_m_all > 0:
                analysis.class_count[cid] = sum_s_all / sum_m_all * period
                analysis.class_confidence[cid] = LOW
                analysis.class_propagated[cid] = False
            continue
        clustered = _cluster_estimate(ratios, config)
        if clustered is None:
            if sum_m_all > 0:
                analysis.class_count[cid] = sum_s_all / sum_m_all * period
                analysis.class_confidence[cid] = LOW
                analysis.class_propagated[cid] = False
            continue
        estimate, points, tightness = clustered
        analysis.class_count[cid] = estimate * period
        if (points >= config.high_conf_points
                and tightness <= config.high_conf_tightness
                and class_samples >= config.high_conf_samples):
            confidence = HIGH
        elif points >= 2 and class_samples >= config.min_class_samples:
            confidence = MEDIUM
        else:
            confidence = LOW
        analysis.class_confidence[cid] = confidence
        analysis.class_propagated[cid] = False

    # Phase 2: local propagation along flow constraints.
    _propagate(cfg, classes, analysis, config)

    # Phase 3: edge samples, when collected, split known block counts
    # between conditional out-edges by the sampled taken ratio (both
    # edges are sampled under the same time bias -- the branch's own
    # head time -- so their sample ratio estimates their execution
    # ratio).  Applied only where flow constraints left the edges
    # unknown: sampled ratios are binomially noisy, so they must never
    # override exact flow arithmetic.
    if edge_samples:
        changed = _apply_edge_samples(cfg, classes, analysis,
                                      edge_samples, config)
        if changed:
            _propagate(cfg, classes, analysis, config)
    return analysis


def _apply_edge_samples(cfg, classes, analysis, edge_samples, config):
    min_evidence = 8
    changed = False
    for block in cfg.blocks:
        last = block.last
        if last.info.kind not in ("cbranch", "fbranch"):
            continue
        taken_edge = next((e for e in block.succs if e.kind == "taken"),
                          None)
        fall_edge = next((e for e in block.succs if e.kind == "fall"),
                         None)
        if taken_edge is None or fall_edge is None:
            continue
        s_taken = edge_samples.get((last.addr, last.target), 0)
        s_fall = edge_samples.get((last.addr, last.addr + 4), 0)
        total = s_taken + s_fall
        if total < min_evidence:
            continue
        block_cid = classes.class_of.get(block.index)
        block_count = analysis.class_count.get(block_cid)
        if block_count is None:
            continue
        ratio = s_taken / total
        for edge, share in ((taken_edge, ratio), (fall_edge, 1 - ratio)):
            cid = classes.class_of.get(("e", edge.index))
            if analysis.class_count.get(cid) is None:
                analysis.class_count[cid] = block_count * share
                analysis.class_confidence[cid] = MEDIUM
                analysis.class_propagated[cid] = True
                changed = True
    return changed


def _propagate(cfg, classes, analysis, config):
    """Iteratively solve block = sum(in edges) = sum(out edges).

    New estimates are written to the whole equivalence class at once
    and never go negative; existing (sampled) estimates are preserved.
    Linear-time per pass; passes are bounded.
    """
    class_of = classes.class_of
    count = analysis.class_count

    def known(node):
        return count.get(class_of[node]) is not None

    def value(node):
        return count[class_of[node]]

    def set_value(node, val, source_conf):
        cid = class_of[node]
        if count.get(cid) is not None:
            return False
        count[cid] = max(0.0, val)
        analysis.class_confidence[cid] = source_conf
        analysis.class_propagated[cid] = True
        return True

    def conf_of(node):
        return analysis.class_confidence.get(class_of[node], LOW)

    for _ in range(config.max_propagation_passes):
        changed = False
        for block in cfg.blocks:
            for edges, orientation in ((block.preds, "in"),
                                       (block.succs, "out")):
                if orientation == "in" and block.index == cfg.entry:
                    continue
                real = [e for e in edges]
                if not real:
                    continue
                enodes = [("e", e.index) for e in real]
                unknown = [n for n in enodes if not known(n)]
                if known(block.index):
                    if len(unknown) == 1:
                        others = sum(value(n) for n in enodes
                                     if known(n))
                        conf = min(
                            [conf_of(block.index)]
                            + [conf_of(n) for n in enodes if known(n)],
                            key=lambda c: _CONF_RANK[c])
                        conf = _degrade(conf)
                        changed |= set_value(unknown[0],
                                             value(block.index) - others,
                                             conf)
                elif not unknown:
                    total = sum(value(n) for n in enodes)
                    conf = min((conf_of(n) for n in enodes),
                               key=lambda c: _CONF_RANK[c])
                    conf = _degrade(conf)
                    changed |= set_value(block.index, total, conf)
        if not changed:
            break


def _degrade(confidence):
    """Propagated estimates are one notch less trustworthy."""
    if confidence == HIGH:
        return MEDIUM
    return LOW
