"""The paper's analysis subsystem: from samples to frequency, CPI and
stall explanations (sections 6.1-6.3)."""

from repro.core.analyze import (AnalysisConfig, InstructionAnalysis,
                                ProcedureAnalysis, analyze_image,
                                analyze_procedure)
from repro.core.cfg import CFG, BasicBlock, build_cfg
from repro.core.frequency import FrequencyAnalysis, estimate_frequencies
from repro.core.schedule import BlockSchedule, schedule_block

__all__ = [
    "AnalysisConfig",
    "InstructionAnalysis",
    "ProcedureAnalysis",
    "analyze_image",
    "analyze_procedure",
    "CFG",
    "BasicBlock",
    "build_cfg",
    "FrequencyAnalysis",
    "estimate_frequencies",
    "BlockSchedule",
    "schedule_block",
]
