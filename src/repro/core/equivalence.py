"""Frequency-equivalence classes via cycle equivalence
(paper section 6.1.2, reference [14]).

Execution counts of blocks and edges form a *circulation* once a
virtual return edge from exit to entry is added: flow is conserved at
every node.  Two flow edges provably carry equal flow in every valid
execution iff they form a **2-edge cut** of the underlying undirected
graph (removing both disconnects it):

* conservation across the cut forces ``f(e1) = f(e2)`` when the edges
  cross it in opposite directions, and ``f(e1) = f(e2) = 0`` when they
  cross the same way (counts are non-negative);
* a single-edge cut (a bridge) carries no cycle, hence zero flow -- a
  dead block.

This is exactly the cycle-equivalence relation computed in linear time
by Johnson-Pearson-Pingali [14]; we use the direct O(E^2) cut test,
which is plenty for procedure-sized CFGs (see DESIGN.md).  Infinite
loops are handled as in the paper's extension: regions that cannot
reach the exit are connected to it virtually.

Blocks participate by splitting each block into an internal flow edge
(b_in -> b_out) whose flow is the block's execution count, so blocks
and CFG edges land in one unified partition.
"""

import networkx as nx

from repro.core.cfg import EXIT

ENTRY_NODE = "ENTRY"
EXIT_NODE = "EXIT"


class EquivalenceClasses:
    """Partition of blocks and edges into same-frequency classes.

    ``class_of`` maps a block index or an ``("e", edge_index)`` pair to
    a class id; ``members`` is the inverse mapping.  ``zero`` lists
    nodes proved to execute zero times (bridge edges of the flow graph).
    """

    def __init__(self, class_of, members, zero=()):
        self.class_of = class_of
        self.members = members
        self.zero = frozenset(zero)

    def class_of_block(self, index):
        return self.class_of[index]

    def class_of_edge(self, index):
        return self.class_of[("e", index)]

    def __len__(self):
        return len(self.members)


def _flow_edges(cfg):
    """Yield (label, tail, head) flow edges of the expanded graph.

    Labels: block index (int), ("e", i) for CFG edges, "entry" and
    "return" for the virtual boundary edges.
    """
    yield "entry", ENTRY_NODE, ("in", cfg.entry)
    for block in cfg.blocks:
        yield block.index, ("in", block.index), ("out", block.index)
    for edge in cfg.edges:
        head = EXIT_NODE if edge.dst == EXIT else ("in", edge.dst)
        yield ("e", edge.index), ("out", edge.src), head
    yield "return", EXIT_NODE, ENTRY_NODE


def _build_subdivided(cfg):
    """Build the undirected subdivided flow graph.

    Each labeled flow edge (u, v) becomes u -- ("m", label) -- v, so
    parallel edges stay distinguishable and "remove edge" is "remove its
    midpoint node".
    """
    graph = nx.Graph()
    labels = []
    for label, tail, head in _flow_edges(cfg):
        mid = ("m", label)
        graph.add_edge(tail, mid)
        graph.add_edge(mid, head)
        labels.append(label)
    # Infinite-loop handling: nodes with no undirected path to the exit
    # cannot exist here (the subdivided graph is built from a connected
    # CFG), but *directed* dead ends were already given exit edges by
    # the CFG builder; nothing further is needed for the undirected cut
    # test.
    return graph, labels


def _bridge_labels(graph):
    """Return the set of flow-edge labels that are bridges of *graph*."""
    found = set()
    for a, b in nx.bridges(graph):
        for node in (a, b):
            if isinstance(node, tuple) and node[0] == "m":
                found.add(node[1])
    return found


def compute_equivalence(cfg, obs=None):
    """Compute cycle-equivalence classes of blocks and edges of *cfg*.

    With missing CFG edges (unresolved indirect jumps) flow conservation
    cannot be trusted, so every block and edge is its own class, exactly
    as in the paper.  *obs* (optional
    :class:`repro.obs.Observability`) wraps the pass in an
    ``analyze.equivalence`` span and counts the resulting classes.
    """
    from repro.obs import NULL_OBS

    obs = obs or NULL_OBS
    with obs.span("analyze.equivalence", proc=cfg.proc.name):
        classes = _compute_equivalence(cfg)
    obs.counter("analyze.equivalence.classes").inc(len(classes.members))
    obs.counter("analyze.equivalence.zero_flow").inc(len(classes.zero))
    return classes


def _compute_equivalence(cfg):
    nodes = ([block.index for block in cfg.blocks]
             + [("e", edge.index) for edge in cfg.edges])
    if cfg.missing_edges:
        class_of = {node: i for i, node in enumerate(nodes)}
        members = {i: [node] for i, node in enumerate(nodes)}
        return EquivalenceClasses(class_of, members)

    graph, labels = _build_subdivided(cfg)

    # Bridges of the full graph carry zero flow (dead code): each is its
    # own class and takes no part in the cut pairing.
    zero_labels = _bridge_labels(graph)

    parent = {}

    def find(x):
        root = x
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(x, x) != x:
            parent[x], x = root, parent[x]
        return root

    def union(x, y):
        rx, ry = find(x), find(y)
        if rx != ry:
            parent[rx] = ry

    live = [lab for lab in labels if lab not in zero_labels]
    for label in live:
        mid = ("m", label)
        view = nx.restricted_view(graph, [mid], [])
        for other in _bridge_labels(view):
            if other != label and other not in zero_labels:
                union(label, other)

    class_of = {}
    members = {}
    roots = {}
    next_id = 0
    for node in nodes:
        root = find(node)
        cid = roots.get(root)
        if cid is None:
            cid = next_id
            next_id += 1
            roots[root] = cid
            members[cid] = []
        class_of[node] = cid
        members[cid].append(node)
    zero = [node for node in nodes if node in zero_labels]
    return EquivalenceClasses(class_of, members, zero)
