"""The static scheduler (paper sections 6.1.3 and 6.3).

For each basic block, schedule its instructions on a model of the
processor assuming no dynamic stalls (all loads hit the D-cache, all
branches predicted).  The schedule yields, per instruction:

* ``m`` -- the minimum cycles the instruction spends at the head of the
  issue queue (the paper's M_i; 0 for the younger half of a dual-issued
  pair, making instructions with m > 0 the *issue points*);
* the static-stall bookkeeping: how many of those cycles are register
  dependences, slotting hazards or functional-unit dependences, and
  which previously-issued instruction caused each.

The issue-class table and pairing predicate are shared with the cycle
simulator (:mod:`repro.alpha.opcodes`, :mod:`repro.cpu.issue`), so the
static model has zero skew with respect to the simulated hardware.

Blocks are scheduled independently with clean machine state: as the
paper notes, when a block has multiple predecessors there is no single
static schedule, so preceding blocks are ignored (one documented source
of estimation error).
"""

from repro.alpha.opcodes import ISSUE_CLASSES
from repro.cpu.issue import PAIR_OK

_DEP_REASON = ("ra_dep", "rb_dep", "rc_dep", "rc_dep")


class InstSchedule:
    """Static schedule facts for one instruction."""

    __slots__ = ("inst", "m", "issue", "paired", "stalls", "dep_source")

    def __init__(self, inst):
        self.inst = inst
        self.m = 0
        self.issue = 0
        self.paired = False
        #: list of (reason, cycles, culprit_addr or None)
        self.stalls = []
        #: address of the instruction whose result this one waits on
        #: (None if no register-dependence stall).
        self.dep_source = None


class BlockSchedule:
    """Static schedule of a basic block."""

    def __init__(self, block, rows, best_case_cycles):
        self.block = block
        self.rows = rows          # list of InstSchedule, in order
        self.best_case_cycles = best_case_cycles
        self.by_addr = {row.inst.addr: row for row in rows}

    def m_of(self, addr):
        return self.by_addr[addr].m


def schedule_block(block):
    """Statically schedule *block*; return a :class:`BlockSchedule`."""
    rows = []
    reg_ready = {}
    reg_writer = {}
    prev_issue = -1
    pair_open = False
    prev_cls = None
    imul_free = 0
    fdiv_free = 0

    for inst in block.instructions:
        row = InstSchedule(inst)
        cls_name = inst.info.cls
        icls = ISSUE_CLASSES[cls_name]

        rdy = 0
        dep_index = 0
        dep_writer = None
        for index, src in enumerate(inst.srcs):
            r = reg_ready.get(src, 0)
            if r > rdy:
                rdy = r
                dep_index = index
                dep_writer = reg_writer.get(src)

        res = 0
        res_reason = None
        if cls_name == "IMUL" and imul_free > 0:
            res = imul_free
            res_reason = "fu_dep"
        elif cls_name == "FDIV" and fdiv_free > 0:
            res = fdiv_free
            res_reason = "fu_dep"

        if (pair_open and rdy <= prev_issue and res <= prev_issue
                and PAIR_OK[(prev_cls, cls_name)]):
            issue = prev_issue
            row.paired = True
            row.m = 0
            pair_open = False
        else:
            arrival = prev_issue + 1
            issue = max(arrival, rdy, res)
            row.m = issue - arrival + 1
            base = arrival
            if rdy > base:
                span = min(rdy, issue) - base
                if span > 0:
                    reason = _DEP_REASON[dep_index]
                    if (dep_writer is not None
                            and dep_writer.info.cls in ("IMUL", "FDIV",
                                                        "FADD", "FMUL")):
                        reason = "fu_dep"
                    row.stalls.append(
                        (reason, span,
                         dep_writer.addr if dep_writer else None))
                    row.dep_source = (dep_writer.addr
                                      if dep_writer else None)
                    base += span
            if res > base and res_reason:
                row.stalls.append((res_reason, res - base, None))
            elif (pair_open and prev_cls is not None and rdy <= prev_issue
                  and res <= prev_issue
                  and not PAIR_OK[(prev_cls, cls_name)]):
                row.stalls.append(("slotting", 1, None))
            pair_open = True

        row.issue = issue
        is_taken_branch = inst.info.kind in ("br", "cbranch", "fbranch",
                                             "jump")
        if is_taken_branch and inst is block.instructions[-1]:
            # The block-terminating transfer closes the issue group.
            pair_open = False
        prev_issue = issue
        prev_cls = cls_name

        if inst.dst is not None:
            reg_ready[inst.dst] = issue + icls.latency
            reg_writer[inst.dst] = inst
        if cls_name == "IMUL":
            imul_free = issue + icls.busy
        elif cls_name == "FDIV":
            fdiv_free = issue + icls.busy
        rows.append(row)

    best_case = prev_issue + 1 if rows else 0
    return BlockSchedule(block, rows, best_case)


def schedule_cfg(cfg, obs=None):
    """Schedule every block of *cfg*; return {block index: BlockSchedule}.

    *obs* (optional :class:`repro.obs.Observability`) wraps the pass in
    an ``analyze.schedule`` span and counts scheduled instructions.
    """
    from repro.obs import NULL_OBS

    obs = obs or NULL_OBS
    with obs.span("analyze.schedule", proc=cfg.proc.name):
        schedules = {block.index: schedule_block(block)
                     for block in cfg.blocks}
    obs.counter("analyze.schedule.instructions").inc(
        sum(len(s.rows) for s in schedules.values()))
    return schedules
