"""Top-level analysis orchestration: samples in, explanations out.

``analyze_procedure`` runs the full pipeline of paper section 6 for one
procedure: CFG construction, static scheduling (M_i), frequency and CPI
estimation, and culprit identification.  ``analyze_image`` does so for
every procedure with samples.
"""

from dataclasses import dataclass, field

from repro.core.cfg import build_cfg
from repro.core.culprits import identify_culprits
from repro.core.frequency import FrequencyConfig, estimate_frequencies
from repro.core.schedule import schedule_cfg
from repro.cpu.events import EventType


@dataclass
class AnalysisConfig:
    """Settings for the full analysis pipeline."""

    frequency: FrequencyConfig = field(default_factory=FrequencyConfig)
    dyn_threshold: float = 0.25
    # Section 6.1.4's experimental global constraint solver: adjust the
    # estimates where they violate flow constraints.
    global_solver: bool = False
    # Self-monitoring (a repro.obs Observability): every pass runs
    # under a trace span and registers its counters.  None = disabled.
    obs: object = None
    # Collection loss above this rate flags results as low-confidence
    # instead of crashing the analysis: frequency/CPI estimates built
    # on a lossy profile still rank hot code correctly, but their
    # absolute values are understated by roughly the loss rate.
    loss_rate_threshold: float = 0.02
    # Run the repro.check invariant verifier on every analyzed
    # procedure (schedule slotting, culprit coverage, estimate flow);
    # findings land in ProcedureAnalysis.check_findings.
    verify_invariants: bool = False


class InstructionAnalysis:
    """Everything the tools report about one instruction."""

    __slots__ = ("inst", "samples", "m", "count", "cpi", "static_stalls",
                 "dyn_per_exec", "dyn_total", "culprits", "paired",
                 "confidence")

    def __init__(self, inst, samples, m, count, cpi, static_stalls,
                 culprits, paired, confidence):
        self.inst = inst
        self.samples = samples
        self.m = m
        self.count = count
        self.cpi = cpi
        self.static_stalls = static_stalls
        self.dyn_per_exec = max(0.0, cpi - m) if count > 0 else 0.0
        self.dyn_total = self.dyn_per_exec * count
        self.culprits = culprits
        self.paired = paired
        self.confidence = confidence


class ProcedureAnalysis:
    """Full analysis of one procedure."""

    def __init__(self, image, proc, profile, cfg, schedules, freq,
                 instructions, period):
        self.image = image
        self.proc = proc
        self.profile = profile
        self.cfg = cfg
        self.schedules = schedules
        self.freq = freq
        self.instructions = instructions
        self.period = period
        self.by_addr = {row.inst.addr: row for row in instructions}
        #: True when the collection run lost enough samples that the
        #: absolute estimates should not be trusted (graceful
        #: degradation; see AnalysisConfig.loss_rate_threshold).
        self.low_confidence = False
        #: Human-readable degradation notes (loss rate, quarantines).
        self.warnings = []
        #: repro.check findings when AnalysisConfig.verify_invariants
        #: is set (empty otherwise).
        self.check_findings = []

    @property
    def total_cycles(self):
        """Estimated cycles spent in this procedure (samples * period)."""
        return sum(row.samples for row in self.instructions) * self.period

    @property
    def total_samples(self):
        return sum(row.samples for row in self.instructions)

    @property
    def executed_instructions(self):
        return sum(row.count for row in self.instructions)

    @property
    def best_case_cycles(self):
        return sum(row.count * row.m for row in self.instructions)

    @property
    def best_case_cpi(self):
        executed = self.executed_instructions
        return self.best_case_cycles / executed if executed else 0.0

    @property
    def actual_cpi(self):
        executed = self.executed_instructions
        return self.total_cycles / executed if executed else 0.0

    def summary(self):
        """Return the Figure 4-style stall summary."""
        from repro.core.summarize import summarize_procedure

        return summarize_procedure(self)

    def annotations(self):
        """Machine-readable per-instruction annotations.

        Returns a list of plain dicts keyed by image-relative offset --
        the stable coordinate a consumer (e.g. the :mod:`repro.opt`
        profile-guided optimizer, or an external tool reading the JSON
        export) can use to line samples up with a freshly built copy of
        the same image.  Every estimate the analysis produced is here:
        frequency, CPI, the static schedule's issue point and stall
        count, dynamic-stall culprits, and the estimate confidence.
        """
        base = self.image.base or 0
        rows = []
        for row in self.instructions:
            rows.append({
                "offset": row.inst.addr - base,
                "op": row.inst.op,
                "samples": row.samples,
                "count": row.count,
                "cpi": round(row.cpi, 6),
                "m": row.m,
                "static_stalls": row.static_stalls,
                "dyn_per_exec": round(row.dyn_per_exec, 6),
                "culprits": list(row.culprits),
                "paired": bool(row.paired),
                "confidence": row.confidence,
            })
        rows.sort(key=lambda entry: entry["offset"])
        return rows


def analyze_procedure(image, proc, profile, config=None):
    """Analyze one procedure.

    Args:
        image: the :class:`Image` containing the procedure.
        proc: a :class:`Procedure` or its name.
        profile: the image's :class:`ImageProfile`.
        config: optional :class:`AnalysisConfig`.
    """
    from repro.obs import NULL_OBS

    config = config or AnalysisConfig()
    obs = config.obs or NULL_OBS
    if isinstance(proc, str):
        proc = image.procedure(proc)
    period = profile.periods.get(EventType.CYCLES, 1.0)
    samples = profile.samples_for(proc, EventType.CYCLES)

    with obs.span("analyze.procedure", proc=proc.name):
        cfg = build_cfg(proc, obs=obs)
        schedules = schedule_cfg(cfg, obs=obs)
        edge_samples = (profile.edges_by_addr()
                        if profile.edge_counts else None)
        freq = estimate_frequencies(cfg, schedules, samples, period,
                                    config.frequency,
                                    edge_samples=edge_samples, obs=obs)
        if config.global_solver:
            from repro.core.solver import refine_global

            refine_global(cfg, freq.classes, freq, obs=obs)
        culprits = identify_culprits(cfg, schedules, freq, samples,
                                     profile, proc, config.dyn_threshold,
                                     obs=obs)

        with obs.span("analyze.attribute", proc=proc.name):
            instructions = []
            for block in cfg.blocks:
                count = freq.block_count(block.index)
                confidence = freq.block_confidence(block.index)
                for row in schedules[block.index].rows:
                    addr = row.inst.addr
                    s = samples.get(addr, 0)
                    cpi = s * period / count if count > 0 else 0.0
                    instructions.append(InstructionAnalysis(
                        row.inst, s, row.m, count, cpi, row.stalls,
                        culprits.get(addr, []), row.paired, confidence))
    obs.counter("analyze.procedures").inc()
    obs.counter("analyze.instructions").inc(len(instructions))
    analysis = ProcedureAnalysis(image, proc, profile, cfg, schedules,
                                 freq, instructions, period)
    if config.verify_invariants:
        from repro.check.analysis_checks import verify_procedure

        with obs.span("analyze.verify", proc=proc.name):
            analysis.check_findings = verify_procedure(
                analysis, dyn_threshold=config.dyn_threshold)
        obs.counter("analyze.check_findings").inc(
            len(analysis.check_findings))
    return analysis


def analyze_image(image, profile, config=None, min_samples=1,
                  loss_rate=0.0):
    """Analyze every procedure of *image* holding CYCLES samples.

    Returns {procedure name: ProcedureAnalysis}, ordered by decreasing
    sample count.  *loss_rate* is the collection run's accounted
    sample-loss fraction (``collect.loss_rate``); above the config
    threshold every analysis is flagged low-confidence with a warning
    rather than rejected -- a partial profile still ranks hot code.
    """
    config = config or AnalysisConfig()
    totals = profile.procedure_totals(EventType.CYCLES)
    result = {}
    for name, total in sorted(totals.items(), key=lambda kv: -kv[1]):
        if total < min_samples:
            continue
        analysis = analyze_procedure(image, name, profile, config)
        if loss_rate > config.loss_rate_threshold:
            analysis.low_confidence = True
            analysis.warnings.append(
                "collection lost %.2f%% of samples (threshold %.2f%%); "
                "absolute estimates are understated"
                % (loss_rate * 100.0,
                   config.loss_rate_threshold * 100.0))
        result[name] = analysis
    return result


def export_annotations(analyses):
    """JSON-ready annotation export for a whole image's analyses.

    *analyses* is the ``{procedure: ProcedureAnalysis}`` mapping
    :func:`analyze_image` returns.  The result maps procedure name to
    ``{"start", "end", "period", "low_confidence", "instructions"}``
    with offsets image-relative throughout -- the contract consumed by
    ``dcpiopt`` and stable for external profile-guided tooling.
    """
    export = {}
    for name, analysis in analyses.items():
        base = analysis.image.base or 0
        export[name] = {
            "image": analysis.image.name,
            "start": analysis.proc.start - base,
            "end": analysis.proc.end - base,
            "period": analysis.period,
            "low_confidence": analysis.low_confidence,
            "total_samples": analysis.total_samples,
            "instructions": analysis.annotations(),
        }
    return export
