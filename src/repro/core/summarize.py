"""Procedure-level stall summaries (the paper's Figure 4).

Aggregates the per-instruction analysis into ranges of the fraction of
procedure cycles attributable to each dynamic cause, exact fractions for
each static cause, the execution fraction, unexplained stall and
unexplained gain, and the net sampling error.
"""

from repro.cpu.events import DYNAMIC_REASONS, STATIC_REASONS


class StallSummary:
    """Fractions of a procedure's cycles, by cause.

    Attributes:
        dynamic: {reason: (min_fraction, max_fraction)}.
        static: {reason: fraction}.
        unexplained_stall / unexplained_gain / execution /
        subtotal_dynamic / subtotal_static / net_error: fractions.
    """

    def __init__(self, analysis):
        self.analysis = analysis
        total = analysis.total_cycles
        self.total_cycles = total
        self.dynamic = {reason: [0.0, 0.0] for reason in DYNAMIC_REASONS}
        self.static = {reason: 0.0 for reason in STATIC_REASONS}
        self.unexplained_stall = 0.0
        self.unexplained_gain = 0.0
        if total <= 0:
            self.execution = 0.0
            self.subtotal_dynamic = 0.0
            self.subtotal_static = 0.0
            self.net_error = 0.0
            return

        dyn_cycles = 0.0
        gain_cycles = 0.0
        static_cycles = {reason: 0.0 for reason in STATIC_REASONS}
        issue_cycles = 0.0
        unexplained = 0.0
        for row in analysis.instructions:
            observed = row.samples * analysis.period
            best = row.count * row.m
            if observed >= best:
                dyn_cycles += observed - best
            else:
                gain_cycles += best - observed
            for reason, cycles, _ in row.static_stalls:
                if reason in static_cycles:
                    static_cycles[reason] += cycles * row.count
            if row.m > 0:
                issue_cycles += row.count
            for culprit in row.culprits:
                if culprit.reason == "unexplained":
                    unexplained += culprit.min_cycles
                elif culprit.reason in self.dynamic:
                    self.dynamic[culprit.reason][0] += culprit.min_cycles
                    self.dynamic[culprit.reason][1] += culprit.max_cycles

        for reason in DYNAMIC_REASONS:
            lo, hi = self.dynamic[reason]
            self.dynamic[reason] = (min(lo, dyn_cycles) / total,
                                    min(hi, dyn_cycles) / total)
        for reason in STATIC_REASONS:
            self.static[reason] = static_cycles[reason] / total
        self.unexplained_stall = unexplained / total
        self.unexplained_gain = -gain_cycles / total
        self.subtotal_dynamic = (dyn_cycles - gain_cycles) / total
        self.subtotal_static = sum(self.static.values())
        self.execution = issue_cycles / total
        tallied = (self.subtotal_dynamic + self.subtotal_static
                   + self.execution)
        self.net_error = 1.0 - tallied

    # -- rendering ----------------------------------------------------------

    _DYNAMIC_LABELS = {
        "icache": "I-cache (not ITB)",
        "itb": "ITB/I-cache miss",
        "dcache": "D-cache miss",
        "dtb": "DTB miss",
        "wb": "Write buffer",
        "branchmp": "Branch mispredict",
        "imul": "IMUL busy",
        "fdiv": "FDIV busy",
    }
    _STATIC_LABELS = {
        "slotting": "Slotting",
        "ra_dep": "Ra dependency",
        "rb_dep": "Rb dependency",
        "rc_dep": "Rc dependency",
        "fu_dep": "FU dependency",
    }

    def render(self):
        """Return the Figure 4-style text block."""
        analysis = self.analysis
        lines = []
        push = lines.append
        push("*** Best-case %d/%d = %.2fCPI,"
             % (round(analysis.best_case_cycles),
                round(analysis.executed_instructions),
                analysis.best_case_cpi))
        push("*** Actual %d/%d = %.2fCPI"
             % (round(analysis.total_cycles),
                round(analysis.executed_instructions),
                analysis.actual_cpi))
        push("***")
        for reason in ("icache", "itb", "dcache", "dtb", "wb"):
            lo, hi = self.dynamic[reason]
            push("***    %-22s %4.1f%% to %4.1f%%"
                 % (self._DYNAMIC_LABELS[reason], lo * 100, hi * 100))
        push("***")
        for reason in ("branchmp", "imul", "fdiv"):
            lo, hi = self.dynamic[reason]
            push("***    %-22s %4.1f%% to %4.1f%%"
                 % (self._DYNAMIC_LABELS[reason], lo * 100, hi * 100))
        push("***")
        push("***    %-22s %4.1f%%" % ("Unexplained stall",
                                       self.unexplained_stall * 100))
        push("***    %-22s %4.1f%%" % ("Unexplained gain",
                                       self.unexplained_gain * 100))
        push("*** " + "-" * 40)
        push("***    %-22s %4.1f%%" % ("Subtotal dynamic",
                                       self.subtotal_dynamic * 100))
        push("***")
        for reason in STATIC_REASONS:
            push("***    %-22s %4.1f%%"
                 % (self._STATIC_LABELS[reason], self.static[reason] * 100))
        push("*** " + "-" * 40)
        push("***    %-22s %4.1f%%" % ("Subtotal static",
                                       self.subtotal_static * 100))
        push("*** " + "-" * 40)
        push("***    %-22s %4.1f%%"
             % ("Total stall",
                (self.subtotal_dynamic + self.subtotal_static) * 100))
        push("***    %-22s %4.1f%%" % ("Execution", self.execution * 100))
        push("***    %-22s %4.1f%%" % ("Net sampling error",
                                       self.net_error * 100))
        push("*** " + "-" * 40)
        push("***    %-22s %4.1f%%" % ("Total tallied", 100.0))
        push("*** (%d, %.1f%% of all samples)"
             % (round(self.analysis.total_cycles),
                100.0))
        return "\n".join(lines)


def summarize_procedure(analysis):
    """Build a :class:`StallSummary` for *analysis*."""
    return StallSummary(analysis)
