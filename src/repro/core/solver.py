"""Global flow-constraint solver for frequency estimates.

Paper section 6.1.4: "We are currently experimenting with a global
constraint solver to adjust the frequency estimates where they violate
the flow constraints."  This module implements that experiment.

Local propagation fills unknowns but leaves *inconsistent* estimates
alone: when sampled estimates of a block and its edges disagree, the
flow equation block = sum(in edges) = sum(out edges) is violated.  The
solver adjusts all class counts simultaneously by minimizing

    sum_c  w_c * (x_c - e_c)^2  +  lam * ||A x||^2      s.t.  x >= 0

where e_c are the heuristic estimates, w_c confidence-derived weights
(high-confidence estimates resist adjustment), and A the flow
constraint matrix over equivalence classes.  The quadratic program is
solved in closed form (ridge system) followed by clipping at zero and
one re-solve with actives pinned -- adequate for procedure-sized CFGs.
"""

import numpy as np

from repro.core.frequency import HIGH, LOW, MEDIUM

#: Weight of the flow-constraint penalty relative to the data terms.
CONSTRAINT_WEIGHT = 50.0

#: Confidence -> data-term weight.  Unknown classes get a tiny weight
#: pulling them toward zero only weakly.
WEIGHTS = {HIGH: 10.0, MEDIUM: 3.0, LOW: 1.0}
PROPAGATED_FACTOR = 0.5
UNKNOWN_WEIGHT = 1e-3


def _flow_matrix(cfg, classes, class_index):
    """Rows of A: one per (block, side) flow equation."""
    rows = []
    n = len(class_index)
    for block in cfg.blocks:
        for edges, skip in ((block.preds, block.index == cfg.entry),
                            (block.succs, False)):
            if skip or not edges:
                continue
            row = np.zeros(n)
            row[class_index[classes.class_of[block.index]]] += 1.0
            for edge in edges:
                row[class_index[classes.class_of[("e", edge.index)]]] -= 1.0
            rows.append(row)
    return np.array(rows) if rows else np.zeros((0, n))


def refine_global(cfg, classes, analysis, obs=None):
    """Adjust *analysis* class counts to respect flow constraints.

    Mutates ``analysis.class_count`` in place and returns the maximum
    relative adjustment applied to any previously-known class.  *obs*
    (optional :class:`repro.obs.Observability`) wraps the solve in an
    ``analyze.solver`` span and records the adjustment magnitude.
    """
    from repro.obs import NULL_OBS

    obs = obs or NULL_OBS
    with obs.span("analyze.solver", proc=cfg.proc.name):
        adjustment = _refine_global(cfg, classes, analysis)
    obs.counter("analyze.solver.calls").inc()
    obs.gauge("analyze.solver.max_adjustment").set(adjustment)
    return adjustment


def _refine_global(cfg, classes, analysis):
    class_ids = sorted(classes.members)
    class_index = {cid: i for i, cid in enumerate(class_ids)}
    n = len(class_ids)
    if n == 0:
        return 0.0

    estimates = np.zeros(n)
    weights = np.full(n, UNKNOWN_WEIGHT)
    for cid in class_ids:
        value = analysis.class_count.get(cid)
        if value is None:
            continue
        i = class_index[cid]
        estimates[i] = value
        weight = WEIGHTS[analysis.class_confidence.get(cid, LOW)]
        if analysis.class_propagated.get(cid):
            weight *= PROPAGATED_FACTOR
        weights[i] = weight

    flow = _flow_matrix(cfg, classes, class_index)
    # Normal equations of the penalized least squares problem.
    lhs = np.diag(weights) + CONSTRAINT_WEIGHT * flow.T.dot(flow)
    rhs = weights * estimates
    try:
        solution = np.linalg.solve(lhs, rhs)
    except np.linalg.LinAlgError:
        return 0.0

    # Enforce non-negativity: clip, pin the clipped variables at zero,
    # and re-solve the free ones once.
    negative = solution < 0
    if negative.any():
        free = ~negative
        if free.any():
            lhs_free = lhs[np.ix_(free, free)]
            rhs_free = rhs[free]
            try:
                solution_free = np.linalg.solve(lhs_free, rhs_free)
                solution = np.zeros(n)
                solution[free] = solution_free
            except np.linalg.LinAlgError:
                solution = np.clip(solution, 0.0, None)
        solution = np.clip(solution, 0.0, None)

    max_shift = 0.0
    for cid in class_ids:
        i = class_index[cid]
        old = analysis.class_count.get(cid)
        new = float(solution[i])
        if old is not None and old > 0:
            max_shift = max(max_shift, abs(new - old) / old)
        analysis.class_count[cid] = new
        if old is None:
            analysis.class_confidence.setdefault(cid, LOW)
            analysis.class_propagated[cid] = True
    return max_shift


def flow_residual(cfg, classes, analysis):
    """Total absolute flow-constraint violation of the current counts
    (useful to verify the solver actually tightened things)."""
    total = 0.0
    for block in cfg.blocks:
        count = analysis.block_count(block.index)
        for edges, skip in ((block.preds, block.index == cfg.entry),
                            (block.succs, False)):
            if skip or not edges:
                continue
            edge_sum = sum(analysis.edge_count(e.index) for e in edges)
            total += abs(count - edge_sum)
    return total
