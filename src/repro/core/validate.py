"""Accuracy validation of the analysis against ground truth
(the paper's section 6.2 methodology).

The paper validated frequency estimates against dcpix-instrumented
execution counts; here the simulator's exact per-instruction and
per-edge counts play that role.  These helpers produce the raw series
behind Figures 8, 9 and 10:

* :func:`frequency_errors` -- per-instruction relative error of the
  estimated execution count, weighted by CYCLES samples;
* :func:`edge_errors` -- per-CFG-edge relative error, weighted by true
  edge executions;
* :func:`icache_correlation_points` -- per-procedure (IMISS events,
  attributed I-cache stall-cycle range) pairs.
"""

from repro.core.analyze import analyze_procedure
from repro.core.cfg import EXIT, build_cfg
from repro.cpu.events import EventType

#: Histogram bucket edges used by the paper's Figures 8 and 9 (percent).
BUCKETS = (-45, -35, -25, -15, -5, 5, 15, 25, 35, 45)


def true_edge_count(machine, cfg, edge):
    """Exact executions of CFG *edge* from the machine's ground truth."""
    block = cfg.blocks[edge.src]
    last = block.last
    kind = last.info.kind
    if kind in ("cbranch", "fbranch"):
        if edge.kind == "taken":
            return machine.gt_edges.get((last.addr, last.target), 0)
        return machine.gt_edges.get((last.addr, last.addr + 4), 0)
    if kind == "br" and last.op == "br":
        return machine.gt_edges.get((last.addr, last.target), 0)
    # Single-successor block (fallthrough, call): the edge runs exactly
    # as often as the block's last instruction.
    return machine.gt_count.get(last.addr, 0)


def frequency_errors(machine, image, profile, procedures=None,
                     config=None, min_true=5):
    """Relative frequency-estimate errors, sample-weighted.

    Returns a list of (relative_error, weight_samples, confidence)
    tuples, one per instruction with at least *min_true* true
    executions (tiny counts are pure noise in both systems).
    """
    points = []
    for proc in image.procedures:
        if procedures is not None and proc.name not in procedures:
            continue
        samples = profile.samples_for(proc, EventType.CYCLES)
        if not samples:
            continue
        analysis = analyze_procedure(image, proc, profile, config)
        for row in analysis.instructions:
            true = machine.gt_count.get(row.inst.addr, 0)
            if true < min_true:
                continue
            weight = row.samples
            if weight == 0:
                continue
            error = (row.count - true) / true
            points.append((error, weight, row.confidence))
    return points


def edge_errors(machine, image, profile, procedures=None, config=None,
                min_true=5):
    """Relative edge-frequency errors, weighted by true edge executions.

    Returns (relative_error, weight, confidence) tuples.
    """
    points = []
    for proc in image.procedures:
        if procedures is not None and proc.name not in procedures:
            continue
        samples = profile.samples_for(proc, EventType.CYCLES)
        if not samples:
            continue
        analysis = analyze_procedure(image, proc, profile, config)
        cfg = analysis.cfg
        freq = analysis.freq
        for edge in cfg.edges:
            if edge.dst == EXIT:
                continue
            true = true_edge_count(machine, cfg, edge)
            if true < min_true:
                continue
            estimate = freq.edge_count(edge.index)
            error = (estimate - true) / true
            points.append((error, true,
                           freq.edge_confidence(edge.index)))
    return points


def bucketize(points):
    """Aggregate weighted error points into the paper's histogram.

    Returns {bucket_label: {confidence: weight_fraction}} plus the
    total weight, where bucket_label is the bucket's center (e.g. -15
    covers errors in (-20%, -10%]) and the extreme buckets are open.
    """
    total = sum(weight for _, weight, _ in points) or 1.0
    histogram = {}
    for error, weight, confidence in points:
        pct = error * 100.0
        label = None
        for edge in BUCKETS:
            if pct <= edge:
                label = edge
                break
        if label is None:
            label = BUCKETS[-1] + 10
        bucket = histogram.setdefault(label, {})
        bucket[confidence] = bucket.get(confidence, 0.0) + weight / total
    return histogram, total


def weight_within(points, pct):
    """Fraction of weight whose |error| is within *pct* percent."""
    total = sum(weight for _, weight, _ in points)
    if not total:
        return 0.0
    good = sum(weight for error, weight, _ in points
               if abs(error) * 100.0 <= pct)
    return good / total


class FixedFrequency:
    """A frequency oracle built from known execution counts.

    The paper's Figure 10 experiment substitutes instrumented execution
    counts for the estimates "to isolate the effect of culprit analysis
    from that of frequency estimation" (footnote 6); this adapter plays
    the role of dcpix's counts.
    """

    def __init__(self, cfg, counts, period):
        self.cfg = cfg
        self.period = period
        self._counts = counts

    def block_count(self, block_index):
        block = self.cfg.blocks[block_index]
        return float(self._counts.get(block.start, 0))

    def count_of(self, addr):
        return float(self._counts.get(addr, 0))

    def block_confidence(self, block_index):
        return HIGH_CONFIDENCE

    def edge_count(self, edge_index):
        return 0.0


HIGH_CONFIDENCE = "high"


def icache_correlation_points(machine, image, profile, config=None,
                              min_samples=10, use_true_counts=True):
    """Per-procedure (true IMISS events, attributed icache range).

    Returns a list of dicts with the procedure name, the ground-truth
    IMISS event count, and the [lo, hi] I-cache stall cycles attributed
    by culprit analysis -- the paper's Figure 10 scatter.  With
    *use_true_counts* (the paper's footnote-6 methodology) culprit
    analysis runs on exact execution counts instead of estimates."""
    from repro.core.culprits import identify_culprits
    from repro.core.schedule import schedule_cfg

    points = []
    for proc in image.procedures:
        samples = profile.samples_for(proc, EventType.CYCLES)
        if sum(samples.values()) < min_samples:
            continue
        period = profile.periods.get(EventType.CYCLES, 1.0)
        if use_true_counts:
            cfg = build_cfg(proc)
            schedules = schedule_cfg(cfg)
            freq = FixedFrequency(cfg, machine.gt_count, period)
            culprit_map = identify_culprits(cfg, schedules, freq,
                                            samples, profile, proc)
            culprit_lists = culprit_map.values()
        else:
            analysis = analyze_procedure(image, proc, profile, config)
            culprit_lists = [row.culprits
                             for row in analysis.instructions]
        lo = 0.0
        hi = 0.0
        for culprits in culprit_lists:
            for culprit in culprits:
                if culprit.reason == "icache":
                    lo += culprit.min_cycles
                    hi += culprit.max_cycles
        true_imiss = 0
        for inst in proc.instructions():
            events = machine.gt_events.get(inst.addr)
            if events:
                true_imiss += events.get(EventType.IMISS, 0)
        points.append({"procedure": proc.name, "imiss": true_imiss,
                       "lo": lo, "hi": hi})
    return points


def correlation(xs, ys):
    """Pearson correlation coefficient of two equal-length series."""
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5
