"""Control-flow-graph construction (paper section 6.1.1).

A CFG is built per procedure by extracting its code from the image.
Basic-block boundaries come from control-transfer instructions and
branch targets.  Subroutine calls (``bsr``/``jsr``) do not end a block:
the analysis, like the paper's, is intra-procedural and treats a call as
a straight-line instruction.  Indirect jumps whose targets cannot be
determined set ``missing_edges``, which downgrades frequency equivalence
to per-block classes exactly as in the paper.
"""

from repro.alpha.opcodes import DIRECT_BRANCH_KINDS

#: Virtual exit node index.
EXIT = -1


class Edge:
    """A control-flow edge between blocks (or to the virtual exit)."""

    __slots__ = ("index", "src", "dst", "kind")

    def __init__(self, index, src, dst, kind):
        self.index = index
        self.src = src    # source block index
        self.dst = dst    # destination block index or EXIT
        self.kind = kind  # "taken" | "fall" | "exit"

    def __repr__(self):
        return "<Edge %d: b%d -> %s (%s)>" % (
            self.index, self.src,
            "EXIT" if self.dst == EXIT else "b%d" % self.dst, self.kind)


class BasicBlock:
    """A maximal straight-line instruction sequence."""

    __slots__ = ("index", "start", "end", "instructions", "succs", "preds")

    def __init__(self, index, start, end, instructions):
        self.index = index
        self.start = start
        self.end = end
        self.instructions = instructions
        self.succs = []
        self.preds = []

    @property
    def last(self):
        return self.instructions[-1]

    def __repr__(self):
        return "<Block %d [%#x, %#x)>" % (self.index, self.start, self.end)


class CFG:
    """The control-flow graph of one procedure."""

    def __init__(self, proc, blocks, edges, missing_edges):
        self.proc = proc
        self.blocks = blocks
        self.edges = edges
        self.missing_edges = missing_edges
        self._block_by_start = {b.start: b.index for b in blocks}

    @property
    def entry(self):
        return 0

    def block_at(self, addr):
        """Return the block containing *addr*."""
        for block in self.blocks:
            if block.start <= addr < block.end:
                return block
        raise KeyError("address %#x not in procedure %s"
                       % (addr, self.proc.name))

    def block_of_index(self, index):
        return self.blocks[index]


def build_cfg(proc, obs=None):
    """Build the CFG for procedure *proc* (a :class:`Procedure`).

    *obs* is an optional :class:`repro.obs.Observability`; when given,
    the pass runs under an ``analyze.cfg`` span and registers block and
    edge counters.
    """
    from repro.obs import NULL_OBS

    obs = obs or NULL_OBS
    with obs.span("analyze.cfg", proc=proc.name):
        cfg = _build_cfg(proc)
    obs.counter("analyze.cfg.blocks").inc(len(cfg.blocks))
    obs.counter("analyze.cfg.edges").inc(len(cfg.edges))
    return cfg


def _build_cfg(proc):
    instructions = proc.instructions()
    if not instructions:
        raise ValueError("empty procedure %s" % proc.name)
    missing_edges = False

    # Pass 1: find leaders.
    leaders = {proc.start}
    for inst in instructions:
        kind = inst.info.kind
        if kind in DIRECT_BRANCH_KINDS:
            if (inst.target is not None
                    and proc.start <= inst.target < proc.end):
                leaders.add(inst.target)
            if kind in ("cbranch", "fbranch"):
                fall = inst.addr + 4
                if fall < proc.end:
                    leaders.add(fall)
            elif kind == "br" and inst.op == "br":
                after = inst.addr + 4
                if after < proc.end:
                    leaders.add(after)
        elif kind == "jump" and inst.op != "jsr":
            after = inst.addr + 4
            if after < proc.end:
                leaders.add(after)

    # Pass 2: carve blocks.
    boundaries = sorted(leaders) + [proc.end]
    blocks = []
    for index in range(len(boundaries) - 1):
        start, end = boundaries[index], boundaries[index + 1]
        insts = [i for i in instructions if start <= i.addr < end]
        # A control instruction inside the range also ends the block;
        # split further.
        chunk_start = start
        chunk = []
        for inst in insts:
            chunk.append(inst)
            ends_block = (
                inst.info.kind in ("cbranch", "fbranch")
                or (inst.info.kind == "br" and inst.op in ("br",))
                or (inst.info.kind == "jump" and inst.op != "jsr"))
            if ends_block and inst.addr + 4 < end:
                blocks.append(BasicBlock(len(blocks), chunk_start,
                                         inst.addr + 4, chunk))
                chunk_start = inst.addr + 4
                chunk = []
        if chunk:
            blocks.append(BasicBlock(len(blocks), chunk_start, end, chunk))

    block_of = {}
    for block in blocks:
        for inst in block.instructions:
            block_of[inst.addr] = block.index

    # Pass 3: edges.
    edges = []

    def add_edge(src, dst, kind):
        edge = Edge(len(edges), src, dst, kind)
        edges.append(edge)
        blocks[src].succs.append(edge)
        if dst != EXIT:
            blocks[dst].preds.append(edge)
        return edge

    for block in blocks:
        last = block.last
        kind = last.info.kind
        if kind in ("cbranch", "fbranch"):
            if last.target is not None and last.target in block_of:
                add_edge(block.index, block_of[last.target], "taken")
            else:
                add_edge(block.index, EXIT, "exit")
            fall = last.addr + 4
            if fall in block_of:
                add_edge(block.index, block_of[fall], "fall")
            else:
                add_edge(block.index, EXIT, "exit")
        elif kind == "br" and last.op == "br":
            if last.target is not None and last.target in block_of:
                add_edge(block.index, block_of[last.target], "taken")
            else:
                add_edge(block.index, EXIT, "exit")
        elif kind == "br" and last.op == "bsr":
            # A call: control returns to the next instruction.
            fall = last.addr + 4
            if fall in block_of:
                add_edge(block.index, block_of[fall], "fall")
            else:
                add_edge(block.index, EXIT, "exit")
        elif kind == "jump":
            if last.op == "jsr":
                fall = last.addr + 4
                if fall in block_of:
                    add_edge(block.index, block_of[fall], "fall")
                else:
                    add_edge(block.index, EXIT, "exit")
            elif last.op == "ret":
                add_edge(block.index, EXIT, "exit")
            else:
                # Indirect jmp: we cannot statically determine targets.
                missing_edges = True
                add_edge(block.index, EXIT, "exit")
        else:
            # Fallthrough into the next block.
            fall = block.end
            if fall in block_of:
                add_edge(block.index, block_of[fall], "fall")
            else:
                add_edge(block.index, EXIT, "exit")

    return CFG(proc, blocks, edges, missing_edges)
