"""Dynamic-stall explanation: "guilty until proven innocent"
(paper section 6.3).

For every instruction whose observed cycles-at-head exceed its static
minimum M_i, start from the full list of dynamic-stall causes and rule
out the ones that are impossible or extremely unlikely here:

* **I-cache miss** -- ruled out unless the instruction can plausibly
  start a new fetch: it lies at the start of a cache line, or it heads a
  basic block some frequent predecessor of which ends in a different
  cache line (the paper's exact rule, including ignoring predecessors
  executed much less often than the stalled instruction).  When IMISS
  samples were collected they give an upper bound on I-cache stall
  cycles, computed pessimistically with a full memory-fill cost.
* **D-cache / DTB miss** -- require that an operand of the stalled
  instruction was produced by a load (the culprit pointer names that
  load), or that the instruction is itself a memory operation (DTB).
* **Write-buffer overflow** -- stores only.
* **Branch mispredict** -- block heads whose predecessors end in a
  conditional or indirect transfer (or the procedure entry, reached via
  an indirect call).
* **IMUL/FDIV busy** -- a multiply/divide issued shortly before.

Candidates that survive are reported with pessimistic [min, max] cycle
ranges; if everything was ruled out the stall is *unexplained*.
"""

from dataclasses import dataclass

from repro.cpu.events import EventType

#: Cache-line size assumed by the I-cache rule (matches MachineConfig).
LINE_BYTES = 32
#: Pessimistic fill costs used for event-derived upper bounds.
ICACHE_FILL_MAX = 88
DCACHE_FILL_MAX = 88
TLB_PENALTY = 40
MISPREDICT_PENALTY = 5
#: Predecessor blocks executed less than this fraction as often as the
#: stalled instruction are ignored by the I-cache rule.
RARE_PRED_FRACTION = 0.05
#: How many instructions back a mul/div can still congest its unit.
FU_WINDOW = 8


@dataclass
class Culprit:
    """One possible explanation for an instruction's dynamic stall."""

    reason: str
    min_cycles: float
    max_cycles: float
    source_addr: int = None

    def __repr__(self):
        src = (" from %#x" % self.source_addr) if self.source_addr else ""
        return "<Culprit %s [%.0f, %.0f]%s>" % (
            self.reason, self.min_cycles, self.max_cycles, src)


def _load_producers(block):
    """For each instruction, the in-block load (if any) feeding each of
    its source registers; returns {addr: load addr or 'unknown'}."""
    writer = {}
    result = {}
    for inst in block.instructions:
        feeding = None
        unknown = False
        for src in inst.srcs:
            if src in writer:
                producer = writer[src]
                if producer.is_load:
                    feeding = producer.addr
            else:
                unknown = True
        if feeding is not None:
            result[inst.addr] = feeding
        elif unknown and inst.srcs:
            result[inst.addr] = "unknown"
        if inst.dst is not None:
            writer[inst.dst] = inst
    return result


def _icache_possible(inst, block, cfg, freq):
    """The paper's I-cache elimination rule."""
    if inst.addr != block.start:
        # Mid-block: only a new cache line can miss.
        return inst.addr % LINE_BYTES == 0
    if block.index == cfg.entry:
        # Reached by a call from elsewhere: cannot rule out.
        return True
    my_count = freq.block_count(block.index)
    preds = block.preds
    if not preds:
        return True
    for edge in preds:
        pred_block = cfg.blocks[edge.src]
        if my_count > 0:
            pred_count = freq.block_count(pred_block.index)
            if pred_count < RARE_PRED_FRACTION * my_count:
                continue  # executed much less often: ignore
        last = pred_block.last
        if last.addr // LINE_BYTES != inst.addr // LINE_BYTES:
            return True
    return inst.addr % LINE_BYTES == 0


def _branch_possible(inst, block, cfg):
    if inst.addr != block.start:
        return False
    if block.index == cfg.entry:
        return True  # indirect call arrival
    for edge in block.preds:
        last = cfg.blocks[edge.src].last
        if last.info.kind in ("cbranch", "fbranch", "jump"):
            return True
    return False


def _fu_busy_possible(inst, block, unit_cls):
    index = block.instructions.index(inst)
    lo = max(0, index - FU_WINDOW)
    for other in block.instructions[lo:index]:
        if other.info.cls == unit_cls:
            return other.addr
    return None


def identify_culprits(cfg, schedules, freq, samples, profile, proc,
                      dyn_threshold=0.25, obs=None):
    """Explain each instruction's dynamic stall.

    Args:
        cfg, schedules, freq: prior analysis stages.
        samples: {addr: CYCLES samples}.
        profile: the :class:`ImageProfile` (for event-sample bounds).
        proc: the procedure.
        dyn_threshold: per-execution dynamic-stall cycles below which no
            explanation is attempted.
        obs: optional :class:`repro.obs.Observability`; wraps the pass
            in an ``analyze.culprits`` span and counts explanations.

    Returns {addr: list of Culprit} (addresses with stalls only).
    """
    from repro.obs import NULL_OBS

    obs = obs or NULL_OBS
    with obs.span("analyze.culprits", proc=proc.name):
        result = _identify_culprits(cfg, schedules, freq, samples,
                                    profile, proc, dyn_threshold)
    obs.counter("analyze.culprits.stalled_instructions").inc(len(result))
    obs.counter("analyze.culprits.explanations").inc(
        sum(len(culprits) for culprits in result.values()))
    return result


def _identify_culprits(cfg, schedules, freq, samples, profile, proc,
                       dyn_threshold):
    period = profile.periods.get(EventType.CYCLES, 1.0)
    imiss_samples = (profile.samples_for(proc, EventType.IMISS)
                     if EventType.IMISS in profile.counts else None)
    imiss_period = profile.periods.get(EventType.IMISS, 1.0)
    dtb_samples = (profile.samples_for(proc, EventType.DTBMISS)
                   if EventType.DTBMISS in profile.counts else None)
    result = {}

    for block in cfg.blocks:
        schedule = schedules[block.index]
        producers = _load_producers(block)
        count = freq.block_count(block.index)
        for row in schedule.rows:
            inst = row.inst
            s = samples.get(inst.addr, 0)
            if count <= 0 or s == 0:
                continue
            observed = s * period / count
            dyn = observed - row.m
            if dyn < dyn_threshold:
                continue
            total_dyn = dyn * count
            candidates = []

            if _icache_possible(inst, block, cfg, freq):
                upper = total_dyn
                if imiss_samples is not None:
                    est_misses = imiss_samples.get(inst.addr, 0) * imiss_period
                    upper = min(upper, est_misses * ICACHE_FILL_MAX)
                if upper > 0:
                    candidates.append(
                        Culprit("icache", 0.0, upper))

            producer = producers.get(inst.addr)
            if producer is not None:
                source = producer if producer != "unknown" else None
                candidates.append(
                    Culprit("dcache", 0.0, total_dyn, source))
                dtb_upper = total_dyn
                if dtb_samples is not None:
                    est = dtb_samples.get(inst.addr, 0)
                    dtb_upper = min(dtb_upper,
                                    est * profile.periods.get(
                                        EventType.DTBMISS, 1.0)
                                    * TLB_PENALTY)
                if dtb_upper > 0:
                    candidates.append(
                        Culprit("dtb", 0.0, dtb_upper, source))
            elif inst.is_memory:
                candidates.append(Culprit("dtb", 0.0, total_dyn))

            if inst.is_store:
                candidates.append(Culprit("wb", 0.0, total_dyn))

            if _branch_possible(inst, block, cfg):
                candidates.append(
                    Culprit("branchmp", 0.0,
                            min(total_dyn, MISPREDICT_PENALTY * count)))

            mul_src = _fu_busy_possible(inst, block, "IMUL")
            if mul_src is not None and inst.info.cls == "IMUL":
                candidates.append(
                    Culprit("imul", 0.0, total_dyn, mul_src))
            div_src = _fu_busy_possible(inst, block, "FDIV")
            if div_src is not None and inst.info.cls == "FDIV":
                candidates.append(
                    Culprit("fdiv", 0.0, total_dyn, div_src))

            if not candidates:
                candidates.append(
                    Culprit("unexplained", total_dyn, total_dyn))
            else:
                # Pessimistic min: what no other candidate could cover.
                for culprit in candidates:
                    others = sum(c.max_cycles for c in candidates
                                 if c is not culprit)
                    culprit.min_cycles = max(0.0, total_dyn - others)
                covered = sum(c.max_cycles for c in candidates)
                if covered < total_dyn:
                    candidates.append(
                        Culprit("unexplained", total_dyn - covered,
                                total_dyn - covered))
            result[inst.addr] = candidates
    return result
