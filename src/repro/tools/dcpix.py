"""dcpix: translate profile data into pixie format (paper section 3).

Pixie reports exact basic-block execution counts from an instrumented
run; dcpix produces the same *format* from sampled profiles, using the
frequency estimates of section 6.1 instead of instrumentation.  The
output is one line per basic block: start address, instruction count,
and the estimated execution count -- directly comparable against the
pixie baseline's real counts (and tested against them).
"""

from repro.core.analyze import analyze_image


def pixie_counts(image, profile, config=None):
    """Return {block start address: (n instructions, estimated count)}.

    Covers every procedure of *image* holding CYCLES samples.
    """
    result = {}
    for analysis in analyze_image(image, profile, config).values():
        for block in analysis.cfg.blocks:
            count = analysis.freq.block_count(block.index)
            result[block.start] = (len(block.instructions),
                                   int(round(count)))
    return result


def dcpix(image, profile, config=None):
    """Render the pixie-format listing; returns the text."""
    counts = pixie_counts(image, profile, config)
    lines = ["# dcpix: estimated basic-block counts for %s" % image.name,
             "# address  instructions  count"]
    for start in sorted(counts):
        n_insts, count = counts[start]
        lines.append("%08x %5d %12d" % (start, n_insts, count))
    return "\n".join(lines)
