"""dcpistats: cross-run variance statistics (the paper's Figure 3).

Reads sample sets from multiple runs of the same workload and, per
procedure, reports the normalized range ((max - min) / sum), total,
share of all samples, mean, standard deviation, min and max -- sorted by
normalized range so the procedure responsible for run-to-run variance
(the paper's ``smooth_``) tops the list.
"""

import math

from repro.cpu.events import EventType


def procedure_series(profile_sets, event=EventType.CYCLES):
    """Collect per-procedure sample counts across runs.

    Args:
        profile_sets: list (one per run) of iterables of ImageProfile.

    Returns ({(procedure, image): [count per run]}, [total per run]).
    """
    series = {}
    run_totals = []
    for run_index, profiles in enumerate(profile_sets):
        total = 0
        for profile in profiles:
            if profile.image is None:
                continue
            for name, count in profile.procedure_totals(event).items():
                key = (name, profile.image.name)
                series.setdefault(key, [0] * len(profile_sets))
                series[key][run_index] = count
                total += count
        run_totals.append(total)
    return series, run_totals


def dcpistats(profile_sets, event=EventType.CYCLES, limit=None):
    """Render the Figure 3-style cross-run statistics; returns text."""
    series, run_totals = procedure_series(profile_sets, event)
    grand_total = sum(run_totals)
    lines = []
    lines.append("Number of samples of type %s" % event)
    chunks = ["set %d = %d" % (i + 1, t) for i, t in enumerate(run_totals)]
    for start in range(0, len(chunks), 4):
        lines.append("  " + "   ".join(chunks[start:start + 4]))
    lines.append("  TOTAL %d" % grand_total)
    lines.append("")
    lines.append("Statistics calculated using the sample counts for each "
                 "procedure from %d different sample set(s)" %
                 len(run_totals))
    lines.append("")
    lines.append("%7s %12s %7s %3s %11s %10s %9s %9s  %s"
                 % ("range%", "sum", "sum%", "N", "mean", "std-dev",
                    "min", "max", "procedure"))

    rows = []
    for (name, image), counts in series.items():
        total = sum(counts)
        if total == 0:
            continue
        n = len(counts)
        mean = total / n
        variance = (sum((c - mean) ** 2 for c in counts) / (n - 1)
                    if n > 1 else 0.0)
        rows.append({
            "procedure": name,
            "image": image,
            "range_pct": (max(counts) - min(counts)) / total * 100.0,
            "sum": total,
            "sum_pct": total / grand_total * 100.0 if grand_total else 0.0,
            "n": n,
            "mean": mean,
            "std": math.sqrt(variance),
            "min": min(counts),
            "max": max(counts),
        })
    rows.sort(key=lambda r: -r["range_pct"])
    for row in rows[:limit]:
        lines.append("%6.2f%% %12.2f %6.2f%% %3d %11.2f %10.2f %9d %9d  %s"
                     % (row["range_pct"], float(row["sum"]),
                        row["sum_pct"], row["n"], row["mean"], row["std"],
                        row["min"], row["max"], row["procedure"]))
    return "\n".join(lines)


def stats_rows(profile_sets, event=EventType.CYCLES):
    """Structured version of :func:`dcpistats` (for tests/benchmarks)."""
    series, run_totals = procedure_series(profile_sets, event)
    grand_total = sum(run_totals)
    rows = []
    for (name, image), counts in series.items():
        total = sum(counts)
        if total == 0:
            continue
        rows.append({
            "procedure": name,
            "image": image,
            "counts": counts,
            "range_pct": (max(counts) - min(counts)) / total * 100.0,
            "sum": total,
            "sum_pct": total / grand_total * 100.0 if grand_total else 0.0,
        })
    rows.sort(key=lambda r: -r["range_pct"])
    return rows
