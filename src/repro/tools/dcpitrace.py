"""``dcpitrace`` -- per-request-class attribution reports (repro.ctx).

Two subcommands:

* ``dcpitrace run``     -- profile a registry workload with the
  request-context dimension enabled and commit the context ledger to
  a profile database (alongside the samples, atomically).
* ``dcpitrace report``  -- read a database's context ledger and emit
  the per-class report as JSON: CYCLES samples and estimated cycles,
  exact per-class CPI from the OS's per-request accounting, the top
  culprit procedures, and request tail percentiles (p50/p95/p99 of
  cycles per request).

Exit codes: 0 on success; 1 when the database carries no context
ledger (the session ran without ``context=True``).

The report is computed from the committed blob only -- no session
state -- so it works identically on a single run, a crash-recovered
database, or a merged multi-epoch history.
"""

import argparse
import json
import sys

from repro.collect.database import ProfileDatabase
from repro.cpu.events import EventType
from repro.ctx import CTX_SCHEMA, merge_ledger_meta, span_id

#: Report schema version (the CI smoke test asserts on it).
REPORT_SCHEMA = 1


def percentile(sorted_values, pct):
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0
    rank = max(1, int(round(pct / 100.0 * len(sorted_values) + 0.5)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _cycles_period(database):
    """The CYCLES sampling period recorded in the database (or 1)."""
    records = database._load_manifest().get("records", {})
    for record in records.values():
        if record.get("event") == str(EventType.CYCLES):
            return max(1, int(record.get("period", 1)))
    return 1


def _merged_ledger(database):
    """All committed epoch ledgers reduced into one blob (or None)."""
    blob = database.get_meta("ctx")
    if blob is None:
        return None
    if blob.get("schema", 0) > CTX_SCHEMA:
        raise ValueError("context ledger schema %s is newer than "
                         "supported %s" % (blob.get("schema"), CTX_SCHEMA))
    epochs = blob.get("epochs", {})
    return merge_ledger_meta([epochs[key] for key in sorted(epochs)])


def tail_stats(cycles):
    """Tail percentiles of a per-request cycles list."""
    ordered = sorted(int(c) for c in cycles)
    count = len(ordered)
    return {
        "n": count,
        "p50": percentile(ordered, 50),
        "p95": percentile(ordered, 95),
        "p99": percentile(ordered, 99),
        "max": ordered[-1] if ordered else 0,
        "mean": (sum(ordered) // count) if count else 0,
    }


def build_report(ledger_meta, period=1, db="", limit=5):
    """The ``dcpitrace report`` payload (plain JSON-safe dicts)."""
    classes = {}
    cycles_key = str(EventType.CYCLES.value)
    total_samples = sum(
        by_event.get(cycles_key, 0)
        for by_event in ledger_meta.get("classes", {}).values())
    names = set(ledger_meta.get("classes", {}))
    names.update(ledger_meta.get("requests", {}))
    for name in sorted(names):
        by_event = ledger_meta.get("classes", {}).get(name, {})
        samples = by_event.get(cycles_key, 0)
        requests = ledger_meta.get("requests", {}).get(name, {})
        req_cycles = [entry.get("cycles", 0)
                      for entry in requests.values()]
        req_instructions = sum(entry.get("instructions", 0)
                               for entry in requests.values())
        culprits = sorted(
            ledger_meta.get("culprits", {}).get(name, {}).items(),
            key=lambda item: (-item[1], item[0]))[:limit]
        classes[name] = {
            "span": span_id(name),
            "samples": {event: count
                        for event, count in sorted(by_event.items())},
            "cycles_samples": samples,
            "est_cycles": samples * period,
            "share": (samples / total_samples) if total_samples else 0.0,
            "requests": len(requests),
            "request_cycles": sum(req_cycles),
            "request_instructions": req_instructions,
            "cpi": (sum(req_cycles) / req_instructions
                    if req_instructions else 0.0),
            "culprits": [{"procedure": proc, "samples": count}
                         for proc, count in culprits],
            "tail": tail_stats(req_cycles),
        }
    return {
        "schema": REPORT_SCHEMA,
        "db": db,
        "period": period,
        "classes": classes,
        "other_samples": ledger_meta.get("other_samples", 0),
        "table": {
            "slots": ledger_meta.get("table_slots", 0),
            "evictions": ledger_meta.get("table_evictions", 0),
            "interns": ledger_meta.get("table_interns", 0),
        },
    }


def format_report(report, title="dcpitrace report"):
    """Human-readable rendering of :func:`build_report` output."""
    lines = ["%s (%s)" % (title, report["db"] or "-"),
             "%-18s %8s %6s %6s %8s %8s %8s  %s"
             % ("class", "cycles", "share", "cpi",
                "p50", "p95", "p99", "top culprit")]
    for name, cls in report["classes"].items():
        top = (cls["culprits"][0]["procedure"]
               if cls["culprits"] else "-")
        tail = cls["tail"]
        lines.append("%-18s %8d %5.1f%% %6.2f %8d %8d %8d  %s"
                     % (name, cls["est_cycles"], cls["share"] * 100.0,
                        cls["cpi"], tail["p50"], tail["p95"],
                        tail["p99"], top))
    table = report["table"]
    lines.append("context table: %d slots, %d interns, %d evictions; "
                 "%d unattributed samples"
                 % (table["slots"], table["interns"],
                    table["evictions"], report["other_samples"]))
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="dcpitrace",
        description="per-request-class attribution (repro.ctx)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="profile a workload with the "
                           "context dimension on")
    run_p.add_argument("--workload", required=True)
    run_p.add_argument("--out", required=True,
                       help="profile database directory")
    run_p.add_argument("--max-instructions", type=int, default=400_000)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--mode", default="default",
                       choices=["cycles", "default", "mux"])
    run_p.add_argument("--ctx-slots", type=int, default=64)

    rep_p = sub.add_parser("report", help="per-class report from a "
                           "context-enabled database")
    rep_p.add_argument("db", help="profile database directory")
    rep_p.add_argument("--json", action="store_true",
                       help="emit the raw JSON payload")
    rep_p.add_argument("--limit", type=int, default=5,
                       help="culprit procedures per class")
    args = parser.parse_args(argv)

    if args.command == "run":
        return _run(args)
    return _report(args)


def _run(args):
    from repro.collect.session import ProfileSession, SessionConfig
    from repro.cpu.config import MachineConfig
    from repro.workloads.registry import get_workload

    workload = get_workload(args.workload)
    session = ProfileSession(
        MachineConfig(num_cpus=workload.num_cpus),
        SessionConfig(mode=args.mode, seed=args.seed, db_root=args.out,
                      context=True, ctx_slots=args.ctx_slots))
    result = session.run(workload,
                         max_instructions=args.max_instructions)
    ledger = result.ctx_ledger
    print("profiled %d instructions; %d request classes, %d requests "
          "-> %s"
          % (result.instructions, len(ledger.classes),
             sum(len(reqs) for reqs in ledger.requests.values()),
             args.out))
    return 0


def _report(args):
    database = ProfileDatabase(args.db)
    merged = _merged_ledger(database)
    if merged is None:
        print("no context ledger in %s (run with the context "
              "dimension enabled: dcpitrace run / context=True)"
              % args.db, file=sys.stderr)
        return 1
    report = build_report(merged, period=_cycles_period(database),
                          db=args.db, limit=args.limit)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
