"""``dcpibench``: run the benchmark suite in parallel, track the results.

The benchmark suite regenerates the paper's tables and figures; this
runner turns it into something CI can gate on.  It discovers the
``bench_*.py`` modules, fans them out across worker processes (via the
same :class:`~repro.collect.parallel.ParallelSessionRunner` pool that
shards profiling runs), and collects the machine-readable
``BENCH_<name>.json`` results the benchmarks' conftest emits --
timings, sample counts, overhead percentages, and per-table assertion
outcomes.  The ``compare`` subcommand diffs two result directories and
exits nonzero on regression, so "the numbers got worse" fails the
build, not just "the numbers crashed".

Usage::

    dcpibench [--quick] [--workers N] [names ...]
    dcpibench compare OLD_DIR NEW_DIR [--threshold 0.3] [--lenient]
"""

import argparse
import fnmatch
import glob
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.collect.parallel import ParallelSessionRunner

#: Instruction-budget clamp applied by --quick (overridable with
#: --max-instructions).  Large enough that every benchmark's
#: qualitative assertions still hold; small enough for a CI smoke job.
QUICK_BUDGET = 120_000

#: Per-benchmark wall-clock limit (seconds).
DEFAULT_TIMEOUT = 900


@dataclass(frozen=True)
class BenchJob:
    """One benchmark module scheduled for a worker."""

    name: str
    path: str
    results_dir: str
    env: tuple = ()            # frozen (key, value) pairs
    timeout: int = DEFAULT_TIMEOUT


@dataclass
class BenchOutcome:
    name: str
    returncode: int
    elapsed_s: float
    result: Optional[dict] = None
    output_tail: str = ""

    @property
    def passed(self):
        return self.returncode == 0 and (
            self.result is None or self.result.get("passed", False))


def default_bench_dir():
    """Find the benchmarks directory: cwd, cwd/benchmarks, or the
    source checkout next to the installed package."""
    candidates = [
        os.path.join(os.getcwd(), "benchmarks"),
        os.getcwd(),
    ]
    here = os.path.dirname(os.path.abspath(__file__))
    candidates.append(os.path.normpath(
        os.path.join(here, "..", "..", "..", "benchmarks")))
    for candidate in candidates:
        if glob.glob(os.path.join(candidate, "bench_*.py")):
            return candidate
    raise SystemExit(
        "dcpibench: no bench_*.py found near %s; use --bench-dir"
        % os.getcwd())


def discover_benchmarks(bench_dir):
    """Return sorted [(name, path)] for every benchmark module."""
    pairs = []
    for path in sorted(glob.glob(os.path.join(bench_dir, "bench_*.py"))):
        stem = os.path.basename(path)[len("bench_"):-len(".py")]
        pairs.append((stem, path))
    return pairs


def _child_env(results_dir, quick, max_instructions):
    env = dict(os.environ)
    # Make sure workers can import repro even when it is not installed
    # (development checkouts run with PYTHONPATH=src).
    src_dir = os.path.normpath(os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    parts = [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    if src_dir not in parts:
        parts.insert(0, src_dir)
    env["PYTHONPATH"] = os.pathsep.join(parts)
    env["DCPIBENCH_RESULTS"] = results_dir
    if quick:
        env["DCPIBENCH_QUICK"] = "1"
    if max_instructions:
        env["DCPIBENCH_MAX_INSTRUCTIONS"] = str(max_instructions)
    return env


def run_bench(job):
    """Run one benchmark module under pytest; the pool's worker function."""
    started = time.perf_counter()
    command = [sys.executable, "-m", "pytest", os.path.basename(job.path),
               "-q", "--benchmark-disable", "-p", "no:cacheprovider"]
    try:
        proc = subprocess.run(
            command, cwd=os.path.dirname(job.path), env=dict(job.env),
            capture_output=True, text=True, timeout=job.timeout)
        returncode, output = proc.returncode, proc.stdout + proc.stderr
    except subprocess.TimeoutExpired as exc:
        returncode = -1
        output = "TIMEOUT after %ds\n%s" % (job.timeout, exc.stdout or "")
    return BenchOutcome(
        name=job.name, returncode=returncode,
        elapsed_s=time.perf_counter() - started,
        output_tail=output[-2000:])


def _attach_results(outcomes, results_dir, workers):
    """Load each benchmark's JSON and stamp runner-level facts into it."""
    for outcome in outcomes:
        path = os.path.join(results_dir, "BENCH_%s.json" % outcome.name)
        if os.path.exists(path):
            with open(path) as handle:
                outcome.result = json.load(handle)
        elif outcome.returncode == 0:
            # The module ran but the harness produced nothing -- treat
            # as a failure so CI notices broken plumbing.
            outcome.returncode = 1
        runner_info = {
            "returncode": outcome.returncode,
            "wall_s": round(outcome.elapsed_s, 3),
            "workers": workers,
        }
        if outcome.result is not None:
            outcome.result["runner"] = runner_info
            outcome.result["passed"] = outcome.passed
            with open(path, "w") as handle:
                json.dump(outcome.result, handle, indent=2, sort_keys=True)
                handle.write("\n")


def run_suite(args):
    bench_dir = os.path.abspath(args.bench_dir or default_bench_dir())
    results_dir = os.path.abspath(
        args.results_dir or os.path.join(bench_dir, "results"))
    os.makedirs(results_dir, exist_ok=True)
    benchmarks = discover_benchmarks(bench_dir)
    if args.names:
        selected = []
        for name, path in benchmarks:
            if any(fnmatch.fnmatch(name, pat) or pat == name
                   for pat in args.names):
                selected.append((name, path))
        benchmarks = selected
    if args.list:
        for name, path in benchmarks:
            print(name)
        return 0
    if not benchmarks:
        print("dcpibench: nothing matched", file=sys.stderr)
        return 2

    max_instructions = args.max_instructions
    if args.quick and not max_instructions:
        max_instructions = QUICK_BUDGET
    env = tuple(sorted(_child_env(results_dir, args.quick,
                                  max_instructions).items()))
    jobs = [BenchJob(name=name, path=path, results_dir=results_dir,
                     env=env, timeout=args.timeout)
            for name, path in benchmarks]

    runner = ParallelSessionRunner(workers=args.workers)
    print("dcpibench: %d benchmarks, %d workers%s"
          % (len(jobs), runner.workers,
             ", quick (budget clamp %d)" % max_instructions
             if max_instructions else ""))
    started = time.perf_counter()
    outcomes = runner.map(run_bench, jobs)
    _attach_results(outcomes, results_dir, runner.workers)

    failed = [o for o in outcomes if not o.passed]
    for outcome in outcomes:
        metrics = (outcome.result or {}).get("metrics", {})
        print("  %-24s %-6s %6.1fs  %8d samples  %s"
              % (outcome.name,
                 "ok" if outcome.passed else "FAIL",
                 outcome.elapsed_s,
                 metrics.get("samples", 0),
                 "overhead %.2f%%" % metrics["overhead_pct_mean"]
                 if "overhead_pct_mean" in metrics else ""))
    print("dcpibench: %d/%d passed in %.1fs -> %s"
          % (len(outcomes) - len(failed), len(outcomes),
             time.perf_counter() - started, results_dir))
    for outcome in failed:
        print("\n--- %s (exit %d) ---\n%s"
              % (outcome.name, outcome.returncode, outcome.output_tail),
              file=sys.stderr)
    return 1 if failed else 0


# -- compare ---------------------------------------------------------------


def load_results(dirpath):
    """{benchmark name: parsed BENCH_*.json} for a results directory."""
    results = {}
    for path in sorted(glob.glob(os.path.join(dirpath, "BENCH_*.json"))):
        with open(path) as handle:
            payload = json.load(handle)
        results[payload.get("benchmark",
                            os.path.basename(path)[6:-5])] = payload
    return results


@dataclass
class Comparison:
    regressions: list = field(default_factory=list)
    notes: list = field(default_factory=list)
    #: self-monitoring drift (obs block): surfaced, never build-failing.
    warnings: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.regressions


#: obs-block keys compared between runs: (key, label, absolute slack).
#: Rates get small absolute slack; raw counts must match exactly on
#: identically-configured runs (the simulator is deterministic).
OBS_COMPARE_KEYS = (
    ("driver.hash.miss_rate", "hash miss rate", 0.002),
    ("driver.hash.aggregation_factor", "hash aggregation factor", 0.5),
    ("driver.overflow.spills", "overflow spills", 0),
    ("driver.overflow.dropped", "dropped samples", 0),
    ("driver.hash.evictions", "hash evictions", 0),
    ("daemon.unknown_fraction", "unknown-sample fraction", 0.002),
    ("collect.loss_rate", "sample loss rate", 0.002),
    ("collect.samples_dropped", "accounted sample loss", 0),
    ("collect.recoveries", "crash recoveries", 0),
)


def _compare_obs(name, old_obs, new_obs, comparison):
    """Warn -- never fail -- when self-monitoring metrics drift."""
    for key, label, slack in OBS_COMPARE_KEYS:
        old_v, new_v = old_obs.get(key), new_obs.get(key)
        if old_v is None or new_v is None:
            continue
        if abs(new_v - old_v) > slack:
            comparison.warnings.append(
                "%s: %s drifted %s -> %s" % (name, label,
                                             "%g" % old_v, "%g" % new_v))


#: "fleet" block keys (schema 4) compared between runs: deterministic
#: store facts must match exactly; timing-derived throughput is not
#: compared (it lives in the block for humans and trend dashboards).
FLEET_COMPARE_KEYS = (
    ("samples_ingested", "fleet samples ingested", 0),
    ("deltas_applied", "fleet deltas applied", 0),
    ("duplicates_dropped", "fleet duplicates dropped", 0),
    ("downsample_residue", "fleet downsample residue", 0),
    ("disk_bytes_full", "fleet store bytes (no retention)", 0),
)


def _compare_fleet(name, old_fleet, new_fleet, comparison):
    """Warn -- never fail -- when fleet store facts drift."""
    for key, label, slack in FLEET_COMPARE_KEYS:
        old_v, new_v = old_fleet.get(key), new_fleet.get(key)
        if old_v is None or new_v is None:
            continue
        if abs(new_v - old_v) > slack:
            comparison.warnings.append(
                "%s: %s drifted %s -> %s" % (name, label,
                                             "%g" % old_v, "%g" % new_v))


#: "opt" block keys (schema 6) compared between runs: the simulator is
#: deterministic, so realized speedups reproduce to the float slack;
#: acceptance flags must match exactly (a rewrite that stops verifying
#: is a real regression, not drift).
OPT_COMPARE_KEYS = (
    ("accepted", "opt rewrites accepted", 0),
    ("speedup_min", "opt minimum realized speedup", 0.005),
    ("speedup_mean", "opt mean realized speedup", 0.005),
)


def _compare_opt(name, old_opt, new_opt, comparison):
    """Warn -- never fail -- when optimizer facts drift."""
    for key, label, slack in OPT_COMPARE_KEYS:
        old_v, new_v = old_opt.get(key), new_opt.get(key)
        if old_v is None or new_v is None:
            continue
        if abs(new_v - old_v) > slack:
            comparison.warnings.append(
                "%s: %s drifted %s -> %s" % (name, label,
                                             "%g" % old_v, "%g" % new_v))


#: "resilience" block keys (schema 7) compared between runs: the
#: conservation facts are deterministic (seeded faults, seeded
#: backoff) and must reproduce exactly; concurrent-vs-serial speedup
#: carries a generous slack (it is wall-clock-derived and only its
#: direction is load-bearing); raw throughputs are not compared.
RESILIENCE_COMPARE_KEYS = (
    ("samples_conserved", "resilience samples conserved", 0),
    ("spool_dropped_samples", "resilience spool-dropped samples", 0),
    ("transit_lost_samples", "resilience transit-lost samples", 0),
    ("ship_retries", "resilience ship retries", 0),
    ("concurrent_speedup", "concurrent-over-serial ingest speedup",
     1.5),
)


def _compare_resilience(name, old_res, new_res, comparison):
    """Warn -- never fail -- when fleet resilience facts drift."""
    for key, label, slack in RESILIENCE_COMPARE_KEYS:
        old_v, new_v = old_res.get(key), new_res.get(key)
        if old_v is None or new_v is None:
            continue
        if abs(new_v - old_v) > slack:
            comparison.warnings.append(
                "%s: %s drifted %s -> %s" % (name, label,
                                             "%g" % old_v, "%g" % new_v))


def compare_results(old, new, threshold=0.3, sample_drift=0.01,
                    ips_threshold=0.15, lenient=False):
    """Diff two result sets; regressions are what CI should fail on.

    * results written under different schema versions -- regression
      (the metrics are not comparable), with two exceptions: a baseline
      exactly one version older is accepted (schema bumps are additive
      by policy, so shared fields stay comparable), and *lenient*
      downgrades any other mismatch to a note and skips the benchmark;
    * a benchmark that passed before and fails now -- regression;
    * ``elapsed_s`` grew by more than *threshold* (relative) -- regression;
    * ``instructions_per_sec`` fell by more than *ips_threshold*
      (relative) between identically-configured runs -- regression (the
      simulator fast path's throughput gate);
    * ``overhead_pct_mean`` grew by more than ``max(0.5pp,
      threshold * |old|)`` -- regression;
    * ``samples`` drifted more than *sample_drift* (relative) between
      runs with identical budget clamps -- regression (the simulator is
      deterministic; sample drift means collection behavior changed);
    * benchmarks appearing/disappearing -- noted, not failed;
    * obs-block self-monitoring metrics (hash miss rate, spill and
      eviction counts) drifting between identically-configured runs --
      warned, not failed (:data:`OBS_COMPARE_KEYS`).
    """
    comparison = Comparison()
    for name in sorted(set(old) | set(new)):
        if name not in new:
            comparison.notes.append("%s: missing from new results" % name)
            continue
        if name not in old:
            comparison.notes.append("%s: new benchmark" % name)
            continue
        o, n = old[name], new[name]
        old_schema, new_schema = o.get("schema"), n.get("schema")
        if old_schema != new_schema:
            if (isinstance(old_schema, int) and isinstance(new_schema, int)
                    and new_schema - old_schema == 1):
                # Schema bumps are additive by policy (see
                # benchmarks/conftest.py's BENCH_SCHEMA history), so a
                # baseline exactly one version older stays comparable
                # on every shared field -- new-only blocks simply have
                # nothing to diff against.  This keeps a schema bump
                # from requiring baselines regenerated in the same PR
                # to land atomically with the code that reads them.
                comparison.notes.append(
                    "%s: baseline schema %s, new %s (one version "
                    "older; comparing shared fields)"
                    % (name, old_schema, new_schema))
            else:
                message = ("%s: schema %s -> %s (results not comparable)"
                           % (name, old_schema, new_schema))
                if lenient:
                    comparison.notes.append(
                        message + "; skipped (--lenient)")
                    continue
                comparison.regressions.append(message)
                continue
        if o.get("passed") and not n.get("passed"):
            comparison.regressions.append(
                "%s: passed before, fails now" % name)
        om, nm = o.get("metrics", {}), n.get("metrics", {})
        old_t, new_t = om.get("elapsed_s"), nm.get("elapsed_s")
        if old_t and new_t and new_t > old_t * (1.0 + threshold):
            comparison.regressions.append(
                "%s: elapsed_s %.2f -> %.2f (+%.0f%% > %.0f%% threshold)"
                % (name, old_t, new_t, (new_t / old_t - 1) * 100,
                   threshold * 100))
        old_ov, new_ov = (om.get("overhead_pct_mean"),
                          nm.get("overhead_pct_mean"))
        if old_ov is not None and new_ov is not None:
            allowed = max(0.5, threshold * abs(old_ov))
            if new_ov > old_ov + allowed:
                comparison.regressions.append(
                    "%s: overhead %.2f%% -> %.2f%% (allowed +%.2fpp)"
                    % (name, old_ov, new_ov, allowed))
        same_setup = (o.get("max_instructions_clamp")
                      == n.get("max_instructions_clamp")
                      and o.get("quick") == n.get("quick"))
        old_ips, new_ips = (om.get("instructions_per_sec"),
                            nm.get("instructions_per_sec"))
        if (same_setup and o.get("fastpath") == n.get("fastpath")
                and old_ips and new_ips is not None
                and new_ips < old_ips * (1.0 - ips_threshold)):
            comparison.regressions.append(
                "%s: instructions/sec %.0f -> %.0f (-%.0f%% > %.0f%% "
                "threshold)"
                % (name, old_ips, new_ips, (1 - new_ips / old_ips) * 100,
                   ips_threshold * 100))
        old_s, new_s = om.get("samples"), nm.get("samples")
        if same_setup and old_s and new_s is not None:
            drift = abs(new_s - old_s) / old_s
            if drift > sample_drift:
                comparison.regressions.append(
                    "%s: samples %d -> %d (drift %.1f%% > %.1f%%)"
                    % (name, old_s, new_s, drift * 100,
                       sample_drift * 100))
        if same_setup and o.get("obs") and n.get("obs"):
            _compare_obs(name, o["obs"], n["obs"], comparison)
        if same_setup and o.get("fleet") and n.get("fleet"):
            _compare_fleet(name, o["fleet"], n["fleet"], comparison)
        if same_setup and o.get("opt") and n.get("opt"):
            _compare_opt(name, o["opt"], n["opt"], comparison)
        if same_setup and o.get("resilience") and n.get("resilience"):
            _compare_resilience(name, o["resilience"],
                                n["resilience"], comparison)
    return comparison


def run_compare(args):
    old = load_results(args.old)
    new = load_results(args.new)
    if not old or not new:
        print("dcpibench compare: no BENCH_*.json under %s"
              % (args.old if not old else args.new), file=sys.stderr)
        return 2
    comparison = compare_results(old, new, threshold=args.threshold,
                                 sample_drift=args.sample_drift,
                                 ips_threshold=args.ips_threshold,
                                 lenient=args.lenient)
    for note in comparison.notes:
        print("note: %s" % note)
    for warning in comparison.warnings:
        print("warning: %s" % warning)
    for regression in comparison.regressions:
        print("REGRESSION: %s" % regression)
    print("compared %d benchmarks: %d regression(s), %d warning(s)"
          % (len(set(old) & set(new)), len(comparison.regressions),
             len(comparison.warnings)))
    return 0 if comparison.ok else 1


# -- entry point -----------------------------------------------------------


def _build_run_parser():
    parser = argparse.ArgumentParser(
        prog="dcpibench",
        description="run the benchmark suite and write BENCH_*.json "
                    "results (use 'dcpibench compare OLD NEW' to diff "
                    "two result sets)")
    parser.add_argument("names", nargs="*",
                        help="benchmark names or globs (default: all)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: cpu count)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: clamp instruction budgets "
                             "to %d" % QUICK_BUDGET)
    parser.add_argument("--max-instructions", type=int, default=None,
                        help="explicit instruction-budget clamp")
    parser.add_argument("--bench-dir", default=None)
    parser.add_argument("--results-dir", default=None)
    parser.add_argument("--timeout", type=int, default=DEFAULT_TIMEOUT,
                        help="per-benchmark timeout (seconds)")
    parser.add_argument("--list", action="store_true",
                        help="list matching benchmarks and exit")
    return parser


def _build_compare_parser():
    parser = argparse.ArgumentParser(
        prog="dcpibench compare",
        description="diff two BENCH_*.json result directories; exit 1 "
                    "on regression")
    parser.add_argument("old", help="baseline results directory")
    parser.add_argument("new", help="candidate results directory")
    parser.add_argument("--threshold", type=float, default=0.3,
                        help="relative slowdown tolerated (default 0.3)")
    parser.add_argument("--sample-drift", type=float, default=0.01,
                        help="relative sample-count drift tolerated "
                             "between identically-configured runs")
    parser.add_argument("--ips-threshold", type=float, default=0.15,
                        help="relative instructions/sec drop tolerated "
                             "between identically-configured runs "
                             "(default 0.15)")
    parser.add_argument("--lenient", action="store_true",
                        help="skip (note, do not fail) benchmarks whose "
                             "result schema versions differ")
    return parser


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "compare":
        return run_compare(_build_compare_parser().parse_args(argv[1:]))
    return run_suite(_build_run_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
