"""dcpiprof: samples per procedure or per image (the paper's Figure 1).

Reads a set of image profiles and prints procedures sorted by
decreasing CYCLES samples, with cumulative percentages and (when
collected) IMISS sample counts -- kernel and shared-library code
included, exactly like the paper's x11perf listing.
"""

from repro.cpu.events import EventType


def procedure_table(profiles, event=EventType.CYCLES,
                    secondary=EventType.IMISS):
    """Build the dcpiprof table rows.

    Args:
        profiles: iterable of :class:`ImageProfile`.
        event: primary event (columns 1-3).
        secondary: secondary event (columns 4-5), or None.

    Returns (rows, total_primary, total_secondary) where each row is a
    dict with keys: procedure, image, primary, secondary.
    """
    rows = []
    total_primary = 0
    total_secondary = 0
    for profile in profiles:
        if profile.image is None:
            continue
        primary_totals = profile.procedure_totals(event)
        secondary_totals = (profile.procedure_totals(secondary)
                            if secondary is not None else {})
        for proc in profile.image.procedures:
            primary = primary_totals.get(proc.name, 0)
            second = secondary_totals.get(proc.name, 0)
            if primary == 0 and second == 0:
                continue
            rows.append({
                "procedure": proc.name,
                "image": profile.image.name,
                "primary": primary,
                "secondary": second,
            })
            total_primary += primary
            total_secondary += second
    rows.sort(key=lambda r: -r["primary"])
    return rows, total_primary, total_secondary


def image_table(profiles, event=EventType.CYCLES):
    """Per-image totals (dcpiprof's "-i" mode in the paper).

    Returns (rows, total) with rows sorted by decreasing samples.
    """
    rows = []
    total = 0
    for profile in profiles:
        if profile.image is None:
            continue
        count = profile.total(event)
        if count == 0:
            continue
        rows.append({"image": profile.image.name, "primary": count})
        total += count
    rows.sort(key=lambda r: -r["primary"])
    return rows, total


def dcpiprof_by_image(profiles, event=EventType.CYCLES, limit=None):
    """Render the per-image listing; returns the text."""
    rows, total = image_table(profiles, event)
    lines = ["Total samples for event type %s = %d" % (event, total),
             "%10s %7s %7s  %s" % (event, "%", "cum%", "image")]
    cumulative = 0.0
    for row in rows[:limit]:
        share = 100.0 * row["primary"] / total if total else 0.0
        cumulative += share
        lines.append("%10d %6.2f%% %6.2f%%  %s"
                     % (row["primary"], share, cumulative, row["image"]))
    return "\n".join(lines)


def dcpiprof(profiles, event=EventType.CYCLES, secondary=EventType.IMISS,
             limit=None):
    """Render the Figure 1-style listing; returns the text."""
    rows, total_primary, total_secondary = procedure_table(
        profiles, event, secondary)
    lines = []
    header = ("Total samples for event type %s = %d"
              % (event, total_primary))
    if secondary is not None and total_secondary:
        header += ", %s = %d" % (secondary, total_secondary)
    lines.append(header)
    lines.append("The counts given below are the number of samples "
                 "for each listed event type.")
    lines.append("")
    lines.append("%10s %7s %7s %10s %7s  %-28s %s"
                 % (event, "%", "cum%", secondary or "", "%",
                    "procedure", "image"))
    cumulative = 0.0
    for row in rows[:limit]:
        share = (100.0 * row["primary"] / total_primary
                 if total_primary else 0.0)
        cumulative += share
        second_share = (100.0 * row["secondary"] / total_secondary
                        if total_secondary else 0.0)
        lines.append("%10d %6.2f%% %6.2f%% %10d %6.2f%%  %-28s %s"
                     % (row["primary"], share, cumulative,
                        row["secondary"], second_share,
                        row["procedure"], row["image"]))
    return "\n".join(lines)
