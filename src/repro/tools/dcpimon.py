"""``dcpimon`` -- the profiler profiling itself.

The paper's own evaluation (sections 5 and 8) is a self-monitoring
exercise: how many samples per second, how well the per-CPU hash
tables aggregate, how much memory the daemon holds, where the analysis
time goes.  ``dcpimon`` renders exactly that report for this
reproduction, from the ``repro.obs`` metrics and trace spans:

* ``dcpimon report`` runs a sharded collection (obs-enabled shards)
  plus one in-process analysis pass, prints the self-profile report,
  and optionally writes the combined Chrome-trace JSONL (open in
  ``about:tracing`` / Perfetto, or feed back via ``--from-trace``).
* ``dcpimon report --from-trace FILE`` rebuilds the same report
  post-hoc from a trace file alone -- the derived metrics ride along
  as counter events, the shard facts as metadata events.
* ``dcpimon overhead`` measures the wall-clock cost of enabling
  self-monitoring against the identical disabled run and can assert a
  ceiling (``--max-pct``), which CI gates at 2%.
"""

import argparse
import json
import sys
import time

from repro.obs import derive, merge_metrics, span_durations, trace_counters
from repro.obs.report import render_report
from repro.obs.trace import PH_METADATA, read_events

#: Metadata event names used to make traces self-describing.
META_SHARD = "dcpimon.shard"
META_MERGE = "dcpimon.merge"


def _shard_rows(run):
    """Per-shard report rows from a :class:`ParallelRunResult`."""
    return [{"label": shard.spec.label(),
             "wall_s": shard.elapsed,
             "samples": shard.samples,
             "instructions": shard.instructions}
            for shard in run.shards]


def _analysis_phases(events):
    """The analyze.*/session.* span table for the report."""
    return {name: entry for name, entry in span_durations(events).items()
            if name.startswith(("analyze.", "session."))}


def _combined_events(obs, run, flat, shard_rows):
    """One self-describing event list: in-process spans (pid 0), each
    shard's spans re-stamped to its own pid, derived metrics as counter
    series, and shard/merge facts as metadata -- everything
    ``--from-trace`` needs to rebuild the report."""
    events = [dict(event) for event in obs.trace.events]
    events.append({"ph": PH_METADATA, "name": "process_name", "ts": 0,
                   "pid": 0, "tid": 0, "args": {"name": "dcpimon"}})
    for index, shard in enumerate(run.shards):
        pid = index + 1
        events.append({"ph": PH_METADATA, "name": "process_name",
                       "ts": 0, "pid": pid, "tid": 0,
                       "args": {"name": shard.spec.label()}})
        for event in shard.trace_events or ():
            stamped = dict(event)
            stamped["pid"] = pid
            events.append(stamped)
    for row in shard_rows:
        events.append({"ph": PH_METADATA, "name": META_SHARD, "ts": 0,
                       "pid": 0, "tid": 0, "args": dict(row)})
    events.append({"ph": PH_METADATA, "name": META_MERGE, "ts": 0,
                   "pid": 0, "tid": 0, "args": {"merge_s": run.merge_s}})
    for name, value in sorted(flat.items()):
        if isinstance(value, (int, float)):
            events.append({"ph": "C", "name": name, "ts": 0, "pid": 0,
                           "tid": 0, "args": {"value": value}})
    return events


def _write_events(path, events):
    with open(path, "w") as handle:
        if str(path).endswith(".json"):
            json.dump(events, handle, indent=1, sort_keys=True)
            handle.write("\n")
        else:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")


def _analyze_hottest(result, obs):
    """Run the full analysis pipeline on the hottest profiled image so
    the report has a per-phase time breakdown."""
    from repro.core.analyze import AnalysisConfig, analyze_image
    from repro.cpu.events import EventType

    hottest, best = None, -1
    for profile in result.profiles.values():
        total = sum(profile.procedure_totals(EventType.CYCLES).values())
        if total > best:
            hottest, best = profile, total
    if hottest is None:
        return None
    config = AnalysisConfig(obs=obs)
    with obs.span("analyze.image", image=hottest.image.name):
        analyze_image(hottest.image, hottest, config)
    return hottest.image.name


def run_report(args):
    """The live path: sharded collection + in-process analysis."""
    from repro.collect.parallel import ParallelSessionRunner, ShardSpec
    from repro.collect.session import ProfileSession, SessionConfig
    from repro.cpu.config import MachineConfig
    from repro.obs import ObsConfig
    from repro.workloads.registry import get_workload

    specs = [ShardSpec(workload=args.workload, seed=args.seed + index,
                       mode=args.mode,
                       max_instructions=args.max_instructions, obs=True)
             for index in range(args.shards)]
    runner = ParallelSessionRunner(workers=args.workers)
    run = runner.run(specs)

    # One in-process observed session feeds the analysis passes; its
    # spans land in the trace the report's phase table is built from.
    workload = get_workload(args.workload)
    session = ProfileSession(
        MachineConfig(num_cpus=workload.num_cpus),
        SessionConfig(mode=args.mode, seed=args.seed,
                      obs=ObsConfig(enabled=True)))
    result = session.run(workload, max_instructions=args.max_instructions)
    # Reuse the session's live obs so analysis spans share its clock.
    obs = result.obs
    analyzed = _analyze_hottest(result, obs)

    flat = derive(merge_metrics([run.obs]))
    shard_rows = _shard_rows(run)
    phases = _analysis_phases(obs.trace.events)
    events = _combined_events(obs, run, flat, shard_rows)
    if args.trace:
        _write_events(args.trace, events)

    title = "%s (%d shards%s)" % (
        args.workload, args.shards,
        ", analyzed %s" % analyzed if analyzed else "")
    text = render_report(flat, shards=shard_rows, merge_s=run.merge_s,
                         phases=phases, title=title)
    if args.trace:
        text += "\ntrace: %s (%d events)\n" % (args.trace, len(events))
    return text


def report_from_trace(path):
    """Rebuild the report from a trace written by ``dcpimon report``."""
    events = read_events(path)
    flat = trace_counters(events)
    phases = _analysis_phases(events)
    shard_rows = [event["args"] for event in events
                  if event.get("ph") == PH_METADATA
                  and event.get("name") == META_SHARD]
    merge_s = None
    for event in events:
        if (event.get("ph") == PH_METADATA
                and event.get("name") == META_MERGE):
            merge_s = event["args"].get("merge_s")
    return render_report(flat, shards=shard_rows, merge_s=merge_s,
                         phases=phases, title="(from %s)" % path)


def measure_overhead(workload_name, mode="default", budget=40_000,
                     seed=1, repeats=3):
    """Wall-clock cost of self-monitoring: enabled vs disabled runs.

    Runs the identical (workload, seed) session *repeats* times each
    way and compares the minima -- the standard noise-robust estimator.
    Returns {"disabled_s", "enabled_s", "overhead_pct", ...}.
    """
    from repro.collect.session import ProfileSession, SessionConfig
    from repro.cpu.config import MachineConfig
    from repro.obs import ObsConfig
    from repro.workloads.registry import get_workload

    def one(enabled):
        workload = get_workload(workload_name)
        config = SessionConfig(
            mode=mode, seed=seed,
            obs=ObsConfig(enabled=True) if enabled else None)
        session = ProfileSession(
            MachineConfig(num_cpus=workload.num_cpus), config)
        started = time.perf_counter()
        session.run(workload, max_instructions=budget)
        return time.perf_counter() - started

    one(False)  # warm-up: imports, opcode tables, allocator
    disabled, enabled = [], []
    for _ in range(repeats):
        disabled.append(one(False))
        enabled.append(one(True))
    best_disabled = min(disabled)
    best_enabled = min(enabled)
    pct = ((best_enabled - best_disabled) / best_disabled * 100.0
           if best_disabled else 0.0)
    return {
        "workload": workload_name,
        "budget": budget,
        "repeats": repeats,
        "disabled_s": best_disabled,
        "enabled_s": best_enabled,
        "overhead_pct": pct,
    }


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="dcpimon",
        description="self-monitoring report for the profiling pipeline")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render the self-profile report")
    report.add_argument("--workload", default="mccalpin")
    report.add_argument("--mode", default="default",
                        choices=["cycles", "default", "mux"])
    report.add_argument("--shards", type=int, default=2)
    report.add_argument("--workers", type=int, default=None)
    report.add_argument("--seed", type=int, default=1)
    report.add_argument("--max-instructions", type=int, default=60_000)
    report.add_argument("--trace", default=None,
                        help="write the combined Chrome trace here "
                             "(JSONL; .json = array form)")
    report.add_argument("--from-trace", default=None,
                        help="post-hoc: rebuild the report from a "
                             "previously written trace file")
    report.add_argument("--quick", action="store_true",
                        help="small run for smoke tests / CI")

    overhead = sub.add_parser(
        "overhead", help="measure the cost of enabling self-monitoring")
    overhead.add_argument("--workload", default="mccalpin-assign")
    overhead.add_argument("--mode", default="default",
                          choices=["cycles", "default", "mux"])
    overhead.add_argument("--budget", type=int, default=40_000,
                          help="instructions per timed run")
    overhead.add_argument("--seed", type=int, default=1)
    overhead.add_argument("--repeats", type=int, default=3)
    overhead.add_argument("--max-pct", type=float, default=None,
                          help="fail (exit 1) if overhead exceeds this")
    overhead.add_argument("--quick", action="store_true",
                          help="small run for smoke tests / CI")
    return parser


def main(argv=None):
    args = _build_parser().parse_args(argv)
    if args.command == "report":
        if args.quick:
            args.shards = min(args.shards, 2)
            args.max_instructions = min(args.max_instructions, 20_000)
            args.workers = args.workers or 2
        if args.from_trace:
            print(report_from_trace(args.from_trace), end="")
            return 0
        print(run_report(args), end="")
        return 0

    if args.command == "overhead":
        if args.quick:
            args.budget = min(args.budget, 15_000)
            args.repeats = min(args.repeats, 2)
        result = measure_overhead(args.workload, mode=args.mode,
                                  budget=args.budget, seed=args.seed,
                                  repeats=args.repeats)
        print("dcpimon overhead: %s, %d instructions x%d"
              % (result["workload"], result["budget"], result["repeats"]))
        print("  disabled  %8.3f s" % result["disabled_s"])
        print("  enabled   %8.3f s" % result["enabled_s"])
        print("  overhead  %+7.2f %%" % result["overhead_pct"])
        if args.max_pct is not None and result["overhead_pct"] > args.max_pct:
            print("FAIL: overhead %.2f%% exceeds --max-pct %.2f%%"
                  % (result["overhead_pct"], args.max_pct),
                  file=sys.stderr)
            return 1
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
