"""Command-line entry points.

* ``dcpid``      -- profile a named workload and save a session bundle.
* ``dcpiprof``   -- per-procedure sample listing from a bundle.
* ``dcpicalc``   -- per-instruction CPI/culprit listing from a bundle.
* ``dcpistats``  -- cross-run statistics from several bundles.
* ``dcpibench``  -- run the benchmark suite in parallel; compare runs.
* ``dcpimon``    -- self-monitoring report (the profiler profiling
  itself: rates, memory, per-phase time) and overhead measurement.
* ``dcpiab``     -- verify the simulator fast path is observationally
  byte-identical to the slow path on every registered workload.
* ``dcpichaos``  -- run the fault-injection matrix and assert the
  sample-conservation invariant (no unaccounted loss, ever).
* ``dcpifleet``  -- simulate a fleet of profiled machines shipping
  epoch deltas into one central store; query it (top, movers,
  timeseries, regress).
* ``dcpitrace``  -- per-request-class attribution: run a workload
  with the context dimension on, report per-class CPI, culprits and
  request tail percentiles (repro.ctx).

Example::

    dcpid --workload mccalpin --out /tmp/session
    dcpiprof /tmp/session
    dcpicalc /tmp/session --procedure copy_loop
    dcpibench --quick --workers 4
    dcpimon report --quick --trace /tmp/trace.jsonl
"""

import argparse
import sys

from repro.collect.bundle import load_bundle, save_bundle
from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType


def main_dcpid(argv=None):
    """Profile a named workload and write a session bundle."""
    from repro.workloads.registry import get_workload, workload_names

    parser = argparse.ArgumentParser(
        prog="dcpid", description="run the profiling daemon on a workload")
    parser.add_argument("--workload", required=True,
                        help="one of: %s" % ", ".join(workload_names()))
    parser.add_argument("--out", required=True, help="bundle directory")
    parser.add_argument("--mode", default="default",
                        choices=["cycles", "default", "mux"])
    parser.add_argument("--max-instructions", type=int, default=400_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--period", type=int, default=256,
                        help="mean CYCLES sampling period (cycles)")
    args = parser.parse_args(argv)

    workload = get_workload(args.workload)
    config = SessionConfig(
        mode=args.mode, seed=args.seed,
        cycles_period=(int(args.period * 0.94), args.period))
    machine_config = MachineConfig(num_cpus=workload.num_cpus)
    session = ProfileSession(machine_config, config)
    result = session.run(workload, max_instructions=args.max_instructions)
    save_bundle(result, args.out)
    stats = result.stats()
    print("profiled %d instructions, %d cycles, %d samples -> %s"
          % (result.instructions, result.cycles,
             stats["driver_samples"], args.out))
    return 0


def main_dcpiprof(argv=None):
    parser = argparse.ArgumentParser(
        prog="dcpiprof", description="samples per procedure")
    parser.add_argument("bundle", help="session bundle directory")
    parser.add_argument("--event", default="cycles")
    parser.add_argument("--limit", type=int, default=None)
    args = parser.parse_args(argv)

    from repro.tools.dcpiprof import dcpiprof

    profiles, _ = load_bundle(args.bundle)
    print(dcpiprof(profiles.values(), event=EventType(args.event),
                   limit=args.limit))
    return 0


def main_dcpicalc(argv=None):
    parser = argparse.ArgumentParser(
        prog="dcpicalc", description="per-instruction CPI and culprits")
    parser.add_argument("bundle", help="session bundle directory")
    parser.add_argument("--procedure", required=True)
    parser.add_argument("--image", default=None,
                        help="image name (required if ambiguous)")
    args = parser.parse_args(argv)

    from repro.tools.dcpicalc import dcpicalc

    profiles, _ = load_bundle(args.bundle)
    matches = []
    for profile in profiles.values():
        for proc in profile.image.procedures:
            if proc.name == args.procedure:
                if args.image and profile.image.name != args.image:
                    continue
                matches.append((profile.image, proc, profile))
    if not matches:
        print("procedure %r not found" % args.procedure, file=sys.stderr)
        return 1
    if len(matches) > 1:
        print("ambiguous procedure; images: %s"
              % ", ".join(m[0].name for m in matches), file=sys.stderr)
        return 1
    image, proc, profile = matches[0]
    print(dcpicalc(image, proc, profile))
    return 0


def main_dcpix(argv=None):
    parser = argparse.ArgumentParser(
        prog="dcpix", description="profile -> pixie-format block counts")
    parser.add_argument("bundle", help="session bundle directory")
    parser.add_argument("--image", required=True)
    args = parser.parse_args(argv)

    from repro.tools.dcpix import dcpix

    profiles, _ = load_bundle(args.bundle)
    profile = profiles.get(args.image)
    if profile is None:
        print("image %r not in bundle; have: %s"
              % (args.image, ", ".join(profiles)), file=sys.stderr)
        return 1
    print(dcpix(profile.image, profile))
    return 0


def main_dcpicfg(argv=None):
    parser = argparse.ArgumentParser(
        prog="dcpicfg", description="annotated CFG as Graphviz DOT")
    parser.add_argument("bundle", help="session bundle directory")
    parser.add_argument("--procedure", required=True)
    parser.add_argument("--image", default=None)
    args = parser.parse_args(argv)

    from repro.tools.dcpicfg import dcpicfg

    profiles, _ = load_bundle(args.bundle)
    for profile in profiles.values():
        if args.image and profile.image.name != args.image:
            continue
        for proc in profile.image.procedures:
            if proc.name == args.procedure:
                print(dcpicfg(profile.image, proc, profile))
                return 0
    print("procedure %r not found" % args.procedure, file=sys.stderr)
    return 1


def main_dcpibench(argv=None):
    """Run the benchmark suite in parallel; write BENCH_*.json results."""
    from repro.tools.benchrunner import main

    return main(argv)


def main_dcpimon(argv=None):
    """Self-monitoring report and overhead measurement."""
    from repro.tools.dcpimon import main

    return main(argv)


def main_dcpiab(argv=None):
    """A/B identity check: simulator fast path on vs off."""
    from repro.tools.abcheck import main

    return main(argv)


def main_dcpichaos(argv=None):
    """Fault-injection matrix with sample-conservation audits."""
    from repro.tools.dcpichaos import main

    return main(argv)


def main_dcpicheck(argv=None):
    """Static analysis & invariant checks (image | analysis | lint)."""
    from repro.tools.dcpicheck import main

    return main(argv)


def main_dcpifleet(argv=None):
    """Simulated fleet: run machines, query the central epoch store."""
    from repro.fleet.cli import main

    return main(argv)


def main_dcpitrace(argv=None):
    """Per-request-class attribution reports (repro.ctx)."""
    from repro.tools.dcpitrace import main

    return main(argv)


def main_dcpistats(argv=None):
    parser = argparse.ArgumentParser(
        prog="dcpistats", description="cross-run profile statistics")
    parser.add_argument("bundles", nargs="+",
                        help="session bundle directories (one per run)")
    parser.add_argument("--event", default="cycles")
    parser.add_argument("--limit", type=int, default=None)
    args = parser.parse_args(argv)

    from repro.tools.dcpistats import dcpistats

    profile_sets = []
    for path in args.bundles:
        profiles, _ = load_bundle(path)
        profile_sets.append(list(profiles.values()))
    print(dcpistats(profile_sets, event=EventType(args.event),
                    limit=args.limit))
    return 0


def main_dcpiopt(argv=None):
    """Profile-guided optimizer: rewrite, verify, measure (repro.opt)."""
    from repro.tools.dcpiopt import main

    return main(argv)
