"""``dcpichaos`` -- run the fault-injection matrix and audit loss.

Runs every registered fault scenario (or a chosen subset) against one
or more workloads, each time alongside a fault-free twin with the same
seed, and checks the conservation invariant: recovered profile counts
equal the fault-free counts minus exactly the accounted losses --
never a torn record, never a double-count, never silent loss.

Exit status is 0 only if every case holds the invariant; CI runs
``dcpichaos --quick`` as a smoke gate and the nightly job runs the
full matrix.
"""

import argparse
import json
import sys


def build_parser():
    parser = argparse.ArgumentParser(
        prog="dcpichaos",
        description="fault-injection matrix for the collection pipeline")
    parser.add_argument(
        "--quick", action="store_true",
        help="run only the quick (CI smoke) scenario subset")
    parser.add_argument(
        "--fleet", action="store_true",
        help="run the fleet scenario family (transport/spool/crash/"
             "shard faults against a whole simulated fleet) instead "
             "of the single-machine matrix")
    parser.add_argument(
        "--scenarios", default=None,
        help="comma-separated scenario names (default: all registered)")
    parser.add_argument(
        "--workloads", default="gcc",
        help="comma-separated workload names (default: gcc -- its "
             "working set actually evicts and spills)")
    parser.add_argument(
        "--seed", type=int, default=1, help="fault-plan / session seed")
    parser.add_argument(
        "--max-instructions", type=int, default=None,
        help="instruction budget per run (default: matrix preset)")
    parser.add_argument(
        "--json", dest="json_path", default=None, metavar="FILE",
        help="also write the full case reports as JSON ('-' = stdout)")
    parser.add_argument(
        "--list", action="store_true",
        help="list registered scenarios and exit")
    return parser


def _list_scenarios(out):
    from repro.faults.scenarios import FLEET_SCENARIOS, SCENARIOS

    out.write("%-24s %-5s %s\n" % ("scenario", "quick", "description"))
    for scenario in SCENARIOS:
        out.write("%-24s %-5s %s\n"
                  % (scenario.name, "yes" if scenario.quick else "",
                     scenario.description))
    out.write("\nfleet scenarios (--fleet):\n")
    for scenario in FLEET_SCENARIOS:
        out.write("%-24s %-5s %s\n"
                  % (scenario.name, "yes" if scenario.quick else "",
                     scenario.description))


def render_fleet_table(cases, out):
    header = ("%-24s %9s %8s %7s %7s %6s %7s %5s %-4s"
              % ("scenario", "shipped", "stored", "dropped", "retries",
                 "quar", "recov", "loss%", "ok"))
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for case in cases:
        out.write("%-24s %9d %8d %7d %7d %6d %7d %5.2f %-4s\n"
                  % (case["scenario"], case["shipped_samples"],
                     case["stored_samples"],
                     case["resilience"]["spool_dropped_samples"],
                     case["resilience"]["ship_retries"],
                     case["quarantined_samples"], case["recoveries"],
                     case["loss_rate"] * 100.0,
                     "ok" if case["ok"] else "FAIL"))


def _explain_fleet_failure(case, out):
    out.write("FAIL %s:\n" % case["scenario"])
    if not case["conservation_ok"]:
        out.write("  conservation violated: %s\n"
                  % json.dumps(case["findings"], sort_keys=True))
    if not case["deterministic"]:
        out.write("  twin run diverged: merged bytes or resilience "
                  "report differ under the same seed\n")
    if case["serial_identical"] is False:
        out.write("  sharded merge != serial merge: %d-shard store "
                  "is not byte-identical to shards=1\n"
                  % case["shards"])


def render_table(cases, out):
    header = ("%-22s %-16s %9s %8s %6s %6s %7s %5s %-4s"
              % ("scenario", "workload", "samples", "dropped", "lost",
                 "quar", "recov", "loss%", "ok"))
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for case in cases:
        faulted = case["faulted"]
        out.write("%-22s %-16s %9d %8d %6d %6d %7d %5.2f %-4s\n"
                  % (case["scenario"], case["workload"],
                     faulted["driver_samples"], faulted["dropped"],
                     faulted["lost"],
                     faulted.get("quarantined_samples", 0),
                     case["recoveries"], case["loss_rate"] * 100.0,
                     "ok" if case["ok"] else "FAIL"))


def _explain_failure(case, out):
    comparison = case["comparison"]
    out.write("FAIL %s/%s:\n" % (case["scenario"], case["workload"]))
    for side in ("reference", "faulted"):
        report = case[side]
        if not report["ok"]:
            out.write("  %s run unbalanced: %s\n"
                      % (side, json.dumps(report, sort_keys=True)))
    if not comparison["identical_streams"]:
        out.write("  sample streams diverged: faulted=%d reference=%d "
                  "(faults perturbed the machine)\n"
                  % (case["faulted"]["driver_samples"],
                     case["reference"]["driver_samples"]))
    if not comparison["counts_conserved"]:
        out.write("  unaccounted loss: kept %d -> %d but accounted "
                  "delta is %d (+%d unknown-shift)\n"
                  % (comparison["kept_reference"],
                     comparison["kept_faulted"],
                     comparison["accounted_delta"],
                     comparison["unknown_delta"]))


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.list:
        _list_scenarios(out)
        return 0

    from repro.faults.scenarios import (get_fleet_scenario, get_scenario,
                                        run_fleet_matrix, run_matrix)

    names = None
    if args.scenarios:
        names = [name.strip() for name in args.scenarios.split(",")
                 if name.strip()]
        for name in names:   # fail fast on typos
            if args.fleet:
                get_fleet_scenario(name)
            else:
                get_scenario(name)
    if args.fleet:
        cases = run_fleet_matrix(quick=args.quick, seed=args.seed,
                                 budget=args.max_instructions,
                                 names=names)
        render_fleet_table(cases, out)
    else:
        workloads = [name.strip() for name in args.workloads.split(",")
                     if name.strip()]
        cases = run_matrix(workloads=workloads, quick=args.quick,
                           seed=args.seed, budget=args.max_instructions,
                           names=names)
        render_table(cases, out)
    failures = [case for case in cases if not case["ok"]]
    out.write("\n%d case(s), %d failure(s), %d recoveries, "
              "max loss rate %.2f%%\n"
              % (len(cases), len(failures),
                 sum(case["recoveries"] for case in cases),
                 max((case["loss_rate"] for case in cases), default=0.0)
                 * 100.0))
    for case in failures:
        if case.get("fleet"):
            _explain_fleet_failure(case, out)
        else:
            _explain_failure(case, out)
    if args.json_path:
        payload = json.dumps(cases, indent=2, sort_keys=True,
                             default=str)
        if args.json_path == "-":
            out.write(payload + "\n")
        else:
            with open(args.json_path, "w") as handle:
                handle.write(payload + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
