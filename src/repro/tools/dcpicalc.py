"""dcpicalc: per-instruction CPI and stall-culprit listing
(the paper's Figure 2).

For a procedure, prints the best-case vs actual CPI, then each
instruction annotated with its sample count, average cycles at the head
of the issue queue, and *bubbles* above each stalled instruction naming
the possible culprits with the paper's letter codes:

    d  D-cache miss          w  write-buffer overflow
    D  DTB miss              p  branch mispredict
    i  I-cache miss          t  ITB miss
    m  IMUL busy             f  FDIV busy
    s  slotting hazard       a/b/c  Ra/Rb/Rc dependency
    F  FU dependency         u  unexplained
"""

from repro.core.analyze import analyze_procedure

_DYN_CODE = {
    "dcache": ("d", "D-cache miss"),
    "dtb": ("D", "DTB miss"),
    "wb": ("w", "write-buffer overflow"),
    "branchmp": ("p", "branch mispredict"),
    "icache": ("i", "I-cache miss"),
    "itb": ("t", "ITB miss"),
    "imul": ("m", "IMUL busy"),
    "fdiv": ("f", "FDIV busy"),
    "unexplained": ("u", "unexplained"),
}
_STATIC_CODE = {
    "slotting": ("s", "slotting hazard"),
    "ra_dep": ("a", "Ra dependency"),
    "rb_dep": ("b", "Rb dependency"),
    "rc_dep": ("c", "Rc dependency"),
    "fu_dep": ("F", "FU dependency"),
}


def _bubbles(row):
    """Render bubble lines for one analyzed instruction."""
    lines = []
    codes = []
    # Dynamic culprits first (with legend on first occurrence per line).
    for culprit in row.culprits:
        code, label = _DYN_CODE[culprit.reason]
        codes.append(code)
    dyn_codes = "".join(codes)
    if dyn_codes:
        for culprit in row.culprits:
            code, label = _DYN_CODE[culprit.reason]
            lines.append("         %-8s (%s = %s)" % (dyn_codes, code, label))
        if row.dyn_per_exec >= 0.5:
            lines.append("         %-8s %.1fcy" % (dyn_codes,
                                                   row.dyn_per_exec))
    for reason, cycles, culprit_addr in row.static_stalls:
        code, label = _STATIC_CODE[reason]
        lines.append("         %-8s (%s = %s)" % (code, code, label))
    return lines


def dcpicalc(image, proc, profile, config=None, analysis=None):
    """Render the Figure 2-style listing; returns the text."""
    if analysis is None:
        analysis = analyze_procedure(image, proc, profile, config)
    lines = []
    lines.append("*** Best-case  %d/%d = %.2fCPI"
                 % (round(analysis.best_case_cycles),
                    round(analysis.executed_instructions),
                    analysis.best_case_cpi))
    lines.append("*** Actual     %d/%d = %.2fCPI"
                 % (round(analysis.total_cycles),
                    round(analysis.executed_instructions),
                    analysis.actual_cpi))
    lines.append("")
    lines.append("%8s %-26s %8s %10s  %s"
                 % ("Addr", "Instruction", "Samples", "CPI", "Culprit"))
    for row in analysis.instructions:
        lines.extend(_bubbles(row))
        if row.paired:
            cpi_text = "(dual issue)"
        else:
            cpi_text = "%.1fcy" % row.cpi
        sources = sorted({c.source_addr for c in row.culprits
                          if c.source_addr})
        culprit_text = " ".join("%x" % s for s in sources)
        lines.append("%08x %-26s %8d %10s  %s"
                     % (row.inst.addr, row.inst.disassemble(),
                        row.samples, cpi_text, culprit_text))
    return "\n".join(lines)
