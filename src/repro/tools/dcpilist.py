"""dcpilist: annotate assembly source with samples (paper section 3:
"Other tools annotate source and assembly code with samples").

Renders the image's original assembly text with three columns prepended
to each line: CYCLES samples, the estimated cycles share, and IMISS
samples (when collected).  Hot lines stand out immediately, directives
and labels pass through unannotated.
"""

from repro.cpu.events import EventType


def line_samples(image, profile, event=EventType.CYCLES):
    """Return {source line number: sample count} for *image*."""
    by_line = {}
    counts = profile.counts.get(event, {})
    for offset, count in counts.items():
        inst = image.instructions[offset >> 2]
        if inst.line is not None:
            by_line[inst.line] = by_line.get(inst.line, 0) + count
    return by_line


def dcpilist(image, profile, event=EventType.CYCLES,
             secondary=EventType.IMISS):
    """Render the annotated source listing; returns the text.

    Raises ValueError for images without attached source (e.g. loaded
    from a binary without symbols).
    """
    if image.source is None:
        raise ValueError("image %s has no source text" % image.name)
    primary = line_samples(image, profile, event)
    second = (line_samples(image, profile, secondary)
              if secondary is not None else {})
    total = sum(primary.values()) or 1

    lines = ["%8s %6s %7s | annotated source of %s"
             % (event, "%", secondary or "", image.name)]
    for lineno, text in enumerate(image.source.splitlines(), start=1):
        count = primary.get(lineno, 0)
        extra = second.get(lineno, 0)
        if count or extra:
            lines.append("%8d %5.1f%% %7d | %s"
                         % (count, 100.0 * count / total, extra, text))
        else:
            lines.append("%8s %6s %7s | %s" % ("", "", "", text))
    return "\n".join(lines)
