"""``dcpiab``: verify the simulator fast path changes nothing observable.

The block-level issue cache (:mod:`repro.cpu.fastpath`) is a pure
performance optimization: with it on or off, a profiling session must
produce byte-identical profile databases, event-sample totals, and
ground-truth attributions (counts, head-of-queue cycles, per-reason
stall breakdowns, per-instruction event counts, edge counts).  This
tool runs every registered workload twice -- fast path forced on, then
forced off -- canonicalizes both observable states to bytes, and exits
nonzero on the first byte that differs.  The nightly CI job runs it
across the full workload registry; it is also handy after any pipeline
change ("did I just fork the two paths?").

Usage::

    dcpiab [workloads ...] [--max-instructions N] [--seed N] [--list]
"""

import argparse
import sys
import time

from repro.collect.session import ProfileSession, SessionConfig
from repro.cpu.config import MachineConfig


def _canonical(value):
    """Render *value* as deterministic bytes (sorted dicts, str keys)."""
    if isinstance(value, dict):
        items = sorted((repr(k), _canonical(v)) for k, v in value.items())
        return b"{" + b",".join(
            k.encode() + b":" + v for k, v in items) + b"}"
    if isinstance(value, (list, tuple)):
        return b"[" + b",".join(_canonical(v) for v in value) + b"]"
    return repr(value).encode()


def fingerprint(result):
    """Canonical bytes of everything the fast path must not perturb."""
    machine = result.machine
    return _canonical({
        "gt_count": machine.gt_count,
        "gt_head": machine.gt_head,
        "gt_stall": machine.gt_stall,
        "gt_events": machine.gt_events,
        "gt_edges": machine.gt_edges,
        "profiles": result.daemon.export_profiles(),
        "event_samples": dict(result.driver.event_samples),
        "time": machine.time,
        "instructions": machine.instructions_retired,
    })


def run_session(workload, fastpath, seed, max_instructions, mode):
    """One profiled run with the fast path forced on or off."""
    config = MachineConfig(num_cpus=workload.num_cpus)
    config.fastpath = fastpath
    session = ProfileSession(
        config, SessionConfig(mode=mode, cycles_period=(240, 256),
                              event_period=64, seed=seed))
    started = time.perf_counter()
    result = session.run(workload, max_instructions=max_instructions)
    return result, time.perf_counter() - started


def check_workload(workload, seed=1, max_instructions=80_000,
                   mode="default"):
    """Return (identical, summary line) for one workload A/B pair."""
    fast, fast_wall = run_session(workload, True, seed,
                                  max_instructions, mode)
    slow, slow_wall = run_session(workload, False, seed,
                                  max_instructions, mode)
    identical = fingerprint(fast) == fingerprint(slow)
    snap = fast.machine.fastpath.snapshot()
    replay_pct = (100.0 * snap["replayed_instructions"]
                  / max(fast.machine.instructions_retired, 1))
    line = ("%-22s %-9s slow=%.3fs fast=%.3fs x%.2f replay=%.0f%%"
            % (getattr(workload, "name", str(workload)),
               "identical" if identical else "DIFFERS",
               slow_wall, fast_wall,
               slow_wall / fast_wall if fast_wall else 0.0, replay_pct))
    return identical, line


def main(argv=None):
    from repro.workloads.registry import get_workload, workload_names

    parser = argparse.ArgumentParser(
        prog="dcpiab",
        description="A/B-check the simulator fast path: profile each "
                    "workload with the block issue cache on and off and "
                    "fail unless every observable is byte-identical")
    parser.add_argument("workloads", nargs="*",
                        help="workload names (default: every registered "
                             "workload)")
    parser.add_argument("--max-instructions", type=int, default=80_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--mode", default="default",
                        choices=["cycles", "default", "mux"])
    parser.add_argument("--list", action="store_true",
                        help="list registered workloads and exit")
    args = parser.parse_args(argv)

    names = args.workloads or workload_names()
    if args.list:
        for name in names:
            print(name)
        return 0
    failures = 0
    for name in names:
        identical, line = check_workload(
            get_workload(name), seed=args.seed,
            max_instructions=args.max_instructions, mode=args.mode)
        print(line)
        if not identical:
            failures += 1
    print("dcpiab: %d/%d workloads byte-identical"
          % (len(names) - failures, len(names)))
    if failures:
        print("dcpiab: fast path diverged on %d workload(s)" % failures,
              file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
