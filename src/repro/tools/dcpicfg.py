"""dcpicfg: annotated control-flow graphs (paper section 3).

The paper's tool "produces formatted Postscript output of annotated
control-flow graphs"; this one emits Graphviz DOT, annotating every
block with its estimated execution count, CPI, and sample total, and
every edge with its estimated frequency.  Hot blocks are shaded.
"""

from repro.core.analyze import analyze_procedure
from repro.core.cfg import EXIT


def dcpicfg(image, proc, profile, config=None, analysis=None):
    """Render procedure *proc*'s annotated CFG as DOT text."""
    if analysis is None:
        analysis = analyze_procedure(image, proc, profile, config)
    cfg = analysis.cfg
    freq = analysis.freq
    total_samples = max(1, analysis.total_samples)

    lines = ["digraph \"%s\" {" % cfg.proc.name,
             "  node [shape=box, fontname=\"monospace\"];",
             "  label=\"%s (%s)\";" % (cfg.proc.name, image.name)]
    for block in cfg.blocks:
        rows = [analysis.by_addr[i.addr] for i in block.instructions]
        samples = sum(row.samples for row in rows)
        count = freq.block_count(block.index)
        cycles = sum(row.samples for row in rows) * analysis.period
        cpi = cycles / (count * len(rows)) if count else 0.0
        heat = min(1.0, 3.0 * samples / total_samples)
        color = "gray%d" % int(95 - 35 * heat)
        label = ("b%d [%#x..%#x)\\ncount=%.0f cpi=%.2f samples=%d"
                 % (block.index, block.start, block.end, count, cpi,
                    samples))
        lines.append("  b%d [label=\"%s\", style=filled, "
                     "fillcolor=%s];" % (block.index, label, color))
    lines.append("  exit [shape=ellipse];")
    for edge in cfg.edges:
        dst = "exit" if edge.dst == EXIT else "b%d" % edge.dst
        count = freq.edge_count(edge.index)
        style = " style=dashed" if edge.kind == "fall" else ""
        lines.append("  b%d -> %s [label=\"%.0f\"%s];"
                     % (edge.src, dst, count, style))
    lines.append("}")
    return "\n".join(lines)
