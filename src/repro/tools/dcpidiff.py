"""dcpidiff: highlight the differences between two profiles of the same
program (one of the paper's "other tools").

Per procedure, reports the sample counts in each profile, the absolute
delta, and the normalized share change -- sorted by the share change so
the procedures responsible for a slowdown surface first.
"""

from repro.cpu.events import EventType


def diff_rows(profiles_a, profiles_b, event=EventType.CYCLES):
    """Compare two profile sets; return rows sorted by share change."""
    def collect(profiles):
        totals = {}
        for profile in profiles:
            if profile.image is None:
                continue
            for name, count in profile.procedure_totals(event).items():
                totals[(name, profile.image.name)] = count
        return totals

    a = collect(profiles_a)
    b = collect(profiles_b)
    total_a = sum(a.values()) or 1
    total_b = sum(b.values()) or 1
    rows = []
    for key in sorted(set(a) | set(b)):
        ca = a.get(key, 0)
        cb = b.get(key, 0)
        if ca == 0 and cb == 0:
            continue
        share_a = ca / total_a
        share_b = cb / total_b
        rows.append({
            "procedure": key[0],
            "image": key[1],
            "a": ca,
            "b": cb,
            "delta": cb - ca,
            "share_a": share_a,
            "share_b": share_b,
            "share_delta": share_b - share_a,
        })
    rows.sort(key=lambda r: -abs(r["share_delta"]))
    return rows


def dcpidiff(profiles_a, profiles_b, event=EventType.CYCLES, limit=None):
    """Render a textual diff of two profiles; returns the text."""
    rows = diff_rows(profiles_a, profiles_b, event)
    lines = ["%10s %10s %10s %8s  %s" % ("before", "after", "delta",
                                         "share", "procedure")]
    for row in rows[:limit]:
        lines.append("%10d %10d %+10d %+7.2f%%  %s (%s)"
                     % (row["a"], row["b"], row["delta"],
                        row["share_delta"] * 100.0, row["procedure"],
                        row["image"]))
    return "\n".join(lines)
