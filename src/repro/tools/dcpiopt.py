"""``dcpiopt`` -- the profile-guided optimizer CLI (repro.opt).

Three subcommands close the paper's loop from the command line:

* ``dcpiopt run``    -- profile a registry workload, build the rewrite
  plan, statically prove it semantics-preserving (Layer 4,
  :mod:`repro.check.transval`), then verify architectural identity
  plus zero new Layer-1 findings dynamically, re-run, and print (or
  save) the realized-speedup report.  Exits 0 only when the rewrite
  was accepted; a static rejection prints its per-block
  counterexamples and skips the A/B runs entirely.
* ``dcpiopt report`` -- render a saved run report as before/after
  cycles, CPI and I-cache-miss deltas.
* ``dcpiopt sweep``  -- realized speedup as a function of profile
  quality (sampling period x injected collection loss) across one or
  more workloads; emits the JSON rows the nightly curve artifact is
  built from.

The run report is schema-versioned (:mod:`repro.opt.optimizer`
schema 2; 1 is still readable) so CI can assert on its shape.
"""

import argparse
import json
import sys

from repro.opt import (OptConfig, optimize_workload, pass_contributions,
                       sweep_workload)
from repro.workloads import OPT_TARGETS

#: Pass names accepted by ``--passes`` (order is display order).
PASS_NAMES = ("layout", "schedule", "split")


def _parse_period(text):
    """``lo:hi`` or a single mean value -> an inclusive (lo, hi) range."""
    if ":" in text:
        lo, hi = text.split(":", 1)
        lo, hi = int(lo), int(hi)
    else:
        mean = int(text)
        lo, hi = max(1, mean - mean // 16), mean + mean // 16
    if lo < 1 or hi < lo:
        raise argparse.ArgumentTypeError(
            "period must be lo:hi with 1 <= lo <= hi, got %r" % text)
    return (lo, hi)


def _parse_passes(text):
    names = [name.strip() for name in text.split(",") if name.strip()]
    unknown = [name for name in names if name not in PASS_NAMES]
    if unknown or not names:
        raise argparse.ArgumentTypeError(
            "passes must be a comma list from %s" % (PASS_NAMES,))
    return OptConfig(layout="layout" in names,
                     schedule="schedule" in names,
                     split="split" in names)


def format_run(report):
    """Human-readable rendering of an ``optimize_workload`` report."""
    base = report["baseline"]
    opt = report["optimized"]
    lines = [
        "dcpiopt: %s  [%s]"
        % (report["workload"],
           "ACCEPTED" if report["accepted"] else "REJECTED"),
        "%-12s %12s %12s %10s" % ("", "baseline", "optimized", "delta"),
    ]
    for key, fmt in (("cycles", "%d"), ("instructions", "%d"),
                     ("imiss", "%d")):
        lines.append("%-12s %12s %12s %+10d"
                     % (key, fmt % base[key], fmt % opt[key],
                        opt[key] - base[key]))
    lines.append("%-12s %12.3f %12.3f %+10.3f"
                 % ("cpi", base["cpi"], opt["cpi"],
                    opt["cpi"] - base["cpi"]))
    lines.append("speedup: %.2f%% of baseline cycles"
                 % (report["speedup"] * 100.0))
    if report.get("contributions"):
        parts = ", ".join(
            "%s %+.2f%%" % (name, value * 100.0)
            for name, value in report["contributions"].items())
        lines.append("per-pass (isolated): %s" % parts)
    if report["passes"]:
        lines.append("plan: " + ", ".join(
            "%s=%d" % (key, value)
            for key, value in sorted(report["passes"].items())))
    for name, static in sorted(report.get("static", {}).items()):
        lines.append("static (%s): %s  [%d proc(s), %d block(s)]"
                     % (name, static["verdict"],
                        static["procs_checked"],
                        static["blocks_checked"]))
        if static["verdict"] == "bailed" and static["reason"]:
            lines.append("        %s" % static["reason"])
        for ce in static["counterexamples"]:
            where = ("%s+%#x" % (ce["proc"], ce["block"])
                     if ce["block"] >= 0 else (ce["proc"] or "-"))
            lines.append("COUNTEREXAMPLE [%s] %s: %s"
                         % (ce["rule"], where, ce["message"]))
            if ce["detail"]:
                lines.append("        %s" % ce["detail"])
    for skip in report["skipped"]:
        lines.append("skipped: %s" % skip)
    for mismatch in report["mismatches"]:
        lines.append("MISMATCH: %s" % mismatch)
    for image, rows in sorted(report["check_findings"].items()):
        for row in rows:
            lines.append("FINDING (%s): %s" % (image, row))
    return "\n".join(lines)


def _run(args):
    report_obj = optimize_workload(
        args.workload, mode=args.mode, seed=args.seed,
        max_instructions=args.max_instructions,
        cycles_period=args.period, opt_config=args.passes,
        loss=args.loss, verify_instructions=args.verify_instructions)
    payload = report_obj.report()
    if args.contributions:
        payload["contributions"] = pass_contributions(
            args.workload, mode=args.mode, seed=args.seed,
            max_instructions=args.max_instructions,
            cycles_period=args.period, loss=args.loss,
            verify_instructions=args.verify_instructions)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_run(payload))
    return 0 if payload["accepted"] else 1


def _report(args):
    with open(args.report) as handle:
        payload = json.load(handle)
    if payload.get("schema") not in (1, 2):
        print("unsupported dcpiopt report schema %r"
              % payload.get("schema"), file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_run(payload))
    return 0


def _sweep(args):
    rows = []
    for name in args.workloads:
        rows.extend(sweep_workload(
            name, periods=tuple(args.period), losses=tuple(args.loss),
            mode=args.mode, seed=args.seed,
            max_instructions=args.max_instructions,
            verify_instructions=args.verify_instructions))
    payload = {"schema": 1, "rows": rows}
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print("%-14s %8s %6s %9s %9s %s"
              % ("workload", "period", "loss", "speedup", "samples",
                 "accepted"))
        for row in rows:
            print("%-14s %8.0f %5.0f%% %8.2f%% %9d %s"
                  % (row["workload"], row["period"],
                     row["loss"] * 100.0, row["speedup"] * 100.0,
                     row["samples"], row["accepted"]))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="dcpiopt",
        description="profile-guided optimizer (repro.opt)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="profile, optimize, verify and measure one workload")
    run_p.add_argument("--workload", required=True)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--mode", default="cycles",
                       choices=["cycles", "default", "mux"])
    run_p.add_argument("--period", type=_parse_period,
                       default=(240, 256),
                       help="CYCLES sampling period as lo:hi or a mean")
    run_p.add_argument("--loss", type=float, default=0.0,
                       help="injected collection-loss fraction [0, 1)")
    run_p.add_argument("--max-instructions", type=int, default=200_000,
                       help="profiling-run budget (the verify runs go "
                       "to completion)")
    run_p.add_argument("--verify-instructions", type=int, default=None,
                       help="cap the oracle's A/B runs (identity needs "
                       "completed runs; leave unset)")
    run_p.add_argument("--passes", type=_parse_passes, default=None,
                       help="comma list from %s (default: all)"
                       % (PASS_NAMES,))
    run_p.add_argument("--contributions", action="store_true",
                       help="also measure each pass in isolation")
    run_p.add_argument("--out", default=None,
                       help="write the JSON report here")
    run_p.add_argument("--json", action="store_true",
                       help="print the JSON payload instead of text")

    rep_p = sub.add_parser(
        "report", help="render a saved dcpiopt run report")
    rep_p.add_argument("report", help="JSON file written by dcpiopt run")
    rep_p.add_argument("--json", action="store_true")

    sweep_p = sub.add_parser(
        "sweep", help="realized speedup vs sampling period and loss")
    sweep_p.add_argument("--workloads", nargs="+",
                         default=list(OPT_TARGETS))
    sweep_p.add_argument("--period", type=_parse_period, nargs="+",
                         default=[(240, 256), (960, 1024),
                                  (3840, 4096)])
    sweep_p.add_argument("--loss", type=float, nargs="+",
                         default=[0.0, 0.1, 0.3])
    sweep_p.add_argument("--seed", type=int, default=1)
    sweep_p.add_argument("--mode", default="cycles",
                         choices=["cycles", "default", "mux"])
    sweep_p.add_argument("--max-instructions", type=int,
                         default=200_000)
    sweep_p.add_argument("--verify-instructions", type=int, default=None)
    sweep_p.add_argument("--out", default=None,
                         help="write {schema, rows} JSON here")
    sweep_p.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    if args.command == "run":
        return _run(args)
    if args.command == "report":
        return _report(args)
    return _sweep(args)


if __name__ == "__main__":
    sys.exit(main())
