"""``dcpicheck``: the static-analysis and invariant-verification CLI.

Runs any subset of the four check layers (``image``, ``analysis``,
``lint``, ``rewrite``) over the seed workload registry, prints the
findings, and
exits non-zero when any *unwaived* error-severity finding remains.
CI uses it as a gate; the JSON report (``--json``) is the normalized
artifact the nightly run uploads.

Examples::

    dcpicheck --layers image,lint
    dcpicheck --workloads mccalpin-assign,gcc --json out/report.json
    dcpicheck --layers analysis --max-instructions 30000
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.check.findings import ERROR, LAYERS, SEVERITIES
from repro.check.runner import (DEFAULT_MAX_INSTRUCTIONS, CheckConfig,
                                run_checks)

#: Waiver file looked up relative to the current directory by default.
DEFAULT_WAIVERS = "checks-waivers.toml"


def _parse_layers(text: str) -> List[str]:
    layers = [part.strip() for part in text.split(",") if part.strip()]
    for layer in layers:
        if layer not in LAYERS:
            raise argparse.ArgumentTypeError(
                "unknown layer %r; known: %s" % (layer, ", ".join(LAYERS)))
    return layers


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dcpicheck",
        description="static analysis & invariant checks "
                    "(image | analysis | lint | rewrite)")
    parser.add_argument(
        "--layers", type=_parse_layers, default=list(LAYERS),
        help="comma-separated subset of: %s (default: all)"
             % ",".join(LAYERS))
    parser.add_argument(
        "--workloads", default="",
        help="comma-separated workload names (default: full registry)")
    parser.add_argument(
        "--max-instructions", type=int,
        default=DEFAULT_MAX_INSTRUCTIONS,
        help="per-workload instruction budget for the analysis layer")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--waivers", default=None,
        help="waiver file (default: ./%s if present)" % DEFAULT_WAIVERS)
    parser.add_argument(
        "--src", default=None,
        help="source root for the lint layer (default: the installed "
             "repro package)")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the normalized JSON report to PATH ('-' = stdout)")
    parser.add_argument(
        "--severity", default=ERROR, choices=list(SEVERITIES),
        help="minimum severity that fails the run (default: error)")
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only the summary line")
    args = parser.parse_args(argv)

    waivers_path = args.waivers
    if waivers_path is None and os.path.exists(DEFAULT_WAIVERS):
        waivers_path = DEFAULT_WAIVERS

    workloads = tuple(part.strip()
                      for part in args.workloads.split(",")
                      if part.strip())
    config = CheckConfig(
        layers=tuple(args.layers),
        workloads=workloads,
        max_instructions=args.max_instructions,
        seed=args.seed,
        waivers_path=waivers_path,
        src_root=args.src,
    )
    report = run_checks(config)

    if args.json:
        payload = report.to_json()
        if args.json == "-":
            print(payload)
        else:
            out_dir = os.path.dirname(os.path.abspath(args.json))
            os.makedirs(out_dir, exist_ok=True)
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")

    # With the report on stdout, keep human output off it.
    text_out = sys.stderr if args.json == "-" else sys.stdout
    gating = report.unwaived(args.severity)
    if not args.quiet:
        shown = sorted(report.findings, key=lambda f: f.sort_key())
        for finding in shown:
            waiver = report.waiver_for(finding)
            suffix = (" [waived: %s]" % waiver.reason) if waiver else ""
            print("%s%s" % (finding, suffix), file=text_out)
            if finding.detail and not waiver:
                print("        %s" % finding.detail, file=text_out)
    print("dcpicheck: layers=%s workloads=%d -- %s"
          % (",".join(report.layers), len(report.workloads),
             report.summary()), file=text_out)
    if gating:
        print("dcpicheck: FAIL (%d unwaived finding(s) at %s+)"
              % (len(gating), args.severity), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
