"""dcpitopstalls: whole-image stall accounting.

Summarizes "where the cycles went" across all analyzed procedures of an
image -- the percentage of cycles spent executing vs stalled on each
cause (the paper's whole-program variant of the Figure 4 summary).
"""

from repro.core.analyze import analyze_image
from repro.cpu.events import DYNAMIC_REASONS, STATIC_REASONS


def image_stall_totals(image, profile, config=None, top=None):
    """Aggregate stall categories over the image's hottest procedures.

    Returns (totals, total_cycles) where totals maps each category
    ("execution", every dynamic reason as (min, max), every static
    reason) to cycles.
    """
    analyses = analyze_image(image, profile, config)
    names = list(analyses)
    if top is not None:
        names = names[:top]
    dynamic = {reason: [0.0, 0.0] for reason in DYNAMIC_REASONS}
    static = {reason: 0.0 for reason in STATIC_REASONS}
    execution = 0.0
    unexplained = 0.0
    total_cycles = 0.0
    for name in names:
        analysis = analyses[name]
        summary = analysis.summary()
        cycles = analysis.total_cycles
        total_cycles += cycles
        execution += summary.execution * cycles
        unexplained += summary.unexplained_stall * cycles
        for reason in DYNAMIC_REASONS:
            lo, hi = summary.dynamic[reason]
            dynamic[reason][0] += lo * cycles
            dynamic[reason][1] += hi * cycles
        for reason in STATIC_REASONS:
            static[reason] += summary.static[reason] * cycles
    totals = {"execution": execution, "unexplained": unexplained}
    for reason in DYNAMIC_REASONS:
        totals[reason] = tuple(dynamic[reason])
    for reason in STATIC_REASONS:
        totals[reason] = static[reason]
    return totals, total_cycles


def dcpitopstalls(image, profile, config=None, top=None):
    """Render the whole-image stall summary; returns the text."""
    totals, total_cycles = image_stall_totals(image, profile, config, top)
    lines = ["Cycle accounting for image %s (total %d cycles)"
             % (image.name, round(total_cycles))]
    if total_cycles <= 0:
        return "\n".join(lines)
    lines.append("%-22s %8.1f%%"
                 % ("execution", totals["execution"] / total_cycles * 100))
    for reason in DYNAMIC_REASONS:
        lo, hi = totals[reason]
        lines.append("%-22s %8.1f%% to %5.1f%%"
                     % (reason, lo / total_cycles * 100,
                        hi / total_cycles * 100))
    for reason in STATIC_REASONS:
        lines.append("%-22s %8.1f%%"
                     % (reason, totals[reason] / total_cycles * 100))
    lines.append("%-22s %8.1f%%"
                 % ("unexplained", totals["unexplained"]
                    / total_cycles * 100))
    return "\n".join(lines)
