"""The shipped analysis tools: dcpiprof, dcpicalc, dcpistats and friends."""

from repro.tools.dcpicalc import dcpicalc
from repro.tools.dcpicfg import dcpicfg
from repro.tools.dcpidiff import dcpidiff
from repro.tools.dcpilist import dcpilist
from repro.tools.dcpiprof import dcpiprof, procedure_table
from repro.tools.dcpistats import dcpistats
from repro.tools.dcpitopstalls import dcpitopstalls
from repro.tools.dcpix import dcpix, pixie_counts

__all__ = [
    "dcpiprof",
    "procedure_table",
    "dcpicalc",
    "dcpistats",
    "dcpidiff",
    "dcpitopstalls",
    "dcpix",
    "pixie_counts",
    "dcpicfg",
    "dcpilist",
]
