"""Opcode metadata for the Alpha-like ISA.

Each opcode carries everything the rest of the system needs:

* ``kind`` -- the operand shape (integer operate, load, store, branch...),
  which determines how the assembler parses it and how the interpreter
  executes it.
* ``cls`` -- the issue class used by the pipeline model and the static
  scheduler (functional unit, result latency, allowed issue pipes).
* ``sem`` / ``cond`` -- the architectural semantics.

The issue classes below describe a 21164-flavoured dual-issue machine.
They are a simplification of the real chip, but the *same* table drives
both the cycle-level simulator and the analysis tools' static scheduler,
so the analysis has no model skew relative to the simulated hardware.
"""

from __future__ import annotations

from collections import namedtuple
from typing import Dict

MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1

# Issue pipes. E0/E1 are the integer pipes, FA/FM the floating pipes.
# Up to two instructions issue per cycle, and a pair may dual-issue only
# if it can be slotted onto two distinct pipes.
E0, E1, FA, FM = "E0", "E1", "FA", "FM"

#: Issue-class table: name -> (result latency, allowed pipes, busy unit,
#: unit busy cycles).  A non-None busy unit blocks subsequent users of the
#: same unit (IMUL interlock, non-pipelined FDIV).
IssueClass = namedtuple("IssueClass", "latency pipes unit busy")

ISSUE_CLASSES = {
    "IADD": IssueClass(1, (E0, E1), None, 0),
    "ILOG": IssueClass(1, (E0, E1), None, 0),
    "SHIFT": IssueClass(1, (E0,), None, 0),
    "ICMP": IssueClass(1, (E0, E1), None, 0),
    "CMOV": IssueClass(1, (E0, E1), None, 0),
    "IMUL": IssueClass(8, (E0,), "imul", 4),
    "LD": IssueClass(2, (E0, E1), None, 0),
    "ST": IssueClass(0, (E0,), None, 0),
    "BR": IssueClass(1, (E1,), None, 0),
    "JSR": IssueClass(1, (E1,), None, 0),
    "FADD": IssueClass(4, (FA,), None, 0),
    "FMUL": IssueClass(4, (FM,), None, 0),
    "FDIV": IssueClass(18, (FA,), "fdiv", 16),
    "FBR": IssueClass(1, (FA,), None, 0),
    "NOP": IssueClass(0, (E0, E1), None, 0),
}

OpInfo = namedtuple("OpInfo", "name kind cls sem cond")


def _s64(x: int) -> int:
    """Interpret the low 64 bits of *x* as a signed integer."""
    x &= MASK64
    return x - (1 << 64) if x >> 63 else x


def _s32(x: int) -> int:
    x &= MASK32
    return x - (1 << 32) if x >> 31 else x


# --- integer operate semantics: f(a, b) -> 64-bit result -----------------

def _addq(a: int, b: int) -> int:
    return (a + b) & MASK64


def _subq(a: int, b: int) -> int:
    return (a - b) & MASK64


def _addl(a: int, b: int) -> int:
    return _s32(a + b) & MASK64


def _subl(a: int, b: int) -> int:
    return _s32(a - b) & MASK64


def _mulq(a: int, b: int) -> int:
    return (_s64(a) * _s64(b)) & MASK64


def _s4addq(a: int, b: int) -> int:
    return (4 * a + b) & MASK64


def _s8addq(a: int, b: int) -> int:
    return (8 * a + b) & MASK64


def _and(a: int, b: int) -> int:
    return a & b


def _bis(a: int, b: int) -> int:
    return a | b


def _xor(a: int, b: int) -> int:
    return a ^ b


def _bic(a: int, b: int) -> int:
    return a & ~b & MASK64


def _sll(a: int, b: int) -> int:
    return (a << (b & 63)) & MASK64


def _srl(a: int, b: int) -> int:
    return (a & MASK64) >> (b & 63)


def _sra(a: int, b: int) -> int:
    return (_s64(a) >> (b & 63)) & MASK64


def _cmpeq(a: int, b: int) -> int:
    return 1 if a == b else 0


def _cmplt(a: int, b: int) -> int:
    return 1 if _s64(a) < _s64(b) else 0


def _cmple(a: int, b: int) -> int:
    return 1 if _s64(a) <= _s64(b) else 0


def _cmpult(a: int, b: int) -> int:
    return 1 if (a & MASK64) < (b & MASK64) else 0


def _cmpule(a: int, b: int) -> int:
    return 1 if (a & MASK64) <= (b & MASK64) else 0


# --- floating operate semantics: f(a, b) -> float -------------------------

def _addt(a: float, b: float) -> float:
    return a + b


def _subt(a: float, b: float) -> float:
    return a - b


def _mult(a: float, b: float) -> float:
    return a * b


def _divt(a: float, b: float) -> float:
    return a / b if b != 0.0 else 0.0


def _cpys(a: float, b: float) -> float:
    # copy sign of a onto b; with a == b this is a register move.
    return -abs(b) if a < 0 else abs(b)


def _cvtqt(a: float, b: float) -> float:
    # convert the integer bits in b to a float (fa field unused).
    return float(_s64(int(b)))


def _cvttq(a: float, b: float) -> float:
    return float(int(b))


# --- branch conditions: f(ra_value) -> bool --------------------------------

def _beq(a: int) -> bool:
    return a == 0


def _bne(a: int) -> bool:
    return a != 0


def _blt(a: int) -> bool:
    return _s64(a) < 0


def _ble(a: int) -> bool:
    return _s64(a) <= 0


def _bgt(a: int) -> bool:
    return _s64(a) > 0


def _bge(a: int) -> bool:
    return _s64(a) >= 0


def _blbc(a: int) -> bool:
    return (a & 1) == 0


def _blbs(a: int) -> bool:
    return (a & 1) == 1


def _fbeq(a: float) -> bool:
    return a == 0.0


def _fbne(a: float) -> bool:
    return a != 0.0


def _fblt(a: float) -> bool:
    return a < 0.0


def _fbge(a: float) -> bool:
    return a >= 0.0


def _op(name: str, cls: str, sem: object) -> "OpInfo":
    return OpInfo(name, "op", cls, sem, None)


def _fop(name: str, cls: str, sem: object) -> "OpInfo":
    return OpInfo(name, "fop", cls, sem, None)


OPCODES: Dict[str, "OpInfo"] = {}

for info in [
    _op("addq", "IADD", _addq),
    _op("subq", "IADD", _subq),
    _op("addl", "IADD", _addl),
    _op("subl", "IADD", _subl),
    _op("s4addq", "IADD", _s4addq),
    _op("s8addq", "IADD", _s8addq),
    _op("mulq", "IMUL", _mulq),
    _op("and", "ILOG", _and),
    _op("bis", "ILOG", _bis),
    _op("xor", "ILOG", _xor),
    _op("bic", "ILOG", _bic),
    _op("sll", "SHIFT", _sll),
    _op("srl", "SHIFT", _srl),
    _op("sra", "SHIFT", _sra),
    _op("cmpeq", "ICMP", _cmpeq),
    _op("cmplt", "ICMP", _cmplt),
    _op("cmple", "ICMP", _cmple),
    _op("cmpult", "ICMP", _cmpult),
    _op("cmpule", "ICMP", _cmpule),
    OpInfo("cmovne", "op", "CMOV", None, _bne),
    OpInfo("cmoveq", "op", "CMOV", None, _beq),
    _fop("addt", "FADD", _addt),
    _fop("subt", "FADD", _subt),
    _fop("mult", "FMUL", _mult),
    _fop("divt", "FDIV", _divt),
    _fop("cpys", "FADD", _cpys),
    _fop("cvtqt", "FADD", _cvtqt),
    _fop("cvttq", "FADD", _cvttq),
    # Memory.
    OpInfo("ldq", "load", "LD", None, None),
    OpInfo("ldl", "load", "LD", None, None),
    OpInfo("ldt", "fload", "LD", None, None),
    OpInfo("stq", "store", "ST", None, None),
    OpInfo("stl", "store", "ST", None, None),
    OpInfo("stt", "fstore", "ST", None, None),
    OpInfo("lda", "lda", "IADD", None, None),
    OpInfo("ldah", "lda", "IADD", None, None),
    # Control flow.
    OpInfo("br", "br", "BR", None, None),
    OpInfo("bsr", "br", "JSR", None, None),
    OpInfo("beq", "cbranch", "BR", None, _beq),
    OpInfo("bne", "cbranch", "BR", None, _bne),
    OpInfo("blt", "cbranch", "BR", None, _blt),
    OpInfo("ble", "cbranch", "BR", None, _ble),
    OpInfo("bgt", "cbranch", "BR", None, _bgt),
    OpInfo("bge", "cbranch", "BR", None, _bge),
    OpInfo("blbc", "cbranch", "BR", None, _blbc),
    OpInfo("blbs", "cbranch", "BR", None, _blbs),
    OpInfo("fbeq", "fbranch", "FBR", None, _fbeq),
    OpInfo("fbne", "fbranch", "FBR", None, _fbne),
    OpInfo("fblt", "fbranch", "FBR", None, _fblt),
    OpInfo("fbge", "fbranch", "FBR", None, _fbge),
    OpInfo("jmp", "jump", "JSR", None, None),
    OpInfo("jsr", "jump", "JSR", None, None),
    OpInfo("ret", "jump", "JSR", None, None),
    OpInfo("call_pal", "pal", "NOP", None, None),
    OpInfo("nop", "nop", "NOP", None, None),
    OpInfo("unop", "nop", "NOP", None, None),
]:
    OPCODES[info.name] = OPCODES.get(info.name, info)

#: Conditional-branch inversion pairs.  ``BRANCH_INVERSES[op]`` is the
#: opcode whose condition is the exact architectural negation of
#: ``op``'s (the ``cond`` callables above are complementary on every
#: input) -- the table the rewriter's branch inversion and the
#: translation validator's simulation rules both rely on.
BRANCH_INVERSES: Dict[str, str] = {
    "beq": "bne", "bne": "beq",
    "blt": "bge", "bge": "blt",
    "ble": "bgt", "bgt": "ble",
    "blbc": "blbs", "blbs": "blbc",
    "fbeq": "fbne", "fbne": "fbeq",
    "fblt": "fbge", "fbge": "fblt",
}

#: Kinds that change control flow (end a basic block).
CONTROL_KINDS = frozenset(["br", "cbranch", "fbranch", "jump"])
#: Kinds whose target is statically known.
DIRECT_BRANCH_KINDS = frozenset(["br", "cbranch", "fbranch"])
#: Kinds that read or write memory.
MEMORY_KINDS = frozenset(["load", "fload", "store", "fstore"])


def issue_class(opname: str) -> "IssueClass":
    """Return the :class:`IssueClass` row for opcode *opname*."""
    return ISSUE_CLASSES[OPCODES[opname].cls]
