"""Binary instruction encoding: 32-bit words, Alpha-style layout.

The profiling system works on *unmodified executables*; this module
gives images a real binary representation so executables can be written
to disk and loaded back without the assembler (and so tools can operate
on binaries they did not build).  The layout follows the Alpha AXP
formats in spirit:

* operate:   [opc:8][ra:5][rb:5][lit?:1][literal:8][rc:5]
* memory:    [opc:8][ra:5][rb:5][disp:14 signed]  (scaled-down disp)
* mem-hi:    lda-style with a 16-bit displacement via an extension word
* branch:    [opc:8][ra:5][disp:19 signed words]
* jump/pal:  [opc:8][ra:5][rb:5][hint:14]

Displacements and literals that do not fit the compact fields spill to
an extension word (opcode 0xFF) preceding the instruction -- our
stand-in for the ldah/lda sequences real compilers emit.  Every encoded
instruction decodes back to an equal Instruction (round-trip tested,
including with hypothesis).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from repro.alpha.image import Image
from repro.alpha.instruction import Instruction
from repro.alpha.opcodes import OPCODES

#: opcode name <-> numeric opcode (stable, sorted assignment).
OPCODE_NUMBERS: Dict[str, int] = {
    name: i + 1 for i, name in enumerate(sorted(OPCODES))}
NUMBER_OPCODES = {number: name for name, number in OPCODE_NUMBERS.items()}

EXTENSION_OPCODE = 0xFF

_MEM_DISP_BITS = 14
_MEM_DISP_MAX = (1 << (_MEM_DISP_BITS - 1)) - 1
_MEM_DISP_MIN = -(1 << (_MEM_DISP_BITS - 1))
_BR_DISP_BITS = 19
_LIT_MAX = 255


class EncodingError(ValueError):
    """Raised when an instruction cannot be represented."""


def _reg(value: Optional[int]) -> int:
    return 31 if value is None else value & 31


def encode_instruction(inst: Instruction,
                       next_addr: int = 0) -> List[int]:
    """Encode *inst* into a list of one or two 32-bit words.

    *next_addr* is the address of the following instruction (branch
    displacements are relative to it, as on Alpha).
    """
    opc = OPCODE_NUMBERS[inst.op]
    kind = inst.info.kind
    words: List[int] = []
    if kind in ("op", "fop"):
        if inst.rb is not None:
            word = (opc << 24) | (_reg(inst.ra) << 19) \
                | ((inst.rb & 31) << 14) | ((inst.rc & 31) if inst.rc
                                            is not None else 31)
        else:
            literal = inst.imm or 0
            if not 0 <= literal <= _LIT_MAX:
                words.append(_extension_word(literal))
                literal = 0
            word = (opc << 24) | (_reg(inst.ra) << 19) | (31 << 14) \
                | (1 << 13) | ((literal & 0xFF) << 5) \
                | ((inst.rc & 31) if inst.rc is not None else 31)
        words.append(word)
    elif kind in ("load", "fload", "store", "fstore", "lda"):
        disp = inst.imm or 0
        if not _MEM_DISP_MIN <= disp <= _MEM_DISP_MAX:
            words.append(_extension_word(disp))
            disp = 0
        word = (opc << 24) | (_reg(inst.ra) << 19) \
            | (_reg(inst.rb) << 14) | (disp & ((1 << _MEM_DISP_BITS) - 1))
        words.append(word)
    elif kind in ("br", "cbranch", "fbranch"):
        target = inst.target if inst.target is not None else next_addr
        disp = (target - next_addr) >> 2
        limit = 1 << (_BR_DISP_BITS - 1)
        if not -limit <= disp < limit:
            raise EncodingError("branch displacement %d out of range"
                                % disp)
        word = (opc << 24) | (_reg(inst.ra) << 19) \
            | (disp & ((1 << _BR_DISP_BITS) - 1))
        words.append(word)
    elif kind == "jump":
        word = (opc << 24) | (_reg(inst.ra) << 19) | (_reg(inst.rb) << 14)
        words.append(word)
    elif kind == "pal":
        imm = inst.imm or 0
        word = (opc << 24) | (imm & 0xFFFFFF)
        words.append(word)
    else:  # nop
        words.append(opc << 24)
    return words


def _extension_word(value: int) -> int:
    # 24-bit signed payload carried by an extension word.
    if not -(1 << 23) <= value < (1 << 23):
        raise EncodingError("extension payload %d out of range" % value)
    return (EXTENSION_OPCODE << 24) | (value & 0xFFFFFF)


def _sign_extend(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if value >> (bits - 1):
        value -= 1 << bits
    return value


def decode_instruction(word: int, addr: int,
                       extension: Optional[int] = None) -> Instruction:
    """Decode one word (plus an optional preceding extension payload).

    Returns an :class:`Instruction` with ``addr`` set.
    """
    opc = (word >> 24) & 0xFF
    name = NUMBER_OPCODES.get(opc)
    if name is None:
        raise EncodingError("unknown opcode number %d at %#x"
                            % (opc, addr))
    info = OPCODES[name]
    kind = info.kind

    # FP register fields are stored with the 32-bias stripped; restore.
    fp_bias = 32 if kind in ("fop", "fload", "fstore", "fbranch") else 0
    if kind in ("op", "fop"):
        ra = ((word >> 19) & 31) + fp_bias
        rc = (word & 31) + fp_bias
        if (word >> 13) & 1:
            literal = (word >> 5) & 0xFF
            if extension is not None:
                literal = extension
            return Instruction(name, ra=ra, imm=literal, rc=rc, addr=addr)
        rb = ((word >> 14) & 31) + fp_bias
        return Instruction(name, ra=ra, rb=rb, rc=rc, addr=addr)
    if kind in ("load", "fload", "store", "fstore", "lda"):
        ra = ((word >> 19) & 31) + fp_bias
        rb = (word >> 14) & 31  # the base register is always integer
        disp = _sign_extend(word, _MEM_DISP_BITS)
        if extension is not None:
            disp = extension
        return Instruction(name, ra=ra, rb=rb, imm=disp, addr=addr)
    if kind in ("br", "cbranch", "fbranch"):
        ra = ((word >> 19) & 31) + fp_bias
        disp = _sign_extend(word, _BR_DISP_BITS)
        target = addr + 4 + (disp << 2)
        return Instruction(name, ra=ra, target=target, addr=addr)
    if kind == "jump":
        ra = (word >> 19) & 31
        rb = (word >> 14) & 31
        return Instruction(name, ra=ra, rb=rb, addr=addr)
    if kind == "pal":
        return Instruction(name, imm=_sign_extend(word, 24), addr=addr)
    return Instruction(name, addr=addr)


# -- whole-image binaries ----------------------------------------------------

MAGIC = b"AEXE"
VERSION = 1


def encode_image(image: Image) -> bytes:
    """Serialize a linked *image* into an executable binary (bytes).

    Because extension words change instruction addresses, text encoded
    here stores one *fixed-width record* of up to two words per
    instruction (extension slot + instruction word); a zero extension
    slot means "none".  Addresses and branch targets are therefore
    preserved exactly.
    """
    if image.base is None:
        raise EncodingError("cannot encode an unlinked image")
    out = bytearray()
    out += MAGIC
    name_bytes = image.name.encode("utf-8")
    out += struct.pack("<HHQQQ", VERSION, len(name_bytes), image.base,
                       image.data_base or 0, image.data_size)
    out += name_bytes
    out += struct.pack("<I", len(image.instructions))
    for inst in image.instructions:
        words = encode_instruction(inst, inst.addr + 4)
        if len(words) == 2:
            out += struct.pack("<II", words[0], words[1])
        else:
            out += struct.pack("<II", 0, words[0])
    out += struct.pack("<I", len(image.procedures))
    for proc in image.procedures:
        pname = proc.name.encode("utf-8")
        out += struct.pack("<HQQ", len(pname), proc.start, proc.end)
        out += pname
    symbols = [(n, a) for n, a in image.symbols.items()
               if n not in {p.name for p in image.procedures}]
    out += struct.pack("<I", len(symbols))
    for name, addr in symbols:
        sname = name.encode("utf-8")
        out += struct.pack("<HQ", len(sname), addr)
        out += sname
    return bytes(out)


def decode_image(data: bytes) -> Image:
    """Inverse of :func:`encode_image`; returns a linked Image."""
    if data[:4] != MAGIC:
        raise EncodingError("not an AEXE binary")
    offset = 4
    version, name_len, base, data_base, data_size = struct.unpack_from(
        "<HHQQQ", data, offset)
    offset += struct.calcsize("<HHQQQ")
    if version != VERSION:
        raise EncodingError("unsupported binary version %d" % version)
    name = data[offset:offset + name_len].decode("utf-8")
    offset += name_len
    (n_insts,) = struct.unpack_from("<I", data, offset)
    offset += 4
    image = Image(name)
    image.base = base
    image.data_base = data_base or None
    image.data_size = data_size
    addr = base
    for _ in range(n_insts):
        ext_word, word = struct.unpack_from("<II", data, offset)
        offset += 8
        extension = None
        if ext_word:
            extension = _sign_extend(ext_word, 24)
        image.instructions.append(
            decode_instruction(word, addr, extension))
        addr += Image.INSTRUCTION_BYTES
    (n_procs,) = struct.unpack_from("<I", data, offset)
    offset += 4
    from repro.alpha.image import Procedure

    for _ in range(n_procs):
        pname_len, start, end = struct.unpack_from("<HQQ", data, offset)
        offset += struct.calcsize("<HQQ")
        pname = data[offset:offset + pname_len].decode("utf-8")
        offset += pname_len
        proc = Procedure(pname, start, end, image=image)
        image.procedures.append(proc)
        image._proc_by_name[pname] = proc
        image.symbols.define(pname, start)
    (n_syms,) = struct.unpack_from("<I", data, offset)
    offset += 4
    for _ in range(n_syms):
        sname_len, sym_addr = struct.unpack_from("<HQ", data, offset)
        offset += struct.calcsize("<HQ")
        sname = data[offset:offset + sname_len].decode("utf-8")
        offset += sname_len
        image.symbols.define(sname, sym_addr)
    return image


def save_executable(image: Image, path: str) -> None:
    """Write *image* to *path* as an AEXE binary."""
    with open(path, "wb") as handle:
        handle.write(encode_image(image))


def load_executable(path: str) -> Image:
    """Read an AEXE binary; returns a linked Image."""
    with open(path, "rb") as handle:
        return decode_image(handle.read())
