"""A small two-pass assembler for the Alpha-like ISA.

Accepted syntax (one statement per line, ``#`` comments)::

    .image /usr/shlib/libdraw.so
    .data  array, 16000          # reserve 16000 bytes under a symbol
    .proc  copy_loop
    loop:
        ldq   t4, 0(t1)
        addq  t0, 4, t0
        lda   a0, =array         # pseudo: materialize a symbol address
        stq   t4, 0(t2)
        cmpult t0, v0, t4
        bne   t4, loop
        ret
    .end

Branch targets are labels; labels share one namespace per image, so
cross-procedure branches are allowed.  ``lda ra, =symbol`` is a pseudo
instruction that loads an absolute (post-link) symbol address and issues
as a normal ``lda``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from repro.alpha import regs
from repro.alpha.image import Image
from repro.alpha.instruction import Instruction
from repro.alpha.opcodes import OPCODES


class AssemblerError(Exception):
    """Raised for any syntax or semantic error in assembly text."""

    def __init__(self, message: str,
                 lineno: Optional[int] = None) -> None:
        if lineno is not None:
            message = "line %d: %s" % (lineno, message)
        super().__init__(message)
        self.lineno = lineno


_MEM_RE = re.compile(r"^(-?\w+)\(([\w$]+)\)$")
_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")


def _parse_int(text: str, lineno: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError("bad integer %r" % text,
                             lineno) from None


def _parse_reg(text: str, lineno: int) -> int:
    try:
        return regs.parse_register(text)
    except KeyError:
        raise AssemblerError("unknown register %r" % text,
                             lineno) from None


def _split_operands(text: str) -> List[str]:
    return [part.strip() for part in text.split(",")] if text else []


class _PendingInst:
    """An instruction plus unresolved label/symbol references."""

    __slots__ = ("inst", "target_label", "symbol")

    def __init__(self, inst: Instruction,
                 target_label: Optional[str] = None,
                 symbol: Optional[str] = None) -> None:
        self.inst = inst
        self.target_label = target_label
        self.symbol = symbol


def assemble(text: str, image_name: str = "a.out",
             base: Optional[int] = None,
             externs: Optional[Dict[str, int]] = None) -> Image:
    """Assemble *text* into an :class:`Image`.

    If *base* is given the image is linked at that address; otherwise it
    is returned unlinked (the loader will link it).  *externs* maps
    symbol names to absolute addresses of already-linked images, so
    ``lda ra, =symbol`` can reference cross-image procedures and data.
    """
    externs = externs or {}
    image = Image(image_name)
    image.source = text
    local_symbols: Set[str] = set()
    labels: Dict[str, int] = {}  # name -> image offset
    # (name, [_PendingInst]) while inside a .proc block
    current_proc: Optional[Tuple[str, List[_PendingInst]]] = None
    pending_all: List[Tuple[_PendingInst, int]] = []
    offset = 0

    def finish_proc() -> None:
        nonlocal current_proc
        assert current_proc is not None
        name, pendings = current_proc
        image.add_procedure(name, [p.inst for p in pendings])
        current_proc = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue

        if line.startswith("."):
            parts = line.split(None, 1)
            directive = parts[0]
            rest = parts[1].strip() if len(parts) > 1 else ""
            if directive == ".image":
                image.name = rest
            elif directive == ".data":
                operands = _split_operands(rest)
                if len(operands) != 2:
                    raise AssemblerError(".data needs 'name, bytes'", lineno)
                image.add_data(operands[0], _parse_int(operands[1], lineno))
                local_symbols.add(operands[0])
            elif directive == ".proc":
                if current_proc is not None:
                    raise AssemblerError("nested .proc", lineno)
                if not rest:
                    raise AssemblerError(".proc needs a name", lineno)
                current_proc = (rest, [])
                labels[rest] = offset
                local_symbols.add(rest)
            elif directive == ".end":
                if current_proc is None:
                    raise AssemblerError(".end without .proc", lineno)
                finish_proc()
            else:
                raise AssemblerError("unknown directive %r" % directive,
                                     lineno)
            continue

        match = _LABEL_RE.match(line)
        if match:
            label = match.group(1)
            if label in labels:
                raise AssemblerError("duplicate label %r" % label, lineno)
            labels[label] = offset
            continue

        if current_proc is None:
            raise AssemblerError("instruction outside .proc", lineno)
        pending = _parse_instruction(line, lineno)
        pending.inst.line = lineno
        current_proc[1].append(pending)
        pending_all.append((pending, lineno))
        offset += Image.INSTRUCTION_BYTES

    if current_proc is not None:
        raise AssemblerError("missing .end for procedure %r"
                             % current_proc[0])

    # Second pass: resolve labels to image offsets and queue data fixups.
    for pending, lineno in pending_all:
        if pending.target_label is not None:
            if pending.target_label not in labels:
                raise AssemblerError("undefined label %r"
                                     % pending.target_label, lineno)
            pending.inst.target = labels[pending.target_label]
        if pending.symbol is not None:
            if pending.symbol in local_symbols:
                image.fixups.append((pending.inst, pending.symbol))
            elif pending.symbol in externs:
                pending.inst.imm = externs[pending.symbol]
            else:
                raise AssemblerError("undefined symbol %r" % pending.symbol,
                                     lineno)

    if base is not None:
        image.link(base)
    return image


def _parse_instruction(line: str, lineno: int) -> _PendingInst:
    parts = line.split(None, 1)
    op = parts[0].lower()
    info = OPCODES.get(op)
    if info is None:
        raise AssemblerError("unknown opcode %r" % op, lineno)
    operands = _split_operands(parts[1] if len(parts) > 1 else "")
    kind = info.kind

    if kind in ("op", "fop"):
        if len(operands) != 3:
            raise AssemblerError("%s needs 3 operands" % op, lineno)
        ra = _parse_reg(operands[0], lineno)
        rc = _parse_reg(operands[2], lineno)
        if regs.is_register(operands[1]):
            rb, imm = _parse_reg(operands[1], lineno), None
        else:
            rb, imm = None, _parse_int(operands[1], lineno)
        return _PendingInst(Instruction(op, ra=ra, rb=rb, rc=rc, imm=imm))

    if kind in ("load", "fload", "store", "fstore", "lda"):
        if len(operands) != 2:
            raise AssemblerError("%s needs 2 operands" % op, lineno)
        ra = _parse_reg(operands[0], lineno)
        mem = operands[1]
        if mem.startswith("="):
            if kind != "lda":
                raise AssemblerError("'=symbol' only valid for lda", lineno)
            ref = mem[1:]
            if re.fullmatch(r"-?(\d+|0x[0-9a-fA-F]+)", ref):
                return _PendingInst(
                    Instruction(op, ra=ra, rb=regs.ZERO_REG,
                                imm=_parse_int(ref, lineno)))
            inst = Instruction(op, ra=ra, rb=regs.ZERO_REG, imm=0)
            return _PendingInst(inst, symbol=ref)
        match = _MEM_RE.match(mem)
        if not match:
            raise AssemblerError("bad memory operand %r" % mem, lineno)
        disp = _parse_int(match.group(1), lineno)
        rb = _parse_reg(match.group(2), lineno)
        return _PendingInst(Instruction(op, ra=ra, rb=rb, imm=disp))

    if kind in ("cbranch", "fbranch"):
        if len(operands) != 2:
            raise AssemblerError("%s needs 'reg, label'" % op, lineno)
        ra = _parse_reg(operands[0], lineno)
        inst = Instruction(op, ra=ra)
        return _PendingInst(inst, target_label=operands[1])

    if kind == "br":
        if len(operands) == 1:
            ra, label = regs.ZERO_REG, operands[0]
        elif len(operands) == 2:
            ra, label = _parse_reg(operands[0], lineno), operands[1]
        else:
            raise AssemblerError("%s needs '[reg,] label'" % op, lineno)
        return _PendingInst(Instruction(op, ra=ra), target_label=label)

    if kind == "jump":
        if op == "ret":
            rb = regs.parse_register("ra")
            if operands:
                mem = operands[-1]
                if mem.startswith("(") and mem.endswith(")"):
                    rb = _parse_reg(mem[1:-1], lineno)
            return _PendingInst(
                Instruction(op, ra=regs.ZERO_REG, rb=rb))
        if op == "jmp" and len(operands) == 1:
            ra = regs.ZERO_REG
            mem = operands[0]
        elif len(operands) == 2:
            ra = _parse_reg(operands[0], lineno)
            mem = operands[1]
        else:
            raise AssemblerError("%s needs '[reg,] (reg)'" % op, lineno)
        if not (mem.startswith("(") and mem.endswith(")")):
            raise AssemblerError("bad jump operand %r" % mem, lineno)
        rb = _parse_reg(mem[1:-1], lineno)
        return _PendingInst(Instruction(op, ra=ra, rb=rb))

    if kind == "pal":
        imm = _parse_int(operands[0], lineno) if operands else 0
        return _PendingInst(Instruction(op, imm=imm))

    if kind == "nop":
        return _PendingInst(Instruction(op))

    raise AssemblerError("cannot parse %r" % line, lineno)
