"""Register names and numbering for the Alpha-like ISA.

Integer registers are numbered 0..31 (r31 is the hardwired zero register)
and floating-point registers 32..63 (f31, i.e. register 63, reads as +0.0
and ignores writes), matching the Alpha AXP convention closely enough for
the analysis tools to reason about operand dependences.
"""

from __future__ import annotations

from typing import Dict

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Integer register that always reads as zero and ignores writes.
ZERO_REG = 31
#: Floating-point register that always reads as +0.0 and ignores writes.
FZERO_REG = 63

# Standard Alpha calling-convention aliases.
_INT_ALIASES: Dict[str, int] = {
    "v0": 0,
    "t0": 1, "t1": 2, "t2": 3, "t3": 4, "t4": 5, "t5": 6, "t6": 7, "t7": 8,
    "s0": 9, "s1": 10, "s2": 11, "s3": 12, "s4": 13, "s5": 14,
    "s6": 15, "fp": 15,
    "a0": 16, "a1": 17, "a2": 18, "a3": 19, "a4": 20, "a5": 21,
    "t8": 22, "t9": 23, "t10": 24, "t11": 25,
    "ra": 26,
    "t12": 27, "pv": 27,
    "at": 28,
    "gp": 29,
    "sp": 30,
    "zero": 31,
}

REG_NAMES: Dict[str, int] = {}
for _i in range(NUM_INT_REGS):
    REG_NAMES["r%d" % _i] = _i
for _i in range(NUM_FP_REGS):
    REG_NAMES["f%d" % _i] = NUM_INT_REGS + _i
REG_NAMES.update(_INT_ALIASES)

# Preferred display name for each register number.
_DISPLAY: Dict[int, str] = {}
for _name, _num in _INT_ALIASES.items():
    _DISPLAY.setdefault(_num, _name)
for _i in range(NUM_FP_REGS):
    _DISPLAY[NUM_INT_REGS + _i] = "f%d" % _i


def parse_register(name: str) -> int:
    """Return the register number for *name*.

    Raises ``KeyError`` if the name is not a known register.
    """
    return REG_NAMES[name.lower()]


def is_register(name: str) -> bool:
    """Return True if *name* names a register."""
    return name.lower() in REG_NAMES


def is_fp(regnum: int) -> bool:
    """Return True if *regnum* is a floating-point register."""
    return regnum >= NUM_INT_REGS


def register_name(regnum: int) -> str:
    """Return the canonical display name for register number *regnum*."""
    return _DISPLAY[regnum]
