"""Executable images: code, procedures and symbol tables.

An :class:`Image` is the unit the profiling system attributes samples to
(an application binary, a shared library, or the kernel).  Images are
*linked* at a base address before execution; all instruction addresses
and branch targets become absolute at link time.  As on the paper's
systems, a shared image is mapped at the same address in every process
that uses it; per-process data is kept separate by the per-process
address space in :mod:`repro.osim.process`.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Dict, Iterable, ItemsView, List,
                    Optional, Tuple)

from repro.alpha.opcodes import DIRECT_BRANCH_KINDS

if TYPE_CHECKING:
    from repro.alpha.instruction import Instruction


class Procedure:
    """A named, contiguous range of instructions inside an image."""

    __slots__ = ("name", "start", "end", "image")

    def __init__(self, name: str, start: int, end: int,
                 image: Optional["Image"] = None) -> None:
        self.name = name
        self.start = start
        self.end = end
        self.image = image

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def __repr__(self) -> str:
        return "<Procedure %s [%#x, %#x)>" % (self.name, self.start,
                                              self.end)

    def instructions(self) -> List["Instruction"]:
        """Return the instructions of this procedure, in address order."""
        assert self.image is not None
        return self.image.slice(self.start, self.end)


class SymbolTable:
    """Name -> absolute address mapping for one image."""

    def __init__(self) -> None:
        self._symbols: Dict[str, int] = {}

    def define(self, name: str, addr: int) -> None:
        if name in self._symbols:
            raise ValueError("duplicate symbol: %r" % name)
        self._symbols[name] = addr

    def resolve(self, name: str) -> int:
        return self._symbols[name]

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def items(self) -> ItemsView[str, int]:
        return self._symbols.items()


class Image:
    """A linked executable image.

    Attributes:
        name: pathname-style identity, e.g. ``/usr/shlib/libdraw.so``.
        base: absolute address of the first instruction.
        instructions: list of :class:`Instruction`, 4 bytes apart.
        procedures: list of :class:`Procedure` covering the code.
        symbols: :class:`SymbolTable` with procedure entry points and
            data symbols.
        data_size: bytes of data space the image needs after its code.
        data_base: absolute address of the data region (after linking).
    """

    INSTRUCTION_BYTES = 4

    def __init__(self, name: str) -> None:
        self.name = name
        self.base: Optional[int] = None
        self.instructions: List["Instruction"] = []
        self.procedures: List[Procedure] = []
        self.symbols = SymbolTable()
        self.data_size = 0
        self.data_base: Optional[int] = None
        #: Image-relative offset to pin the data region at (set by image
        #: rewriters, e.g. :mod:`repro.opt`): when not None, ``link``
        #: places data at ``base + data_offset`` instead of the first
        #: page boundary after the code, so data addresses survive a
        #: code-layout change byte-for-byte.
        self.data_offset: Optional[int] = None
        self._proc_by_name: Dict[str, Procedure] = {}
        #: Original assembly text, when built by the assembler (used by
        #: the dcpilist source-annotation tool).
        self.source: Optional[str] = None
        # (instruction, symbol-name) pairs whose ``imm`` field takes the
        # symbol's absolute address once the image is linked.
        self.fixups: List[Tuple["Instruction", str]] = []

    # -- construction -----------------------------------------------------

    def add_procedure(self, name: str,
                      instructions: Iterable["Instruction"]) -> Procedure:
        """Append *instructions* as procedure *name*.

        Offsets are assigned relative to the image; absolute addresses are
        fixed by :meth:`link`.
        """
        start = len(self.instructions) * self.INSTRUCTION_BYTES
        for inst in instructions:
            inst.addr = len(self.instructions) * self.INSTRUCTION_BYTES
            self.instructions.append(inst)
        end = len(self.instructions) * self.INSTRUCTION_BYTES
        proc = Procedure(name, start, end, image=self)
        self.procedures.append(proc)
        self._proc_by_name[name] = proc
        self.symbols.define(name, start)
        return proc

    def add_data(self, name: str, nbytes: int, align: int = 64) -> int:
        """Reserve *nbytes* of data space under symbol *name*.

        Returns the offset of the block within the data region.  The
        absolute address is ``data_base + offset`` after linking.
        """
        if self.data_size % align:
            self.data_size += align - self.data_size % align
        offset = self.data_size
        self.data_size += nbytes
        self.symbols.define(name, offset)
        return offset

    def link(self, base: int) -> "Image":
        """Fix all addresses: code at *base*, data right after the code."""
        self.base = base
        for inst in self.instructions:
            inst.addr += base
        code_end = base + self.code_size
        if self.data_offset is not None:
            # A rewriter pinned the data region (so pointers into it
            # keep their pre-rewrite values); the pin must still keep
            # data off the code's pages.
            if base + self.data_offset < code_end:
                raise ValueError(
                    "pinned data offset %#x overlaps code (%d bytes)"
                    % (self.data_offset, self.code_size))
            self.data_base = base + self.data_offset
        else:
            # Data starts on the next 8 KB page boundary so that code and
            # data never share a page (or a cache line).
            self.data_base = (code_end + 8191) & ~8191
        for proc in self.procedures:
            proc.start += base
            proc.end += base
        resolved = SymbolTable()
        for name, off in self.symbols.items():
            if name in self._proc_by_name:
                resolved.define(name, off + base)
            else:
                resolved.define(name, off + self.data_base)
        self.symbols = resolved
        self._resolve_targets()
        return self

    def _resolve_targets(self) -> None:
        """Convert label-offset branch targets to absolute addresses."""
        for inst in self.instructions:
            if (inst.info.kind in DIRECT_BRANCH_KINDS
                    and inst.target is not None):
                assert self.base is not None
                inst.target += self.base
        for inst, symbol in self.fixups:
            inst.imm = self.symbols.resolve(symbol)
        self.fixups: List[Tuple["Instruction", str]] = []

    # -- lookup ------------------------------------------------------------

    @property
    def code_size(self) -> int:
        return len(self.instructions) * self.INSTRUCTION_BYTES

    @property
    def end(self) -> int:
        assert self.base is not None
        return self.base + self.code_size

    def __contains__(self, addr: int) -> bool:
        return self.base is not None and self.base <= addr < self.end

    def instruction_at(self, addr: int) -> "Instruction":
        """Return the instruction at absolute address *addr*."""
        assert self.base is not None
        index = (addr - self.base) >> 2
        return self.instructions[index]

    def offset_of(self, addr: int) -> int:
        """Return the image-relative offset of absolute address *addr*."""
        assert self.base is not None
        return addr - self.base

    def slice(self, start: int, end: int) -> List["Instruction"]:
        """Return instructions in the absolute address range [start, end)."""
        assert self.base is not None
        lo = (start - self.base) >> 2
        hi = (end - self.base) >> 2
        return self.instructions[lo:hi]

    def procedure_at(self, addr: int) -> Optional[Procedure]:
        """Return the procedure containing *addr*, or None."""
        for proc in self.procedures:
            if addr in proc:
                return proc
        return None

    def procedure(self, name: str) -> Procedure:
        """Return the procedure named *name* (KeyError if absent)."""
        return self._proc_by_name[name]

    def entry(self, name: Optional[str] = None) -> int:
        """Return the entry address: of *name*, or of the first procedure."""
        if name is None:
            return self.procedures[0].start
        return self._proc_by_name[name].start

    def __repr__(self) -> str:
        where = "unlinked" if self.base is None else "@%#x" % self.base
        return "<Image %s %s, %d insts>" % (self.name, where,
                                            len(self.instructions))
