"""Executable images: code, procedures and symbol tables.

An :class:`Image` is the unit the profiling system attributes samples to
(an application binary, a shared library, or the kernel).  Images are
*linked* at a base address before execution; all instruction addresses
and branch targets become absolute at link time.  As on the paper's
systems, a shared image is mapped at the same address in every process
that uses it; per-process data is kept separate by the per-process
address space in :mod:`repro.osim.process`.
"""

from repro.alpha.opcodes import DIRECT_BRANCH_KINDS


class Procedure:
    """A named, contiguous range of instructions inside an image."""

    __slots__ = ("name", "start", "end", "image")

    def __init__(self, name, start, end, image=None):
        self.name = name
        self.start = start
        self.end = end
        self.image = image

    def __contains__(self, addr):
        return self.start <= addr < self.end

    def __repr__(self):
        return "<Procedure %s [%#x, %#x)>" % (self.name, self.start,
                                              self.end)

    def instructions(self):
        """Return the instructions of this procedure, in address order."""
        return self.image.slice(self.start, self.end)


class SymbolTable:
    """Name -> absolute address mapping for one image."""

    def __init__(self):
        self._symbols = {}

    def define(self, name, addr):
        if name in self._symbols:
            raise ValueError("duplicate symbol: %r" % name)
        self._symbols[name] = addr

    def resolve(self, name):
        return self._symbols[name]

    def __contains__(self, name):
        return name in self._symbols

    def items(self):
        return self._symbols.items()


class Image:
    """A linked executable image.

    Attributes:
        name: pathname-style identity, e.g. ``/usr/shlib/libdraw.so``.
        base: absolute address of the first instruction.
        instructions: list of :class:`Instruction`, 4 bytes apart.
        procedures: list of :class:`Procedure` covering the code.
        symbols: :class:`SymbolTable` with procedure entry points and
            data symbols.
        data_size: bytes of data space the image needs after its code.
        data_base: absolute address of the data region (after linking).
    """

    INSTRUCTION_BYTES = 4

    def __init__(self, name):
        self.name = name
        self.base = None
        self.instructions = []
        self.procedures = []
        self.symbols = SymbolTable()
        self.data_size = 0
        self.data_base = None
        self._proc_by_name = {}
        #: Original assembly text, when built by the assembler (used by
        #: the dcpilist source-annotation tool).
        self.source = None
        # (instruction, symbol-name) pairs whose ``imm`` field takes the
        # symbol's absolute address once the image is linked.
        self.fixups = []

    # -- construction -----------------------------------------------------

    def add_procedure(self, name, instructions):
        """Append *instructions* as procedure *name*.

        Offsets are assigned relative to the image; absolute addresses are
        fixed by :meth:`link`.
        """
        start = len(self.instructions) * self.INSTRUCTION_BYTES
        for inst in instructions:
            inst.addr = len(self.instructions) * self.INSTRUCTION_BYTES
            self.instructions.append(inst)
        end = len(self.instructions) * self.INSTRUCTION_BYTES
        proc = Procedure(name, start, end, image=self)
        self.procedures.append(proc)
        self._proc_by_name[name] = proc
        self.symbols.define(name, start)
        return proc

    def add_data(self, name, nbytes, align=64):
        """Reserve *nbytes* of data space under symbol *name*.

        Returns the offset of the block within the data region.  The
        absolute address is ``data_base + offset`` after linking.
        """
        if self.data_size % align:
            self.data_size += align - self.data_size % align
        offset = self.data_size
        self.data_size += nbytes
        self.symbols.define(name, offset)
        return offset

    def link(self, base):
        """Fix all addresses: code at *base*, data right after the code."""
        self.base = base
        for inst in self.instructions:
            inst.addr += base
        code_end = base + self.code_size
        # Data starts on the next 8 KB page boundary so that code and data
        # never share a page (or a cache line).
        self.data_base = (code_end + 8191) & ~8191
        for proc in self.procedures:
            proc.start += base
            proc.end += base
        resolved = SymbolTable()
        for name, off in self.symbols.items():
            if name in self._proc_by_name:
                resolved.define(name, off + base)
            else:
                resolved.define(name, off + self.data_base)
        self.symbols = resolved
        self._resolve_targets()
        return self

    def _resolve_targets(self):
        """Convert label-offset branch targets to absolute addresses."""
        for inst in self.instructions:
            if (inst.info.kind in DIRECT_BRANCH_KINDS
                    and inst.target is not None):
                inst.target += self.base
        for inst, symbol in self.fixups:
            inst.imm = self.symbols.resolve(symbol)
        self.fixups = []

    # -- lookup ------------------------------------------------------------

    @property
    def code_size(self):
        return len(self.instructions) * self.INSTRUCTION_BYTES

    @property
    def end(self):
        return self.base + self.code_size

    def __contains__(self, addr):
        return self.base is not None and self.base <= addr < self.end

    def instruction_at(self, addr):
        """Return the instruction at absolute address *addr*."""
        index = (addr - self.base) >> 2
        return self.instructions[index]

    def offset_of(self, addr):
        """Return the image-relative offset of absolute address *addr*."""
        return addr - self.base

    def slice(self, start, end):
        """Return instructions in the absolute address range [start, end)."""
        lo = (start - self.base) >> 2
        hi = (end - self.base) >> 2
        return self.instructions[lo:hi]

    def procedure_at(self, addr):
        """Return the procedure containing *addr*, or None."""
        for proc in self.procedures:
            if addr in proc:
                return proc
        return None

    def procedure(self, name):
        """Return the procedure named *name* (KeyError if absent)."""
        return self._proc_by_name[name]

    def entry(self, name=None):
        """Return the entry address: of *name*, or of the first procedure."""
        if name is None:
            return self.procedures[0].start
        return self._proc_by_name[name].start

    def __repr__(self):
        where = "unlinked" if self.base is None else "@%#x" % self.base
        return "<Image %s %s, %d insts>" % (self.name, where,
                                            len(self.instructions))
