"""Predecoded instruction records for the simulator's hot loop.

The pipeline model used to chase ``Instruction -> OpInfo -> IssueClass``
objects (attribute loads, string compares, dict lookups keyed by class
*names*) for every dynamic instruction.  This module flattens everything
``Core.run()`` needs into one plain tuple per *static* instruction,
computed once at image-load time:

* the operand shape and issue class as small integers (``K_*`` kind
  codes, issue-class ids indexing :data:`PAIR_OK_ID`);
* result latency, functional-unit needs and busy cycles;
* source registers, the *normalized* destination register (``None``
  when the architectural target is a zero register), and pre-resolved
  operand fields (float-register indices already rebased, ``ldah``
  displacements pre-shifted);
* the semantics callable and static branch target.

The records are pure data: executing from them is byte-identical to
executing from the original objects, which is what lets the fast and
slow pipeline paths share them (see :mod:`repro.cpu.fastpath`).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.alpha.instruction import Instruction
from repro.alpha.opcodes import ISSUE_CLASSES
from repro.cpu.issue import PAIR_OK

# -- record field indices ---------------------------------------------------

R_KIND = 0    # K_* kind code
R_CLS = 1     # issue-class id (index into CLS_NAMES / PAIR_OK_ID)
R_LAT = 2     # result latency in cycles
R_SRCS = 3    # tuple of source register numbers (zero regs excluded)
R_F1 = 4      # first operand field (kind-specific, see decode())
R_F2 = 5      # second operand field
R_F3 = 6      # third operand field (CMOV old-destination register)
R_DST = 7     # normalized destination register number, or None
R_IMM = 8     # literal / displacement (ldah pre-shifted by 16)
R_TARGET = 9  # absolute branch target, or None
R_FN = 10     # semantics or branch-condition callable, or None
R_UNIT = 11   # busy unit: 0 none, 1 imul, 2 fdiv
R_BUSY = 12   # unit busy cycles
R_CTRL = 13   # True for control transfers (block terminators)
R_ADDR = 14   # absolute instruction address

# -- kind codes -------------------------------------------------------------

K_OP = 0      # integer operate          f1=ra  f2=rb|None(imm)
K_CMOV = 1    # conditional move         f1=ra  f2=rb|None(imm)  f3=rc
K_FOP = 2     # floating operate         f1=ra-32|None  f2=rb-32
K_LDA = 3     # address form             f2=rb|None(zero)
K_LDQ = 4     # quadword load            f2=rb
K_LDL = 5    # longword load (sign-ext)  f2=rb
K_LDT = 6    # floating load             f2=rb
K_STQ = 7    # quadword store            f1=ra     f2=rb
K_STL = 8    # longword store            f1=ra     f2=rb
K_STT = 9    # floating store            f1=ra-32  f2=rb
K_NOP = 10   # nop / unop / call_pal (timing only)
K_CBR = 11   # conditional branch        f1=ra
K_FBR = 12   # floating branch           f1=ra-32
K_BR = 13    # unconditional branch
K_BSR = 14   # branch to subroutine (pushes return predictor)
K_JMP = 15   # indirect jump             f2=rb
K_JSR = 16   # indirect call             f2=rb
K_RET = 17   # subroutine return         f2=rb

#: Kind codes at or above this value transfer control.
K_FIRST_CONTROL = K_CBR

#: Issue-class names in id order; CLS_ID maps name -> id.
CLS_NAMES = tuple(ISSUE_CLASSES)
CLS_ID = {name: index for index, name in enumerate(CLS_NAMES)}

#: PAIR_OK re-keyed by class id: PAIR_OK_ID[leader][follower].
PAIR_OK_ID = tuple(
    tuple(PAIR_OK[(a, b)] for b in CLS_NAMES) for a in CLS_NAMES)

_UNIT_ID: Dict[Optional[str], int] = {None: 0, "imul": 1, "fdiv": 2}

_MEM_KINDS = {
    "ldq": K_LDQ, "ldl": K_LDL, "ldt": K_LDT,
    "stq": K_STQ, "stl": K_STL, "stt": K_STT,
}

_JUMP_KINDS = {"jmp": K_JMP, "jsr": K_JSR, "ret": K_RET}


def decode(inst: Instruction) -> Tuple[object, ...]:
    """Return the flat predecode record for *inst* (an Instruction)."""
    info = inst.info
    icls = ISSUE_CLASSES[info.cls]
    cls_id = CLS_ID[info.cls]
    kind = info.kind
    ra, rb, rc = inst.ra, inst.rb, inst.rc
    f1: Optional[int] = None
    f2: Optional[int] = None
    f3: Optional[int] = None
    dst: Optional[int] = None
    target: Optional[int] = None
    imm = inst.imm
    fn = None
    if kind == "op":
        f1 = ra
        f2 = rb  # None -> literal operand in imm
        if info.cls == "CMOV":
            code = K_CMOV
            f3 = rc
            fn = info.cond
        else:
            code = K_OP
            fn = info.sem
        if rc != 31:
            dst = rc
    elif kind == "fop":
        code = K_FOP
        f1 = ra - 32 if ra is not None else None
        f2 = rb - 32
        fn = info.sem
        if rc != 63:
            dst = rc
    elif kind == "lda":
        code = K_LDA
        f2 = rb if rb != 31 else None
        if inst.op == "ldah" and imm is not None:
            imm = imm << 16
        if ra != 31:
            dst = ra
    elif kind in ("load", "fload", "store", "fstore"):
        code = _MEM_KINDS[inst.op]
        f2 = rb
        if kind == "load":
            if ra != 31:
                dst = ra
        elif kind == "fload":
            if ra != 63:
                dst = ra
        elif kind == "fstore":
            f1 = ra - 32
        else:
            f1 = ra
    elif kind == "cbranch":
        code = K_CBR
        f1 = ra
        fn = info.cond
        target = inst.target
    elif kind == "fbranch":
        code = K_FBR
        f1 = ra - 32
        fn = info.cond
        target = inst.target
    elif kind == "br":
        code = K_BSR if inst.op == "bsr" else K_BR
        target = inst.target
        if ra != 31:
            dst = ra
    elif kind == "jump":
        code = _JUMP_KINDS[inst.op]
        f2 = rb
        if ra != 31:
            dst = ra
    else:  # nop / unop / call_pal: timing only
        code = K_NOP
    return (code, cls_id, icls.latency, inst.srcs, f1, f2, f3, dst,
            imm, target, fn, _UNIT_ID[icls.unit], icls.busy,
            code >= K_FIRST_CONTROL, inst.addr)
