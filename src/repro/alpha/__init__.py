"""Alpha-like instruction set: registers, opcodes, assembler, images."""

from repro.alpha.assembler import AssemblerError, assemble
from repro.alpha.image import Image, Procedure, SymbolTable
from repro.alpha.instruction import Instruction
from repro.alpha.opcodes import OPCODES, OpInfo

__all__ = [
    "assemble",
    "AssemblerError",
    "Image",
    "Procedure",
    "SymbolTable",
    "Instruction",
    "OPCODES",
    "OpInfo",
]
