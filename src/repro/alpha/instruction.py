"""The decoded-instruction representation shared by the whole system.

An :class:`Instruction` is the unit both the pipeline simulator executes
and the analysis tools reason about.  Source/destination registers are
pre-computed at decode time (``srcs``/``dst``) so that the hot simulation
loop does no per-cycle decoding work.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.alpha import regs
from repro.alpha.opcodes import OPCODES

_DISCARD = (regs.ZERO_REG, regs.FZERO_REG)


class Instruction:
    """One decoded instruction.

    Attributes:
        addr: absolute address of the instruction inside its image
            (assigned when the instruction is placed; 4-byte aligned).
        op: opcode name, e.g. ``"addq"``.
        info: the :class:`repro.alpha.opcodes.OpInfo` row for ``op``.
        ra, rb, rc: register numbers (or None where the field is unused).
        imm: literal operand or memory displacement (or None).
        target: absolute branch target address (or None).
        srcs: tuple of source register numbers (zero registers excluded).
        dst: destination register number, or None.
        line: source line in the assembly text, for annotation output.
    """

    __slots__ = (
        "addr", "op", "info", "ra", "rb", "rc", "imm", "target",
        "srcs", "dst", "line",
    )

    def __init__(self, op: str, ra: Optional[int] = None,
                 rb: Optional[int] = None, rc: Optional[int] = None,
                 imm: Optional[int] = None,
                 target: Optional[int] = None, addr: int = 0,
                 line: Optional[int] = None) -> None:
        info = OPCODES.get(op)
        if info is None:
            raise ValueError("unknown opcode: %r" % op)
        self.op = op
        self.info = info
        self.ra = ra
        self.rb = rb
        self.rc = rc
        self.imm = imm
        self.target = target
        self.addr = addr
        self.line = line
        self.srcs, self.dst = self._roles()

    def _roles(self) -> Tuple[Tuple[int, ...], Optional[int]]:
        """Compute (source registers, destination register) for this op."""
        kind = self.info.kind
        srcs: List[Optional[int]] = []
        dst = None
        if kind == "op":
            srcs.append(self.ra)
            if self.rb is not None:
                srcs.append(self.rb)
            if self.info.cls == "CMOV":
                # A conditional move also reads its old destination.
                srcs.append(self.rc)
            dst = self.rc
        elif kind == "fop":
            if self.op not in ("cvtqt", "cvttq"):
                srcs.append(self.ra)
            srcs.append(self.rb)
            dst = self.rc
        elif kind in ("load", "fload", "lda"):
            srcs.append(self.rb)
            dst = self.ra
        elif kind in ("store", "fstore"):
            srcs.append(self.ra)
            srcs.append(self.rb)
        elif kind in ("cbranch", "fbranch"):
            srcs.append(self.ra)
        elif kind == "br":
            dst = self.ra
        elif kind == "jump":
            srcs.append(self.rb)
            dst = self.ra
        out = tuple(s for s in srcs if s is not None and s not in _DISCARD)
        if dst in _DISCARD:
            dst = None
        return out, dst

    @property
    def is_control(self) -> bool:
        return self.info.kind in ("br", "cbranch", "fbranch", "jump")

    @property
    def is_memory(self) -> bool:
        return self.info.kind in ("load", "fload", "store", "fstore")

    @property
    def is_load(self) -> bool:
        return self.info.kind in ("load", "fload")

    @property
    def is_store(self) -> bool:
        return self.info.kind in ("store", "fstore")

    def __repr__(self) -> str:
        return "<Instruction %06x %s>" % (self.addr, self.disassemble())

    def disassemble(self) -> str:
        """Return assembly text for this instruction."""
        kind = self.info.kind
        name = regs.register_name
        if kind == "op" or kind == "fop":
            b = name(self.rb) if self.rb is not None else str(self.imm)
            return "%s %s, %s, %s" % (self.op, name(self.ra), b,
                                      name(self.rc))
        if kind in ("load", "fload", "store", "fstore", "lda"):
            return "%s %s, %d(%s)" % (self.op, name(self.ra),
                                      self.imm or 0, name(self.rb))
        if kind in ("cbranch", "fbranch"):
            return "%s %s, 0x%06x" % (self.op, name(self.ra),
                                      self.target or 0)
        if kind == "br":
            return "%s 0x%06x" % (self.op, self.target or 0)
        if kind == "jump":
            if self.op == "ret":
                return "ret (%s)" % name(self.rb)
            return "%s %s, (%s)" % (self.op, name(self.ra), name(self.rb))
        if kind == "pal":
            return "call_pal %d" % (self.imm or 0)
        return self.op
