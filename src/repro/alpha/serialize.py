"""Image serialization (JSON) so CLI tools can analyze saved sessions.

Instruction semantics live in the opcode table, so an instruction
round-trips through its operand fields alone.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.alpha.image import Image, Procedure
from repro.alpha.instruction import Instruction


def image_to_dict(image: Image) -> Dict[str, object]:
    """Return a JSON-ready dict describing *image* (must be linked)."""
    if image.base is None:
        raise ValueError("cannot serialize an unlinked image")
    return {
        "name": image.name,
        "base": image.base,
        "data_base": image.data_base,
        "data_offset": image.data_offset,
        "data_size": image.data_size,
        "instructions": [
            [inst.op, inst.ra, inst.rb, inst.rc, inst.imm, inst.target]
            for inst in image.instructions
        ],
        "procedures": [
            [proc.name, proc.start, proc.end] for proc in image.procedures
        ],
        "symbols": dict(image.symbols.items()),
    }


def image_from_dict(data: Dict[str, object]) -> Image:
    """Rebuild an :class:`Image` from :func:`image_to_dict` output."""
    image = Image(str(data["name"]))
    image.base = int(data["base"])  # type: ignore[call-overload]
    image.data_base = int(data["data_base"])  # type: ignore[call-overload]
    offset = data.get("data_offset")
    if offset is not None:
        image.data_offset = int(offset)  # type: ignore[call-overload]
    image.data_size = int(data["data_size"])  # type: ignore[call-overload]
    addr = image.base
    for op, ra, rb, rc, imm, target in data["instructions"]:  # type: ignore[union-attr]
        inst = Instruction(op, ra=ra, rb=rb, rc=rc, imm=imm,
                           target=target, addr=addr)
        image.instructions.append(inst)
        addr += Image.INSTRUCTION_BYTES
    for name, start, end in data["procedures"]:  # type: ignore[union-attr]
        proc = Procedure(name, start, end, image=image)
        image.procedures.append(proc)
        image._proc_by_name[name] = proc
    for name, value in data["symbols"].items():  # type: ignore[union-attr]
        image.symbols.define(name, value)
    return image


def save_images(images: Iterable[Image], path: str) -> None:
    """Write a list of images to *path* as JSON."""
    with open(path, "w") as handle:
        json.dump([image_to_dict(image) for image in images], handle)


def load_images(path: str) -> List[Image]:
    """Read images previously written by :func:`save_images`."""
    with open(path) as handle:
        return [image_from_dict(entry) for entry in json.load(handle)]
