"""Seeded deterministic fault injection for the collection pipeline.

The collection system (driver, daemon, database) is instrumented with
named *fault points* -- places where production systems actually fail:
the daemon dying mid-drain, the machine restarting between a drain and
the merge to disk, a torn write to the profile database, an overflow
buffer burst.  A :class:`FaultPlan` describes which points fire, on
which hit, with which action; building it yields a
:class:`FaultInjector` whose decisions are a pure function of the plan
and its seed, so every chaos run is exactly reproducible.

Faults never perturb the simulated machine's instruction or sample
stream: injected failures happen on the *collection* side (daemon,
database), whose modelled cost is charged separately from machine
execution.  A faulted run therefore sees the identical sample stream
as its fault-free twin, which is what makes the conservation invariant
checked by ``dcpichaos`` exact rather than statistical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

# -- fault points (where) --------------------------------------------------

#: An overflow buffer is lost the moment it fills (DMA burst, say).
DRIVER_OVERFLOW = "driver.overflow"
#: The daemon's per-CPU flush call fails (transient) or dies (crash).
DRAIN_FLUSH = "daemon.drain.flush"
#: The daemon dies between two CPUs of one drain cycle.
DRAIN_CPU = "daemon.drain.cpu"
#: The daemon dies after journaling a flush but before merging/acking.
DRAIN_MERGE = "daemon.drain.merge"
#: The daemon dies between a drain and ``merge_to_disk``.
DAEMON_CHECKPOINT = "daemon.checkpoint"
#: The machine dies after profile files are written, before the
#: manifest commit (the database's linearization point).
DB_COMMIT = "db.checkpoint"
#: A profile file write is corrupted in flight (torn/bit-flipped).
DB_WRITE = "db.write"
#: A loadmap event is dropped or delayed on its way to the daemon.
LOADMAP = "daemon.loadmap"
#: The whole machine restarts between execution chunks.
SESSION_RESTART = "session.restart"
#: A fleet delta is lost (drop), delivered twice (duplicate), or times
#: out retryably (transient) on its way from a machine's daemon to the
#: central store (repro.fleet).
FLEET_SHIP = "fleet.ship"
#: The store's acknowledgment of an applied delta is lost on the way
#: back to the machine: the delta stays spooled and is re-shipped (the
#: store's idempotent dedupe absorbs the replay).
FLEET_ACK = "fleet.ack"
#: A fleet machine's collection daemon dies mid-epoch (between two
#: drain chunks); a durable machine recovers via Daemon.recover().
FLEET_MACHINE_CRASH = "fleet.machine.run"
#: A fleet machine dies after closing an epoch, before shipping its
#: delta; a durable machine resumes shipping from its local journal.
FLEET_PRESHIP_CRASH = "fleet.machine.ship"
#: The store's writer process dies mid-ingest, after staging the
#: ledger entry but before the atomic manifest commit.
FLEET_STORE_INGEST = "fleet.store.ingest"

FAULT_POINTS = (
    DRIVER_OVERFLOW, DRAIN_FLUSH, DRAIN_CPU, DRAIN_MERGE,
    DAEMON_CHECKPOINT, DB_COMMIT, DB_WRITE, LOADMAP, SESSION_RESTART,
    FLEET_SHIP, FLEET_ACK, FLEET_MACHINE_CRASH, FLEET_PRESHIP_CRASH,
    FLEET_STORE_INGEST,
)

# -- actions (what) --------------------------------------------------------

CRASH = "crash"          # raise InjectedCrash (process death)
TRANSIENT = "transient"  # raise TransientDrainError (retryable)
DROP = "drop"            # silently lose the unit of work
DELAY = "delay"          # defer the unit of work one drain cycle
TRUNCATE = "truncate"    # cut the payload short (torn write)
BITFLIP = "bitflip"      # flip one bit of the payload
DUPLICATE = "duplicate"  # deliver the unit of work twice

ACTIONS = (CRASH, TRANSIENT, DROP, DELAY, TRUNCATE, BITFLIP, DUPLICATE)


class InjectedCrash(RuntimeError):
    """A fault plan killed the component at *point*."""

    def __init__(self, point: str, hit: int) -> None:
        super().__init__("injected crash at %s (hit %d)" % (point, hit))
        self.point = point
        self.hit = hit


class TransientDrainError(RuntimeError):
    """A retryable injected failure (the drain loop backs off)."""

    def __init__(self, point: str, hit: int) -> None:
        super().__init__("injected transient fault at %s (hit %d)"
                         % (point, hit))
        self.point = point
        self.hit = hit


@dataclass(frozen=True)
class FaultSpec:
    """One fault: fire *action* at *point* on selected hits.

    *hits* lists 1-based hit numbers of the point (each consult of the
    point increments its counter).  Alternatively *after* fires on
    every hit >= after, bounded by *limit* total firings (0 = no
    bound).  An empty spec (no hits, no after) never fires.
    """

    point: str
    action: str
    hits: Tuple[int, ...] = ()
    after: int = 0
    limit: int = 0

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError("unknown fault point %r" % (self.point,))
        if self.action not in ACTIONS:
            raise ValueError("unknown fault action %r" % (self.action,))

    def matches(self, hit: int, fired_so_far: int) -> bool:
        if self.hits and hit in self.hits:
            return True
        if self.after and hit >= self.after:
            return not self.limit or fired_so_far < self.limit
        return False


@dataclass(frozen=True)
class FaultPlan:
    """A picklable, seeded set of :class:`FaultSpec`."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def build(self) -> "FaultInjector":
        return FaultInjector(self)


class FaultInjector:
    """Deterministic runtime for one :class:`FaultPlan`.

    The pipeline consults it through three verbs:

    * :meth:`check` -- raise at crash/transient points;
    * :meth:`fires` -- non-raising query for drop/delay points;
    * :meth:`corrupt_bytes` -- mangle a payload at write points.
    """

    enabled = True

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self._specs: Dict[str, List[FaultSpec]] = {}
        for spec in plan.specs:
            self._specs.setdefault(spec.point, []).append(spec)
        self._hits: Dict[str, int] = {}
        #: (point, action) -> times fired
        self.fired: Dict[Tuple[str, str], int] = {}

    def _arm(self, point: str) -> Optional[FaultSpec]:
        """Count one consult of *point*; return the spec that fires."""
        specs = self._specs.get(point)
        if not specs:
            return None
        hit = self._hits.get(point, 0) + 1
        self._hits[point] = hit
        for spec in specs:
            key = (point, spec.action)
            if spec.matches(hit, self.fired.get(key, 0)):
                self.fired[key] = self.fired.get(key, 0) + 1
                return spec
        return None

    def check(self, point: str) -> None:
        """Raise if a crash/transient fault fires at *point*."""
        spec = self._arm(point)
        if spec is None:
            return
        hit = self._hits[point]
        if spec.action == CRASH:
            raise InjectedCrash(point, hit)
        if spec.action == TRANSIENT:
            raise TransientDrainError(point, hit)

    def fires(self, point: str) -> Optional[FaultSpec]:
        """Return the firing :class:`FaultSpec` or None (non-raising)."""
        return self._arm(point)

    def corrupt_bytes(self, point: str, data: bytes) -> bytes:
        """Return *data*, possibly torn or bit-flipped by a fault."""
        spec = self._arm(point)
        if spec is None or not data:
            return data
        if spec.action == TRUNCATE:
            return data[:self.rng.randrange(len(data))]
        if spec.action == BITFLIP:
            index = self.rng.randrange(len(data))
            mutated = bytearray(data)
            mutated[index] ^= 1 << self.rng.randrange(8)
            return bytes(mutated)
        return data

    def stats(self) -> Dict[Tuple[str, str], int]:
        """{(point, action): firings} so far."""
        return dict(self.fired)


class _NullInjector:
    """Zero-cost stand-in when no faults are configured."""

    enabled = False
    plan = FaultPlan()

    def check(self, point: str) -> None:
        return

    def fires(self, point: str) -> Optional[FaultSpec]:
        return None  # noqa: RET501 -- typed Optional stub

    def corrupt_bytes(self, point: str, data: bytes) -> bytes:
        return data

    def stats(self) -> Dict[Tuple[str, str], int]:
        return {}


NULL_INJECTOR = _NullInjector()


def bitflip_at_rest(data: bytes, seed: int = 0) -> bytes:
    """Flip one deterministic bit of *data* (at-rest corruption)."""
    if not data:
        return data
    rng = random.Random(seed)
    mutated = bytearray(data)
    index = rng.randrange(len(mutated))
    mutated[index] ^= 1 << rng.randrange(8)
    return bytes(mutated)


def truncate_at_rest(data: bytes, seed: int = 0) -> bytes:
    """Cut *data* roughly in half (a torn write found at rest)."""
    return data[:max(1, len(data) // 2)] if data else data
