"""Deterministic fault injection for the collection pipeline.

Public surface:

* :class:`FaultSpec` / :class:`FaultPlan` -- declarative, picklable
  fault descriptions (seeded; fully reproducible).
* :class:`FaultInjector` / :data:`NULL_INJECTOR` -- the runtime the
  driver, daemon and database consult at their fault points.
* :mod:`repro.faults.scenarios` -- the registered chaos matrix run by
  ``dcpichaos`` (imported lazily; it pulls in the whole session stack).
* :mod:`repro.faults.audit` -- the sample-conservation invariant.
"""

from repro.faults.injector import (
    ACTIONS,
    BITFLIP,
    CRASH,
    DELAY,
    DROP,
    DUPLICATE,
    FAULT_POINTS,
    FLEET_SHIP,
    NULL_INJECTOR,
    TRANSIENT,
    TRUNCATE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    TransientDrainError,
)

__all__ = [
    "ACTIONS",
    "BITFLIP",
    "CRASH",
    "DELAY",
    "DROP",
    "DUPLICATE",
    "FAULT_POINTS",
    "FLEET_SHIP",
    "NULL_INJECTOR",
    "TRANSIENT",
    "TRUNCATE",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "TransientDrainError",
]
