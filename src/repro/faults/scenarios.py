"""The registered chaos matrix: named fault scenarios + the runner.

Each :class:`Scenario` is a fault plan aimed at one failure mode of
the collection pipeline (daemon death mid-drain, a machine restart
between drain and merge, a torn database write, ...).  The runner
executes every scenario twice -- once fault-free, once faulted, same
seed -- and checks the conservation invariant from
:mod:`repro.faults.audit`: identical sample streams, and recovered
profile counts equal to fault-free counts minus exactly the accounted
losses.  ``dcpichaos`` is the CLI face of this module.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults import audit
from repro.faults.injector import (FaultPlan, FaultSpec, bitflip_at_rest,
                                   truncate_at_rest)

#: Chaos sessions run hot: a tiny hash table and overflow buffers, so
#: evictions and buffer-full events are frequent; frequent drains and
#: periodic checkpoints, so every fault point is exercised inside a
#: small instruction budget.
CHAOS_CYCLES_PERIOD = (240, 256)
CHAOS_EVENT_PERIOD = 64
CHAOS_DRAIN_INTERVAL = 4_000
CHAOS_BUCKETS = 4
CHAOS_ASSOC = 2
CHAOS_OVERFLOW_CAPACITY = 4
CHAOS_CHECKPOINT_DRAINS = 2

QUICK_BUDGET = 24_000
FULL_BUDGET = 60_000


@dataclass(frozen=True)
class Scenario:
    """One registered fault case."""

    name: str
    description: str
    specs: Tuple[FaultSpec, ...] = ()
    #: at-rest corruption applied to one stored profile after the
    #: faulted session ends: None | "bitflip" | "truncate".
    post: Optional[str] = None
    #: whether the session runs with a profile database.
    db: bool = True
    #: include in the --quick (CI smoke) subset.
    quick: bool = False


SCENARIOS = (
    Scenario(
        "overflow-burst",
        "three overflow buffers vanish as they fill (driver-side loss)",
        specs=(FaultSpec("driver.overflow", "drop", hits=(1, 2, 3)),),
        quick=True),
    Scenario(
        "drain-transient",
        "two flushes fail transiently; the retry/backoff loop recovers",
        specs=(FaultSpec("daemon.drain.flush", "transient", hits=(3, 5)),),
        quick=True),
    Scenario(
        "drain-fail",
        "flushes fail persistently; the daemon sheds the CPU's backlog",
        specs=(FaultSpec("daemon.drain.flush", "transient",
                         after=6, limit=4),)),
    Scenario(
        "crash-mid-drain",
        "daemon dies partway through a drain cycle",
        specs=(FaultSpec("daemon.drain.cpu", "crash", hits=(3,)),),
        quick=True),
    Scenario(
        "crash-before-ack",
        "daemon dies after journaling a batch, before merging it",
        specs=(FaultSpec("daemon.drain.merge", "crash", hits=(2,)),)),
    Scenario(
        "crash-before-merge",
        "daemon dies between a drain and merge_to_disk",
        specs=(FaultSpec("daemon.checkpoint", "crash", hits=(1,)),)),
    Scenario(
        "crash-mid-checkpoint",
        "machine dies after writing profile files, before the "
        "manifest commit",
        specs=(FaultSpec("db.checkpoint", "crash", hits=(1,)),),
        quick=True),
    Scenario(
        "machine-restart",
        "whole machine restarts: daemon memory and driver buffers gone",
        specs=(FaultSpec("session.restart", "crash", hits=(3,)),),
        quick=True),
    Scenario(
        "crash-no-db",
        "daemon dies with no database: in-memory samples are "
        "accounted as lost",
        specs=(FaultSpec("daemon.drain.cpu", "crash", hits=(4,)),),
        db=False),
    Scenario(
        "loadmap-drop",
        "a loadmap event is lost; samples degrade to the global map",
        specs=(FaultSpec("daemon.loadmap", "drop", hits=(1,)),)),
    Scenario(
        "loadmap-delay",
        "loadmap events arrive a drain late",
        specs=(FaultSpec("daemon.loadmap", "delay", hits=(1, 2)),)),
    Scenario(
        "torn-db-write",
        "a committed profile file is found truncated (torn write)",
        post="truncate", quick=True),
    Scenario(
        "bitflip-db",
        "a committed profile file has a flipped bit",
        post="bitflip"),
    Scenario(
        "torn-manifest",
        "the manifest itself is damaged at rest; the rebuild adopts "
        "the committed generation files instead of GC'ing them",
        post="manifest", quick=True),
)


def scenario_names(quick: bool = False) -> List[str]:
    return [s.name for s in SCENARIOS if s.quick or not quick]


def get_scenario(name: str) -> Scenario:
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    raise KeyError("unknown scenario %r; have: %s"
                   % (name, ", ".join(s.name for s in SCENARIOS)))


def _run_session(workload_name: str, seed: int, budget: int,
                 db_root: Optional[str],
                 plan: Optional[FaultPlan]) -> Any:
    from repro.collect.driver import DriverConfig
    from repro.collect.session import ProfileSession, SessionConfig
    from repro.cpu.config import MachineConfig
    from repro.workloads.registry import get_workload

    workload = get_workload(workload_name)
    config = SessionConfig(
        mode="default",
        cycles_period=CHAOS_CYCLES_PERIOD,
        event_period=CHAOS_EVENT_PERIOD,
        drain_interval=CHAOS_DRAIN_INTERVAL,
        seed=seed,
        db_root=db_root,
        checkpoint_drains=CHAOS_CHECKPOINT_DRAINS,
        driver=DriverConfig(buckets=CHAOS_BUCKETS, assoc=CHAOS_ASSOC,
                            overflow_capacity=CHAOS_OVERFLOW_CAPACITY),
        faults=plan)
    session = ProfileSession(MachineConfig(num_cpus=workload.num_cpus),
                             config)
    return session.run(workload, max_instructions=budget)


def _corrupt_at_rest(db_root: str, kind: str,
                     seed: int) -> Optional[str]:
    """Corrupt the largest committed profile file in *db_root*.

    ``kind="manifest"`` instead damages ``MANIFEST.json`` itself: the
    cold re-open must rebuild it by adopting the committed generation
    files, losing nothing.
    """
    from repro.collect.database import MANIFEST_NAME, ProfileDatabase

    if kind == "manifest":
        path = os.path.join(db_root, MANIFEST_NAME)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(truncate_at_rest(data, seed=seed))
        return MANIFEST_NAME

    database = ProfileDatabase(db_root)
    records = database._load_manifest()["records"]
    if not records:
        return None
    victim = max(records.values(), key=lambda rec: rec.get("total", 0))
    path = os.path.join(db_root, victim["file"])
    with open(path, "rb") as handle:
        data = handle.read()
    mangle = bitflip_at_rest if kind == "bitflip" else truncate_at_rest
    with open(path, "wb") as handle:
        handle.write(mangle(data, seed=seed))
    return victim["file"]


def run_case(scenario: Scenario, workload_name: str,
             budget: int = FULL_BUDGET, seed: int = 1,
             keep_dirs: Optional[List[str]] = None) -> Dict[str, Any]:
    """Run one scenario on one workload; return the case report.

    Executes the fault-free reference and the faulted run with the
    same seed in throwaway database directories, applies any at-rest
    corruption, then audits both runs and the cross-run invariant.
    """
    from repro.collect.database import ProfileDatabase

    started = time.perf_counter()
    tmp = tempfile.mkdtemp(prefix="dcpichaos-")
    try:
        ref_root = (os.path.join(tmp, "ref") if scenario.db else None)
        fault_root = (os.path.join(tmp, "fault") if scenario.db else None)
        reference = _run_session(workload_name, seed, budget, ref_root,
                                 None)
        plan = FaultPlan(specs=scenario.specs, seed=seed)
        faulted = _run_session(workload_name, seed, budget, fault_root,
                               plan)
        corrupted_file = None
        if scenario.post and fault_root is not None:
            corrupted_file = _corrupt_at_rest(fault_root, scenario.post,
                                              seed)
            # Re-open cold (a fresh reader, like an offline analysis
            # tool) and verify: the corrupt file must be quarantined
            # with its loss accounted, not decoded into garbage.
            faulted.database = ProfileDatabase(fault_root)
            faulted.database.verify()
        ref_report = audit.sample_conservation(reference)
        fault_report = audit.sample_conservation(faulted)
        comparison = audit.compare_runs(fault_report, ref_report)
        return {
            "scenario": scenario.name,
            "workload": workload_name,
            "seed": seed,
            "budget": budget,
            "elapsed_s": round(time.perf_counter() - started, 3),
            "reference": ref_report,
            "faulted": fault_report,
            "comparison": comparison,
            "fired": {"%s:%s" % key: count
                      for key, count
                      in faulted.driver.faults.stats().items()},
            "corrupted_file": corrupted_file,
            "recoveries": fault_report["recoveries"],
            "accounted_loss": audit.accounted_loss(fault_report),
            "loss_rate": (audit.accounted_loss(fault_report)
                          / fault_report["driver_samples"]
                          if fault_report["driver_samples"] else 0.0),
            "overhead_pct": _recovery_overhead(reference, faulted),
            "ok": comparison["ok"],
        }
    finally:
        if keep_dirs:
            keep_dirs.append(tmp)
        else:
            shutil.rmtree(tmp, ignore_errors=True)


def _recovery_overhead(reference: Any, faulted: Any) -> float:
    """Extra modelled daemon cycles the faulted run paid, in percent."""
    base = reference.daemon.cycles
    if not base:
        return 0.0
    return (faulted.daemon.cycles - base) / base * 100.0


def run_matrix(workloads: Sequence[str] = ("gcc",),
               quick: bool = False, seed: int = 1,
               budget: Optional[int] = None,
               names: Optional[Sequence[str]] = None
               ) -> List[Dict[str, Any]]:
    """Run scenarios x workloads; return the list of case reports."""
    if budget is None:
        budget = QUICK_BUDGET if quick else FULL_BUDGET
    cases: List[Dict[str, Any]] = []
    for scenario in SCENARIOS:
        if names is not None and scenario.name not in names:
            continue
        if quick and not scenario.quick and names is None:
            continue
        for workload_name in workloads:
            cases.append(run_case(scenario, workload_name,
                                  budget=budget, seed=seed))
    return cases


# -- the fleet matrix (PR 9) -------------------------------------------------
#
# Where the scenarios above attack one machine's collection pipeline,
# the fleet matrix attacks the distribution layer: ship/ack transport
# faults, bounded-spool overflow, machine crash/recovery, store writer
# crashes, at-rest shard corruption, and sharded-vs-serial ingest
# identity.  Every case must hold the fleet conservation invariant
# (stored + transit-lost + spool-dropped + residue + quarantined ==
# shipped) *and* be bit-deterministic: the same scenario run twice with
# the same seed must produce byte-identical merged store profiles and
# an identical resilience report.

#: Fleet chaos sessions are sized small-but-hot, like the single
#: machine matrix: few machines, few epochs, tight budgets.
FLEET_QUICK_BUDGET = 6_000
FLEET_FULL_BUDGET = 12_000


@dataclass(frozen=True)
class FleetScenario:
    """One registered fleet-level fault case."""

    name: str
    description: str
    specs: Tuple[FaultSpec, ...] = ()
    machines: int = 2
    epochs: int = 3
    shards: int = 1
    #: give machines a local db + journal (arms fleet.machine.* crash
    #: points and unacked-epoch re-shipping).
    durable: bool = False
    spool_capacity: int = 8
    #: at-rest corruption of one committed shard profile after the run:
    #: None | "bitflip" | "truncate".
    post: Optional[str] = None
    #: also re-run with shards=1 and assert byte-identical merged
    #: profiles (the concurrent-sharded == serial identity).
    serial_check: bool = False
    #: include in the --quick (CI smoke) subset.
    quick: bool = False


FLEET_SCENARIOS = (
    FleetScenario(
        "fleet-ship-drop",
        "a delta vanishes in transit; the loss is accounted exactly",
        specs=(FaultSpec("fleet.ship", "drop", hits=(2,)),)),
    FleetScenario(
        "fleet-ship-timeout",
        "ships time out transiently; seeded backoff re-ships from the "
        "spool with zero loss",
        specs=(FaultSpec("fleet.ship", "transient", hits=(2, 4)),),
        quick=True),
    FleetScenario(
        "fleet-ship-dup",
        "the transport delivers a delta twice; idempotent dedupe "
        "drops the replay",
        specs=(FaultSpec("fleet.ship", "duplicate", hits=(3,)),)),
    FleetScenario(
        "fleet-ack-lost",
        "the store applies a delta but the ack is lost; the re-ship "
        "is absorbed by (machine, epoch, batch) dedupe",
        specs=(FaultSpec("fleet.ack", "drop", hits=(1,)),)),
    FleetScenario(
        "fleet-spool-overflow",
        "persistent timeouts against a capacity-1 spool force "
        "drop-oldest evictions, every dropped sample accounted",
        specs=(FaultSpec("fleet.ship", "transient", after=1, limit=64),),
        spool_capacity=1),
    FleetScenario(
        "fleet-machine-crash",
        "a durable machine's daemon dies mid-epoch; journal replay + "
        "in-flight redrain resume the epoch without losing a sample",
        specs=(FaultSpec("fleet.machine.run", "crash", hits=(3,)),),
        durable=True),
    FleetScenario(
        "fleet-preship-crash",
        "a durable machine dies after closing an epoch, before "
        "shipping it; the restart re-extracts and re-ships it",
        specs=(FaultSpec("fleet.machine.ship", "crash", hits=(2,)),),
        durable=True),
    FleetScenario(
        "fleet-store-crash",
        "the store writer dies mid-ingest before the manifest commit; "
        "the reopened store retries the same delivery",
        specs=(FaultSpec("fleet.store.ingest", "crash", hits=(2,)),)),
    FleetScenario(
        "fleet-shard-corrupt",
        "a committed profile in one shard is bit-flipped at rest; "
        "verify quarantines it with the loss accounted",
        shards=2, post="bitflip", quick=True),
    FleetScenario(
        "fleet-concurrent-ingest",
        "four shards ingest the interleaved fleet; merged profiles "
        "are byte-identical to the serial single-shard store",
        shards=4, serial_check=True),
)


def fleet_scenario_names(quick: bool = False) -> List[str]:
    return [s.name for s in FLEET_SCENARIOS if s.quick or not quick]


def get_fleet_scenario(name: str) -> FleetScenario:
    for scenario in FLEET_SCENARIOS:
        if scenario.name == name:
            return scenario
    raise KeyError("unknown fleet scenario %r; have: %s"
                   % (name, ", ".join(s.name
                                      for s in FLEET_SCENARIOS)))


def _fleet_config(scenario: FleetScenario, seed: int,
                  budget: int, shards: Optional[int] = None) -> Any:
    from repro.fleet.machine import FleetConfig

    return FleetConfig(
        machines=scenario.machines,
        epochs=scenario.epochs,
        seed=seed,
        epoch_instructions=budget,
        drain_interval=max(budget // 4, 1),
        faults=(FaultPlan(specs=scenario.specs, seed=seed)
                if scenario.specs else None),
        shards=shards if shards is not None else scenario.shards,
        durable=scenario.durable,
        spool_capacity=scenario.spool_capacity)


def _run_fleet_session(scenario: FleetScenario, seed: int, budget: int,
                       root: str,
                       shards: Optional[int] = None) -> Any:
    from repro.fleet.machine import FleetSession

    config = _fleet_config(scenario, seed, budget, shards=shards)
    return FleetSession(config).run(root)


def _store_bytes(store: Any) -> bytes:
    """Canonical merged-profile bytes of a fleet store."""
    blobs = store.merged().encode_all()
    return b"".join(blobs[key] for key in sorted(blobs))


def _fleet_fingerprint(result: Any) -> Dict[str, Any]:
    """The determinism surface of one fleet run (no wall-clock)."""
    return {
        "merged": _store_bytes(result.store).hex(),
        "resilience": result.resilience,
        "transport": result.transport_stats,
        "shipped": result.shipped_samples(),
        "stored": result.store.total_samples(),
    }


def run_fleet_case(scenario: FleetScenario, budget: int = FLEET_FULL_BUDGET,
                   seed: int = 1) -> Dict[str, Any]:
    """Run one fleet scenario; return the case report.

    Every case runs the faulted session *twice* with the same seed in
    fresh store roots and requires identical merged bytes and
    resilience reports (bit-determinism under faults).  ``post``
    scenarios then corrupt one committed shard profile at rest, reopen
    the store cold, and require verify() to quarantine the damage with
    the fleet conservation identity still exactly balanced.
    ``serial_check`` scenarios additionally re-run with ``shards=1``
    and require byte-identical merged profiles (sharded == serial).
    """
    from repro.check.analysis_checks import check_fleet_conservation
    from repro.fleet.store import FleetStore

    started = time.perf_counter()
    tmp = tempfile.mkdtemp(prefix="dcpichaos-fleet-")
    try:
        result = _run_fleet_session(scenario, seed, budget,
                                    os.path.join(tmp, "a"))
        twin = _run_fleet_session(scenario, seed, budget,
                                  os.path.join(tmp, "b"))
        fingerprint = _fleet_fingerprint(result)
        deterministic = fingerprint == _fleet_fingerprint(twin)
        conservation_ok = not result.findings
        findings = [f.to_dict() for f in result.findings]
        store = result.store

        corrupted_file = None
        quarantined = store.quarantined_samples()
        if scenario.post is not None:
            shard = max(store.shards,
                        key=lambda s: s.db.total_samples())
            corrupted_file = _corrupt_at_rest(
                os.path.join(shard.root, "db"), scenario.post, seed)
            # A cold reader (offline query tool) must quarantine the
            # damage, and the conservation identity must re-balance
            # with the quarantined samples on the loss side.
            store = FleetStore(store.root, shards=store.num_shards)
            for reopened in store.shards:
                reopened.db.verify()
            store = FleetStore(store.root, shards=store.num_shards)
            quarantined = store.quarantined_samples()
            post_findings = check_fleet_conservation(
                shipped=fingerprint["shipped"],
                stored=store.total_samples(),
                transit_lost=result.transport_stats["lost_samples"],
                residue=store.downsample_residue(),
                quarantined=quarantined,
                spool_dropped=result.resilience[
                    "spool_dropped_samples"],
                label="fleet-chaos/%s" % scenario.name)
            conservation_ok = conservation_ok and not post_findings
            findings += [f.to_dict() for f in post_findings]
            if scenario.post == "bitflip" and not quarantined:
                conservation_ok = False
                findings.append({"check": "fleet-chaos",
                                 "detail": "corruption not quarantined"})

        serial_identical = None
        if scenario.serial_check:
            serial = _run_fleet_session(scenario, seed, budget,
                                        os.path.join(tmp, "serial"),
                                        shards=1)
            serial_identical = (_store_bytes(serial.store)
                                == bytes.fromhex(fingerprint["merged"]))

        ok = (conservation_ok and deterministic
              and serial_identical is not False)
        return {
            "scenario": scenario.name,
            "fleet": True,
            "seed": seed,
            "budget": budget,
            "machines": scenario.machines,
            "epochs": scenario.epochs,
            "shards": scenario.shards,
            "durable": scenario.durable,
            "elapsed_s": round(time.perf_counter() - started, 3),
            "shipped_samples": fingerprint["shipped"],
            "stored_samples": store.total_samples(),
            "transport": result.transport_stats,
            "resilience": result.resilience,
            "quarantined_samples": quarantined,
            "corrupted_file": corrupted_file,
            "recoveries": (result.resilience["machine_recoveries"]
                           + result.resilience["store_recoveries"]),
            "loss_rate": ((result.transport_stats["lost_samples"]
                           + result.resilience["spool_dropped_samples"])
                          / fingerprint["shipped"]
                          if fingerprint["shipped"] else 0.0),
            "conservation_ok": conservation_ok,
            "deterministic": deterministic,
            "serial_identical": serial_identical,
            "findings": findings,
            "ok": ok,
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def run_fleet_matrix(quick: bool = False, seed: int = 1,
                     budget: Optional[int] = None,
                     names: Optional[Sequence[str]] = None
                     ) -> List[Dict[str, Any]]:
    """Run the registered fleet scenarios; return the case reports."""
    if budget is None:
        budget = FLEET_QUICK_BUDGET if quick else FLEET_FULL_BUDGET
    cases: List[Dict[str, Any]] = []
    for scenario in FLEET_SCENARIOS:
        if names is not None and scenario.name not in names:
            continue
        if quick and not scenario.quick and names is None:
            continue
        cases.append(run_fleet_case(scenario, budget=budget, seed=seed))
    return cases
