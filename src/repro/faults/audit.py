"""The sample-conservation invariant.

Continuous profiling's robustness contract is not "no loss" -- it is
*no unaccounted loss*.  Every sample the driver ever handled must end
up in exactly one of four places:

* attributed -- merged into an image profile (and, once checkpointed,
  in the database);
* unknown -- processed but unmapped (no image at that PC);
* dropped -- shed on the driver side (overflow backlog, abandoned
  drains, a machine restart), counted per CPU;
* lost -- shed on the daemon side (a crash with no recoverable
  checkpoint, vanished images), counted by the daemon.

Database-side, every *mapped* sample the daemon processed must be
either committed (and checksum-clean) or in the quarantine ledger with
its declared total.  :func:`sample_conservation` checks both books for
one run; :func:`compare_runs` checks a faulted run against its
fault-free twin -- possible because fault injection never perturbs the
simulated machine, so both runs see the identical sample stream.
"""

from __future__ import annotations

from typing import Any, Dict


def sample_conservation(result: Any) -> Dict[str, Any]:
    """Audit one :class:`SessionResult`'s loss accounting.

    Returns a report dict; ``report["ok"]`` is the verdict.
    """
    driver_samples = sum(state.samples for state in result.driver.cpus)
    dropped = sum(state.dropped for state in result.driver.cpus)
    daemon = result.daemon
    report: Dict[str, Any] = {
        "driver_samples": driver_samples,
        "dropped": dropped,
        "lost": daemon.lost_samples,
        "daemon_samples": daemon.total_samples,
        "unknown": daemon.unknown_samples,
        "recoveries": daemon.recoveries,
        # Book 1: the pipeline.  Everything the driver handled is
        # attributed, dropped or lost -- nothing silently vanishes.
        "pipeline_balanced": (
            driver_samples
            == daemon.total_samples + dropped + daemon.lost_samples),
    }
    if result.database is not None:
        database = result.database
        db_samples = database.total_samples()
        quarantined = database.quarantined_samples()
        mapped = daemon.total_samples - daemon.unknown_samples
        report.update({
            "db_samples": db_samples,
            "quarantined_samples": quarantined,
            # Book 2: the database.  Every mapped sample is committed
            # or quarantined -- never torn, never double-counted.
            "db_balanced": db_samples + quarantined == mapped,
        })
    report["ok"] = (report["pipeline_balanced"]
                    and report.get("db_balanced", True))
    return report


def accounted_loss(report: Dict[str, Any]) -> int:
    """Total accounted losses in a conservation report."""
    return (report["dropped"] + report["lost"]
            + report.get("quarantined_samples", 0))


def _kept(report: Dict[str, Any]) -> int:
    """Samples that survived into committed/attributed profiles."""
    if "db_samples" in report:
        return report["db_samples"]
    return report["daemon_samples"] - report["unknown"]


def compare_runs(faulted: Dict[str, Any],
                 reference: Dict[str, Any]) -> Dict[str, Any]:
    """Check a faulted run against its fault-free twin.

    Both arguments are :func:`sample_conservation` reports.  Asserts
    the ``dcpichaos`` acceptance invariant: identical sample streams
    (faults never touch the machine), and recovered profile counts
    equal to the fault-free counts minus exactly the accounted losses.
    The unknown-sample delta is an attribution *shift* (a dropped
    loadmap reroutes samples to 'unknown'), not a loss, and is
    credited separately.
    """
    identical_streams = (faulted["driver_samples"]
                         == reference["driver_samples"])
    delta_accounted = accounted_loss(faulted) - accounted_loss(reference)
    delta_unknown = faulted["unknown"] - reference["unknown"]
    counts_conserved = (
        _kept(reference) - _kept(faulted)
        == delta_accounted + delta_unknown)
    return {
        "identical_streams": identical_streams,
        "kept_faulted": _kept(faulted),
        "kept_reference": _kept(reference),
        "accounted_delta": delta_accounted,
        "unknown_delta": delta_unknown,
        "counts_conserved": counts_conserved,
        "ok": (identical_streams and counts_conserved
               and faulted["ok"] and reference["ok"]),
    }
