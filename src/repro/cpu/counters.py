"""Performance counters with randomized sampling periods.

Each counter slot counts one :class:`EventType`.  When a counter reaches
its period it "overflows": the overflow time is reported to the pipeline,
which delivers the interrupt ``interrupt_skew`` cycles later with the PC
at the head of the issue queue -- the attribution semantics of paper
section 4.1.2.

The period for the next interval is drawn from a caller-supplied
function; the profiling driver installs the Carta minimal-standard PRNG
(paper reference [4]) to decorrelate sampling from program structure.
"""


class CounterSlot:
    """One hardware performance counter."""

    __slots__ = ("event", "count", "period", "next_period", "overflows")

    def __init__(self, event, next_period):
        self.event = event
        self.next_period = next_period
        self.period = next_period()
        self.count = 0
        self.overflows = 0


class CounterUnit:
    """The per-CPU set of performance counters (2-3 on real Alphas)."""

    def __init__(self):
        self.slots = []
        self._by_event = {}

    def configure(self, event, next_period):
        """Add a counter slot counting *event*; returns the slot index."""
        slot = CounterSlot(event, next_period)
        self.slots.append(slot)
        self._by_event.setdefault(event, []).append(slot)
        return len(self.slots) - 1

    def set_event(self, index, event):
        """Re-point slot *index* at a different event (multiplexing)."""
        slot = self.slots[index]
        self._by_event[slot.event].remove(slot)
        slot.event = event
        slot.count = 0
        slot.period = slot.next_period()
        self._by_event.setdefault(event, []).append(slot)

    def counts_event(self, event):
        return bool(self._by_event.get(event))

    def live_slots(self, event):
        """The slot list for *event*, created on demand so the returned
        list object stays valid (it is mutated in place) across later
        ``configure``/``set_event`` calls.  The pipeline binds this once
        per run and scans it inline for replay headroom."""
        return self._by_event.setdefault(event, [])

    def headroom(self, event):
        """Smallest count any slot tracking *event* can absorb without
        overflowing, or None when no slot tracks it.  The fast path
        uses this to prove a whole block cannot overflow a CYCLES
        counter before batching the block's cycles into one update."""
        slots = self._by_event.get(event)
        if not slots:
            return None
        return min(slot.period - slot.count for slot in slots)

    def add(self, event, amount, end_time):
        """Count *amount* occurrences of *event*, the last at *end_time*.

        For CYCLES the occurrences are the cycles ``(end_time - amount,
        end_time]``; for discrete events *amount* is normally 1.  Returns
        a list of (event, overflow_time) pairs, possibly empty.
        """
        slots = self._by_event.get(event)
        if not slots:
            return ()
        overflows = []
        for slot in slots:
            count = slot.count + amount
            while count >= slot.period:
                # The overflowing occurrence is (period - old count) into
                # the span that ends at end_time.
                overshoot = count - slot.period
                overflow_time = end_time - overshoot
                overflows.append((slot.event, overflow_time))
                slot.overflows += 1
                count = overshoot
                slot.period = slot.next_period()
            slot.count = count
        return overflows
