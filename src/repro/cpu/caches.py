"""Cache models: single levels and the three-level hierarchy.

Caches are physically indexed and physically tagged, so the per-run
virtual-to-physical page assignment (see :mod:`repro.osim.process`)
changes conflict behaviour between runs -- the effect the paper uses to
explain wave5's run-to-run variance.
"""


class Cache:
    """A set-associative cache with LRU replacement.

    Associativity 1 degenerates to a direct-mapped cache with a cheap
    array lookup; that fast path matters because L1 lookups dominate the
    simulator's own running time.
    """

    def __init__(self, config):
        self.config = config
        self.line_size = config.line_size
        self._line_shift = config.line_size.bit_length() - 1
        if (1 << self._line_shift) != config.line_size:
            raise ValueError("line size must be a power of two")
        self.num_sets = config.size // (config.line_size * config.assoc)
        if self.num_sets & (self.num_sets - 1):
            # Non-power-of-two set counts (e.g. 3-way 96KB) index by modulo.
            self._set_mask = None
        else:
            self._set_mask = self.num_sets - 1
        self.assoc = config.assoc
        self.latency = config.latency
        # For assoc == 1: sets[i] is the resident tag (or None).
        # Otherwise: sets[i] is a list of tags in MRU..LRU order.
        if self.assoc == 1:
            self.sets = [None] * self.num_sets
        else:
            self.sets = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _index(self, line):
        if self._set_mask is not None:
            return line & self._set_mask
        return line % self.num_sets

    def lookup(self, addr, allocate=True):
        """Access the line containing *addr*; return True on hit.

        When *allocate* is false (write-through, no-write-allocate
        stores), a miss does not install the line.
        """
        line = addr >> self._line_shift
        index = self._index(line)
        if self.assoc == 1:
            if self.sets[index] == line:
                self.hits += 1
                return True
            self.misses += 1
            if allocate:
                self.sets[index] = line
            return False
        ways = self.sets[index]
        if line in ways:
            self.hits += 1
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            return True
        self.misses += 1
        if allocate:
            ways.insert(0, line)
            if len(ways) > self.assoc:
                ways.pop()
        return False

    def contains(self, addr):
        """Return True if the line holding *addr* is resident (no update)."""
        line = addr >> self._line_shift
        index = self._index(line)
        if self.assoc == 1:
            return self.sets[index] == line
        return line in self.sets[index]

    def flush(self):
        """Invalidate the entire cache."""
        if self.assoc == 1:
            self.sets = [None] * self.num_sets
        else:
            self.sets = [[] for _ in range(self.num_sets)]

    def evict_random(self, rng, count):
        """Evict *count* pseudo-random lines (interrupt-handler pollution)."""
        for _ in range(count):
            index = rng.randrange(self.num_sets)
            if self.assoc == 1:
                self.sets[index] = None
            elif self.sets[index]:
                self.sets[index].pop()


class Hierarchy:
    """L1 (I or D) + unified L2 + board cache + memory.

    ``access`` returns the total added latency of a fill and the set of
    levels that missed; the pipeline turns those into events.
    """

    def __init__(self, l1, l2, board, memory_latency):
        self.l1 = l1
        self.l2 = l2
        self.board = board
        self.memory_latency = memory_latency

    def access(self, paddr, allocate=True):
        """Access *paddr*; return (latency, l1_missed).

        Latency is the full load-to-use latency including the L1 hit
        latency, i.e. ``l1.latency`` on a primary hit.
        """
        latency = self.l1.latency
        if self.l1.lookup(paddr, allocate):
            return latency, False
        latency += self.l2.latency
        if self.l2.lookup(paddr, allocate):
            return latency, True
        latency += self.board.latency
        if self.board.lookup(paddr, allocate):
            return latency, True
        return latency + self.memory_latency, True

    def miss_path(self, paddr, allocate=True):
        """Continue an access whose L1 miss was already counted.

        The fast path's compiled replays inline the direct-mapped L1
        probe (tag compare + hit/miss counters + install) and call this
        for the L2-and-beyond remainder; the split must charge exactly
        what :meth:`access` would.
        """
        latency = self.l1.latency + self.l2.latency
        if self.l2.lookup(paddr, allocate):
            return latency, True
        latency += self.board.latency
        if self.board.lookup(paddr, allocate):
            return latency, True
        return latency + self.memory_latency, True
