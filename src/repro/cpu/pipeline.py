"""The in-order dual-issue pipeline core.

The model follows the paper's abstraction of the 21164: instructions
stall only at the head of the issue queue, an instruction's CYCLES sample
count is proportional to the time it spends there, and a dual-issued
younger instruction spends zero cycles at the head ("0 (dual issue)" in
the paper's Figure 2 listing).

Per dynamic instruction the core computes:

* ``arrival`` -- the first cycle the instruction can occupy the head
  (delayed by I-cache/ITB fetch misses, branch-mispredict bubbles, and
  the profiling interrupt handler's own cycles);
* ``issue``   -- when its operands are ready and a pipe plus any needed
  unit (IMUL, FDIV, a write-buffer slot) is available;
* ``issue - arrival + 1`` cycles at the head, decomposed into the exact
  stall reasons (the simulator's *ground truth*, which validates the
  analysis tools but is never shown to them).

Performance-counter overflows are delivered ``interrupt_skew`` cycles
late and attributed to whatever instruction holds the head at delivery
time, reproducing the paper's section 4.1.2 semantics (IMISS samples
land on the missing instruction; DMISS/BRANCHMP samples skew a few
instructions down the stream).
"""

from repro.alpha.opcodes import ISSUE_CLASSES, MASK64
from repro.cpu.branch import BranchPredictor
from repro.cpu.caches import Cache, Hierarchy
from repro.cpu.counters import CounterUnit
from repro.cpu.events import EventType
from repro.cpu.issue import PAIR_OK
from repro.cpu.tlb import TLB
from repro.cpu.writebuffer import WriteBuffer

# Run-status results of Core.run().
EXITED = "exited"
QUANTUM = "quantum"
BUDGET = "budget"

_EV_CYCLES = EventType.CYCLES
_EV_IMISS = EventType.IMISS
_EV_DMISS = EventType.DMISS
_EV_BRANCHMP = EventType.BRANCHMP
_EV_DTBMISS = EventType.DTBMISS
_EV_ITBMISS = EventType.ITBMISS

_DEP_REASON = ("ra_dep", "rb_dep", "rc_dep", "rc_dep")


class Core:
    """One simulated CPU: private caches, TLBs, predictor, counters."""

    def __init__(self, cpu_id, config, machine):
        self.cpu_id = cpu_id
        self.config = config
        self.machine = machine
        self.l2 = Cache(config.l2)
        self.board = Cache(config.board)
        self.ihier = Hierarchy(Cache(config.l1i), self.l2, self.board,
                               config.memory_latency)
        self.dhier = Hierarchy(Cache(config.l1d), self.l2, self.board,
                               config.memory_latency)
        self.itb = TLB(config.itb_entries, config.tlb_miss_penalty)
        self.dtb = TLB(config.dtb_entries, config.tlb_miss_penalty)
        self.wb = WriteBuffer(config.write_buffer_entries,
                              config.write_buffer_drain)
        self.bp = BranchPredictor(config.branch_table_size)
        self.counters = CounterUnit()
        #: callable(cpu_id, pid, pc, event, time) -> handler cost cycles,
        #: or None when profiling is off.
        self.sample_sink = None
        #: callable(cpu_id, pid, from_pc, to_pc, time) for the paper's
        #: section 7 edge-sample prototypes.  None disables edge
        #: sampling.
        self.edge_sink = None
        #: False -> "double sampling" (a second interrupt captures the
        #: next executed PC; costs an extra interrupt).  True ->
        #: "instruction interpretation" (the handler decodes a sampled
        #: control transfer and evaluates its direction; edge samples
        #: only arrive when the sample lands on a control instruction,
        #: but no second interrupt is needed).
        self.edge_interpret = False
        self._edge_from = None
        self.time = 0
        self.instructions_retired = 0
        self._pending = []  # (deliver_time, event) interrupt deliveries
        self._last_fetch_line = -1
        self._last_code_page = -1
        self._last_code_ppage = 0
        # Sequential-prefetch stream buffer (physical line numbers).
        self._istream = []

    # ------------------------------------------------------------------

    def run(self, proc, cycle_limit=None, inst_limit=None):
        """Run *proc* on this core until it exits or a budget expires.

        Returns one of EXITED / QUANTUM / BUDGET.  All process state
        (registers, PC, scoreboard) lives on *proc*, so runs interleave
        across context switches.
        """
        config = self.config
        machine = self.machine
        code_map = machine.code_map
        gt_count = machine.gt_count
        gt_head = machine.gt_head
        gt_stall = machine.gt_stall
        gt_events = machine.gt_events
        gt_edges = machine.gt_edges
        counters = self.counters
        pending = self._pending
        sink = self.sample_sink
        edge_sink = self.edge_sink
        # A pending double-sample does not survive a context switch (the
        # second PC would belong to a different process).
        edge_from = None
        skew = config.interrupt_skew
        page_bits = config.page_bits
        page_mask = (1 << page_bits) - 1
        line_shift = self.ihier.l1._line_shift
        mispredict_penalty = config.mispredict_penalty
        classes = ISSUE_CLASSES

        iregs = proc.iregs
        fregs = proc.fregs
        mem = proc.memory
        reg_ready = proc.reg_ready
        reg_ready_static = proc.reg_ready_static
        reg_dyn_reason = proc.reg_dyn_reason
        pc = proc.pc
        exit_addr = proc.exit_addr

        prev_issue = max(self.time, proc.resume_time)
        # pair_open: the previous instruction issued alone in its cycle
        # and a compatible follower could still join it.
        pair_open = False
        prev_cls = None
        leader_pc = proc.last_pc
        front_extra = 0  # mispredict + handler cycles delaying the front end
        front_reason = None
        imul_free = proc.imul_free
        fdiv_free = proc.fdiv_free

        deadline = None
        if cycle_limit is not None:
            deadline = prev_issue + cycle_limit
        insts_left = inst_limit if inst_limit is not None else -1
        status = BUDGET

        while True:
            if pc == exit_addr:
                status = EXITED
                break
            if insts_left == 0:
                status = BUDGET
                break
            if deadline is not None and prev_issue >= deadline:
                status = QUANTUM
                break
            insts_left -= 1

            inst = code_map.get(pc)
            if inst is None:
                raise RuntimeError(
                    "pid %d jumped to unmapped pc %#x" % (proc.pid, pc))
            if edge_from is not None:
                # Second half of a double sample: this is the next PC
                # executed after the first interrupt returned.
                edge_sink(self.cpu_id, proc.pid, edge_from, pc,
                          prev_issue)
                edge_from = None
            info = inst.info
            kind = info.kind
            icls = classes[info.cls]
            addr = pc

            events_now = None  # [(event, time)] for this instruction

            # ---- fetch --------------------------------------------------
            itb_fetch_pen = 0
            icache_pen = 0
            fline = pc >> line_shift
            if fline != self._last_fetch_line:
                self._last_fetch_line = fline
                vpage = pc >> page_bits
                if vpage != self._last_code_page:
                    ppage, itb_pen, itb_miss = self.itb.translate(
                        0, vpage, machine.translate_code)
                    self._last_code_page = vpage
                    self._last_code_ppage = ppage
                    if itb_miss:
                        itb_fetch_pen = itb_pen
                        events_now = [(_EV_ITBMISS, prev_issue + 1)]
                paddr = (self._last_code_ppage << page_bits) | (pc & page_mask)
                pline = paddr >> line_shift
                istream = self._istream
                if pline in istream:
                    # Stream-buffer hit: the line was prefetched.  The
                    # I-cache still missed (the event counts), but the
                    # fill is nearly free.
                    istream.remove(pline)
                    self.ihier.l1.lookup(paddr)  # install in L1
                    icache_pen = config.istream_hit_latency
                    imiss = True
                else:
                    ilat, imiss = self.ihier.access(paddr)
                    if imiss:
                        icache_pen = ilat
                if imiss:
                    ev = (_EV_IMISS, prev_issue + 1)
                    if events_now is None:
                        events_now = [ev]
                    else:
                        events_now.append(ev)
                    if config.istream_entries:
                        # Prefetch the next sequential line (within the
                        # same page -- the prefetcher has no translation
                        # of its own).
                        nline = pline + 1
                        lines_per_page = (1 << page_bits) >> line_shift
                        if (nline % lines_per_page != 0
                                and nline not in istream):
                            istream.append(nline)
                            if len(istream) > config.istream_entries:
                                istream.pop(0)
            fetch_pen = itb_fetch_pen + icache_pen

            # ---- operand readiness --------------------------------------
            srcs = inst.srcs
            rdy = 0
            rdy_static = 0
            dep_index = 0
            dyn_reg = -1
            for index, src in enumerate(srcs):
                r = reg_ready[src]
                if r > rdy:
                    rdy = r
                    dyn_reg = src
                rs = reg_ready_static[src]
                if rs > rdy_static:
                    rdy_static = rs
                    dep_index = index

            # ---- resources ----------------------------------------------
            res = 0
            res_reason = None
            cls_name = info.cls
            if cls_name == "IMUL":
                if imul_free > res:
                    res = imul_free
                    res_reason = "imul"
            elif cls_name == "FDIV":
                if fdiv_free > res:
                    res = fdiv_free
                    res_reason = "fdiv"

            vaddr = -1
            if kind == "store" or kind == "fstore":
                vaddr = (iregs[inst.rb] + inst.imm) & MASK64
                wb_ready = self.wb.earliest_issue(vaddr, prev_issue + 1)
                if wb_ready > res:
                    res = wb_ready
                    res_reason = "wb"
            elif kind == "load" or kind == "fload":
                vaddr = (iregs[inst.rb] + inst.imm) & MASK64

            # ---- issue / pairing ----------------------------------------
            total_front = fetch_pen + front_extra
            if (pair_open and total_front == 0 and rdy <= prev_issue
                    and res <= prev_issue and PAIR_OK[(prev_cls, cls_name)]):
                issue = prev_issue
                paired = True
                cycles_head = 0
                pair_open = False
            else:
                arrival = prev_issue + 1 + total_front
                issue = arrival
                if rdy > issue:
                    issue = rdy
                if res > issue:
                    issue = res
                paired = False
                cycles_head = issue - arrival + 1

                # ---- ground-truth stall decomposition -------------------
                if cycles_head > 1 or total_front or fetch_pen:
                    stall_row = gt_stall.get(addr)
                    if stall_row is None:
                        stall_row = {}
                        gt_stall[addr] = stall_row
                    if front_extra and front_reason:
                        stall_row[front_reason] = (
                            stall_row.get(front_reason, 0) + front_extra)
                    if itb_fetch_pen:
                        stall_row["itb"] = (
                            stall_row.get("itb", 0) + itb_fetch_pen)
                    if icache_pen:
                        stall_row["icache"] = (
                            stall_row.get("icache", 0) + icache_pen)
                    base = arrival
                    d_static = min(rdy_static, issue) - base
                    if d_static > 0:
                        reason = _DEP_REASON[dep_index]
                        stall_row[reason] = stall_row.get(reason, 0) + d_static
                        base += d_static
                    d_dyn = min(rdy, issue) - base
                    if d_dyn > 0:
                        reason = reg_dyn_reason.get(dyn_reg) or "dcache"
                        stall_row[reason] = stall_row.get(reason, 0) + d_dyn
                        base = min(rdy, issue)
                    if res > base and res_reason:
                        stall_row[res_reason] = (
                            stall_row.get(res_reason, 0) + (res - base))
                elif (pair_open and prev_cls is not None
                      and not PAIR_OK[(prev_cls, cls_name)]):
                    # Pairing failed purely on pipe assignment: slotting.
                    stall_row = gt_stall.get(addr)
                    if stall_row is None:
                        stall_row = {}
                        gt_stall[addr] = stall_row
                    stall_row["slotting"] = stall_row.get("slotting", 0) + 1
                pair_open = True
            front_extra = 0
            front_reason = None
            prev_cls = cls_name

            # ---- execute -------------------------------------------------
            next_pc = pc + 4
            latency = icls.latency
            if kind == "op":
                a = iregs[inst.ra]
                b = iregs[inst.rb] if inst.rb is not None else inst.imm
                if cls_name == "CMOV":
                    value = b if info.cond(a) else iregs[inst.rc]
                else:
                    value = info.sem(a, b)
                rc = inst.rc
                if rc != 31:
                    iregs[rc] = value
                    done = issue + latency
                    reg_ready[rc] = done
                    reg_ready_static[rc] = done
                    reg_dyn_reason[rc] = None
                if cls_name == "IMUL":
                    imul_free = issue + icls.busy
            elif kind == "fop":
                a = fregs[inst.ra - 32] if inst.ra is not None else 0.0
                b = fregs[inst.rb - 32]
                value = info.sem(a, b)
                rc = inst.rc
                if rc != 63:
                    fregs[rc - 32] = value
                    done = issue + latency
                    reg_ready[rc] = done
                    reg_ready_static[rc] = done
                    reg_dyn_reason[rc] = None
                if cls_name == "FDIV":
                    fdiv_free = issue + icls.busy
            elif kind == "lda":
                base_val = iregs[inst.rb] if inst.rb != 31 else 0
                imm = inst.imm
                if inst.op == "ldah":
                    imm <<= 16
                value = (base_val + imm) & MASK64
                ra = inst.ra
                if ra != 31:
                    iregs[ra] = value
                    done = issue + latency
                    reg_ready[ra] = done
                    reg_ready_static[ra] = done
                    reg_dyn_reason[ra] = None
            elif kind == "load" or kind == "fload":
                vpage = vaddr >> page_bits
                ppage, dtb_pen, dtb_miss = self.dtb.translate(
                    proc.asn, vpage, proc.translate_data)
                paddr = (ppage << page_bits) | (vaddr & page_mask)
                dlat, dmiss = self.dhier.access(paddr)
                total = dtb_pen + dlat
                ra = inst.ra
                if kind == "load":
                    value = mem.get(vaddr & ~7 if inst.op == "ldq"
                                    else vaddr & ~3, 0)
                    if inst.op == "ldl":
                        value &= 0xFFFFFFFF
                        if value >> 31:
                            value = (value | ~0xFFFFFFFF) & MASK64
                    if ra != 31:
                        iregs[ra] = value
                else:
                    value = mem.get(vaddr & ~7, 0)
                    if not isinstance(value, float):
                        value = float(value)
                    if ra != 63:
                        fregs[ra - 32] = value
                if ra != 31 and ra != 63:
                    reg_ready[ra] = issue + total
                    reg_ready_static[ra] = issue + self.dhier.l1.latency
                    if dmiss:
                        reg_dyn_reason[ra] = "dcache"
                    elif dtb_miss:
                        reg_dyn_reason[ra] = "dtb"
                    else:
                        reg_dyn_reason[ra] = None
                if dmiss or dtb_miss:
                    if events_now is None:
                        events_now = []
                    if dmiss:
                        events_now.append((_EV_DMISS, issue))
                    if dtb_miss:
                        events_now.append((_EV_DTBMISS, issue))
            elif kind == "store" or kind == "fstore":
                vpage = vaddr >> page_bits
                ppage, dtb_pen, dtb_miss = self.dtb.translate(
                    proc.asn, vpage, proc.translate_data)
                paddr = (ppage << page_bits) | (vaddr & page_mask)
                # Write-through, no-write-allocate: probe without filling.
                self.dhier.l1.lookup(paddr, allocate=False)
                self.wb.commit(vaddr, issue)
                if kind == "fstore":
                    mem[vaddr & ~7] = fregs[inst.ra - 32]
                elif inst.op == "stq":
                    mem[vaddr & ~7] = iregs[inst.ra]
                else:
                    mem[vaddr & ~3] = iregs[inst.ra] & 0xFFFFFFFF
                if dtb_miss:
                    if events_now is None:
                        events_now = []
                    events_now.append((_EV_DTBMISS, issue))
            elif kind == "cbranch" or kind == "fbranch":
                if kind == "cbranch":
                    taken = info.cond(iregs[inst.ra])
                else:
                    taken = info.cond(fregs[inst.ra - 32])
                if taken:
                    next_pc = inst.target
                    pair_open = False
                correct = self.bp.predict_conditional(pc, taken)
                if not correct:
                    front_extra = mispredict_penalty
                    front_reason = "branchmp"
                    if events_now is None:
                        events_now = []
                    events_now.append((_EV_BRANCHMP, issue))
                edge = (addr, next_pc)
                gt_edges[edge] = gt_edges.get(edge, 0) + 1
            elif kind == "br":
                ra = inst.ra
                if ra != 31:
                    iregs[ra] = pc + 4
                    reg_ready[ra] = issue + 1
                    reg_ready_static[ra] = issue + 1
                    reg_dyn_reason[ra] = None
                if inst.op == "bsr":
                    self.bp.push_call(pc + 4)
                next_pc = inst.target
                pair_open = False
                edge = (addr, next_pc)
                gt_edges[edge] = gt_edges.get(edge, 0) + 1
            elif kind == "jump":
                target = iregs[inst.rb] & ~3
                ra = inst.ra
                if ra != 31:
                    iregs[ra] = pc + 4
                    reg_ready[ra] = issue + 1
                    reg_ready_static[ra] = issue + 1
                    reg_dyn_reason[ra] = None
                if inst.op == "jsr":
                    self.bp.push_call(pc + 4)
                    correct = self.bp.predict_indirect(pc, target)
                elif inst.op == "ret":
                    correct = self.bp.predict_return(target)
                else:
                    correct = self.bp.predict_indirect(pc, target)
                if not correct:
                    front_extra = mispredict_penalty
                    front_reason = "branchmp"
                    if events_now is None:
                        events_now = []
                    events_now.append((_EV_BRANCHMP, issue))
                next_pc = target
                pair_open = False
                if target != exit_addr:
                    edge = (addr, target)
                    gt_edges[edge] = gt_edges.get(edge, 0) + 1

            # ---- ground truth --------------------------------------------
            gt_count[addr] = gt_count.get(addr, 0) + 1
            if cycles_head:
                gt_head[addr] = gt_head.get(addr, 0) + cycles_head

            # ---- performance counters ------------------------------------
            delta = issue - prev_issue
            if delta:
                for ev, otime in counters.add(_EV_CYCLES, delta, issue):
                    pending.append((otime + skew, ev))
            if events_now:
                for ev, etime in events_now:
                    row = gt_events.get(addr)
                    if row is None:
                        row = {}
                        gt_events[addr] = row
                    row[ev] = row.get(ev, 0) + 1
                    for oev, otime in counters.add(ev, 1, etime):
                        pending.append((otime + skew, oev))
            if pending:
                ready = [p for p in pending if p[0] <= issue]
                if ready:
                    pending[:] = [p for p in pending if p[0] > issue]
                    for dtime, ev in ready:
                        # Deliveries while the previous instruction still
                        # held the head belong to it; anything later --
                        # including the fetch-stall gap, when the issue
                        # queue is empty -- reports the PC of the next
                        # instruction to execute (paper section 4.1.2:
                        # this is what makes IMISS samples land on the
                        # missing instruction).
                        if paired or dtime <= prev_issue:
                            attr_pc = leader_pc
                        else:
                            attr_pc = pc
                        if sink is not None:
                            cost = sink(self.cpu_id, proc.pid, attr_pc,
                                        ev, dtime)
                            if cost:
                                front_extra += cost
                        if edge_sink is not None and ev is _EV_CYCLES:
                            if self.edge_interpret:
                                # Decode the sampled instruction; if it
                                # transfers control, its direction is
                                # computable from register state (we
                                # executed it already: next_pc).
                                if attr_pc == pc and inst.is_control:
                                    edge_sink(self.cpu_id, proc.pid,
                                              pc, next_pc, dtime)
                            else:
                                edge_from = attr_pc
            if not paired:
                leader_pc = pc

            # ---- advance ---------------------------------------------------
            self.instructions_retired += 1
            prev_issue = issue
            pc = next_pc

        # Save resumable state.
        proc.pc = pc
        proc.last_pc = leader_pc
        proc.resume_time = prev_issue + 1
        proc.imul_free = imul_free
        proc.fdiv_free = fdiv_free
        self.time = prev_issue + 1
        return status
