"""The in-order dual-issue pipeline core.

The model follows the paper's abstraction of the 21164: instructions
stall only at the head of the issue queue, an instruction's CYCLES sample
count is proportional to the time it spends there, and a dual-issued
younger instruction spends zero cycles at the head ("0 (dual issue)" in
the paper's Figure 2 listing).

Per dynamic instruction the core computes:

* ``arrival`` -- the first cycle the instruction can occupy the head
  (delayed by I-cache/ITB fetch misses, branch-mispredict bubbles, and
  the profiling interrupt handler's own cycles);
* ``issue``   -- when its operands are ready and a pipe plus any needed
  unit (IMUL, FDIV, a write-buffer slot) is available;
* ``issue - arrival + 1`` cycles at the head, decomposed into the exact
  stall reasons (the simulator's *ground truth*, which validates the
  analysis tools but is never shown to them).

Performance-counter overflows are delivered ``interrupt_skew`` cycles
late and attributed to whatever instruction holds the head at delivery
time, reproducing the paper's section 4.1.2 semantics (IMISS samples
land on the missing instruction; DMISS/BRANCHMP samples skew a few
instructions down the stream).

Two execution paths share this accounting:

* the **slow path** walks predecoded records
  (:mod:`repro.alpha.predecode`) one instruction at a time and handles
  every dynamic event;
* the **fast path** replays a cached per-block issue schedule
  (:mod:`repro.cpu.fastpath`) when the block's entry conditions match a
  prior visit, batching the block's CYCLES counter updates into one
  contiguous span.  It bails back to the slow path the moment a dynamic
  event (fetch miss, D-miss, write-buffer conflict, counter overflow,
  interrupt delivery) perturbs the cached schedule, so counters,
  samples and ground-truth attributions stay byte-identical.
"""

from repro.alpha.opcodes import MASK64
from repro.alpha.predecode import PAIR_OK_ID
from repro.cpu.branch import BranchPredictor
from repro.cpu.caches import Cache, Hierarchy
from repro.cpu.counters import CounterUnit
from repro.cpu.events import EventType
from repro.cpu.tlb import TLB
from repro.cpu.writebuffer import WriteBuffer

# Run-status results of Core.run().
EXITED = "exited"
QUANTUM = "quantum"
BUDGET = "budget"

_EV_CYCLES = EventType.CYCLES
_EV_IMISS = EventType.IMISS
_EV_DMISS = EventType.DMISS
_EV_BRANCHMP = EventType.BRANCHMP
_EV_DTBMISS = EventType.DTBMISS
_EV_ITBMISS = EventType.ITBMISS

_DEP_REASON = ("ra_dep", "rb_dep", "rc_dep", "rc_dep")


class Core:
    """One simulated CPU: private caches, TLBs, predictor, counters."""

    def __init__(self, cpu_id, config, machine):
        self.cpu_id = cpu_id
        self.config = config
        self.machine = machine
        self.l2 = Cache(config.l2)
        self.board = Cache(config.board)
        self.ihier = Hierarchy(Cache(config.l1i), self.l2, self.board,
                               config.memory_latency)
        self.dhier = Hierarchy(Cache(config.l1d), self.l2, self.board,
                               config.memory_latency)
        self.itb = TLB(config.itb_entries, config.tlb_miss_penalty)
        self.dtb = TLB(config.dtb_entries, config.tlb_miss_penalty)
        self.wb = WriteBuffer(config.write_buffer_entries,
                              config.write_buffer_drain)
        self.bp = BranchPredictor(config.branch_table_size)
        self.counters = CounterUnit()
        #: callable(cpu_id, pid, pc, event, time) -> handler cost cycles,
        #: or None when profiling is off.
        self.sample_sink = None
        #: callable(cpu_id, pid, from_pc, to_pc, time) for the paper's
        #: section 7 edge-sample prototypes.  None disables edge
        #: sampling.
        self.edge_sink = None
        #: False -> "double sampling" (a second interrupt captures the
        #: next executed PC; costs an extra interrupt).  True ->
        #: "instruction interpretation" (the handler decodes a sampled
        #: control transfer and evaluates its direction; edge samples
        #: only arrive when the sample lands on a control instruction,
        #: but no second interrupt is needed).
        self.edge_interpret = False
        self._edge_from = None
        self.time = 0
        self.instructions_retired = 0
        self._pending = []  # (deliver_time, event) interrupt deliveries
        self._last_fetch_line = -1
        self._last_code_page = -1
        self._last_code_ppage = 0
        # Sequential-prefetch stream buffer (physical line numbers).
        self._istream = []

    # ------------------------------------------------------------------

    def _fetch(self, pc, prev_issue):
        """Fetch the line holding *pc* (the caller saw a line cross).

        Shared by the fast and slow paths so both charge identical
        ITB/I-cache penalties and count identical events.  Returns
        ``(itb_penalty, icache_penalty, events_or_None)``; the caller
        has already updated ``_last_fetch_line``.
        """
        config = self.config
        page_bits = config.page_bits
        itb_fetch_pen = 0
        icache_pen = 0
        events_now = None
        vpage = pc >> page_bits
        if vpage != self._last_code_page:
            ppage, itb_pen, itb_miss = self.itb.translate(
                0, vpage, self.machine.translate_code)
            self._last_code_page = vpage
            self._last_code_ppage = ppage
            if itb_miss:
                itb_fetch_pen = itb_pen
                events_now = [(_EV_ITBMISS, prev_issue + 1)]
        line_shift = self.ihier.l1._line_shift
        paddr = ((self._last_code_ppage << page_bits)
                 | (pc & ((1 << page_bits) - 1)))
        pline = paddr >> line_shift
        istream = self._istream
        if pline in istream:
            # Stream-buffer hit: the line was prefetched.  The I-cache
            # still missed (the event counts), but the fill is nearly
            # free.
            istream.remove(pline)
            self.ihier.l1.lookup(paddr)  # install in L1
            icache_pen = config.istream_hit_latency
            imiss = True
        else:
            ilat, imiss = self.ihier.access(paddr)
            if imiss:
                icache_pen = ilat
        if imiss:
            ev = (_EV_IMISS, prev_issue + 1)
            if events_now is None:
                events_now = [ev]
            else:
                events_now.append(ev)
            if config.istream_entries:
                # Prefetch the next sequential line (within the same
                # page -- the prefetcher has no translation of its own).
                nline = pline + 1
                lines_per_page = (1 << page_bits) >> line_shift
                if (nline % lines_per_page != 0
                        and nline not in istream):
                    istream.append(nline)
                    if len(istream) > config.istream_entries:
                        istream.pop(0)
        return itb_fetch_pen, icache_pen, events_now

    # ------------------------------------------------------------------

    def run(self, proc, cycle_limit=None, inst_limit=None):
        """Run *proc* on this core until it exits or a budget expires.

        Returns one of EXITED / QUANTUM / BUDGET.  All process state
        (registers, PC, scoreboard) lives on *proc*, so runs interleave
        across context switches.
        """
        config = self.config
        machine = self.machine
        decode_map = machine.decode_map
        gt_count = machine.gt_count
        gt_head = machine.gt_head
        gt_stall = machine.gt_stall
        gt_events = machine.gt_events
        gt_edges = machine.gt_edges
        counters = self.counters
        cycles_slots = counters.live_slots(_EV_CYCLES)
        pending = self._pending
        sink = self.sample_sink
        edge_sink = self.edge_sink
        # A pending double-sample does not survive a context switch (the
        # second PC would belong to a different process).
        edge_from = None
        skew = config.interrupt_skew
        page_bits = config.page_bits
        page_mask = (1 << page_bits) - 1
        line_shift = self.ihier.l1._line_shift
        mispredict_penalty = config.mispredict_penalty
        pair_ok = PAIR_OK_ID
        dtb = self.dtb
        dhier = self.dhier
        wb = self.wb
        bp = self.bp
        l1d_latency = dhier.l1.latency
        dhier_l1 = dhier.l1

        iregs = proc.iregs
        fregs = proc.fregs
        mem = proc.memory
        reg_ready = proc.reg_ready
        reg_ready_static = proc.reg_ready_static
        reg_dyn_reason = proc.reg_dyn_reason
        asn = proc.asn
        translate_data = proc.translate_data
        pc = proc.pc
        exit_addr = proc.exit_addr

        prev_issue = max(self.time, proc.resume_time)
        # pair_open: the previous instruction issued alone in its cycle
        # and a compatible follower could still join it.
        pair_open = False
        prev_cls = -1
        leader_pc = proc.last_pc
        front_extra = 0  # mispredict + handler cycles delaying the front end
        front_reason = None
        imul_free = proc.imul_free
        fdiv_free = proc.fdiv_free
        retired = 0

        fp = machine.fastpath
        fp_on = fp is not None
        fp_blocks = fp.blocks if fp_on else None
        at_head = fp_on  # a run entry is always a block boundary
        carry_fetch = None  # fetch result a replay bail hands to the slow path
        replay_var = None  # schedule selected by the gate this iteration
        link_src = None  # variant whose clean exit the gate may link
        rec_list = None  # schedule being recorded for (rec_block, rec_key)
        rec_block = None
        rec_key = None
        rec_t0 = 0
        rec_term = -1

        deadline = None
        if cycle_limit is not None:
            deadline = prev_issue + cycle_limit
        insts_left = inst_limit if inst_limit is not None else -1
        status = BUDGET

        while True:
            if pc == exit_addr:
                status = EXITED
                break
            if insts_left == 0:
                status = BUDGET
                break
            if deadline is not None and prev_issue >= deadline:
                status = QUANTUM
                break

            # ---- fast path: replay a cached schedule, or record one ----
            if at_head:
                at_head = False
                # Replay may not interact with sampling machinery:
                # nothing pending, no front-end debt, no half-taken
                # double sample.
                if front_extra == 0 and not pending and edge_from is None:
                    block = fp_blocks.get(pc)
                    if block is None:
                        block = fp.discover(pc)
                    if block is not False:
                        t0 = prev_issue
                        live_parts = None
                        for reg in block.live_ins:
                            rel = reg_ready[reg] - t0
                            if rel > 0:
                                part = (reg, rel,
                                        max(reg_ready_static[reg] - t0, 0),
                                        reg_dyn_reason.get(reg))
                                if live_parts is None:
                                    live_parts = [part]
                                else:
                                    live_parts.append(part)
                        key = (
                            prev_cls if pair_open else -1,
                            tuple(live_parts) if live_parts else None,
                            (imul_free - t0
                             if block.has_imul and imul_free > t0 else 0),
                            (fdiv_free - t0
                             if block.has_fdiv and fdiv_free > t0 else 0))
                        var = block.variants.get(key)
                        if var is None:
                            link_src = None
                            fp.variant_misses += 1
                            if fp.variant_count < fp.MAX_VARIANTS:
                                rec_list = []
                                rec_block = block
                                rec_key = key
                                rec_t0 = t0
                                rec_term = block.term_addr
                        else:
                            if var.fn is None:
                                # Cold variant: the slow path keeps
                                # executing the block until it recurs
                                # enough to be worth a compile().
                                var.uses += 1
                                if var.uses >= fp.COMPILE_USES:
                                    fp.compile_variant(var)
                            if var.fn is None:
                                link_src = None
                            else:
                                if link_src is not None:
                                    # Cache this edge for chained
                                    # replay.  The source's entry key
                                    # and final scoreboard statically
                                    # determine every component of
                                    # *key* except registers neither
                                    # written nor key-pinned there (and
                                    # a unit backlog it left idle) --
                                    # record those as residual checks a
                                    # chained hop must revalidate.
                                    checks = []
                                    covered = link_src.wset
                                    pins = link_src.pin_regs
                                    for reg in block.live_ins:
                                        if reg in covered or reg in pins:
                                            continue
                                        rel = reg_ready[reg] - t0
                                        if rel > 0:
                                            checks.append(
                                                (reg, rel,
                                                 max(reg_ready_static[reg]
                                                     - t0, 0),
                                                 reg_dyn_reason.get(reg)))
                                        else:
                                            checks.append(
                                                (reg, 0, 0, None))
                                    link_src.links[pc] = (
                                        var, key[0], tuple(checks),
                                        key[2]
                                        if (block.has_imul
                                            and link_src.imul_rel == 0)
                                        else None,
                                        key[3]
                                        if (block.has_fdiv
                                            and link_src.fdiv_rel == 0)
                                        else None)
                                    link_src = None
                                total_rel = var.total_rel
                                if (0 <= insts_left < var.n
                                        or (deadline is not None
                                            and t0 + total_rel
                                            >= deadline)):
                                    # Too close to a budget edge to
                                    # commit to a whole block; the slow
                                    # path paces itself per
                                    # instruction.
                                    pass
                                else:
                                    replay_var = var
                                    for _slot in cycles_slots:
                                        if (total_rel >= _slot.period
                                                - _slot.count):
                                            # The block could overflow
                                            # a CYCLES counter
                                            # mid-replay; let the slow
                                            # path pace the delivery.
                                            fp.headroom_skips += 1
                                            replay_var = None
                                            break

            if replay_var is not None:
                # ---- replay ----------------------------------------
                # The compiled function executes the whole block's
                # semantics and model probes with schedule constants
                # and the final scoreboard inlined; everything else
                # (pairing state, deferred ground truth, the block's
                # contiguous CYCLES span) is applied in bulk from the
                # variant's precomputed structures.  Clean exits chase
                # cached successor links (chained replay): the exited
                # variant's entry key and scoreboard statically
                # determine the successor's entry key except for the
                # link's precomputed residual checks, so validated hops
                # skip the gate's key build entirely.
                v = replay_var
                replay_var = None
                bailed = False
                while True:
                    res = v.fn(self, bp, dtb, dhier, dhier_l1, wb, mem,
                               iregs, fregs, reg_ready,
                               reg_ready_static, reg_dyn_reason,
                               asn, translate_data, t0)
                    fp.replays += 1
                    if res is not None and res[0] != 4:
                        bailed = True
                        break
                    # Clean replay (res carries the terminator's
                    # dynamic direction for non-virtual blocks).
                    n = v.n
                    fp.replayed_instructions += n
                    insts_left -= n
                    retired += n
                    if v.hits == 0:
                        fp.deferred.append(v)
                    v.hits += 1
                    if v.imul_rel:
                        imul_free = t0 + v.imul_rel
                    if v.fdiv_rel:
                        fdiv_free = t0 + v.fdiv_rel
                    prev_cls = v.prev_cls_end
                    if v.leader_addr is not None:
                        leader_pc = v.leader_addr
                    total_rel = v.total_rel
                    prev_issue = t0 + total_rel
                    if total_rel and cycles_slots:
                        # One contiguous CYCLES span; the headroom gate
                        # guarantees no overflow.
                        for ev, otime in counters.add(
                                _EV_CYCLES, total_rel, prev_issue):
                            pending.append((otime + skew, ev))
                    if res is None:
                        pair_open = v.term_open
                        pc = v.term_next
                    else:
                        pc = res[1]
                        pair_open = v.term_open and not res[2]
                        if v.term_edge_always or pc != exit_addr:
                            edge = (v.term_addr, pc)
                            gt_edges[edge] = gt_edges.get(edge, 0) + 1
                        if res[3]:
                            front_extra = mispredict_penalty
                            front_reason = "branchmp"
                            row = gt_events.get(v.term_addr)
                            if row is None:
                                row = {}
                                gt_events[v.term_addr] = row
                            row[_EV_BRANCHMP] = row.get(
                                _EV_BRANCHMP, 0) + 1
                            for oev, otime in counters.add(
                                    _EV_BRANCHMP, 1, prev_issue):
                                pending.append((otime + skew, oev))
                            # Front-end debt: no chaining.
                            at_head = True
                            break
                    link = v.links.get(pc)
                    if link is None or pending:
                        at_head = True
                        link_src = v  # let the gate cache this edge
                        break
                    nv = link[0]
                    if ((prev_cls if pair_open else -1) != link[1]
                            or 0 <= insts_left < nv.n
                            or (deadline is not None
                                and prev_issue + nv.total_rel
                                >= deadline)):
                        at_head = True
                        link_src = v
                        break
                    t0 = prev_issue
                    ok = True
                    for lreg, lrel, lsrel, lreason in link[2]:
                        if lrel == 0:
                            if reg_ready[lreg] > t0:
                                ok = False
                                break
                        elif (reg_ready[lreg] - t0 != lrel
                              or max(reg_ready_static[lreg] - t0, 0)
                              != lsrel
                              or reg_dyn_reason.get(lreg) != lreason):
                            ok = False
                            break
                    if ok:
                        er = link[3]
                        if er is not None and er != (
                                imul_free - t0 if imul_free > t0
                                else 0):
                            ok = False
                        er = link[4]
                        if er is not None and er != (
                                fdiv_free - t0 if fdiv_free > t0
                                else 0):
                            ok = False
                    if ok:
                        tr = nv.total_rel
                        for _slot in cycles_slots:
                            if tr >= _slot.period - _slot.count:
                                fp.headroom_skips += 1
                                ok = False
                                break
                    if not ok:
                        fp.link_mismatches += 1
                        at_head = True
                        break
                    fp.links_followed += 1
                    v = nv
                if not bailed:
                    continue

                # ---- bail: a dynamic event cut the replay short ----
                tag = res[0]
                i = res[1]
                steps = v.steps
                # A dirty load/store (tags 2/3) completed before
                # bailing; fetch and write-buffer bails (tags 0/1)
                # stop *before* instruction i.
                count = i + 1 if tag >= 2 else i
                for j in range(count):
                    step = steps[j]
                    srec_j = step[0]
                    addr_j = srec_j[14]
                    gt_count[addr_j] = gt_count.get(addr_j, 0) + 1
                    ch = step[2]
                    if ch:
                        gt_head[addr_j] = gt_head.get(addr_j, 0) + ch
                    sitems = step[4]
                    if sitems is not None:
                        srow = gt_stall.get(addr_j)
                        if srow is None:
                            srow = {}
                            gt_stall[addr_j] = srow
                        for reason, amount in sitems:
                            srow[reason] = srow.get(reason, 0) + amount
                    dst_j = srec_j[7]
                    if dst_j is not None:
                        # Clean completion times (the dirty bailing
                        # instruction is overridden below).
                        done = t0 + step[1] + (srec_j[2]
                                               if srec_j[0] <= 3
                                               else l1d_latency)
                        reg_ready[dst_j] = done
                        reg_ready_static[dst_j] = done
                        reg_dyn_reason[dst_j] = None
                    unit_j = srec_j[11]
                    if unit_j == 1:
                        imul_free = t0 + step[1] + srec_j[12]
                    elif unit_j == 2:
                        fdiv_free = t0 + step[1] + srec_j[12]
                if count:
                    last_step = steps[count - 1]
                    pair_open = not last_step[3]
                    prev_cls = last_step[0][1]
                    for j in range(count - 1, -1, -1):
                        if not steps[j][3]:
                            leader_pc = steps[j][0][14]
                            break
                    prev_issue = t0 + last_step[1]
                flushed = False
                if tag == 0:
                    # Dirty fetch: the slow path takes over this
                    # instruction with the fetch result carried over.
                    carry_fetch = res[2]
                    bail_pc = steps[i][0][14]
                elif tag == 1:
                    # Write buffer busy: nothing was mutated for the
                    # store (earliest_issue is idempotent at a fixed
                    # time), so the slow path redoes it exactly.
                    bail_pc = steps[i][0][14]
                else:
                    # A load/store finished with a D-cache/D-TLB miss:
                    # its own issue time is miss-independent (the
                    # latency lands on the consumer), so the cached
                    # entry is exact.  Flush the CYCLES span, count
                    # the events, then hand the perturbed scoreboard
                    # to the slow path.
                    step = steps[i]
                    srec_i = step[0]
                    issue = t0 + step[1]
                    delta = issue - t0
                    if delta and cycles_slots:
                        for ev, otime in counters.add(
                                _EV_CYCLES, delta, issue):
                            pending.append((otime + skew, ev))
                    row = gt_events.get(srec_i[14])
                    if row is None:
                        row = {}
                        gt_events[srec_i[14]] = row
                    if tag == 2:
                        dst_i = srec_i[7]
                        if dst_i is not None:
                            reg_ready[dst_i] = issue + res[2] + res[3]
                            reg_ready_static[dst_i] = issue + l1d_latency
                            reg_dyn_reason[dst_i] = ("dcache" if res[4]
                                                     else "dtb")
                        if res[4]:
                            row[_EV_DMISS] = row.get(_EV_DMISS, 0) + 1
                            for oev, otime in counters.add(
                                    _EV_DMISS, 1, issue):
                                pending.append((otime + skew, oev))
                        if res[5]:
                            row[_EV_DTBMISS] = row.get(
                                _EV_DTBMISS, 0) + 1
                            for oev, otime in counters.add(
                                    _EV_DTBMISS, 1, issue):
                                pending.append((otime + skew, oev))
                    else:
                        row[_EV_DTBMISS] = row.get(_EV_DTBMISS, 0) + 1
                        for oev, otime in counters.add(
                                _EV_DTBMISS, 1, issue):
                            pending.append((otime + skew, oev))
                    flushed = True
                    bail_pc = srec_i[14] + 4
                if not flushed:
                    delta = prev_issue - t0
                    if delta and cycles_slots:
                        for ev, otime in counters.add(
                                _EV_CYCLES, delta, prev_issue):
                            pending.append((otime + skew, ev))
                fp.replayed_instructions += count
                fp.bails += 1
                insts_left -= count
                retired += count
                pc = bail_pc
                continue

            # ---- slow path -------------------------------------------
            link_src = None  # a slow instruction breaks the chain
            if rec_list is not None and pc == rec_term:
                if len(rec_list) != len(rec_block.body):
                    rec_list = None  # did not walk the block linearly
                elif rec_block.virtual:
                    fp.store(rec_block, rec_key, tuple(rec_list))
                    rec_list = None
                # Otherwise keep recording through the terminator: its
                # issue slot and pairing are entry-invariant even
                # though its direction is dynamic.

            insts_left -= 1
            srec = decode_map.get(pc)
            if srec is None:
                raise RuntimeError(
                    "pid %d jumped to unmapped pc %#x" % (proc.pid, pc))
            if edge_from is not None:
                # Second half of a double sample: this is the next PC
                # executed after the first interrupt returned.
                edge_sink(self.cpu_id, proc.pid, edge_from, pc,
                          prev_issue)
                edge_from = None
            kind = srec[0]
            cls_id = srec[1]
            addr = pc
            rec_stalls = None
            delivered = False
            wb_clean = True

            # ---- fetch --------------------------------------------------
            if carry_fetch is not None:
                itb_fetch_pen, icache_pen, events_now = carry_fetch
                carry_fetch = None
            else:
                itb_fetch_pen = 0
                icache_pen = 0
                events_now = None  # [(event, time)] for this instruction
                fline = pc >> line_shift
                if fline != self._last_fetch_line:
                    self._last_fetch_line = fline
                    itb_fetch_pen, icache_pen, events_now = self._fetch(
                        pc, prev_issue)
            fetch_pen = itb_fetch_pen + icache_pen

            # ---- operand readiness --------------------------------------
            rdy = 0
            rdy_static = 0
            dep_index = 0
            dyn_reg = -1
            srcs = srec[3]
            if srcs:
                index = 0
                for src in srcs:
                    r = reg_ready[src]
                    if r > rdy:
                        rdy = r
                        dyn_reg = src
                    rs = reg_ready_static[src]
                    if rs > rdy_static:
                        rdy_static = rs
                        dep_index = index
                    index += 1

            # ---- resources ----------------------------------------------
            res = 0
            res_reason = None
            unit = srec[11]
            if unit == 1:
                if imul_free > res:
                    res = imul_free
                    res_reason = "imul"
            elif unit == 2:
                if fdiv_free > res:
                    res = fdiv_free
                    res_reason = "fdiv"

            vaddr = -1
            if 4 <= kind <= 9:
                vaddr = (iregs[srec[5]] + srec[8]) & MASK64
                if kind >= 7:
                    wb_ready = wb.earliest_issue(vaddr, prev_issue + 1)
                    if wb_ready != prev_issue + 1:
                        wb_clean = False
                    if wb_ready > res:
                        res = wb_ready
                        res_reason = "wb"

            # ---- issue / pairing ----------------------------------------
            total_front = fetch_pen + front_extra
            if (pair_open and total_front == 0 and rdy <= prev_issue
                    and res <= prev_issue and pair_ok[prev_cls][cls_id]):
                issue = prev_issue
                paired = True
                cycles_head = 0
                pair_open = False
            else:
                arrival = prev_issue + 1 + total_front
                issue = arrival
                if rdy > issue:
                    issue = rdy
                if res > issue:
                    issue = res
                paired = False
                cycles_head = issue - arrival + 1

                # ---- ground-truth stall decomposition -------------------
                if cycles_head > 1 or total_front or fetch_pen:
                    stall_row = gt_stall.get(addr)
                    if stall_row is None:
                        stall_row = {}
                        gt_stall[addr] = stall_row
                    if front_extra and front_reason:
                        stall_row[front_reason] = (
                            stall_row.get(front_reason, 0) + front_extra)
                    if itb_fetch_pen:
                        stall_row["itb"] = (
                            stall_row.get("itb", 0) + itb_fetch_pen)
                    if icache_pen:
                        stall_row["icache"] = (
                            stall_row.get("icache", 0) + icache_pen)
                    base = arrival
                    d_static = min(rdy_static, issue) - base
                    if d_static > 0:
                        reason = _DEP_REASON[dep_index]
                        stall_row[reason] = stall_row.get(reason, 0) + d_static
                        if rec_list is not None:
                            if rec_stalls is None:
                                rec_stalls = []
                            rec_stalls.append((reason, d_static))
                        base += d_static
                    d_dyn = min(rdy, issue) - base
                    if d_dyn > 0:
                        reason = reg_dyn_reason.get(dyn_reg) or "dcache"
                        stall_row[reason] = stall_row.get(reason, 0) + d_dyn
                        if rec_list is not None:
                            if rec_stalls is None:
                                rec_stalls = []
                            rec_stalls.append((reason, d_dyn))
                        base = min(rdy, issue)
                    if res > base and res_reason:
                        stall_row[res_reason] = (
                            stall_row.get(res_reason, 0) + (res - base))
                        if rec_list is not None:
                            if rec_stalls is None:
                                rec_stalls = []
                            rec_stalls.append((res_reason, res - base))
                elif (pair_open and prev_cls >= 0
                      and not pair_ok[prev_cls][cls_id]):
                    # Pairing failed purely on pipe assignment: slotting.
                    stall_row = gt_stall.get(addr)
                    if stall_row is None:
                        stall_row = {}
                        gt_stall[addr] = stall_row
                    stall_row["slotting"] = stall_row.get("slotting", 0) + 1
                    if rec_list is not None:
                        rec_stalls = [("slotting", 1)]
                pair_open = True
            front_extra = 0
            front_reason = None
            prev_cls = cls_id

            # ---- execute -------------------------------------------------
            next_pc = pc + 4
            if kind == 0:  # op
                f2 = srec[5]
                value = srec[10](iregs[srec[4]],
                                 iregs[f2] if f2 is not None else srec[8])
                dst = srec[7]
                if dst is not None:
                    iregs[dst] = value
                    done = issue + srec[2]
                    reg_ready[dst] = done
                    reg_ready_static[dst] = done
                    reg_dyn_reason[dst] = None
                if unit == 1:
                    imul_free = issue + srec[12]
            elif kind == 3:  # lda
                f2 = srec[5]
                value = ((iregs[f2] if f2 is not None else 0)
                         + srec[8]) & MASK64
                dst = srec[7]
                if dst is not None:
                    iregs[dst] = value
                    done = issue + srec[2]
                    reg_ready[dst] = done
                    reg_ready_static[dst] = done
                    reg_dyn_reason[dst] = None
            elif kind == 1:  # cmov
                f2 = srec[5]
                b = iregs[f2] if f2 is not None else srec[8]
                value = b if srec[10](iregs[srec[4]]) else iregs[srec[6]]
                dst = srec[7]
                if dst is not None:
                    iregs[dst] = value
                    done = issue + srec[2]
                    reg_ready[dst] = done
                    reg_ready_static[dst] = done
                    reg_dyn_reason[dst] = None
            elif kind == 2:  # fop
                f1 = srec[4]
                a = fregs[f1] if f1 is not None else 0.0
                value = srec[10](a, fregs[srec[5]])
                dst = srec[7]
                if dst is not None:
                    fregs[dst - 32] = value
                    done = issue + srec[2]
                    reg_ready[dst] = done
                    reg_ready_static[dst] = done
                    reg_dyn_reason[dst] = None
                if unit == 2:
                    fdiv_free = issue + srec[12]
            elif kind <= 6:  # loads
                ppage, dtb_pen, dtb_miss = dtb.translate(
                    asn, vaddr >> page_bits, translate_data)
                paddr = (ppage << page_bits) | (vaddr & page_mask)
                dlat, dmiss = dhier.access(paddr)
                dst = srec[7]
                if kind == 4:  # ldq
                    value = mem.get(vaddr & ~7, 0)
                    if dst is not None:
                        iregs[dst] = value
                elif kind == 5:  # ldl
                    value = mem.get(vaddr & ~3, 0) & 0xFFFFFFFF
                    if value >> 31:
                        value = (value | ~0xFFFFFFFF) & MASK64
                    if dst is not None:
                        iregs[dst] = value
                else:  # ldt
                    value = mem.get(vaddr & ~7, 0)
                    if not isinstance(value, float):
                        value = float(value)
                    if dst is not None:
                        fregs[dst - 32] = value
                if dst is not None:
                    reg_ready[dst] = issue + dtb_pen + dlat
                    reg_ready_static[dst] = issue + l1d_latency
                    if dmiss:
                        reg_dyn_reason[dst] = "dcache"
                    elif dtb_miss:
                        reg_dyn_reason[dst] = "dtb"
                    else:
                        reg_dyn_reason[dst] = None
                if dmiss or dtb_miss:
                    if events_now is None:
                        events_now = []
                    if dmiss:
                        events_now.append((_EV_DMISS, issue))
                    if dtb_miss:
                        events_now.append((_EV_DTBMISS, issue))
            elif kind <= 9:  # stores
                ppage, dtb_pen, dtb_miss = dtb.translate(
                    asn, vaddr >> page_bits, translate_data)
                paddr = (ppage << page_bits) | (vaddr & page_mask)
                # Write-through, no-write-allocate: probe without filling.
                dhier.l1.lookup(paddr, allocate=False)
                wb.commit(vaddr, issue)
                if kind == 7:  # stq
                    mem[vaddr & ~7] = iregs[srec[4]]
                elif kind == 8:  # stl
                    mem[vaddr & ~3] = iregs[srec[4]] & 0xFFFFFFFF
                else:  # stt
                    mem[vaddr & ~7] = fregs[srec[4]]
                if dtb_miss:
                    if events_now is None:
                        events_now = []
                    events_now.append((_EV_DTBMISS, issue))
            elif kind == 11 or kind == 12:  # cbranch / fbranch
                if kind == 11:
                    taken = srec[10](iregs[srec[4]])
                else:
                    taken = srec[10](fregs[srec[4]])
                if taken:
                    next_pc = srec[9]
                    pair_open = False
                correct = bp.predict_conditional(pc, taken)
                if not correct:
                    front_extra = mispredict_penalty
                    front_reason = "branchmp"
                    if events_now is None:
                        events_now = []
                    events_now.append((_EV_BRANCHMP, issue))
                edge = (addr, next_pc)
                gt_edges[edge] = gt_edges.get(edge, 0) + 1
            elif kind == 13 or kind == 14:  # br / bsr
                dst = srec[7]
                if dst is not None:
                    iregs[dst] = pc + 4
                    reg_ready[dst] = issue + 1
                    reg_ready_static[dst] = issue + 1
                    reg_dyn_reason[dst] = None
                if kind == 14:
                    bp.push_call(pc + 4)
                next_pc = srec[9]
                pair_open = False
                edge = (addr, next_pc)
                gt_edges[edge] = gt_edges.get(edge, 0) + 1
            elif kind >= 15:  # jmp / jsr / ret
                target = iregs[srec[5]] & ~3
                dst = srec[7]
                if dst is not None:
                    iregs[dst] = pc + 4
                    reg_ready[dst] = issue + 1
                    reg_ready_static[dst] = issue + 1
                    reg_dyn_reason[dst] = None
                if kind == 16:
                    bp.push_call(pc + 4)
                    correct = bp.predict_indirect(pc, target)
                elif kind == 17:
                    correct = bp.predict_return(target)
                else:
                    correct = bp.predict_indirect(pc, target)
                if not correct:
                    front_extra = mispredict_penalty
                    front_reason = "branchmp"
                    if events_now is None:
                        events_now = []
                    events_now.append((_EV_BRANCHMP, issue))
                next_pc = target
                pair_open = False
                if target != exit_addr:
                    edge = (addr, target)
                    gt_edges[edge] = gt_edges.get(edge, 0) + 1
            # kind == 10 (nop / call_pal): timing only.

            # ---- ground truth --------------------------------------------
            gt_count[addr] = gt_count.get(addr, 0) + 1
            if cycles_head:
                gt_head[addr] = gt_head.get(addr, 0) + cycles_head

            # ---- performance counters ------------------------------------
            delta = issue - prev_issue
            if delta and cycles_slots:
                for ev, otime in counters.add(_EV_CYCLES, delta, issue):
                    pending.append((otime + skew, ev))
            if events_now:
                for ev, etime in events_now:
                    row = gt_events.get(addr)
                    if row is None:
                        row = {}
                        gt_events[addr] = row
                    row[ev] = row.get(ev, 0) + 1
                    for oev, otime in counters.add(ev, 1, etime):
                        pending.append((otime + skew, oev))
            if pending:
                ready = [p for p in pending if p[0] <= issue]
                if ready:
                    delivered = True
                    pending[:] = [p for p in pending if p[0] > issue]
                    for dtime, ev in ready:
                        # Deliveries while the previous instruction still
                        # held the head belong to it; anything later --
                        # including the fetch-stall gap, when the issue
                        # queue is empty -- reports the PC of the next
                        # instruction to execute (paper section 4.1.2:
                        # this is what makes IMISS samples land on the
                        # missing instruction).
                        if paired or dtime <= prev_issue:
                            attr_pc = leader_pc
                        else:
                            attr_pc = pc
                        if sink is not None:
                            cost = sink(self.cpu_id, proc.pid, attr_pc,
                                        ev, dtime)
                            if cost:
                                front_extra += cost
                        if edge_sink is not None and ev is _EV_CYCLES:
                            if self.edge_interpret:
                                # Decode the sampled instruction; if it
                                # transfers control, its direction is
                                # computable from register state (we
                                # executed it already: next_pc).
                                if attr_pc == pc and srec[13]:
                                    edge_sink(self.cpu_id, proc.pid,
                                              pc, next_pc, dtime)
                            else:
                                edge_from = attr_pc
            if not paired:
                leader_pc = pc

            # ---- recording -----------------------------------------------
            if rec_list is not None:
                if fetch_pen or events_now or delivered or not wb_clean:
                    # A dynamic event landed inside the block: this
                    # visit's schedule is not the stall-free one.
                    rec_list = None
                    fp.abort_recording(rec_block)
                else:
                    rec_list.append(
                        (issue - rec_t0, cycles_head, paired,
                         tuple(rec_stalls) if rec_stalls else None))
                    if srec[13]:
                        # The terminator completes the recording (only
                        # reachable for non-virtual blocks, whose
                        # body-length check passed at rec_term).
                        fp.store(rec_block, rec_key, tuple(rec_list))
                        rec_list = None

            # ---- advance -------------------------------------------------
            retired += 1
            prev_issue = issue
            pc = next_pc
            if srec[13]:
                at_head = fp_on

        # Fold deferred fast-path ground truth in before anything can
        # read the maps (pure addition, so totals match the slow path).
        if fp_on:
            fp.flush_deferred(gt_count, gt_head, gt_stall)

        # Save resumable state.
        proc.pc = pc
        proc.last_pc = leader_pc
        proc.resume_time = prev_issue + 1
        proc.imul_free = imul_free
        proc.fdiv_free = fdiv_free
        self.time = prev_issue + 1
        self.instructions_retired += retired
        return status
