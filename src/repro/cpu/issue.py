"""Dual-issue slotting rules shared by the pipeline simulator and the
analysis tools' static scheduler.

Two adjacent instructions may issue in the same cycle only if they can be
slotted onto two distinct pipes.  Because the same table answers both the
simulator's "did this pair dual-issue?" and the static scheduler's
"could this pair dual-issue with no dynamic stalls?", the analysis has no
model skew relative to the simulated hardware.
"""

from repro.alpha.opcodes import ISSUE_CLASSES


def _compatible(cls_a, cls_b):
    pipes_a = ISSUE_CLASSES[cls_a].pipes
    pipes_b = ISSUE_CLASSES[cls_b].pipes
    for pa in pipes_a:
        for pb in pipes_b:
            if pa != pb:
                return True
    return False


#: (leader class, follower class) -> True if the pair may dual-issue.
PAIR_OK = {
    (a, b): _compatible(a, b)
    for a in ISSUE_CLASSES
    for b in ISSUE_CLASSES
}


def can_pair(cls_a, cls_b):
    """Return True if issue classes *cls_a* and *cls_b* can dual-issue."""
    return PAIR_OK[(cls_a, cls_b)]


def result_latency(opname):
    """Cycles before *opname*'s result is usable by a dependent.

    This is the same ``ISSUE_CLASSES`` latency the pipeline simulator
    charges, exposed so profile-guided schedulers (:mod:`repro.opt`)
    build their dependence DAGs against the machine's real rules
    instead of a private copy.
    """
    from repro.alpha.opcodes import issue_class

    return issue_class(opname).latency


def issue_pipes(opname):
    """The function-unit pipes *opname* may issue on (slotting rule)."""
    from repro.alpha.opcodes import issue_class

    return issue_class(opname).pipes
