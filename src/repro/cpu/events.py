"""Hardware event types countable by the performance counters.

These mirror the Alpha events the paper samples: processor cycles
(CYCLES), instruction-cache misses (IMISS), data-cache misses (DMISS),
branch mispredictions (BRANCHMP), plus the TLB-miss events the analysis
uses to sharpen culprit identification (DTBMISS, ITBMISS).
"""

import enum


class EventType(str, enum.Enum):
    """An event a performance counter can be configured to count."""

    CYCLES = "cycles"
    IMISS = "imiss"
    DMISS = "dmiss"
    BRANCHMP = "branchmp"
    DTBMISS = "dtbmiss"
    ITBMISS = "itbmiss"

    def __str__(self):
        return self.value


#: Stall reasons tracked by the simulator's ground-truth accounting and
#: named by the analysis tools.  Dynamic reasons first, static last.
DYNAMIC_REASONS = (
    "icache", "itb", "dcache", "dtb", "branchmp", "wb", "imul", "fdiv",
)
STATIC_REASONS = ("slotting", "ra_dep", "rb_dep", "rc_dep", "fu_dep")
ALL_REASONS = DYNAMIC_REASONS + STATIC_REASONS
