"""Machine configuration: cache geometry, latencies, issue rules.

The defaults describe a 21164-flavoured AlphaStation: 8 KB direct-mapped
L1 caches, a 96 KB 3-way unified L2, a 2 MB direct-mapped board cache,
~90-cycle loads from memory, a 6-entry write buffer, and dual issue.
Everything is a plain attribute so experiments can sweep any knob.
"""

import os
from dataclasses import dataclass, field


@dataclass
class CacheConfig:
    """Geometry and latency of one cache level."""

    size: int
    line_size: int
    assoc: int
    latency: int  # additional cycles contributed by a hit at this level


@dataclass
class MachineConfig:
    """Full microarchitectural configuration of a simulated machine."""

    name: str = "simstation-500/333"
    num_cpus: int = 1
    clock_mhz: int = 333

    # Memory hierarchy.
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(8192, 32, 1, 0))
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(8192, 32, 1, 2))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(96 * 1024, 64, 3, 8))
    board: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * 1024 * 1024, 64, 1, 20))
    memory_latency: int = 60  # cycles beyond a board-cache hit

    # Instruction stream buffer (sequential prefetch).  0 disables it.
    # A fetch that misses the I-cache but hits the stream buffer still
    # counts an IMISS event (the hardware counter sees the cache miss)
    # yet pays only istream_hit_latency -- the effect behind the
    # paper's Figure 10 fpppp outlier, where long basic blocks made
    # "instruction prefetching especially effective".
    istream_entries: int = 0
    istream_hit_latency: int = 2

    # TLBs: 8 KB pages, flat miss penalty (PALcode refill).
    page_bits: int = 13
    itb_entries: int = 48
    dtb_entries: int = 64
    tlb_miss_penalty: int = 40

    # Write buffer: entries merge stores to the same 32-byte block and
    # drain to memory one entry per drain_cycles.
    write_buffer_entries: int = 6
    write_buffer_drain: int = 24

    # Branch handling.
    mispredict_penalty: int = 5
    branch_table_size: int = 2048

    # Issue model.
    issue_width: int = 2

    # Interrupt delivery skew (paper section 4.1.2).
    interrupt_skew: int = 6

    # Simulator fast path (predecode + block-level issue cache; see
    # repro.cpu.fastpath).  Produces byte-identical profiles, samples
    # and ground truth; the REPRO_SIM_FASTPATH env var ("0" disables)
    # sets the default so A/B identity runs can toggle it without code
    # changes.
    fastpath: bool = field(
        default_factory=lambda: os.environ.get(
            "REPRO_SIM_FASTPATH", "1") != "0")

    # Scheduler quantum for timeshared processes (cycles).
    quantum: int = 50_000

    @property
    def page_size(self):
        return 1 << self.page_bits
