"""The 21164-style six-entry merging write buffer.

Stores are write-through: each store deposits its data in a write-buffer
entry keyed by the 32-byte block address.  A store to a resident block
merges for free.  Otherwise it needs a free entry; when all entries are
busy the store stalls at the head of the issue queue until the oldest
entry finishes draining -- the "write buffer overflow" stall of the
paper's copy-loop example.
"""


class WriteBuffer:
    """Merging write buffer with sequential drain."""

    BLOCK_SHIFT = 5  # 32-byte blocks

    def __init__(self, entries=6, drain_cycles=24):
        self.capacity = entries
        self.drain_cycles = drain_cycles
        # block -> completion time of the drain of that entry.
        self._entries = {}
        # Time at which the memory port finishes the last scheduled drain.
        self._port_free = 0
        self.merges = 0
        self.allocations = 0
        self.overflow_stalls = 0

    def earliest_issue(self, block_addr, now):
        """Return the earliest cycle a store to *block_addr* can issue.

        Does not change state; the pipeline calls :meth:`commit` once the
        actual issue time is known.
        """
        block = block_addr >> self.BLOCK_SHIFT
        if block in self._entries:
            return now
        self._expire(now)
        if len(self._entries) < self.capacity:
            return now
        return min(self._entries.values())

    def commit(self, block_addr, issue_time):
        """Record a store issued at *issue_time*; return True if it merged."""
        block = block_addr >> self.BLOCK_SHIFT
        self._expire(issue_time)
        if block in self._entries:
            self.merges += 1
            return True
        self.allocations += 1
        start = max(issue_time, self._port_free)
        done = start + self.drain_cycles
        self._port_free = done
        self._entries[block] = done
        return False

    def _expire(self, now):
        """Retire entries whose drain completed before *now*."""
        if not self._entries:
            return
        done = [b for b, t in self._entries.items() if t <= now]
        for block in done:
            del self._entries[block]

    def occupancy(self, now):
        self._expire(now)
        return len(self._entries)
