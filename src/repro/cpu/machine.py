"""The simulated machine: cores, images, processes, ground truth.

A :class:`Machine` bundles the CPU cores with the loader, a global
instruction map (for fast fetch), per-run physical page assignment, and
the ground-truth accounting the validation experiments compare the
analysis tools against.
"""

import random

from repro.alpha.predecode import decode
from repro.cpu.fastpath import FastPath, cache_geometry
from repro.ctx.context import NULL_CTX
from repro.cpu.pipeline import Core
from repro.osim.loader import Loader
from repro.osim.process import Process
from repro.osim.sched import Scheduler


class Machine:
    """A multiprocessor with private per-core caches and shared images.

    Args:
        config: :class:`repro.cpu.config.MachineConfig`.
        seed: per-run seed controlling physical page assignment (the
            source of run-to-run cache-conflict variance) and any other
            machine-level randomness.
    """

    def __init__(self, config, seed=0):
        self.config = config
        self.seed = seed
        self.cores = [Core(i, config, self) for i in range(config.num_cpus)]
        self.loader = Loader()
        self.scheduler = Scheduler(self)
        self.code_map = {}
        #: addr -> flat predecode record (repro.alpha.predecode); the
        #: pipeline's hot loop reads only these, never Instruction.
        self.decode_map = {}
        #: Block-level issue cache (None when config.fastpath is off).
        self.fastpath = (
            FastPath(self.decode_map,
                     line_shift=config.l1i.line_size.bit_length() - 1,
                     page_bits=config.page_bits,
                     l1d_latency=config.l1d.latency,
                     l1d_geom=cache_geometry(config.l1d),
                     l1i_geom=cache_geometry(config.l1i))
            if getattr(config, "fastpath", True) else None)
        self._decoded_images = set()
        self.processes = []
        #: Optional callable(image) -> image applied to unlinked images
        #: at load time (binary instrumentation, e.g. the pixie baseline).
        self.image_transform = None
        #: callable(cpu, pid, ctx) the scheduler calls on dispatch when
        #: the profiling driver enables the context dimension
        #: (repro.ctx); None means zero-cost no publication.
        self.ctx_sink = None
        self._next_pid = 100
        self._rng = random.Random(seed)
        self._code_pages = {}
        # Ground truth (per absolute instruction address).
        self.gt_count = {}
        self.gt_head = {}
        self.gt_stall = {}
        self.gt_events = {}
        self.gt_edges = {}

    # -- images and processes ------------------------------------------

    def load_image(self, image):
        """Link *image* (if needed) and make its code fetchable."""
        if self.image_transform is not None and image.base is None:
            image = self.image_transform(image)
        self.loader.link(image)
        if id(image) not in self._decoded_images:
            self._decoded_images.add(id(image))
            code_map = self.code_map
            decode_map = self.decode_map
            for inst in image.instructions:
                code_map[inst.addr] = inst
                decode_map[inst.addr] = decode(inst)
            if self.fastpath is not None:
                # The static code map changed: conservatively drop every
                # cached block (they are cheap to rediscover).
                self.fastpath.invalidate()
        return image

    def spawn(self, images, entry=None, name=None, pid=None,
              ctx=NULL_CTX):
        """Create a process running *images*, starting at *entry*.

        *entry* may be an absolute address, a ``"image.name:proc"``
        string, or None (entry of the first image's first procedure).
        *ctx* labels the process's request class (repro.ctx); the
        default NULL_CTX means unattributed and costs nothing.
        """
        images = [images] if not isinstance(images, (list, tuple)) else images
        images = [self.load_image(image) for image in images]
        if entry is None:
            entry = images[0].entry()
        elif isinstance(entry, str):
            image_name, _, proc_name = entry.partition(":")
            for image in images:
                if image.name == image_name and proc_name in image.symbols:
                    entry = image.symbols.resolve(proc_name)
                    break
            else:
                raise ValueError("entry %r not found" % entry)
        if pid is None:
            pid = self._next_pid
            self._next_pid += 1
        page_rng = random.Random((self.seed << 20) ^ pid)
        proc = Process(pid, name or images[0].name, images, entry,
                       page_rng, self.config.page_bits, ctx=ctx)
        self.processes.append(proc)
        self.loader.notify_exec(pid, images)
        return proc

    def translate_code(self, vpage):
        """Map a shared-text virtual page to its per-run physical page."""
        ppage = self._code_pages.get(vpage)
        if ppage is None:
            ppage = self._rng.getrandbits(19)
            self._code_pages[vpage] = ppage
        return ppage

    # -- execution --------------------------------------------------------

    @property
    def instructions_retired(self):
        return sum(core.instructions_retired for core in self.cores)

    @property
    def time(self):
        """Max core-local time (the machine's wall clock)."""
        return max(core.time for core in self.cores)

    def run(self, max_instructions=None):
        """Run all spawned, unfinished processes via the scheduler."""
        for proc in self.processes:
            if not proc.exited and not getattr(proc, "_submitted", False):
                self.scheduler.submit(proc)
                proc._submitted = True
        return self.scheduler.run(max_instructions=max_instructions)

    def set_sample_sink(self, sink):
        """Install *sink* on every core (the profiling driver's hook)."""
        for core in self.cores:
            core.sample_sink = sink

    # -- ground-truth helpers ----------------------------------------------

    def true_counts_for(self, image):
        """Exact execution count per instruction address of *image*."""
        return {inst.addr: self.gt_count.get(inst.addr, 0)
                for inst in image.instructions}

    def true_head_cycles_for(self, image):
        """Exact head-of-queue cycles per instruction address of *image*."""
        return {inst.addr: self.gt_head.get(inst.addr, 0)
                for inst in image.instructions}
