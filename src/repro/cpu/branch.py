"""Branch prediction: a 2-bit counter table plus an indirect-target BTB
and a return-address stack.

The predictor only has to be *plausible*: what matters for the paper is
that mispredictions happen at realistic places (loop exits, data-
dependent branches, indirect jumps) so that BRANCHMP samples and the
culprit analysis have something real to explain.
"""


class BranchPredictor:
    """2-bit saturating-counter direction predictor with BTB and RAS."""

    TAKEN_INIT = 2  # weakly taken

    def __init__(self, table_size=2048, ras_depth=16):
        self._mask = table_size - 1
        if table_size & self._mask:
            raise ValueError("branch table size must be a power of two")
        self._table = [self.TAKEN_INIT] * table_size
        self._btb = {}
        self._ras = []
        self._ras_depth = ras_depth
        self.predictions = 0
        self.mispredictions = 0

    def predict_conditional(self, pc, taken):
        """Record the outcome of a conditional branch; return True if the
        prediction was correct."""
        index = (pc >> 2) & self._mask
        counter = self._table[index]
        predicted_taken = counter >= 2
        if taken and counter < 3:
            self._table[index] = counter + 1
        elif not taken and counter > 0:
            self._table[index] = counter - 1
        self.predictions += 1
        correct = predicted_taken == taken
        if not correct:
            self.mispredictions += 1
        return correct

    def predict_indirect(self, pc, target):
        """Record an indirect jump through *pc* to *target*."""
        self.predictions += 1
        correct = self._btb.get(pc) == target
        self._btb[pc] = target
        if not correct:
            self.mispredictions += 1
        return correct

    def push_call(self, return_pc):
        self._ras.append(return_pc)
        if len(self._ras) > self._ras_depth:
            self._ras.pop(0)

    def predict_return(self, target):
        """Record a return to *target*; return True if the RAS was right."""
        self.predictions += 1
        predicted = self._ras.pop() if self._ras else None
        correct = predicted == target
        if not correct:
            self.mispredictions += 1
        return correct
