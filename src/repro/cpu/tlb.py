"""Instruction and data translation buffers (ITB/DTB).

Entries map (ASN, virtual page) to a physical page.  Replacement is
FIFO, which is what the Alpha PALcode refill effectively produced and is
cheap to model.  A miss costs a flat PALcode-refill penalty.
"""


class TLB:
    """A fully-associative FIFO translation buffer."""

    def __init__(self, entries, miss_penalty):
        self.capacity = entries
        self.miss_penalty = miss_penalty
        self._entries = {}
        self.hits = 0
        self.misses = 0

    def translate(self, asn, vpage, page_map):
        """Translate (asn, vpage); return (ppage, penalty_cycles, missed)."""
        key = (asn, vpage)
        ppage = self._entries.get(key)
        if ppage is not None:
            self.hits += 1
            return ppage, 0, False
        self.misses += 1
        ppage = page_map(vpage)
        if len(self._entries) >= self.capacity:
            # FIFO eviction: dict preserves insertion order.
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = ppage
        return ppage, self.miss_penalty, True

    def flush(self):
        self._entries.clear()
