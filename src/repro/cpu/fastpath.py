"""Basic-block issue cache: memoized stall-free dual-issue schedules.

The pipeline's slow path recomputes pairing, head-of-queue stalls and
counter updates for every dynamic instruction.  But straight-line code
whose entry conditions repeat -- same open issue slot, same *relative*
operand-readiness of the live-in registers, same functional-unit
backlog -- schedules identically every time.  :class:`FastPath` caches
that schedule per (block, entry key) and lets ``Core.run()`` replay it,
falling back to the slow path the moment a dynamic event
(I-cache/ITB miss, D-cache/DTB miss, write-buffer conflict, counter
overflow, interrupt delivery, branch mispredict) perturbs the block.

Design notes (see README "Performance"):

* A block is a maximal run of straight-line predecode records starting
  at an entry PC the core actually reached at a block boundary.  It
  includes its terminating control transfer, whose *schedule* (issue
  slot, pairing) is entry-invariant even though its direction is
  dynamic; runs longer than ``MAX_BODY`` are split at a *virtual*
  boundary instead, and the continuation becomes its own block.
* Variant keys are *relative* to the entry cycle, so context switches
  need no invalidation: everything time-like in the key (operand
  readiness, IMUL/FDIV backlog) is an offset from the entry cycle, and
  all per-process scoreboard state lives on the Process.  Loading an
  image rebuilds the static code map, so it conservatively drops every
  cached block.
* Each cached variant is *compiled* to a specialized Python function
  (:func:`_compile_replay`): operand fields, issue offsets, fetch-line
  crossings and miss checks become straight-line code with inlined
  constants, so a replayed instruction costs one semantics call plus a
  register write instead of the slow path's full dispatch.
* Everything schedule-derived is precomputed at store time and applied
  in bulk after the compiled function returns: final scoreboard values
  (clean completion times are entry-relative constants), IMUL/FDIV
  backlog, pairing state, and the block's ground-truth counts / head
  cycles / stall decomposition.  Ground truth is further *deferred*: a
  clean replay only increments the variant's hit counter, and
  ``flush_deferred`` folds ``hits * per-block-deltas`` into the
  machine's ground-truth maps at the end of every ``Core.run`` (pure
  commutative addition, so the result is identical to per-instruction
  accounting).
* Replay is only entered when it provably cannot interact with the
  sampling machinery: no pending interrupt deliveries, no front-end
  debt, and enough headroom on every CYCLES counter that the whole
  block cannot overflow one (a block's cycles form one contiguous span,
  so batching them into a single counter update is exact).
"""

from repro.alpha import opcodes as _sem
from repro.alpha.opcodes import MASK64


def _cond_tables():
    """Expression templates for semantics functions the codegen can
    open-code (register values are canonical 64-bit unsigned, floats
    are Python floats).  Anything absent falls back to calling the
    record's semantics function."""
    ops = {}
    conds = {}
    for name, tmpl in (
            ("_addq", "({a} + {b}) & MASK64"),
            ("_subq", "({a} - {b}) & MASK64"),
            ("_s4addq", "(4 * {a} + {b}) & MASK64"),
            ("_s8addq", "(8 * {a} + {b}) & MASK64"),
            ("_and", "{a} & {b}"),
            ("_bis", "{a} | {b}"),
            ("_xor", "{a} ^ {b}"),
            ("_bic", "{a} & ~{b} & MASK64"),
            ("_sll", "({a} << ({b} & 63)) & MASK64"),
            ("_srl", "({a} & MASK64) >> ({b} & 63)"),
            ("_cmpeq", "1 if {a} == {b} else 0"),
            ("_cmpult", "1 if ({a} & MASK64) < ({b} & MASK64) else 0"),
            ("_cmpule", "1 if ({a} & MASK64) <= ({b} & MASK64) else 0"),
            ("_addt", "{a} + {b}"),
            ("_subt", "{a} - {b}"),
            ("_mult", "{a} * {b}"),
            ("_divt", "({a} / {b} if {b} != 0.0 else 0.0)"),
    ):
        fn = getattr(_sem, name, None)
        if fn is not None:
            ops[fn] = tmpl
    for name, tmpl in (
            ("_beq", "{a} == 0"),
            ("_bne", "{a} != 0"),
            ("_blt", "({a} >> 63) != 0"),
            ("_ble", "({a} >> 63) != 0 or {a} == 0"),
            ("_bgt", "({a} >> 63) == 0 and {a} != 0"),
            ("_bge", "({a} >> 63) == 0"),
            ("_blbc", "({a} & 1) == 0"),
            ("_blbs", "({a} & 1) == 1"),
            ("_fbeq", "{a} == 0.0"),
            ("_fbne", "{a} != 0.0"),
            ("_fblt", "{a} < 0.0"),
            ("_fble", "{a} <= 0.0"),
            ("_fbgt", "{a} > 0.0"),
            ("_fbge", "{a} >= 0.0"),
    ):
        fn = getattr(_sem, name, None)
        if fn is not None:
            conds[fn] = tmpl
    return ops, conds


_INLINE_OPS, _INLINE_CONDS = _cond_tables()


def cache_geometry(cache_config):
    """(line_shift, set_mask) when the codegen can inline the tag
    probe (direct-mapped, power-of-two sets), else None."""
    num_sets = cache_config.size // (cache_config.line_size
                                     * cache_config.assoc)
    if cache_config.assoc == 1 and num_sets & (num_sets - 1) == 0:
        return (cache_config.line_size.bit_length() - 1, num_sets - 1)
    return None


class Block:
    """One discovered straight-line block and its cached schedules."""

    __slots__ = ("head", "body", "term_addr", "term_rec", "live_ins",
                 "has_imul", "has_fdiv", "virtual", "variants", "failed")

    def __init__(self, head, body, term_addr, term_rec, live_ins,
                 has_imul, has_fdiv, virtual):
        self.head = head
        self.body = body              # tuple of predecode records
        self.term_addr = term_addr    # pc after the body
        self.term_rec = term_rec      # terminator record (None if virtual)
        self.live_ins = live_ins      # registers read before written
        self.has_imul = has_imul
        self.has_fdiv = has_fdiv
        self.virtual = virtual        # split at MAX_BODY, not a branch
        self.variants = {}            # entry key -> Variant
        self.failed = 0               # consecutive aborted recordings


def _final_scoreboard(steps, l1d_latency):
    """Last-writer completion offsets, entry-relative.

    All completion times in a *clean* replay are entry-relative
    constants (a clean load's latency is exactly the L1 hit latency, so
    its dynamic and static ready times coincide).
    """
    writers = {}
    for s in steps:
        rec = s[0]
        dst = rec[7]
        if dst is not None:
            kind = rec[0]
            if kind <= 3:
                writers[dst] = s[1] + rec[2]
            elif kind <= 6:
                writers[dst] = s[1] + l1d_latency
            else:          # br/bsr/jmp/jsr link register
                writers[dst] = s[1] + 1
    return tuple(writers.items())


class Variant:
    """One compiled schedule plus its precomputed bulk effects.

    ``steps`` keeps the interpretable per-instruction schedule
    ``(record, rel_issue, cycles_head, paired, stalls)`` -- the bail
    path uses it to reconstruct the completed prefix's accounting.

    ``links`` maps an exit pc to a cached successor variant plus the
    precomputed validation a chained replay must pass (see the replay
    caller in :mod:`repro.cpu.pipeline`): this variant's entry key and
    final scoreboard statically determine the successor's entry key
    except for registers neither written here nor pinned by this key,
    which are checked explicitly.
    """

    __slots__ = ("fn", "uses", "steps", "n", "total_rel", "count_addrs",
                 "head_items", "stall_items", "sb", "imul_rel",
                 "fdiv_rel", "prev_cls_end", "term_open", "leader_addr",
                 "term_addr", "term_next", "term_edge_always", "hits",
                 "links", "wset", "pin_regs")

    def __init__(self, steps, sb, key, term_next):
        # Tiered: ``fn`` stays None (and the slow path keeps executing
        # the block) until the variant recurs enough times to be worth
        # ~0.5 ms of compile().
        self.fn = None
        self.uses = 0
        self.steps = steps
        self.n = len(steps)
        last = steps[-1]
        self.total_rel = last[1]
        self.count_addrs = tuple(s[0][14] for s in steps)
        self.head_items = tuple((s[0][14], s[2]) for s in steps if s[2])
        stall_acc = {}
        for s in steps:
            if s[4]:
                for reason, amount in s[4]:
                    k = (s[0][14], reason)
                    stall_acc[k] = stall_acc.get(k, 0) + amount
        self.stall_items = tuple(
            (a, r, amt) for (a, r), amt in stall_acc.items())
        imul_rel = fdiv_rel = 0
        for s in steps:
            unit = s[0][11]
            if unit == 1:
                imul_rel = s[1] + s[0][12]
            elif unit == 2:
                fdiv_rel = s[1] + s[0][12]
        self.sb = sb
        self.imul_rel = imul_rel
        self.fdiv_rel = fdiv_rel
        self.prev_cls_end = last[0][1]
        # After a control transfer pair_open is additionally closed by a
        # *taken* transfer; the replay caller combines term_open with
        # the dynamic direction.
        self.term_open = not last[3]
        leader = None
        for s in reversed(steps):
            if not s[3]:
                leader = s[0][14]
                break
        self.leader_addr = leader
        term = last[0] if last[0][13] else None
        self.term_addr = term[14] if term is not None else None
        self.term_next = term_next   # exit pc of a virtual block
        # cbr/fbr/br/bsr record their edge unconditionally; indirect
        # jumps skip the edge into the process exit stub.
        self.term_edge_always = term is not None and term[0] <= 14
        self.hits = 0
        self.links = {}
        self.wset = frozenset(dst for dst, _ in sb)
        pins = key[1]
        self.pin_regs = (frozenset(p[0] for p in pins)
                         if pins else frozenset())


def _compile_replay(steps, line_shift, page_bits, sb,
                    l1d_geom=None, l1i_geom=None):
    """Compile *steps* into a specialized replay function.

    The generated function executes the block's semantics and model
    probes (fetch lines, D-TLB/D-cache, write buffer, branch predictor)
    with every schedule-derived constant inlined; on the clean path it
    also applies the final scoreboard *sb* (entry-relative constants)
    before any value-dependent return.  Common semantics are
    open-coded from :data:`_INLINE_OPS`, and (for direct-mapped
    power-of-two caches) the D-TLB, L1 and I-fetch *hit* paths are
    inlined too -- their side effects on a hit are exactly a hit
    counter bump, so the probes replicate the model byte-for-byte and
    everything else falls back to the model's own methods.  It
    returns:

    * ``None``             -- clean replay, no terminator (virtual block);
    * ``(4, next_pc, taken, mispredicted)`` -- clean replay through the
      terminator;
    * ``(0, i, fetch)``    -- dirty fetch before instruction *i*;
    * ``(1, i)``           -- write buffer busy at store *i* (no side
      effects for *i* were applied);
    * ``(2, i, dtb_pen, dlat, dmiss, dtb_miss)`` -- load *i* completed
      with a D-cache/D-TLB miss;
    * ``(3, i)``           -- store *i* completed with a D-TLB miss.
    """
    pm = (1 << page_bits) - 1
    ns = {"MASK64": MASK64}
    body = []
    L = body.append
    has_mem = any(4 <= s[0][0] <= 9 for s in steps)

    # Scoreboard epilogue: emitted after the last possible dirty bail
    # (so a bailing replay leaves the prefix fixup in charge) but
    # before the terminator's value-dependent return.
    sb_lines = []
    for dst, rel in sb:
        sb_lines.append("    reg_ready[%d] = reg_ready_static[%d]"
                        " = t0 + %d" % (dst, dst, rel))
        sb_lines.append("    reg_dyn_reason[%d] = None" % dst)

    def emit_fetch(i, addr, fline, ftime, indent):
        # The slow fallback (core._fetch) redoes the whole line fetch;
        # the inline path may only be taken when it provably charges
        # nothing: same code page, I-L1 tag hit, not a stream-buffer
        # line (probes are side-effect free; a hit's only side effect
        # is the hit counter).
        pre = " " * indent
        if l1i_geom is not None:
            ishift, imask = l1i_geom
            L(pre + "if core._last_code_page == %d:" % (addr >> page_bits))
            L(pre + "    _il = ((core._last_code_ppage << %d) | %d)"
              " >> %d" % (page_bits, addr & pm, ishift))
            L(pre + "    if _ics[_il & %d] == _il and _il not in _ist:"
              % imask)
            L(pre + "        _icl.hits += 1")
            L(pre + "    else:")
            L(pre + "        _f = core._fetch(%d, %s)" % (addr, ftime))
            L(pre + "        if _f[0] or _f[1] or _f[2]:")
            L(pre + "            return (0, %d, _f)" % i)
            L(pre + "else:")
            L(pre + "    _f = core._fetch(%d, %s)" % (addr, ftime))
            L(pre + "    if _f[0] or _f[1] or _f[2]:")
            L(pre + "        return (0, %d, _f)" % i)
        else:
            L(pre + "_f = core._fetch(%d, %s)" % (addr, ftime))
            L(pre + "if _f[0] or _f[1] or _f[2]:")
            L(pre + "    return (0, %d, _f)" % i)

    def load_value_lines(kind, dst, indent):
        pre = " " * indent
        out = []
        if dst is None:
            return out
        if kind == 4:  # ldq
            out.append(pre + "iregs[%d] = mem.get(_va & -8, 0)" % dst)
        elif kind == 5:  # ldl
            out.append(pre + "_v = mem.get(_va & -4, 0) & 0xFFFFFFFF")
            out.append(pre + "if _v >> 31:"
                       " _v = (_v | -4294967296) & MASK64")
            out.append(pre + "iregs[%d] = _v" % dst)
        else:  # ldt
            out.append(pre + "_v = mem.get(_va & -8, 0)")
            out.append(pre + "if not isinstance(_v, float):"
                       " _v = float(_v)")
            out.append(pre + "fregs[%d] = _v" % (dst - 32))
        return out

    def store_value_line(kind, f1, indent):
        pre = " " * indent
        if kind == 7:  # stq
            return pre + "mem[_va & -8] = iregs[%d]" % f1
        if kind == 8:  # stl
            return pre + "mem[_va & -4] = iregs[%d] & 0xFFFFFFFF" % f1
        return pre + "mem[_va & -8] = fregs[%d]" % f1  # stt

    prev_line = None
    prev_rel = 0
    for i, step in enumerate(steps):
        rec = step[0]
        addr = rec[14]
        fline = addr >> line_shift
        if fline != prev_line:
            if prev_line is None:
                # Only the entry line can match the last fetched line;
                # later crossings are unconditional (addresses ascend).
                L("    if core._last_fetch_line != %d:" % fline)
                L("        core._last_fetch_line = %d" % fline)
                emit_fetch(i, addr, fline, "t0", 8)
            else:
                L("    core._last_fetch_line = %d" % fline)
                emit_fetch(i, addr, fline, "t0 + %d" % prev_rel, 4)
            prev_line = fline
        if rec[13]:
            # The terminator can no longer bail: settle the scoreboard
            # before its (direction-dependent) return.
            body.extend(sb_lines)
        kind = rec[0]
        dst = rec[7]
        f1 = rec[4]
        f2 = rec[5]
        imm = rec[8]
        rel = step[1]
        if kind == 0:  # op
            if dst is not None:
                b = "iregs[%d]" % f2 if f2 is not None else repr(imm)
                tmpl = _INLINE_OPS.get(rec[10])
                if tmpl is not None:
                    L("    iregs[%d] = %s"
                      % (dst, tmpl.format(a="iregs[%d]" % f1, b=b)))
                else:
                    ns["_f%d" % i] = rec[10]
                    L("    iregs[%d] = _f%d(iregs[%d], %s)"
                      % (dst, i, f1, b))
        elif kind == 1:  # cmov (dst is the old-value register)
            if dst is not None:
                b = "iregs[%d]" % f2 if f2 is not None else repr(imm)
                tmpl = _INLINE_CONDS.get(rec[10])
                if tmpl is not None:
                    cond = tmpl.format(a="iregs[%d]" % f1)
                else:
                    ns["_f%d" % i] = rec[10]
                    cond = "_f%d(iregs[%d])" % (i, f1)
                L("    if %s: iregs[%d] = %s" % (cond, dst, b))
        elif kind == 2:  # fop
            if dst is not None:
                a = "fregs[%d]" % f1 if f1 is not None else "0.0"
                tmpl = _INLINE_OPS.get(rec[10])
                if tmpl is not None:
                    L("    fregs[%d] = %s"
                      % (dst - 32, tmpl.format(a=a, b="fregs[%d]" % f2)))
                else:
                    ns["_f%d" % i] = rec[10]
                    L("    fregs[%d] = _f%d(%s, fregs[%d])"
                      % (dst - 32, i, a, f2))
        elif kind == 3:  # lda
            if dst is not None:
                if f2 is not None:
                    L("    iregs[%d] = (iregs[%d] + %d) & MASK64"
                      % (dst, f2, imm))
                else:
                    L("    iregs[%d] = %d" % (dst, imm & MASK64))
        elif kind <= 6:  # loads
            L("    _va = (iregs[%d] + %d) & MASK64" % (f2, imm))
            if l1d_geom is not None:
                dshift, dmask = l1d_geom
                L("    _pp = _dte.get((asn, _va >> %d))" % page_bits)
                L("    if _pp is None:")
                L("        _pp, _pen, _tm = dtb.translate(asn,"
                  " _va >> %d, tdata)" % page_bits)
                L("        _lat, _dm = dhier.access((_pp << %d)"
                  " | (_va & %d))" % (page_bits, pm))
                body.extend(load_value_lines(kind, dst, 8))
                L("        return (2, %d, _pen, _lat, _dm, True)" % i)
                L("    dtb.hits += 1")
                L("    _ln = ((_pp << %d) | (_va & %d)) >> %d"
                  % (page_bits, pm, dshift))
                L("    _ix = _ln & %d" % dmask)
                L("    if _l1s[_ix] == _ln:")
                L("        l1d.hits += 1")
                body.extend(load_value_lines(kind, dst, 8))
                L("    else:")
                L("        l1d.misses += 1")
                L("        _l1s[_ix] = _ln")
                L("        _lat, _dm = dhier.miss_path((_pp << %d)"
                  " | (_va & %d))" % (page_bits, pm))
                body.extend(load_value_lines(kind, dst, 8))
                L("        return (2, %d, 0, _lat, True, False)" % i)
            else:
                L("    _pp, _pen, _tm = dtb.translate(asn,"
                  " _va >> %d, tdata)" % page_bits)
                L("    _lat, _dm = dhier.access((_pp << %d)"
                  " | (_va & %d))" % (page_bits, pm))
                body.extend(load_value_lines(kind, dst, 4))
                L("    if _dm or _tm:")
                L("        return (2, %d, _pen, _lat, _dm, _tm)" % i)
        elif kind <= 9:  # stores
            L("    _va = (iregs[%d] + %d) & MASK64" % (f2, imm))
            # The write-buffer probe is idempotent at a fixed time, so
            # a busy bail leaves no trace and the slow path redoes the
            # store exactly.
            L("    _pr = t0 + %d" % (prev_rel + 1))
            L("    if wb.earliest_issue(_va, _pr) != _pr:")
            L("        return (1, %d)" % i)
            if l1d_geom is not None:
                dshift, dmask = l1d_geom
                L("    _pp = _dte.get((asn, _va >> %d))" % page_bits)
                L("    if _pp is None:")
                L("        _pp, _pen, _tm = dtb.translate(asn,"
                  " _va >> %d, tdata)" % page_bits)
                L("        l1d.lookup((_pp << %d) | (_va & %d),"
                  " allocate=False)" % (page_bits, pm))
                L("        wb.commit(_va, t0 + %d)" % rel)
                L(store_value_line(kind, f1, 8))
                L("        return (3, %d)" % i)
                L("    dtb.hits += 1")
                L("    _ln = ((_pp << %d) | (_va & %d)) >> %d"
                  % (page_bits, pm, dshift))
                L("    if _l1s[_ln & %d] == _ln:" % dmask)
                L("        l1d.hits += 1")
                L("    else:")
                L("        l1d.misses += 1")
                L("    wb.commit(_va, t0 + %d)" % rel)
                L(store_value_line(kind, f1, 4))
            else:
                L("    _pp, _pen, _tm = dtb.translate(asn,"
                  " _va >> %d, tdata)" % page_bits)
                L("    l1d.lookup((_pp << %d) | (_va & %d),"
                  " allocate=False)" % (page_bits, pm))
                L("    wb.commit(_va, t0 + %d)" % rel)
                L(store_value_line(kind, f1, 4))
                L("    if _tm:")
                L("        return (3, %d)" % i)
        elif kind == 10:  # nop / call_pal: timing only
            pass
        elif kind == 11 or kind == 12:  # cbranch / fbranch
            regs = "iregs" if kind == 11 else "fregs"
            tmpl = _INLINE_CONDS.get(rec[10])
            if tmpl is not None:
                L("    _t = %s" % tmpl.format(a="%s[%d]" % (regs, f1)))
            else:
                ns["_f%d" % i] = rec[10]
                L("    _t = _f%d(%s[%d])" % (i, regs, f1))
            L("    _np = %d if _t else %d" % (rec[9], addr + 4))
            # Open-coded BranchPredictor.predict_conditional (2-bit
            # saturating counter update + accounting).
            L("    _bt = bp._table")
            L("    _bx = %d & bp._mask" % (addr >> 2))
            L("    _c = _bt[_bx]")
            L("    if _t:")
            L("        if _c < 3: _bt[_bx] = _c + 1")
            L("    elif _c > 0:")
            L("        _bt[_bx] = _c - 1")
            L("    bp.predictions += 1")
            L("    _mp = (_c >= 2) != _t")
            L("    if _mp: bp.mispredictions += 1")
            L("    return (4, _np, _t, _mp)")
        elif kind == 13 or kind == 14:  # br / bsr
            if dst is not None:
                L("    iregs[%d] = %d" % (dst, addr + 4))
            if kind == 14:
                L("    bp.push_call(%d)" % (addr + 4))
            L("    return (4, %d, True, False)" % rec[9])
        else:  # jmp / jsr / ret
            L("    _tg = iregs[%d] & -4" % f2)
            if dst is not None:
                L("    iregs[%d] = %d" % (dst, addr + 4))
            if kind == 16:
                L("    bp.push_call(%d)" % (addr + 4))
                L("    _mp = not bp.predict_indirect(%d, _tg)" % addr)
            elif kind == 17:
                L("    _mp = not bp.predict_return(_tg)")
            else:
                L("    _mp = not bp.predict_indirect(%d, _tg)" % addr)
            L("    return (4, _tg, True, _mp)")
        prev_rel = rel
    if not steps[-1][0][13]:   # virtual block: clean fall-through exit
        body.extend(sb_lines)
    L("    return None")

    # Hoisted probe handles for the inlined hit paths.
    head = ["def _replay(core, bp, dtb, dhier, l1d, wb, mem, iregs,"
            " fregs, reg_ready, reg_ready_static, reg_dyn_reason,"
            " asn, tdata, t0):"]
    if has_mem and l1d_geom is not None:
        head.append("    _dte = dtb._entries")
        head.append("    _l1s = l1d.sets")
    if l1i_geom is not None:
        head.append("    _icl = core.ihier.l1")
        head.append("    _ics = _icl.sets")
        head.append("    _ist = core._istream")
    code = compile("\n".join(head + body), "<fastpath-variant>", "exec")
    exec(code, ns)
    return ns["_replay"]


class FastPath:
    """Machine-level block table + issue-schedule variant cache."""

    #: Blocks shorter than this are not worth the key-building overhead.
    MIN_BODY = 1
    #: Longer straight-line runs are split at virtual boundaries.
    MAX_BODY = 48
    #: Bound on distinct entry PCs tracked (False entries included).
    MAX_BLOCKS = 65536
    #: Bound on cached schedules across all blocks.
    MAX_VARIANTS = 16384
    #: Consecutive aborted recordings before a variant-less block is
    #: blacklisted (e.g. streaming code whose loads always miss).
    MAX_FAILED = 12
    #: Recorded-variant re-uses before tiering up to a compiled replay.
    #: One compile() costs about as much as 25 slow instructions, so
    #: code with many lukewarm variants (gcc) loses at low thresholds
    #: on short runs; 4 keeps short-budget wins without measurably
    #: hurting steady-state throughput.
    COMPILE_USES = 4

    def __init__(self, decode_map, line_shift=5, page_bits=13,
                 l1d_latency=2, l1d_geom=None, l1i_geom=None):
        self.decode_map = decode_map  # shared with the Machine, live
        self.line_shift = line_shift  # I-fetch line granularity
        self.page_bits = page_bits
        self.l1d_latency = l1d_latency
        self.l1d_geom = l1d_geom      # see cache_geometry()
        self.l1i_geom = l1i_geom
        self.blocks = {}              # head pc -> Block | False
        self.variant_count = 0
        #: Variants with unflushed ground-truth hits (see
        #: :meth:`flush_deferred`).
        self.deferred = []
        # Counters surfaced through repro.obs (sim.fastpath.*).
        self.replays = 0              # cached schedules replayed
        self.replayed_instructions = 0
        self.bails = 0                # replays cut short by an event
        self.recordings = 0           # schedules captured
        self.compiled_variants = 0    # schedules tiered up to compiled
        self.aborted_recordings = 0   # recordings spoiled by an event
        self.variant_misses = 0       # entry key not cached yet
        self.links_followed = 0       # chained replays (gate skipped)
        self.link_mismatches = 0      # chain validation failed
        self.headroom_skips = 0       # replay blocked by counter headroom
        self.dropped_variants = 0     # cache full, schedule discarded
        self.invalidations = 0
        self.context_switches = 0     # informational; no flush needed

    # -- discovery ----------------------------------------------------

    def discover(self, head):
        """Scan forward from *head*; cache and return Block or False."""
        if len(self.blocks) >= self.MAX_BLOCKS:
            return False
        decode_map = self.decode_map
        body = []
        addr = head
        rec = decode_map.get(addr)
        while (rec is not None and not rec[13]          # R_CTRL
               and len(body) < self.MAX_BODY):
            body.append(rec)
            addr += 4
            rec = decode_map.get(addr)
        if rec is None or len(body) < self.MIN_BODY:
            self.blocks[head] = False
            return False
        virtual = not rec[13]
        term_rec = None if virtual else rec
        live = []
        written = set()
        has_imul = has_fdiv = False
        for record in body:
            for src in record[3]:                       # R_SRCS
                if src not in written and src not in live:
                    live.append(src)
            dst = record[7]                             # R_DST
            if dst is not None:
                written.add(dst)
            unit = record[11]                           # R_UNIT
            if unit == 1:
                has_imul = True
            elif unit == 2:
                has_fdiv = True
        if term_rec is not None:
            # The terminator replays too: its issue slot depends on its
            # own operands, so they join the entry key's live-ins.
            for src in term_rec[3]:
                if src not in written and src not in live:
                    live.append(src)
        block = Block(head, tuple(body), addr, term_rec, tuple(live),
                      has_imul, has_fdiv, virtual)
        self.blocks[head] = block
        return block

    # -- schedule cache -----------------------------------------------

    def store(self, block, key, entries):
        """Cache a recorded schedule for (*block*, *key*).

        *entries* is one ``(rel_issue, cycles_head, paired, stalls)``
        per instruction -- the body plus, for non-virtual blocks, the
        terminator.  The schedule is compiled to a specialized replay
        function and its bulk effects are precomputed (see
        :class:`Variant`).
        """
        if self.variant_count >= self.MAX_VARIANTS:
            self.dropped_variants += 1
            return False
        recs = block.body
        if block.term_rec is not None:
            recs = recs + (block.term_rec,)
        if len(entries) != len(recs):
            return False
        steps = tuple(
            (rec, entry[0], entry[1], entry[2], entry[3])
            for rec, entry in zip(recs, entries))
        sb = _final_scoreboard(steps, self.l1d_latency)
        term_next = block.term_addr if block.term_rec is None else None
        block.variants[key] = Variant(steps, sb, key, term_next)
        block.failed = 0
        self.variant_count += 1
        self.recordings += 1
        return True

    def compile_variant(self, variant):
        """Tier-up: compile *variant*'s recorded schedule to its
        specialized replay function (see :func:`_compile_replay`)."""
        variant.fn = _compile_replay(
            variant.steps, self.line_shift, self.page_bits, variant.sb,
            self.l1d_geom, self.l1i_geom)
        self.compiled_variants += 1

    def abort_recording(self, block):
        """A dynamic event spoiled a recording of *block*.  Blocks that
        repeatedly fail with nothing cached yet (streaming code whose
        loads always miss) are blacklisted to stop paying the
        recording overhead on every visit."""
        self.aborted_recordings += 1
        block.failed += 1
        if (block.failed >= self.MAX_FAILED and not block.variants
                and self.blocks.get(block.head) is block):
            self.blocks[block.head] = False

    # -- deferred ground truth ----------------------------------------

    def flush_deferred(self, gt_count, gt_head, gt_stall):
        """Fold the deferred replay hits into the ground-truth maps.

        Clean replays only bump their variant's hit counter; this folds
        ``hits`` copies of each variant's per-block deltas in.  Pure
        commutative addition, so the totals are identical to the slow
        path's per-instruction accounting.  Called at every
        ``Core.run`` exit, before anything can read the maps.
        """
        deferred = self.deferred
        if not deferred:
            return
        for variant in deferred:
            hits = variant.hits
            variant.hits = 0
            for a in variant.count_addrs:
                gt_count[a] = gt_count.get(a, 0) + hits
            for a, ch in variant.head_items:
                gt_head[a] = gt_head.get(a, 0) + ch * hits
            for a, reason, amount in variant.stall_items:
                row = gt_stall.get(a)
                if row is None:
                    row = {}
                    gt_stall[a] = row
                row[reason] = row.get(reason, 0) + amount * hits
        del deferred[:]

    # -- invalidation -------------------------------------------------

    def invalidate(self):
        """Drop every cached block (the static code map changed).

        Deferred hit counters survive on the Variant objects still
        referenced by ``self.deferred``, so no ground truth is lost.
        """
        if self.blocks:
            self.invalidations += 1
        self.blocks.clear()
        self.variant_count = 0

    def note_context_switch(self):
        """A quantum expired.  Variant keys are entry-relative and the
        scoreboard lives on the Process, so nothing needs flushing; the
        counter exists so the A/B suite can assert exactly that."""
        self.context_switches += 1

    # -- reporting ----------------------------------------------------

    def snapshot(self):
        """Raw counters for the obs schema (sim.fastpath.*)."""
        return {
            "replays": self.replays,
            "replayed_instructions": self.replayed_instructions,
            "bails": self.bails,
            "recordings": self.recordings,
            "compiled_variants": self.compiled_variants,
            "aborted_recordings": self.aborted_recordings,
            "variant_misses": self.variant_misses,
            "links_followed": self.links_followed,
            "link_mismatches": self.link_mismatches,
            "headroom_skips": self.headroom_skips,
            "dropped_variants": self.dropped_variants,
            "blocks": len(self.blocks),
            "variants": self.variant_count,
            "invalidations": self.invalidations,
            "context_switches": self.context_switches,
        }
