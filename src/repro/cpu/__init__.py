"""Cycle-level in-order dual-issue CPU simulator (the hardware substrate)."""

from repro.cpu.config import MachineConfig
from repro.cpu.events import EventType
from repro.cpu.machine import Machine

__all__ = ["MachineConfig", "EventType", "Machine"]
