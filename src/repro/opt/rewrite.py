"""Profile-directed image rewriting: the mechanical half of repro.opt.

A :class:`RewritePlan` says *what* the optimizer decided (new procedure
order, per-procedure basic-block order, per-block instruction order);
:func:`rewrite_image` carries it out on a **fresh, unlinked** copy of
the same image, patching control flow so the rewritten image is
semantically identical to the original:

* a conditional branch whose *taken* target becomes the layout
  successor is inverted (``beq`` <-> ``bne`` ...) and retargeted at its
  old fallthrough;
* a block whose fallthrough successor moved away gets an explicit
  ``br`` stub appended;
* an unconditional ``br`` whose target becomes the layout successor is
  elided outright;
* every direct branch target is remapped to the moved code.

The plan is fingerprinted against the image it was computed from:
workloads rebuild images fresh on every ``setup`` call, and the
fingerprint guarantees the plan is only ever applied to an
instruction-identical rebuild (anything else is a counted bailout that
returns the image untouched).

Data is pinned at its original image-relative offset
(:attr:`repro.alpha.image.Image.data_offset`) so data addresses -- and
therefore every pointer value the program computes -- survive the code
layout change byte-for-byte.  If inserted stubs would grow the code
past the original data offset, the rewrite bails out rather than move
data.
"""

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.alpha import regs
from repro.alpha.image import Image
from repro.alpha.instruction import Instruction
from repro.alpha.opcodes import BRANCH_INVERSES, DIRECT_BRANCH_KINDS
from repro.obs import NULL_OBS

#: Opcodes after which control cannot reach the next address.
NO_FALLTHROUGH_OPS = ("br", "ret", "jmp")

#: Conditional-branch inversion pairs (architecturally exact); the
#: canonical table lives with the rest of the ISA semantics in
#: :data:`repro.alpha.opcodes.BRANCH_INVERSES`.
INVERT = BRANCH_INVERSES


#: (image name, per-instruction shape, procedure table) -- see
#: :func:`image_fingerprint`.
Fingerprint = Tuple[str, Tuple[Tuple[object, ...], ...],
                    Tuple[Tuple[str, int, int], ...]]


def image_fingerprint(image: Image) -> Fingerprint:
    """A base-independent identity for *image*'s code.

    Covers opcodes, register operands, base-relative branch targets
    and the procedure table -- everything layout-independent -- so a
    plan computed on the linked, profiled image matches the fresh
    unlinked rebuild the workload produces for the optimized run.
    (Targets matter: the plan's block bounds and frozen-proc safety
    analysis are only valid for the control-flow graph they were
    computed from.)
    """
    base = image.base or 0
    code = tuple(
        (inst.op, inst.ra, inst.rb, inst.rc,
         (inst.target - base) if inst.target is not None else None)
        for inst in image.instructions)
    procs = tuple((proc.name, proc.start - base, proc.end - base)
                  for proc in image.procedures)
    return (image.name, code, procs)


class BlockPlan:
    """One basic block's placement: original bounds + instruction order.

    *start*/*end* are image-relative byte offsets of the block in the
    original layout; *order* lists the block's instruction offsets in
    the order they should be emitted (the terminator, if any, last).
    """

    __slots__ = ("start", "end", "order")

    def __init__(self, start: int, end: int,
                 order: Optional[List[int]] = None) -> None:
        self.start = start
        self.end = end
        self.order = (list(order) if order is not None
                      else list(range(start, end, 4)))

    def __repr__(self) -> str:
        return "<BlockPlan [%#x, %#x)>" % (self.start, self.end)


class ProcPlan:
    """One procedure's blocks, in their new layout order."""

    __slots__ = ("name", "blocks", "frozen")

    def __init__(self, name: str, blocks: List[BlockPlan],
                 frozen: bool = False) -> None:
        self.name = name
        self.blocks = blocks
        self.frozen = frozen


class RewritePlan:
    """Everything :func:`rewrite_image` needs, in image-relative terms."""

    __slots__ = ("image_name", "fingerprint", "procs", "data_offset",
                 "stats")

    def __init__(self, image_name: str, fingerprint: Fingerprint,
                 procs: List[ProcPlan], data_offset: Optional[int],
                 stats: Optional[Dict[str, int]] = None) -> None:
        self.image_name = image_name
        self.fingerprint = fingerprint
        #: :class:`ProcPlan` list in the new image order.
        self.procs = procs
        #: original image-relative data offset to pin (None = free).
        self.data_offset = data_offset
        #: pass-level decisions (blocks moved, scheduled blocks, ...).
        self.stats = dict(stats or {})

    def is_identity(self) -> bool:
        """True when applying the plan would reproduce the image as-is."""
        return not (self.stats.get("blocks_moved")
                    or self.stats.get("scheduled_blocks")
                    or self.stats.get("procs_moved"))


class RewriteResult:
    """What one rewrite produced (or why it refused)."""

    __slots__ = ("image", "applied", "reason", "old2new", "stub_targets",
                 "stats")

    def __init__(self, image: Image, applied: bool, reason: str = "",
                 old2new: Optional[Dict[int, int]] = None,
                 stub_targets: Optional[Dict[int, int]] = None,
                 stats: Optional[Dict[str, int]] = None) -> None:
        #: the rewritten image when applied, else the untouched input.
        self.image = image
        self.applied = applied
        self.reason = reason
        #: {original offset: new offset} for every surviving
        #: instruction (elided branches map to their target's new
        #: start, where control actually continues).
        self.old2new = old2new or {}
        #: {new stub offset: original fallthrough offset}.
        self.stub_targets = stub_targets or {}
        self.stats = stats or {}


def _bail(image: Image, reason: str, obs: Any) -> RewriteResult:
    obs.counter("opt.rewrite_bailouts").inc()
    return RewriteResult(image, False, reason=reason)


def rewrite_image(image: Image, plan: RewritePlan,
                  obs: Any = None) -> RewriteResult:
    """Apply *plan* to unlinked *image*; return a :class:`RewriteResult`.

    Never raises on a plan/image mismatch: any inconsistency is a
    counted bailout returning the input untouched, so a stale plan can
    degrade performance work but can never corrupt a program.
    """
    obs = obs or NULL_OBS
    if image.base is not None:
        return _bail(image, "image already linked", obs)
    if image_fingerprint(image) != plan.fingerprint:
        return _bail(image, "image does not match the profiled build",
                     obs)
    instructions = image.instructions

    # Upfront plan sanity: every block the plan names must be a real,
    # aligned, in-bounds code range of its procedure, with an order
    # that permutes exactly the block's own instructions.  Anything
    # else is a corrupted or mismatched plan -- refuse before touching
    # a single instruction (``at`` below indexes unchecked).
    procs_by_name = {proc.name: proc for proc in image.procedures}
    if sorted(plan_proc.name for plan_proc in plan.procs) \
            != sorted(procs_by_name):
        return _bail(image, "plan procedures do not match the image",
                     obs)
    for proc_plan in plan.procs:
        proc = procs_by_name[proc_plan.name]
        for block in proc_plan.blocks:
            if (block.start % 4 or block.end % 4
                    or not (proc.start <= block.start
                            < block.end <= proc.end)):
                return _bail(
                    image,
                    "plan references unknown block [%#x, %#x) in %s"
                    % (block.start, block.end, proc_plan.name), obs)
            if sorted(block.order) != list(range(block.start,
                                                 block.end, 4)):
                return _bail(
                    image,
                    "block order is not a permutation of [%#x, %#x)"
                    % (block.start, block.end), obs)
        emitted_offsets = [off for block in proc_plan.blocks
                           for off in block.order]
        if len(emitted_offsets) != len(set(emitted_offsets)):
            return _bail(
                image,
                "plan emits an instruction of %s more than once"
                % proc_plan.name, obs)
        if proc_plan.frozen:
            starts = [block.start for block in proc_plan.blocks]
            identity = (
                starts == sorted(starts)
                and all(block.order == list(range(block.start,
                                                  block.end, 4))
                        for block in proc_plan.blocks))
            if not identity:
                return _bail(
                    image,
                    "frozen procedure %s plan is not identity"
                    % proc_plan.name, obs)

    def at(off: int) -> Instruction:
        return instructions[off >> 2]

    # Phase 1: lay the code out symbolically, assigning new offsets.
    stats = {"branches_inverted": 0, "branches_elided": 0,
             "stubs_inserted": 0}
    old2new: Dict[int, int] = {}
    # original block start -> new offset
    new_start: Dict[int, int] = {}
    # (branch offset, its target offset)
    elided: List[Tuple[int, int]] = []
    # (proc name, [emission items])
    emitted_procs: List[Tuple[str, List[Tuple[Any, ...]]]] = []
    cursor = 0
    for proc_plan in plan.procs:
        items: List[Tuple[Any, ...]] = []
        blocks = proc_plan.blocks
        for index, block in enumerate(blocks):
            next_start = (blocks[index + 1].start
                          if index + 1 < len(blocks) else None)
            last_off = block.order[-1]
            last = at(last_off)
            kind = last.info.kind
            fall = block.end
            term = None
            if kind in ("cbranch", "fbranch"):
                if next_start == fall:
                    pass
                elif next_start == last.target and last.op in INVERT:
                    term = ("invert", fall)
                else:
                    term = ("stub", fall)
            elif kind == "br" and last.op == "br":
                if last.dst is None and last.target == next_start:
                    term = ("elide",)
            elif kind == "jump" and last.op in ("ret", "jmp"):
                pass
            else:
                # Generic fallthrough (plain ops, calls): if the layout
                # successor is not the original fallthrough, bridge it.
                if next_start != fall:
                    term = ("stub", fall)
            emit = block.order
            if term is not None and term[0] == "elide":
                emit = emit[:-1]
                elided.append((last_off, last.target))
                stats["branches_elided"] += 1
            new_start[block.start] = cursor
            for off in emit:
                if term is not None and term[0] == "invert" \
                        and off == last_off:
                    items.append(("invert", off, term[1]))
                    stats["branches_inverted"] += 1
                else:
                    items.append(("inst", off))
                old2new[off] = cursor
                cursor += 4
            if term is not None and term[0] == "stub":
                items.append(("stub", term[1], cursor))
                stats["stubs_inserted"] += 1
                cursor += 4
        emitted_procs.append((proc_plan.name, items))

    # Elided branches: control continues at the target, so anything
    # referencing the branch's address maps there.
    for off, target in elided:
        resolved = new_start.get(target, old2new.get(target))
        if resolved is None:
            return _bail(image, "elided branch target unmapped", obs)
        old2new[off] = resolved

    if plan.data_offset is not None and cursor > plan.data_offset:
        return _bail(
            image,
            "rewritten code (%d bytes) overruns the pinned data "
            "offset %#x" % (cursor, plan.data_offset), obs)

    def remap(target: int) -> Optional[int]:
        # Block starts first: a branch to a rescheduled block must
        # enter at the block's new top, not at the moved position of
        # its old first instruction.
        mapped = new_start.get(target)
        if mapped is None:
            mapped = old2new.get(target)
        return mapped

    # Phase 2: materialize instruction copies with remapped targets.
    new_image = Image(image.name)
    new_image.data_size = image.data_size
    new_image.data_offset = plan.data_offset
    new_image.source = image.source
    copy_of: Dict[int, Instruction] = {}
    stub_targets: Dict[int, int] = {}
    for name, proc_items in emitted_procs:
        copies: List[Instruction] = []
        for item in proc_items:
            if item[0] == "stub":
                target = remap(item[1])
                if target is None:
                    return _bail(image, "stub target unmapped", obs)
                copies.append(Instruction("br", ra=regs.ZERO_REG,
                                          target=target))
                stub_targets[item[2]] = item[1]
                continue
            inst = at(item[1])
            if item[0] == "invert":
                target = remap(item[2])
                op = INVERT[inst.op]
            else:
                op = inst.op
                target = inst.target
                if (inst.info.kind in DIRECT_BRANCH_KINDS
                        and target is not None):
                    target = remap(target)
            if (inst.info.kind in DIRECT_BRANCH_KINDS
                    and inst.target is not None and target is None):
                return _bail(image, "branch target %#x unmapped"
                             % inst.target, obs)
            copy = Instruction(op, ra=inst.ra, rb=inst.rb, rc=inst.rc,
                               imm=inst.imm, target=target,
                               line=inst.line)
            copy_of[id(inst)] = copy
            copies.append(copy)
        new_image.add_procedure(name, copies)

    proc_names = {proc.name for proc in image.procedures}
    for name, offset in image.symbols.items():
        if name not in proc_names:
            new_image.symbols.define(name, offset)
    fixups: List[Tuple[Instruction, str]] = []
    for inst, symbol in image.fixups:
        copy = copy_of.get(id(inst))
        if copy is None:
            return _bail(image, "fixup instruction was not emitted", obs)
        fixups.append((copy, symbol))
    new_image.fixups = fixups

    obs.counter("opt.images_rewritten").inc()
    obs.counter("opt.branches_inverted").inc(stats["branches_inverted"])
    obs.counter("opt.branches_elided").inc(stats["branches_elided"])
    obs.counter("opt.stubs_inserted").inc(stats["stubs_inserted"])
    stats.update(plan.stats)
    return RewriteResult(new_image, True, old2new=old2new,
                         stub_targets=stub_targets, stats=stats)


class ImageRewriter:
    """A ``Machine.image_transform`` that applies per-image plans.

    Install on the optimized run's machine; it rewrites every image a
    plan exists for and records each :class:`RewriteResult` (the
    oracle's address-translation input) under the image name.
    """

    def __init__(self, plans: Iterable[RewritePlan],
                 obs: Any = None) -> None:
        self.plans = {plan.image_name: plan for plan in plans}
        self.obs = obs or NULL_OBS
        self.results: Dict[str, RewriteResult] = {}

    def __call__(self, image: Image) -> Image:
        plan = self.plans.get(image.name)
        if plan is None:
            return image
        result = rewrite_image(image, plan, obs=self.obs)
        self.results[image.name] = result
        return result.image
